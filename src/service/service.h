#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/minimpi.h"

/// The multi-tenant "collective service" scenario driver (ROADMAP item 3):
/// many concurrent jobs — each a tenant's comm-churn cycle of create ->
/// seeded op stream -> destroy — share one simulated cluster and interfere
/// through the existing link-contention model. Arrivals follow a seeded
/// open-loop process in VIRTUAL time, so a slow (contended) cluster does
/// not slow the offered load down: queueing shows up as completion latency,
/// exactly like production traffic. Everything here is a pure function of
/// (ServiceConfig), so throughput/latency figures are byte-stable and CI
/// can diff them at a rounding tolerance.
namespace service {

/// What one job step executes on the job's communicator.
enum class OpKind : std::uint8_t { Allgather, Allreduce, Bcast, Barrier };

const char* op_name(OpKind k);

struct OpSpec {
    OpKind kind = OpKind::Barrier;
    std::size_t bytes = 0;  ///< per-rank payload (0 for barriers)
};

/// One tenant job: create a comm over @p members, run @p ops, destroy it.
struct JobSpec {
    int tenant = 0;
    int index = 0;  ///< position in the tenant's own stream
    std::uint64_t seed = 0;  ///< payload/digest stream, pure in (cfg, tenant, index)
    minimpi::VTime arrival = 0.0;  ///< open-loop arrival (virtual us)
    std::vector<int> members;      ///< world ranks, strictly increasing
    std::vector<OpSpec> ops;
    /// Run allgather steps through the hybrid (hympi) channel instead of
    /// the flat collective — only set for jobs spanning >= 2 nodes.
    bool hybrid = false;

    std::uint64_t total_bytes() const {
        std::uint64_t b = 0;
        for (const OpSpec& op : ops) b += op.bytes;
        return b;
    }
};

struct ServiceConfig {
    int nodes = 4;
    int ppn = 4;
    minimpi::ModelParams model = minimpi::ModelParams::cray();
    minimpi::PayloadMode payload = minimpi::PayloadMode::SizeOnly;

    std::uint64_t seed = 1;
    int tenants = 4;
    int jobs_per_tenant = 8;

    /// Mean inter-arrival gap of each tenant's stream. Gaps are uniform in
    /// [0.25, 1.75) * mean — dyadic-rational multiples, deliberately not an
    /// exponential draw: no libm in the schedule keeps checked-in baselines
    /// byte-stable across platforms.
    minimpi::VTime mean_gap_us = 400.0;

    int min_ops = 2;  ///< ops per job, drawn uniform in [min_ops, max_ops]
    int max_ops = 5;
    std::size_t small_bytes = 256;        ///< per-rank payload of a small job
    std::size_t large_bytes = 16 * 1024;  ///< per-rank payload of a large job
    double large_fraction = 0.25;  ///< probability a job is large
    double hybrid_fraction = 0.5;  ///< multi-node jobs using the hympi channel

    /// Route a hybrid job's small collectives through the CollBatcher
    /// aggregation shim (hy_batch.h): ops posted back to back fuse into one
    /// bridge exchange per window and demultiplex on release. Payload bytes
    /// (and therefore digests) are unchanged — only the virtual-time cost
    /// structure moves. Off by default, so existing schedules and
    /// checked-in baselines are untouched.
    bool batch_small = false;

    /// Bridge-link arbitration policy (the QoS knob). When @p use_env is
    /// set, HYMPI_QOS=fifo|weighted overrides it at run time.
    minimpi::QosPolicy qos = minimpi::QosPolicy::Fifo;
    bool use_env = true;

    /// Per-tenant arbitration weights (empty = all 1.0; shorter lists are
    /// padded with 1.0). Only consulted under WeightedShares.
    std::vector<double> weights;

    /// Restrict the schedule to one tenant's stream (its arrivals, members
    /// and ops are unchanged — per-tenant generation is independent). The
    /// isolation oracle compares this solo run against the concurrent one.
    int only_tenant = -1;

    double weight_of(int tenant) const;
    double total_weight() const;  ///< over all cfg.tenants, solo runs included
};

/// Resolve the QoS policy from HYMPI_QOS ("fifo" | "weighted"), falling
/// back to @p fallback when unset or unrecognized (a warning is printed for
/// the latter).
minimpi::QosPolicy qos_from_env(minimpi::QosPolicy fallback);
const char* qos_name(minimpi::QosPolicy q);

/// The full job schedule of @p cfg in execution order — sorted by (arrival,
/// tenant, index), which every rank processes identically (the global order
/// makes overlapping member sets deadlock-free). Pure in @p cfg.
std::vector<JobSpec> build_schedule(const ServiceConfig& cfg);

struct JobResult {
    int tenant = 0;
    int index = 0;
    minimpi::VTime arrival = 0.0;
    minimpi::VTime finish = 0.0;  ///< max over members' completion clocks
    double latency_us = 0.0;      ///< finish - arrival (queueing included)
    int ops = 0;
    /// FNV-1a digest over every member's op result bytes (0 in SizeOnly
    /// mode). Contention may move clocks but never payloads, so this is
    /// identical between a tenant's solo and concurrent runs.
    std::uint64_t digest = 0;
};

struct TenantMetrics {
    int tenant = 0;
    double weight = 1.0;
    int jobs = 0;
    std::uint64_t ops = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
    std::uint64_t bridge_bytes = 0;  ///< inter-node bytes attributed to the tenant
    std::uint64_t bridge_msgs = 0;
};

struct ServiceResult {
    minimpi::QosPolicy qos = minimpi::QosPolicy::Fifo;
    std::vector<JobResult> jobs;  ///< schedule order
    std::vector<TenantMetrics> tenants;
    int total_jobs = 0;
    std::uint64_t total_ops = 0;
    double makespan_us = 0.0;  ///< first arrival -> last finish
    double ops_per_sec = 0.0;  ///< total ops / makespan
    double p50_us = 0.0;       ///< over all job latencies
    double p99_us = 0.0;

    /// Machine-readable dump for `trace_report --service <file>`: the
    /// aggregate dashboard (per-tenant ops/sec, p50/p99, bridge bytes).
    bool write_json(const std::string& path, const ServiceConfig& cfg) const;
};

/// Run the scenario: one simulated cluster, every job of build_schedule(cfg)
/// executed at its arrival by its member ranks, metrics aggregated. Virtual
/// times and digests are pure functions of @p cfg (+ HYMPI_QOS when
/// cfg.use_env).
ServiceResult run_service(const ServiceConfig& cfg);

/// Cross-job isolation oracle: run the full concurrent schedule and each
/// tenant's solo schedule in Real payload mode and require byte-identical
/// per-job digests — contention may move clocks, never payloads. Returns an
/// empty string on success, else a description of the first mismatch.
std::string verify_isolation(ServiceConfig cfg);

}  // namespace service
