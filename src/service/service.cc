#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "bench_util/latency.h"
#include "hybrid/hympi.h"
#include "minimpi/trace_span.h"

namespace service {

using minimpi::Comm;
using minimpi::PayloadMode;
using minimpi::QosPolicy;
using minimpi::RankCtx;
using minimpi::Runtime;
using minimpi::TenantState;
using minimpi::VTime;

namespace {

/// splitmix64 (the same mixer the conformance harness uses) — every random
/// choice in the service is a pure function of (cfg.seed, tenant, draw
/// index), never of host scheduling.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Uniform in [0, 1) with a 53-bit dyadic-rational mantissa — exact in
/// IEEE double arithmetic, so schedules are byte-stable across platforms.
double u01(std::uint64_t x) {
    return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

std::byte pattern_byte(std::uint64_t seed, std::uint64_t salt, std::size_t i) {
    return static_cast<std::byte>(
        mix64(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ (i >> 3)) >>
        ((i & 7) * 8));
}

void fold_bytes(std::uint64_t& h, const std::byte* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= std::to_integer<std::uint64_t>(p[i]);
        h *= 1099511628211ULL;  // FNV-1a
    }
}

/// Host-side coordination of one job: the member ranks meet here to create
/// the job comm (a registry op — a world-collective split would couple
/// EVERY tenant's clock through the rendezvous max, destroying the
/// concurrency the scenario exists to measure) and to deposit their finish
/// clocks and digests.
struct JobSlot {
    std::mutex mu;
    std::condition_variable cv;
    minimpi::CommState* child = nullptr;
    int arrived = 0;
    VTime max_clock = 0.0;
    std::vector<VTime> finish;           ///< per member position
    std::vector<std::uint64_t> digest;   ///< per member position
};

int member_pos(const std::vector<int>& members, int world_rank) {
    const auto it =
        std::lower_bound(members.begin(), members.end(), world_rank);
    if (it == members.end() || *it != world_rank) return -1;
    return static_cast<int>(it - members.begin());
}

/// Create-or-join the job communicator. Members sync clocks to the max of
/// their entry clocks + the usual one-off coordination cost, exactly like
/// Comm::split, but scoped to the job's members only.
Comm join_job_comm(Runtime& rt, Comm& world, const JobSpec& job, JobSlot& slot,
                   int mpos) {
    RankCtx& ctx = world.ctx();
    const int n = static_cast<int>(job.members.size());
    VTime max_clock = 0.0;
    {
        std::unique_lock<std::mutex> lk(slot.mu);
        slot.max_clock = std::max(slot.max_clock, ctx.clock.now());
        if (++slot.arrived == n) {
            slot.child = rt.create_comm(job.members, &world.state());
            slot.cv.notify_all();
        }
        while (slot.child == nullptr) {
            if (rt.transport().poisoned()) {
                lk.unlock();
                rt.transport().check_poison();  // throws JobAborted
            }
            // Timed wait: a peer that aborts can never signal this cv, so
            // poll the poison flag instead of blocking forever (error path
            // only — the happy path wakes through notify_all).
            slot.cv.wait_for(lk, std::chrono::milliseconds(20));
        }
        max_clock = slot.max_clock;
    }
    ctx.clock.sync_to(max_clock);
    ctx.clock.advance(rt.one_off_sync_cost(n));
    return Comm(slot.child, &ctx, mpos);
}

/// Execute one job on its (already created) comm: the seeded op stream,
/// folding every result buffer into the member's digest in Real mode. The
/// control flow of modelled operations is payload-mode independent, so
/// Real (isolation-oracle) and SizeOnly (bench) runs see identical clocks.
std::uint64_t run_ops(const ServiceConfig& cfg, Comm& jc, const JobSpec& job,
                      int mpos) {
    const bool real = cfg.payload == PayloadMode::Real;
    const int n = jc.size();
    std::uint64_t h = 1469598103934665603ULL ^ mix64(job.seed);

    std::optional<hympi::HierComm> hc;
    std::optional<hympi::AllgatherChannel> chan;
    std::optional<hympi::CollBatcher> batcher;
    std::vector<std::byte> sendbuf, recvbuf;

    // Deferred results of batched ops, folded into the digest in op order
    // at the next drain point (a barrier, a channel allgather, or job end)
    // so the digest stream is byte-identical to the unbatched run's.
    struct Posted {
        OpKind kind = OpKind::Barrier;
        std::size_t cnt = 0;
        std::vector<std::byte> send, recv;
        std::vector<double> rin, rout;
        minimpi::CollRequest req;
    };
    std::vector<Posted> posted;
    auto drain = [&] {
        for (Posted& p : posted) p.req.wait();
        for (const Posted& p : posted) {
            if (!real) break;
            if (p.kind == OpKind::Allreduce) {
                fold_bytes(h,
                           reinterpret_cast<const std::byte*>(p.rout.data()),
                           p.cnt * sizeof(double));
            } else {
                fold_bytes(h, p.recv.data(), p.recv.size());
            }
        }
        posted.clear();
    };
    const bool batching = cfg.batch_small && job.hybrid;
    if (batching) {
        hc.emplace(jc);
        batcher.emplace(*hc);
    }

    for (std::size_t oi = 0; oi < job.ops.size(); ++oi) {
        const OpSpec& op = job.ops[oi];
        const std::uint64_t salt = (oi + 1) << 16;
        switch (op.kind) {
            case OpKind::Barrier:
                drain();  // a barrier closes the batch window by intent
                minimpi::barrier(jc);
                break;
            case OpKind::Bcast: {
                const int root = (job.index + static_cast<int>(oi)) % n;
                if (batching && op.bytes <= cfg.small_bytes) {
                    Posted p;
                    p.kind = OpKind::Bcast;
                    if (real) {
                        p.recv.assign(op.bytes, std::byte{0});
                        if (mpos == root) {
                            for (std::size_t i = 0; i < op.bytes; ++i) {
                                p.recv[i] = pattern_byte(job.seed, salt, i);
                            }
                        }
                    }
                    p.req = batcher->post_bcast(
                        real ? p.recv.data() : nullptr, op.bytes, root);
                    posted.push_back(std::move(p));
                    break;
                }
                if (batching) {
                    // Large op: bypass the batcher entirely (the size gate
                    // keeps the open window intact instead of forcing a
                    // flush), but its digest fold must stay in op order
                    // with the deferred batched results — run it now and
                    // fold at the next drain via an already-complete
                    // Posted entry (its default req waits as a no-op).
                    Posted p;
                    p.kind = OpKind::Bcast;
                    if (real) {
                        p.recv.assign(op.bytes, std::byte{0});
                        if (mpos == root) {
                            for (std::size_t i = 0; i < op.bytes; ++i) {
                                p.recv[i] = pattern_byte(job.seed, salt, i);
                            }
                        }
                    }
                    minimpi::bcast(jc, real ? p.recv.data() : nullptr,
                                   op.bytes, minimpi::Datatype::Byte, root);
                    posted.push_back(std::move(p));
                    break;
                }
                if (real) {
                    recvbuf.assign(op.bytes, std::byte{0});
                    if (mpos == root) {
                        for (std::size_t i = 0; i < op.bytes; ++i) {
                            recvbuf[i] = pattern_byte(job.seed, salt, i);
                        }
                    }
                    minimpi::bcast(jc, recvbuf.data(), op.bytes,
                                   minimpi::Datatype::Byte, root);
                    fold_bytes(h, recvbuf.data(), op.bytes);
                } else {
                    minimpi::bcast(jc, nullptr, op.bytes,
                                   minimpi::Datatype::Byte, root);
                }
                break;
            }
            case OpKind::Allgather: {
                if (batching && op.bytes <= cfg.small_bytes) {
                    Posted p;
                    p.kind = OpKind::Allgather;
                    if (real) {
                        p.send.resize(op.bytes);
                        for (std::size_t i = 0; i < op.bytes; ++i) {
                            p.send[i] = pattern_byte(
                                job.seed,
                                salt + static_cast<std::uint64_t>(mpos), i);
                        }
                        p.recv.assign(op.bytes * static_cast<std::size_t>(n),
                                      std::byte{0});
                    }
                    p.req = batcher->post_allgather(
                        real ? p.send.data() : nullptr, op.bytes,
                        real ? p.recv.data() : nullptr);
                    posted.push_back(std::move(p));
                    break;
                }
                if (job.hybrid) {
                    // The channel folds its digest inline, so pending
                    // batched results must land first to keep fold order.
                    drain();
                    if (!chan) {
                        if (!hc) hc.emplace(jc);
                        chan.emplace(*hc, op.bytes);
                    }
                    if (real) {
                        std::byte* mb = chan->my_block();
                        for (std::size_t i = 0; i < op.bytes; ++i) {
                            mb[i] = pattern_byte(
                                job.seed, salt + static_cast<std::uint64_t>(mpos),
                                i);
                        }
                    }
                    chan->run();
                    if (real) {
                        for (int r = 0; r < n; ++r) {
                            fold_bytes(h, chan->block_of(r),
                                       chan->block_size(r));
                        }
                    }
                    // Read phase over; the next iteration rewrites
                    // my_block, so the node must quiesce in between.
                    chan->quiesce();
                } else {
                    if (real) {
                        sendbuf.resize(op.bytes);
                        for (std::size_t i = 0; i < op.bytes; ++i) {
                            sendbuf[i] = pattern_byte(
                                job.seed, salt + static_cast<std::uint64_t>(mpos),
                                i);
                        }
                        recvbuf.assign(op.bytes * static_cast<std::size_t>(n),
                                       std::byte{0});
                    }
                    minimpi::allgather(jc, real ? sendbuf.data() : nullptr,
                                       op.bytes,
                                       real ? recvbuf.data() : nullptr,
                                       minimpi::Datatype::Byte);
                    if (real) fold_bytes(h, recvbuf.data(), recvbuf.size());
                }
                break;
            }
            case OpKind::Allreduce: {
                const std::size_t cnt = std::max<std::size_t>(1, op.bytes / 8);
                if (batching) {
                    Posted p;
                    p.kind = OpKind::Allreduce;
                    p.cnt = cnt;
                    if (real) {
                        p.rin.resize(cnt);
                        for (std::size_t k = 0; k < cnt; ++k) {
                            p.rin[k] = static_cast<double>(
                                mix64(job.seed ^ salt ^
                                      (static_cast<std::uint64_t>(mpos)
                                       << 32) ^
                                      k) &
                                0xFF);
                        }
                        p.rout.assign(cnt, 0.0);
                    }
                    if (op.bytes <= cfg.small_bytes) {
                        p.req = batcher->post_allreduce(
                            real ? p.rin.data() : nullptr,
                            real ? p.rout.data() : nullptr, cnt,
                            minimpi::Datatype::Double, minimpi::Op::Sum);
                    } else {
                        // Large op: bypass the batcher (same size gate as
                        // the allgather/bcast paths — no forced window
                        // flush); the complete Posted entry keeps the
                        // digest fold in op order at the next drain.
                        minimpi::allreduce(jc, real ? p.rin.data() : nullptr,
                                           real ? p.rout.data() : nullptr,
                                           cnt, minimpi::Datatype::Double,
                                           minimpi::Op::Sum);
                    }
                    posted.push_back(std::move(p));
                    break;
                }
                if (real) {
                    // Small-integer-valued doubles: the sum over members is
                    // exact regardless of the reduction algorithm's
                    // association order.
                    std::vector<double> in(cnt), out(cnt);
                    for (std::size_t k = 0; k < cnt; ++k) {
                        in[k] = static_cast<double>(
                            mix64(job.seed ^ salt ^
                                  (static_cast<std::uint64_t>(mpos) << 32) ^ k) &
                            0xFF);
                    }
                    minimpi::allreduce(jc, in.data(), out.data(), cnt,
                                       minimpi::Datatype::Double,
                                       minimpi::Op::Sum);
                    fold_bytes(h,
                               reinterpret_cast<const std::byte*>(out.data()),
                               cnt * sizeof(double));
                } else {
                    minimpi::allreduce(jc, nullptr, nullptr, cnt,
                                       minimpi::Datatype::Double,
                                       minimpi::Op::Sum);
                }
                break;
            }
        }
    }
    drain();
    return h;
}

}  // namespace

const char* op_name(OpKind k) {
    switch (k) {
        case OpKind::Allgather: return "allgather";
        case OpKind::Allreduce: return "allreduce";
        case OpKind::Bcast: return "bcast";
        case OpKind::Barrier: return "barrier";
    }
    return "?";
}

const char* qos_name(QosPolicy q) {
    return q == QosPolicy::WeightedShares ? "weighted" : "fifo";
}

QosPolicy qos_from_env(QosPolicy fallback) {
    const char* e = std::getenv("HYMPI_QOS");
    if (e == nullptr || e[0] == '\0') return fallback;
    if (std::strcmp(e, "fifo") == 0) return QosPolicy::Fifo;
    if (std::strcmp(e, "weighted") == 0 || std::strcmp(e, "wfq") == 0) {
        return QosPolicy::WeightedShares;
    }
    std::fprintf(stderr,
                 "service: unrecognized HYMPI_QOS=%s (want fifo|weighted); "
                 "keeping %s\n",
                 e, qos_name(fallback));
    return fallback;
}

double ServiceConfig::weight_of(int tenant) const {
    if (tenant < 0) return 1.0;
    const auto i = static_cast<std::size_t>(tenant);
    return i < weights.size() ? weights[i] : 1.0;
}

double ServiceConfig::total_weight() const {
    double t = 0.0;
    for (int i = 0; i < tenants; ++i) t += weight_of(i);
    return t > 0.0 ? t : 1.0;
}

std::vector<JobSpec> build_schedule(const ServiceConfig& cfg) {
    const int world = cfg.nodes * cfg.ppn;
    std::vector<JobSpec> jobs;
    for (int t = 0; t < cfg.tenants; ++t) {
        if (cfg.only_tenant >= 0 && t != cfg.only_tenant) continue;
        // Per-tenant independent stream: filtering to one tenant (the solo
        // run of the isolation oracle) reproduces its arrivals, members and
        // ops exactly.
        const std::uint64_t base = mix64(
            cfg.seed ^ (static_cast<std::uint64_t>(t + 1) * 0x9e3779b97f4a7c15ULL));
        std::uint64_t k = 0;
        auto draw = [&] { return u01(base + k++); };
        VTime arrival = 0.0;
        for (int j = 0; j < cfg.jobs_per_tenant; ++j) {
            JobSpec job;
            job.tenant = t;
            job.index = j;
            job.seed = mix64(base ^ (0xABCDULL + static_cast<std::uint64_t>(j)));
            // Open-loop arrivals: uniform gaps in [0.25, 1.75) * mean.
            arrival += cfg.mean_gap_us * (0.25 + 1.5 * draw());
            job.arrival = arrival;
            // Wrap-around contiguous member block from a seeded offset:
            // tenants share ranks with high probability, which is what
            // makes them contend for the same outgoing links.
            const int span =
                2 + static_cast<int>(draw() * static_cast<double>(world - 1));
            const int start = static_cast<int>(draw() * world) % world;
            job.members.reserve(static_cast<std::size_t>(std::min(span, world)));
            for (int i = 0; i < std::min(span, world); ++i) {
                job.members.push_back((start + i) % world);
            }
            std::sort(job.members.begin(), job.members.end());
            const bool large = draw() < cfg.large_fraction;
            const std::size_t block = large ? cfg.large_bytes : cfg.small_bytes;
            const bool want_hybrid = draw() < cfg.hybrid_fraction;
            // Regular clusters place ranks node-contiguously (SMP), so the
            // node of world rank r is r / ppn.
            const int first_node = job.members.front() / cfg.ppn;
            const int last_node = job.members.back() / cfg.ppn;
            job.hybrid = want_hybrid && first_node != last_node;
            const int nops =
                cfg.min_ops +
                static_cast<int>(draw() *
                                 static_cast<double>(cfg.max_ops - cfg.min_ops + 1));
            for (int o = 0; o < nops; ++o) {
                OpSpec op;
                switch (static_cast<int>(draw() * 4.0) % 4) {
                    case 0: op.kind = OpKind::Allgather; op.bytes = block; break;
                    case 1:
                        op.kind = OpKind::Allreduce;
                        op.bytes = std::max<std::size_t>(8, block & ~std::size_t{7});
                        break;
                    case 2: op.kind = OpKind::Bcast; op.bytes = block; break;
                    default: op.kind = OpKind::Barrier; op.bytes = 0; break;
                }
                job.ops.push_back(op);
            }
            jobs.push_back(std::move(job));
        }
    }
    // The global execution order every rank walks identically — overlapping
    // member sets process their shared jobs in the same relative order, so
    // the schedule is deadlock-free by construction.
    std::sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
        if (a.arrival != b.arrival) return a.arrival < b.arrival;
        if (a.tenant != b.tenant) return a.tenant < b.tenant;
        return a.index < b.index;
    });
    return jobs;
}

ServiceResult run_service(const ServiceConfig& cfg) {
    const std::vector<JobSpec> schedule = build_schedule(cfg);
    const QosPolicy policy = cfg.use_env ? qos_from_env(cfg.qos) : cfg.qos;
    const double total_w = cfg.total_weight();

    const minimpi::ClusterSpec cs = minimpi::ClusterSpec::regular(cfg.nodes, cfg.ppn);
    const int nranks = cs.total_ranks();
    Runtime rt(cs, cfg.model, cfg.payload);

    std::vector<TenantState> tstates(static_cast<std::size_t>(nranks));
    std::deque<JobSlot> slots(schedule.size());
    for (std::size_t j = 0; j < schedule.size(); ++j) {
        slots[j].finish.assign(schedule[j].members.size(), 0.0);
        slots[j].digest.assign(schedule[j].members.size(), 0);
    }

    rt.run([&](Comm& world) {
        RankCtx& ctx = world.ctx();
        const int w = world.to_world();
        TenantState& ts = tstates[static_cast<std::size_t>(w)];
        ts = TenantState{};
        ts.policy = policy;
        ts.total_weight = total_w;
        ts.bridge_bytes.assign(static_cast<std::size_t>(cfg.tenants), 0);
        ts.bridge_msgs.assign(static_cast<std::size_t>(cfg.tenants), 0);
        ctx.tenant = &ts;
        // Tenant of the last job this rank executed — the owner of the
        // rank's admission backlog.
        int admit_owner = -2;
        for (std::size_t j = 0; j < schedule.size(); ++j) {
            const JobSpec& job = schedule[j];
            const int mpos = member_pos(job.members, w);
            if (mpos < 0) continue;
            // Open loop: the job is offered at its arrival regardless of
            // cluster state; a rank still busy with an earlier job simply
            // starts late and the delay lands in completion latency.
            ctx.clock.sync_to(job.arrival);
            if (ts.policy == QosPolicy::WeightedShares &&
                admit_owner != job.tenant) {
                // Weighted admission arbitration. The clock being past the
                // arrival is the rank's queueing backlog — time spent on
                // OTHER tenants' jobs (collective create/free rendezvous
                // max-sync member clocks past every modelled arrival, so
                // per-link backlog can never survive a job boundary; the
                // admission queue is where tenants genuinely wait on each
                // other). Weighted shares model preemptive arbitration of
                // that queue: the tenant's share of the backlog interval is
                // granted to it, so only the remaining fraction is waited.
                // Same-tenant backlog keeps the full FIFO wait (a tenant
                // cannot preempt its own queue), mirroring the per-send NIC
                // arbiter in minimpi::detail::tenant_bridge_start.
                const VTime backlog = ctx.clock.now() - job.arrival;
                if (backlog > 0.0) {
                    ctx.clock.set(job.arrival +
                                  backlog *
                                      (1.0 - cfg.weight_of(job.tenant) /
                                                 total_w));
                }
            }
            admit_owner = job.tenant;
            ts.tenant = job.tenant;
            ts.weight = cfg.weight_of(job.tenant);
            {
                minimpi::TraceSpan sp(ctx, hytrace::Phase::Coll, "tenant_job");
                sp.set_coll("service_job");
                sp.set_peer(job.tenant);
                sp.set_comm(static_cast<int>(job.members.size()), mpos);
                sp.set_bytes(job.total_bytes());
                Comm jc = join_job_comm(rt, world, job, slots[j], mpos);
                const std::uint64_t digest = run_ops(cfg, jc, job, mpos);
                jc.free();
                slots[j].finish[static_cast<std::size_t>(mpos)] =
                    ctx.clock.now();
                slots[j].digest[static_cast<std::size_t>(mpos)] = digest;
                HYTRACE_COUNTER(ctx, tenant_jobs, 1);
            }
            ts.tenant = -1;
            ts.weight = 1.0;
        }
        ctx.tenant = nullptr;
    });

    ServiceResult res;
    res.qos = policy;
    res.jobs.reserve(schedule.size());
    VTime first_arrival = 0.0, last_finish = 0.0;
    std::vector<std::vector<double>> lat_by_tenant(
        static_cast<std::size_t>(cfg.tenants));
    std::vector<double> lat_all;
    for (std::size_t j = 0; j < schedule.size(); ++j) {
        const JobSpec& job = schedule[j];
        JobResult r;
        r.tenant = job.tenant;
        r.index = job.index;
        r.arrival = job.arrival;
        r.ops = static_cast<int>(job.ops.size());
        std::uint64_t h = 1099511628211ULL;
        for (std::size_t m = 0; m < job.members.size(); ++m) {
            r.finish = std::max(r.finish, slots[j].finish[m]);
            h = mix64(h ^ slots[j].digest[m]);
        }
        r.digest = h;
        r.latency_us = r.finish - r.arrival;
        if (j == 0 || job.arrival < first_arrival) first_arrival = job.arrival;
        last_finish = std::max(last_finish, r.finish);
        lat_by_tenant[static_cast<std::size_t>(job.tenant)].push_back(
            r.latency_us);
        lat_all.push_back(r.latency_us);
        res.total_ops += static_cast<std::uint64_t>(r.ops);
        res.jobs.push_back(r);
    }
    res.total_jobs = static_cast<int>(res.jobs.size());
    res.makespan_us = last_finish - first_arrival;
    res.ops_per_sec = res.makespan_us > 0.0
                          ? static_cast<double>(res.total_ops) * 1e6 /
                                res.makespan_us
                          : 0.0;
    res.p50_us = benchu::percentile(lat_all, 50.0);
    res.p99_us = benchu::percentile(lat_all, 99.0);

    for (int t = 0; t < cfg.tenants; ++t) {
        if (cfg.only_tenant >= 0 && t != cfg.only_tenant) continue;
        TenantMetrics m;
        m.tenant = t;
        m.weight = cfg.weight_of(t);
        const auto& lat = lat_by_tenant[static_cast<std::size_t>(t)];
        m.jobs = static_cast<int>(lat.size());
        double sum = 0.0;
        for (double v : lat) {
            sum += v;
            m.max_us = std::max(m.max_us, v);
        }
        m.mean_us = lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
        m.p50_us = benchu::percentile(lat, 50.0);
        m.p99_us = benchu::percentile(lat, 99.0);
        for (const JobResult& r : res.jobs) {
            if (r.tenant == t) m.ops += static_cast<std::uint64_t>(r.ops);
        }
        for (const TenantState& ts : tstates) {
            m.bridge_bytes += ts.bridge_bytes[static_cast<std::size_t>(t)];
            m.bridge_msgs += ts.bridge_msgs[static_cast<std::size_t>(t)];
        }
        res.tenants.push_back(m);
    }
    return res;
}

std::string verify_isolation(ServiceConfig cfg) {
    cfg.payload = PayloadMode::Real;
    cfg.use_env = false;  // the oracle pins its own policy
    cfg.only_tenant = -1;
    const ServiceResult full = run_service(cfg);
    for (int t = 0; t < cfg.tenants; ++t) {
        ServiceConfig solo = cfg;
        solo.only_tenant = t;
        const ServiceResult alone = run_service(solo);
        std::map<int, const JobResult*> solo_jobs;
        for (const JobResult& r : alone.jobs) solo_jobs[r.index] = &r;
        for (const JobResult& r : full.jobs) {
            if (r.tenant != t) continue;
            const auto it = solo_jobs.find(r.index);
            if (it == solo_jobs.end()) {
                return "tenant " + std::to_string(t) + " job " +
                       std::to_string(r.index) + " missing from its solo run";
            }
            if (it->second->digest != r.digest) {
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "tenant %d job %d payload diverged under "
                              "contention: solo digest %016llx vs "
                              "concurrent %016llx",
                              t, r.index,
                              static_cast<unsigned long long>(
                                  it->second->digest),
                              static_cast<unsigned long long>(r.digest));
                return buf;
            }
        }
    }
    return "";
}

namespace {

void write_num(std::ostream& os, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

}  // namespace

bool ServiceResult::write_json(const std::string& path,
                               const ServiceConfig& cfg) const {
    std::ofstream os(path, std::ios::trunc);
    if (!os) return false;
    os << "{\n  \"service\": {\n"
       << "    \"qos\": \"" << qos_name(qos) << "\",\n"
       << "    \"profile\": \"" << cfg.model.name << "\",\n"
       << "    \"seed\": " << cfg.seed << ",\n"
       << "    \"cluster\": {\"nodes\": " << cfg.nodes
       << ", \"ppn\": " << cfg.ppn << "},\n"
       << "    \"total\": {\"jobs\": " << total_jobs << ", \"ops\": "
       << total_ops << ", \"makespan_us\": ";
    write_num(os, makespan_us);
    os << ", \"ops_per_sec\": ";
    write_num(os, ops_per_sec);
    os << ", \"p50_us\": ";
    write_num(os, p50_us);
    os << ", \"p99_us\": ";
    write_num(os, p99_us);
    os << "},\n    \"tenants\": [\n";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantMetrics& m = tenants[i];
        os << "      {\"tenant\": " << m.tenant << ", \"weight\": ";
        write_num(os, m.weight);
        os << ", \"jobs\": " << m.jobs << ", \"ops\": " << m.ops
           << ", \"mean_us\": ";
        write_num(os, m.mean_us);
        os << ", \"p50_us\": ";
        write_num(os, m.p50_us);
        os << ", \"p99_us\": ";
        write_num(os, m.p99_us);
        os << ", \"max_us\": ";
        write_num(os, m.max_us);
        os << ", \"bridge_bytes\": " << m.bridge_bytes
           << ", \"bridge_msgs\": " << m.bridge_msgs << "}"
           << (i + 1 < tenants.size() ? ",\n" : "\n");
    }
    os << "    ]\n  }\n}\n";
    return os.good();
}

}  // namespace service
