#include "bench_util/table.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace benchu {

Table::Table(std::string x_label, std::vector<std::string> series_labels)
    : x_label_(std::move(x_label)), series_(std::move(series_labels)) {}

void Table::add_row(double x, const std::vector<double>& values) {
    if (values.size() != series_.size()) {
        throw std::invalid_argument("Table row arity mismatch");
    }
    rows_.emplace_back(x, values);
}

void Table::print(const std::string& title) const {
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%14s", x_label_.c_str());
    for (const auto& s : series_) std::printf("  %18s", s.c_str());
    std::printf("\n");
    for (const auto& [x, vals] : rows_) {
        if (x == static_cast<double>(static_cast<long long>(x))) {
            std::printf("%14lld", static_cast<long long>(x));
        } else {
            std::printf("%14.3f", x);
        }
        for (double v : vals) {
            if (std::isnan(v)) {
                std::printf("  %18s", "-");
            } else {
                std::printf("  %18.2f", v);
            }
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

}  // namespace benchu
