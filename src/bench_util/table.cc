#include "bench_util/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace benchu {

Table::Table(std::string x_label, std::vector<std::string> series_labels)
    : x_label_(std::move(x_label)), series_(std::move(series_labels)) {}

void Table::add_row(double x, const std::vector<double>& values) {
    if (values.size() != series_.size()) {
        throw std::invalid_argument("Table row arity mismatch");
    }
    rows_.emplace_back(x, values);
    chunks_.emplace_back();
}

void Table::set_row_chunks(const std::vector<double>& chunks) {
    if (rows_.empty()) {
        throw std::logic_error("Table::set_row_chunks before any add_row");
    }
    if (chunks.size() != series_.size()) {
        throw std::invalid_argument("Table chunk-row arity mismatch");
    }
    chunks_.back() = chunks;
}

void Table::print(const std::string& title) const {
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%14s", x_label_.c_str());
    for (const auto& s : series_) std::printf("  %18s", s.c_str());
    std::printf("\n");
    for (const auto& [x, vals] : rows_) {
        if (x == static_cast<double>(static_cast<long long>(x))) {
            std::printf("%14lld", static_cast<long long>(x));
        } else {
            std::printf("%14.3f", x);
        }
        for (double v : vals) {
            if (std::isnan(v)) {
                std::printf("  %18s", "-");
            } else {
                std::printf("  %18.2f", v);
            }
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void write_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_number(std::ostream& os, double v) {
    if (std::isnan(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

}  // namespace

void Table::set_meta(const std::string& key, const std::string& value) {
    for (auto& [k, v] : meta_) {
        if (k == key) {
            v = value;
            return;
        }
    }
    meta_.emplace_back(key, value);
}

bool Table::write_json(const std::string& path,
                       const std::string& title) const {
    std::ofstream os(path, std::ios::trunc);
    if (!os) return false;
    os << "{\n  \"title\": ";
    write_escaped(os, title);
    os << ",\n  \"meta\": {\"git\": ";
    // A shallow clone or exported tree can leave `git describe` empty at
    // configure time even when the macro is defined; archived artifacts
    // must still carry a parseable, non-empty description.
#ifdef HYMPI_GIT_DESCRIBE
    {
        const char* desc = HYMPI_GIT_DESCRIBE;
        write_escaped(os, (desc != nullptr && desc[0] != '\0') ? desc
                                                               : "unknown");
    }
#else
    write_escaped(os, "unknown");
#endif
    for (const auto& [k, v] : meta_) {
        os << ", ";
        write_escaped(os, k);
        os << ": ";
        write_escaped(os, v);
    }
    os << "},\n  \"x_label\": ";
    write_escaped(os, x_label_);
    os << ",\n  \"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        if (i) os << ", ";
        write_escaped(os, series_[i]);
    }
    os << "],\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << "    {\"x\": ";
        write_number(os, rows_[r].first);
        os << ", \"values\": [";
        const auto& vals = rows_[r].second;
        for (std::size_t i = 0; i < vals.size(); ++i) {
            if (i) os << ", ";
            write_number(os, vals[i]);
        }
        os << ']';
        if (!chunks_[r].empty()) {
            os << ", \"chunks\": [";
            for (std::size_t i = 0; i < chunks_[r].size(); ++i) {
                if (i) os << ", ";
                write_number(os, chunks_[r][i]);
            }
            os << ']';
        }
        os << "}" << (r + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.good();
}

}  // namespace benchu
