#include "bench_util/latency.h"

#include <algorithm>
#include <cmath>

namespace benchu {

void Collector::add(double us) {
    std::lock_guard<std::mutex> lock(mu_);
    max_us_ = std::max(max_us_, us);
    sum_us_ += us;
    ++n_;
}

void Collector::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    max_us_ = 0.0;
    sum_us_ = 0.0;
    n_ = 0;
}

double osu_latency(minimpi::Runtime& rt, int warmup, int iters,
                   const std::function<std::function<void()>(minimpi::Comm&)>&
                       setup) {
    Collector col;
    rt.run([&](minimpi::Comm& world) {
        auto op = setup(world);
        for (int i = 0; i < warmup; ++i) op();
        minimpi::barrier(world);
        const minimpi::VTime t0 = world.ctx().clock.now();
        for (int i = 0; i < iters; ++i) op();
        const minimpi::VTime t1 = world.ctx().clock.now();
        col.add((t1 - t0) / static_cast<double>(iters));
    });
    return col.max_us();
}

std::vector<std::size_t> pow2_series(int lo, int hi) {
    std::vector<std::size_t> v;
    for (int e = lo; e <= hi; ++e) v.push_back(std::size_t{1} << e);
    return v;
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    if (p <= 0.0) return xs.front();
    const double rank = std::ceil(p / 100.0 * static_cast<double>(xs.size()));
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    idx = std::min(idx, xs.size() - 1);
    return xs[idx];
}

}  // namespace benchu
