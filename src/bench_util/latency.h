#pragma once

#include <functional>
#include <mutex>

#include "minimpi/minimpi.h"

namespace benchu {

/// Host-side (virtual-time-free) statistics collector: rank threads add
/// their locally measured latencies; the bench main reads the reduction.
/// Lives outside the MPI semantics on purpose — collecting measurements
/// must not perturb the modelled time.
class Collector {
public:
    void add(double us);

    double max_us() const { return max_us_; }
    double avg_us() const { return n_ ? sum_us_ / static_cast<double>(n_) : 0.0; }
    int samples() const { return n_; }

    void reset();

private:
    mutable std::mutex mu_;
    double max_us_ = 0.0;
    double sum_us_ = 0.0;
    int n_ = 0;
};

/// OSU-style latency measurement of a collective operation on virtual time:
/// each rank builds its one-off state with @p setup (channels, buffers,
/// hierarchy — excluded from the measurement, as the paper excludes
/// one-offs), runs @p warmup untimed iterations, synchronizes, then times
/// @p iters iterations of the returned op. The reported figure is the
/// maximum per-iteration virtual latency over all ranks (the collective's
/// completion time).
///
/// @p setup: Comm& -> std::function<void()>   (the repeated operation)
double osu_latency(minimpi::Runtime& rt, int warmup, int iters,
                   const std::function<std::function<void()>(minimpi::Comm&)>&
                       setup);

/// Geometric series 2^lo .. 2^hi (inclusive), as the paper's x-axes.
std::vector<std::size_t> pow2_series(int lo, int hi);

/// Nearest-rank percentile of @p xs (@p p in [0, 100]): the smallest sample
/// whose cumulative rank reaches ceil(p/100 * n). Exact sample values only
/// — no interpolation — so percentile figures over deterministic virtual
/// latencies stay byte-stable. 0 on an empty sample; p=0 is the minimum,
/// p=100 the maximum. Takes a copy: sorting is the helper's business.
double percentile(std::vector<double> xs, double p);

}  // namespace benchu
