#pragma once

#include <string>
#include <vector>

namespace benchu {

/// Paper-style results table: a labelled x column plus one column per
/// series, printed with aligned fixed-width columns. Each figure bench
/// prints one or more of these — the rows/series the paper's plots report.
class Table {
public:
    Table(std::string x_label, std::vector<std::string> series_labels);

    /// Append a row: x value plus one measurement per series (NaN allowed
    /// for "not measured").
    void add_row(double x, const std::vector<double>& values);

    /// Convenience for ratio columns computed from two existing series.
    void print(const std::string& title) const;

    /// Machine-readable form for CI artifacts:
    ///   {"title": ..., "x_label": ..., "series": [...],
    ///    "rows": [{"x": v, "values": [...]}, ...]}
    /// NaN ("not measured") serializes as null. Returns false when the
    /// file cannot be written.
    bool write_json(const std::string& path, const std::string& title) const;

private:
    std::string x_label_;
    std::vector<std::string> series_;
    std::vector<std::pair<double, std::vector<double>>> rows_;
};

}  // namespace benchu
