#pragma once

#include <string>
#include <vector>

namespace benchu {

/// Paper-style results table: a labelled x column plus one column per
/// series, printed with aligned fixed-width columns. Each figure bench
/// prints one or more of these — the rows/series the paper's plots report.
class Table {
public:
    Table(std::string x_label, std::vector<std::string> series_labels);

    /// Append a row: x value plus one measurement per series (NaN allowed
    /// for "not measured").
    void add_row(double x, const std::vector<double>& values);

    /// Attach per-series pipeline chunk counts to the most recently added
    /// row (NaN = not chunked / not measured). Serialized as an optional
    /// "chunks" array next to the row's "values"; regression diffs report
    /// chunk-count changes as INFO, never failures, so attaching counts
    /// cannot invalidate old baselines. Throws when no row exists or the
    /// arity does not match the series.
    void set_row_chunks(const std::vector<double>& chunks);

    /// Convenience for ratio columns computed from two existing series.
    void print(const std::string& title) const;

    /// Attach a provenance key to the JSON header (profile name, cluster
    /// shape, ...). Last write per key wins.
    void set_meta(const std::string& key, const std::string& value);

    /// Machine-readable form for CI artifacts:
    ///   {"title": ..., "meta": {"git": ..., ...}, "x_label": ...,
    ///    "series": [...], "rows": [{"x": v, "values": [...]}, ...]}
    /// "meta" always carries the build's git describe string plus any
    /// set_meta entries; regression diffs compare rows only, so adding
    /// meta keys never invalidates old baselines. NaN ("not measured")
    /// serializes as null. Returns false when the file cannot be written.
    bool write_json(const std::string& path, const std::string& title) const;

private:
    std::string x_label_;
    std::vector<std::string> series_;
    std::vector<std::pair<double, std::vector<double>>> rows_;
    /// Parallel to rows_; an empty inner vector means "no chunk counts".
    std::vector<std::vector<double>> chunks_;
    std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace benchu
