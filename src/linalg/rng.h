#pragma once

#include <cstdint>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace linalg {

/// xoshiro256++ PRNG with splitmix64 seeding. Self-contained so results are
/// bit-identical across standard libraries and platforms — the BPMF
/// reproducibility tests (Ori vs Hy give the same samples) rely on it.
class Rng {
public:
    explicit Rng(std::uint64_t seed);

    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double uniform();

    /// Standard normal (Marsaglia polar method; deterministic).
    double normal();

    /// Gamma(shape, scale) via Marsaglia-Tsang (shape >= 0.01).
    double gamma(double shape, double scale);

    /// Chi-squared with @p k degrees of freedom.
    double chi_squared(double k) { return gamma(k / 2.0, 2.0); }

private:
    std::uint64_t s_[4];
    bool has_spare_ = false;
    double spare_ = 0.0;
};

/// Derive an independent stream deterministically from (seed, a, b, c) —
/// used to give every (iteration, item) its own stream so sampled values do
/// not depend on how items are distributed over ranks.
Rng substream(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
              std::uint64_t c);

/// Draw x ~ N(mu, Sigma) given the LOWER Cholesky factor L of the
/// PRECISION matrix (Sigma = (L L^T)^{-1}): x = mu + L^{-T} z.
std::vector<double> mvnormal_from_precision_chol(Rng& rng,
                                                 std::span<const double> mu,
                                                 const Matrix& l);

/// Draw W ~ Wishart(df, S) via the Bartlett decomposition, where @p ls is
/// the lower Cholesky factor of the scale matrix S.
Matrix wishart(Rng& rng, double df, const Matrix& ls);

}  // namespace linalg
