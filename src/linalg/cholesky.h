#pragma once

#include "linalg/matrix.h"

namespace linalg {

/// Lower-triangular Cholesky factor L of a symmetric positive-definite A
/// (A = L * L^T). Throws std::domain_error if A is not (numerically) SPD.
Matrix cholesky(const Matrix& a);

/// Solve L * y = b with L lower triangular (forward substitution).
std::vector<double> solve_lower(const Matrix& l, std::span<const double> b);

/// Solve L^T * x = y with L lower triangular (back substitution).
std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y);

/// Solve A * x = b for SPD A via its Cholesky factor.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

}  // namespace linalg
