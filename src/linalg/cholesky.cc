#include "linalg/cholesky.h"

#include <cmath>
#include <stdexcept>

namespace linalg {

Matrix cholesky(const Matrix& a) {
    const std::size_t n = a.rows();
    if (a.cols() != n) throw std::invalid_argument("cholesky: not square");
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double d = a(j, j);
        for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
        if (d <= 0.0 || !std::isfinite(d)) {
            throw std::domain_error("cholesky: matrix not positive definite");
        }
        l(j, j) = std::sqrt(d);
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
            l(i, j) = s / l(j, j);
        }
    }
    return l;
}

std::vector<double> solve_lower(const Matrix& l, std::span<const double> b) {
    const std::size_t n = l.rows();
    if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
        y[i] = s / l(i, i);
    }
    return y;
}

std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y) {
    const std::size_t n = l.rows();
    if (y.size() != n) {
        throw std::invalid_argument("solve_lower_transposed: size mismatch");
    }
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
        x[ii] = s / l(ii, ii);
    }
    return x;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
    const Matrix l = cholesky(a);
    return solve_lower_transposed(l, solve_lower(l, b));
}

}  // namespace linalg
