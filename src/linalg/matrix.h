#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// Minimal dense linear algebra used by the application kernels (the
/// paper's BPMF depends on Eigen; DESIGN.md documents the substitution).
/// Everything is double precision, row-major.
namespace linalg {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    std::span<double> row(std::size_t r) {
        return {data_.data() + r * cols_, cols_};
    }
    std::span<const double> row(std::size_t r) const {
        return {data_.data() + r * cols_, cols_};
    }

    void fill(double v) { data_.assign(data_.size(), v); }

    /// Frobenius-norm distance to @p other (for tests).
    double distance(const Matrix& other) const;

    static Matrix identity(std::size_t n);

    bool operator==(const Matrix& other) const = default;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// C += A * B (dimensions must agree: A r x k, B k x c, C r x c).
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C += alpha * A * B on raw row-major buffers (used by SUMMA's block
/// kernel, which works on shared-window memory rather than Matrix objects).
void gemm_raw(const double* a, const double* b, double* c, std::size_t n,
              std::size_t k, std::size_t m, double alpha = 1.0);

/// y = A * x.
std::vector<double> gemv(const Matrix& a, std::span<const double> x);

/// A += alpha * x * x^T (symmetric rank-1 update; A must be n x n).
void syr_acc(Matrix& a, std::span<const double> x, double alpha = 1.0);

double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace linalg
