#include "linalg/rng.h"

#include <cmath>
#include <stdexcept>

namespace linalg {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
}

double Rng::gamma(double shape, double scale) {
    if (shape < 0.01 || scale <= 0.0) {
        throw std::invalid_argument("gamma: invalid parameters");
    }
    if (shape < 1.0) {
        // Boost to shape+1 and scale back (Marsaglia-Tsang section 4).
        const double u = uniform();
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v * scale;
        }
    }
}

Rng substream(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) {
    std::uint64_t x = seed;
    x ^= splitmix64(a) + 0x9E3779B97F4A7C15ULL;
    std::uint64_t y = x;
    y ^= splitmix64(b);
    std::uint64_t z = y;
    z ^= splitmix64(c);
    return Rng(splitmix64(z));
}

std::vector<double> mvnormal_from_precision_chol(Rng& rng,
                                                 std::span<const double> mu,
                                                 const Matrix& l) {
    const std::size_t n = mu.size();
    std::vector<double> z(n);
    for (auto& v : z) v = rng.normal();
    std::vector<double> x = solve_lower_transposed(l, z);
    for (std::size_t i = 0; i < n; ++i) x[i] += mu[i];
    return x;
}

Matrix wishart(Rng& rng, double df, const Matrix& ls) {
    const std::size_t n = ls.rows();
    // Bartlett: A lower-triangular with sqrt(chi2(df - i)) on the diagonal
    // and standard normals below; W = (Ls A)(Ls A)^T.
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = std::sqrt(rng.chi_squared(df - static_cast<double>(i)));
        for (std::size_t j = 0; j < i; ++j) a(i, j) = rng.normal();
    }
    // B = Ls * A (both lower triangular).
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = 0.0;
            for (std::size_t k = j; k <= i; ++k) s += ls(i, k) * a(k, j);
            b(i, j) = s;
        }
    }
    // W = B * B^T.
    Matrix w(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0.0;
            const std::size_t kmax = std::min(i, j);
            for (std::size_t k = 0; k <= kmax; ++k) s += b(i, k) * b(j, k);
            w(i, j) = s;
        }
    }
    return w;
}

}  // namespace linalg
