#include "linalg/matrix.h"

#include <cmath>
#include <stdexcept>

namespace linalg {

double Matrix::distance(const Matrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) {
        throw std::invalid_argument("distance: shape mismatch");
    }
    double s = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const double d = data_[i] - other.data_[i];
        s += d * d;
    }
    return std::sqrt(s);
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

void gemm_raw(const double* a, const double* b, double* c, std::size_t n,
              std::size_t k, std::size_t m, double alpha) {
    // i-k-j loop order: unit-stride inner loop over both B and C.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t l = 0; l < k; ++l) {
            const double av = alpha * a[i * k + l];
            const double* brow = b + l * m;
            double* crow = c + i * m;
            for (std::size_t j = 0; j < m; ++j) {
                crow[j] += av * brow[j];
            }
        }
    }
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
    if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
        throw std::invalid_argument("gemm: shape mismatch");
    }
    gemm_raw(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
}

Matrix gemm(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    gemm_acc(a, b, c);
    return c;
}

std::vector<double> gemv(const Matrix& a, std::span<const double> x) {
    if (a.cols() != x.size()) throw std::invalid_argument("gemv: shape mismatch");
    std::vector<double> y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        y[i] = dot(a.row(i), x);
    }
    return y;
}

void syr_acc(Matrix& a, std::span<const double> x, double alpha) {
    if (a.rows() != x.size() || a.cols() != x.size()) {
        throw std::invalid_argument("syr: shape mismatch");
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
        for (std::size_t j = 0; j < x.size(); ++j) {
            a(i, j) += alpha * x[i] * x[j];
        }
    }
}

double dot(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
    if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace linalg
