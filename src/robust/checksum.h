#pragma once

#include <cstddef>
#include <cstdint>

namespace hympi::robust {

/// FNV-1a 64-bit over a byte range. Self-contained and platform-stable so
/// frame checksums replay identically everywhere (same property the fault
/// plan's splitmix64 stream relies on).
inline std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Frame checksum: the payload sum bound to the header's gen and length
/// fields. Binding the header means a corrupted gen/bytes byte fails
/// verification (and is NACKed) instead of masquerading as a stale frame —
/// a stale classification is only trusted when the whole frame proves
/// self-consistent. The attempt counter is deliberately excluded so
/// retransmissions need not re-checksum.
inline std::uint64_t frame_checksum(const void* payload, std::size_t n,
                                    std::uint64_t gen, std::uint64_t bytes) {
    std::uint64_t h = fnv1a64(payload, n);
    h = (h ^ gen) * 0x100000001b3ULL;
    h = (h ^ bytes) * 0x100000001b3ULL;
    return h;
}

/// splitmix64 — deterministic jitter stream for retry backoff.
inline std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace hympi::robust
