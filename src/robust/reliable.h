#pragma once

#include <cstddef>
#include <cstdint>

#include "minimpi/comm.h"
#include "robust/config.h"
#include "robust/stats.h"

namespace hympi::robust {

// ---------------------------------------------------------------------------
// Tag encoding (all robust traffic lives in the 0xC0000-0xFFFFF tag range,
// well below minimpi::kTagUpperBound = 1<<20):
//
//   bits  0-11  op/base tag (which collective + round)
//   bits 12-13  frame kind: 0 = DATA, 1 = ACK, 2 = NACK, 3 = FAIL
//   bits 14-15  robust marker '11' (0xC000)
//   bits 16-19  low nibble of the transfer generation
//
// Carrying kind and generation in the TAG (not only the payload header)
// matters in SizeOnly payload mode, where frame bodies are not delivered:
// control decisions and stale-duplicate filtering still work on envelopes
// alone. DATA frames additionally carry a full header (magic, 64-bit
// generation, attempt, checksum) verified in Real mode.
// ---------------------------------------------------------------------------

inline constexpr int kOpAllgather = 0x000;  ///< + bridge round index
inline constexpr int kOpBcast = 0x100;
inline constexpr int kOpAllreduce = 0x200;  ///< + ring round index
inline constexpr int kOpReduce = 0x300;
inline constexpr int kOpGather = 0x400;
inline constexpr int kOpScatter = 0x500;
inline constexpr int kOpAlltoall = 0x600;  ///< + pairwise round index
inline constexpr int kOpAgree = 0x700;

enum class FrameKind : int { Data = 0, Ack = 1, Nack = 2, Fail = 3 };

inline int make_tag(int op_tag, FrameKind kind, std::uint64_t gen) {
    return 0xC000 | (op_tag & 0xFFF) | (static_cast<int>(kind) << 12) |
           (static_cast<int>(gen & 0xF) << 16);
}
inline FrameKind kind_of_tag(int tag) {
    return static_cast<FrameKind>((tag >> 12) & 0x3);
}
inline int op_of_tag(int tag) { return tag & 0xFFF; }
inline int gen_nibble_of_tag(int tag) { return (tag >> 16) & 0xF; }

/// Header prepended to every DATA frame (integrity guard of the tentpole):
/// magic + full generation stamp detect stale frames, the checksum detects
/// in-flight corruption of the partition payload.
struct FrameHeader {
    std::uint64_t magic = 0;
    std::uint64_t gen = 0;
    std::uint32_t attempt = 0;
    std::uint32_t reserved = 0;
    std::uint64_t checksum = 0;
    std::uint64_t bytes = 0;
};
inline constexpr std::uint64_t kFrameMagic = 0x48594D5046524D31ULL;  // "HYMPFRM1"

/// One reliable transfer: send @p sbytes to @p dest and/or receive
/// @p rbytes from @p src (pass minimpi::kProcNull to disable a direction),
/// with bounded NACK/retransmit recovery. Both directions progress
/// concurrently — a full-duplex exchange where every rank's initial DATA
/// frame is dropped still converges, because each side serves incoming
/// frames while waiting for its own acknowledgement.
///
/// Returns true when every enabled direction completed cleanly; false when
/// the retry budget was exhausted (the caller consults agree_failure and
/// takes the degradation ladder). Counters are recorded both in @p st (the
/// channel's) and in the rank aggregate (RankCtx::robust_stats).
bool reliable_xfer(const minimpi::Comm& comm, const void* sbuf,
                   std::size_t sbytes, int dest, void* rbuf,
                   std::size_t rbytes, int src, int op_tag, std::uint64_t gen,
                   const RobustConfig& cfg, RobustStats& st);

inline bool reliable_send(const minimpi::Comm& comm, const void* buf,
                          std::size_t bytes, int dest, int op_tag,
                          std::uint64_t gen, const RobustConfig& cfg,
                          RobustStats& st) {
    return reliable_xfer(comm, buf, bytes, dest, nullptr, 0,
                         minimpi::kProcNull, op_tag, gen, cfg, st);
}
inline bool reliable_recv(const minimpi::Comm& comm, void* buf,
                          std::size_t bytes, int src, int op_tag,
                          std::uint64_t gen, const RobustConfig& cfg,
                          RobustStats& st) {
    return reliable_xfer(comm, nullptr, 0, minimpi::kProcNull, buf, bytes,
                         src, op_tag, gen, cfg, st);
}

/// Agreement on failure across @p comm (typically the bridge): returns the
/// OR of every rank's @p my_fail bit, computed with a deterministic linear
/// gather + broadcast of zero-byte control frames on the reliable side
/// channel. All ranks observe the same verdict, so the degradation ladder
/// flips consistently everywhere or nowhere.
bool agree_failure(const minimpi::Comm& comm, bool my_fail, std::uint64_t gen,
                   const RobustConfig& cfg, RobustStats& st);

/// Allocate this rank's next robust channel uid (per-rank program-order
/// counter, identical across ranks that construct channels collectively).
/// Generation stamps are (uid << 32) | epoch.
std::uint64_t alloc_channel_uid(const minimpi::Comm& comm);

// ---------------------------------------------------------------------------
// Chunked-pipeline generation stamps.
//
// A pipelined round derives per-chunk stamps from the round's base
// generation as  base + ((chunk + 1) << 20)  so a duplicated frame of chunk
// i can never be accepted as chunk j. The scheme is collision-free only
// within static bounds: the base generation is (uid << 32) | epoch with the
// epoch counter in bits [0, 32), and the chunk offsets occupy bits
// [20, 32). Once a channel's epoch reaches 2^20, a later round's BASE stamp
// would alias an earlier round's chunk stamp (base' = base + k·2^20 for
// some chunk k) and a stale retransmitted frame could be accepted as fresh
// data. Likewise a chunk index of 2^12 or more would carry past bit 31 into
// the uid field. chunked_gen() enforces both bounds with a typed error —
// at one epoch per pipelined round, 2^20 rounds per channel, the bound is
// unreachable in practice; the check turns a silent integrity loss into a
// loud failure.
// ---------------------------------------------------------------------------

/// Exclusive bound on a chunked round's base epoch (low 32 bits of gen).
inline constexpr std::uint64_t kMaxChunkedEpoch = 1ULL << 20;
/// Exclusive bound on (chunk index + 1).
inline constexpr std::uint64_t kMaxChunkOffset = 1ULL << 12;

/// A chunked round's generation stamp left its collision-free envelope.
class GenerationOverflowError : public minimpi::MpiError {
public:
    GenerationOverflowError(std::uint64_t base, std::uint64_t chunk)
        : MpiError("chunked generation stamp overflow: base gen " +
                   std::to_string(base) + " (epoch " +
                   std::to_string(base & 0xFFFFFFFFULL) + ") chunk " +
                   std::to_string(chunk) +
                   " exceeds the collision-free bounds (epoch < 2^20, "
                   "chunk < 2^12 - 1)") {}
};

/// Stamp for chunk @p chunk (0-based) of a pipelined round whose base
/// generation is @p base. Throws GenerationOverflowError outside the
/// documented bounds.
inline std::uint64_t chunked_gen(std::uint64_t base, std::uint64_t chunk) {
    if ((base & 0xFFFFFFFFULL) >= kMaxChunkedEpoch ||
        chunk + 1 >= kMaxChunkOffset) {
        throw GenerationOverflowError(base, chunk);
    }
    return base + ((chunk + 1) << 20);
}

}  // namespace hympi::robust
