#include "robust/reliable.h"

#include <cstring>
#include <vector>

#include "minimpi/context.h"
#include "minimpi/p2p.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"
#include "minimpi/transport.h"
#include "robust/checksum.h"

namespace hympi::robust {

namespace {

using minimpi::Comm;
using minimpi::PostedRecv;
using minimpi::RankCtx;
using minimpi::VTime;

void send_ctrl(const Comm& comm, int peer, int op_tag, FrameKind kind,
               std::uint64_t gen) {
    minimpi::detail::send_frame(comm, nullptr, 0, peer,
                                make_tag(op_tag, kind, gen),
                                minimpi::kRobustCtrlCtx, false);
}

/// Deterministic jittered exponential backoff for the @p attempt-th
/// retransmission: base * 2^(attempt-2) * [0.5, 1.5). Charged in virtual
/// time only — a pure function of (gen, attempt, rank), so identical runs
/// back off identically and the vtime/determinism tests hold under faults.
VTime backoff_us(const RobustConfig& cfg, std::uint64_t gen, int attempt,
                 int world_rank) {
    const std::uint64_t h =
        mix64(gen ^ mix64((static_cast<std::uint64_t>(attempt) << 32) |
                          static_cast<std::uint32_t>(world_rank)));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    double b = cfg.backoff_base_us;
    for (int i = 2; i < attempt; ++i) b *= 2.0;
    return b * (0.5 + u);
}

}  // namespace

std::uint64_t alloc_channel_uid(const minimpi::Comm& comm) {
    return comm.ctx().robust_chan_seq++;
}

bool reliable_xfer(const minimpi::Comm& comm, const void* sbuf,
                   std::size_t sbytes, int dest, void* rbuf,
                   std::size_t rbytes, int src, int op_tag, std::uint64_t gen,
                   const RobustConfig& cfg, RobustStats& st) {
    RankCtx& ctx = comm.ctx();
    minimpi::Transport& tp = ctx.runtime->transport();
    RobustStats& agg = ctx.robust_stats;
    const bool real = ctx.payload_mode == minimpi::PayloadMode::Real;
    const int data_tag = make_tag(op_tag, FrameKind::Data, gen);
    // A receiver NACKs at most retry_max times before FAILing, so stale
    // frames per transfer are bounded; the cap only guards exotic schedules.
    const int stale_cap = cfg.retry_max * 4 + 4;

    // --- sending direction -------------------------------------------------
    const bool sending = dest != minimpi::kProcNull;
    bool send_done = !sending;
    bool send_ok = true;
    int attempt = 1;
    std::vector<std::byte> sframe;
    PostedRecv ctrl_pr;
    if (sending) {
        sframe.resize(sizeof(FrameHeader) + sbytes);
        FrameHeader h;
        h.magic = kFrameMagic;
        h.gen = gen;
        h.attempt = 1;
        h.bytes = sbytes;
        std::memcpy(sframe.data(), &h, sizeof(h));
        ctx.copy_bytes(sframe.data() + sizeof(h), sbuf, sbytes);
        if (cfg.checksums) {
            // Checksum scan cost, charged in both payload modes so Real and
            // SizeOnly timings agree under drop/dup plans. The sum is taken
            // over the FRAME payload (not sbuf) so it agrees with the
            // receiver's verification for zero-byte and null contributions
            // (a zero-byte buffer has a null base but a well-defined sum).
            ctx.charge_memcpy(sbytes);
            if (real) {
                h.checksum = frame_checksum(sframe.data() + sizeof(h), sbytes,
                                            h.gen, h.bytes);
                std::memcpy(sframe.data(), &h, sizeof(h));
            }
        }
        minimpi::detail::send_frame(comm, sframe.data(), sframe.size(), dest,
                                    data_tag, comm.state().ctx_coll, true);
        minimpi::detail::post_frame_recv(comm, &ctrl_pr, nullptr, 0, dest,
                                         minimpi::kAnyTag,
                                         minimpi::kRobustCtrlCtx);
    }

    // --- receiving direction -----------------------------------------------
    const bool receiving = src != minimpi::kProcNull;
    bool recv_done = !receiving;
    bool recv_ok = true;
    int nacks = 0;
    int stale_data = 0;
    int stale_ctrl = 0;
    std::vector<std::byte> rframe;
    PostedRecv data_pr;
    if (receiving) {
        rframe.resize(sizeof(FrameHeader) + rbytes);
        minimpi::detail::post_frame_recv(comm, &data_pr, rframe.data(),
                                         rframe.size(), src, data_tag,
                                         comm.state().ctx_coll);
    }

    // Full-duplex progress loop: serve whichever side completes first. This
    // is what makes a symmetric exchange converge even when every rank's
    // initial DATA frame is dropped — each side keeps serving its peer's
    // retransmissions while waiting for its own acknowledgement.
    //
    // Determinism: wait_any_recv wakes on whichever message was PHYSICALLY
    // delivered first — a wall-clock race. To keep virtual time a pure
    // function of the fault plan, the two directions are tracked on
    // independent sub-clocks (t_recv / t_send) and merged with max() at the
    // end: every serve reads/charges only its own direction's clock, so the
    // final clock, the counters and every outgoing frame's timestamp are
    // invariant under the physical service order. (The transfer's event
    // chains — my DATA -> peer's ctrl responses, peer's DATA -> my
    // responses — are causally disjoint, which is what makes the split
    // exact, not an approximation.)
    VTime t_send = ctx.clock.now();
    VTime t_recv = t_send;
    while (!send_done || !recv_done) {
        PostedRecv* prs[2];
        std::size_t n = 0;
        if (!recv_done) prs[n++] = &data_pr;
        if (!send_done) prs[n++] = &ctrl_pr;
        // Comm-aware interrupt: once the receive direction is done only the
        // control receive (kRobustCtrlCtx — never revoked, peer alive) is
        // pending, and a peer that left for recovery will never serve it.
        // The predicate watches the owning comm's failure state; false on
        // every fault-free and payload-fault run, where this is exactly
        // wait_any_recv.
        const std::size_t hit = tp.wait_any_recv_intr(
            ctx.world_rank, std::span<PostedRecv* const>(prs, n),
            [&] { return minimpi::detail::comm_interrupted(comm.state()); });
        if (hit == SIZE_MAX) {
            ctx.clock.set(std::max(t_send, t_recv));
            minimpi::detail::throw_comm_interrupt(comm.state(), ctx);
        }

        const bool serving_data = prs[hit] == &data_pr;
        ctx.clock.set(serving_data ? t_recv : t_send);
        if (serving_data) {
            const auto r = minimpi::detail::finish_frame_recv(comm, data_pr);
            bool bad = false;
            bool stale = false;
            if (r.dropped) {
                // Watchdog: the loss surfaces as a typed timeout here, and
                // the detection deadline is charged in virtual time.
                st.timeouts += 1;
                agg.timeouts += 1;
                minimpi::trace_instant(ctx, hytrace::Phase::Robust, "timeout");
                ctx.clock.advance(cfg.watchdog_us);
                bad = true;
            } else {
                if (cfg.checksums) ctx.charge_memcpy(rbytes);
                if (r.bytes != rframe.size()) bad = true;
                if (!bad && real) {
                    FrameHeader h;
                    std::memcpy(&h, rframe.data(), sizeof(h));
                    // The gen check comes LAST, and the checksum binds the
                    // header's gen/bytes fields (verified against the values
                    // AS RECEIVED): only a frame that proves self-consistent
                    // may be classified as a stale duplicate and silently
                    // discarded. A corrupted gen byte on a live frame fails
                    // verification and is NACKed instead — discarding it
                    // would leave the sender waiting for an acknowledgement
                    // that never comes (mutual deadlock).
                    if (h.magic != kFrameMagic) {
                        bad = true;
                    } else if (h.bytes != rbytes) {
                        bad = true;
                    } else if (cfg.checksums &&
                               h.checksum !=
                                   frame_checksum(rframe.data() + sizeof(h),
                                                  rbytes, h.gen, h.bytes)) {
                        bad = true;
                    } else if (h.gen != gen) {
                        stale = true;  // intact duplicate from an earlier epoch
                    }
                }
                if (bad) {
                    st.checksum_failures += 1;
                    agg.checksum_failures += 1;
                }
            }
            if (stale) {
                st.stale_discards += 1;
                agg.stale_discards += 1;
                if (++stale_data > stale_cap) {
                    send_ctrl(comm, src, op_tag, FrameKind::Fail, gen);
                    recv_done = true;
                    recv_ok = false;
                } else {
                    minimpi::detail::post_frame_recv(comm, &data_pr,
                                                     rframe.data(),
                                                     rframe.size(), src,
                                                     data_tag,
                                                     comm.state().ctx_coll);
                }
            } else if (bad) {
                if (nacks >= cfg.retry_max) {
                    send_ctrl(comm, src, op_tag, FrameKind::Fail, gen);
                    recv_done = true;
                    recv_ok = false;
                } else {
                    ++nacks;
                    send_ctrl(comm, src, op_tag, FrameKind::Nack, gen);
                    minimpi::detail::post_frame_recv(comm, &data_pr,
                                                     rframe.data(),
                                                     rframe.size(), src,
                                                     data_tag,
                                                     comm.state().ctx_coll);
                }
            } else {
                ctx.copy_bytes(rbuf, rframe.data() + sizeof(FrameHeader),
                               rbytes);
                send_ctrl(comm, src, op_tag, FrameKind::Ack, gen);
                recv_done = true;
                recv_ok = true;
                if (nacks > 0) {
                    st.recoveries += 1;
                    agg.recoveries += 1;
                }
            }
        } else {
            const auto r = minimpi::detail::finish_frame_recv(comm, ctrl_pr);
            const FrameKind k = kind_of_tag(r.tag);
            if (op_of_tag(r.tag) != (op_tag & 0xFFF) ||
                gen_nibble_of_tag(r.tag) != static_cast<int>(gen & 0xF)) {
                st.stale_discards += 1;
                agg.stale_discards += 1;
                if (++stale_ctrl > stale_cap) {
                    send_done = true;
                    send_ok = false;
                } else {
                    minimpi::detail::post_frame_recv(
                        comm, &ctrl_pr, nullptr, 0, dest, minimpi::kAnyTag,
                        minimpi::kRobustCtrlCtx);
                }
            } else if (k == FrameKind::Ack) {
                send_done = true;
                send_ok = true;
                if (attempt > 1) {
                    st.recoveries += 1;
                    agg.recoveries += 1;
                }
            } else if (k == FrameKind::Fail) {
                send_done = true;
                send_ok = false;
            } else {  // Nack: back off (virtual time) and retransmit.
                if (attempt > cfg.retry_max) {
                    send_done = true;
                    send_ok = false;
                } else {
                    st.retries += 1;
                    agg.retries += 1;
                    minimpi::trace_instant(ctx, hytrace::Phase::Robust,
                                           "retransmit");
                    HYTRACE_COUNTER(ctx, retransmits, 1);
                    ++attempt;
                    const VTime t_backoff0 = ctx.clock.now();
                    ctx.clock.advance(
                        backoff_us(cfg, gen, attempt, ctx.world_rank));
                    if (hytrace::Span* bs = minimpi::trace_complete(
                            ctx, hytrace::Phase::Robust, "backoff",
                            t_backoff0)) {
                        bs->peer = dest;
                    }
                    FrameHeader h;
                    std::memcpy(&h, sframe.data(), sizeof(h));
                    h.attempt = static_cast<std::uint32_t>(attempt);
                    std::memcpy(sframe.data(), &h, sizeof(h));
                    minimpi::detail::send_frame(comm, sframe.data(),
                                                sframe.size(), dest, data_tag,
                                                comm.state().ctx_coll, true);
                    minimpi::detail::post_frame_recv(
                        comm, &ctrl_pr, nullptr, 0, dest, minimpi::kAnyTag,
                        minimpi::kRobustCtrlCtx);
                }
            }
        }
        (serving_data ? t_recv : t_send) = ctx.clock.now();
    }
    ctx.clock.set(std::max(t_send, t_recv));
    return send_ok && recv_ok;
}

bool agree_failure(const minimpi::Comm& comm, bool my_fail, std::uint64_t gen,
                   const RobustConfig& cfg, RobustStats& st) {
    (void)cfg;
    (void)st;
    RankCtx& ctx = comm.ctx();
    minimpi::Transport& tp = ctx.runtime->transport();
    const int n = comm.size();
    const int me = comm.rank();
    bool agreed = my_fail;
    if (n <= 1) return agreed;
    // The gather/broadcast legs ride the reliable control channel from live
    // peers, so the per-receive interrupt rules never fire; the comm-aware
    // predicate unblocks them when a peer abandons the ARQ for recovery.
    const auto bailed = [&] {
        return minimpi::detail::comm_interrupted(comm.state());
    };
    if (me == 0) {
        for (int s = 1; s < n; ++s) {
            PostedRecv pr;
            minimpi::detail::post_frame_recv(comm, &pr, nullptr, 0, s,
                                             minimpi::kAnyTag,
                                             minimpi::kRobustCtrlCtx);
            if (!tp.wait_recv_intr(ctx.world_rank, &pr, bailed)) {
                minimpi::detail::throw_comm_interrupt(comm.state(), ctx);
            }
            const auto r = minimpi::detail::finish_frame_recv(comm, pr);
            if (kind_of_tag(r.tag) == FrameKind::Fail) agreed = true;
        }
        for (int s = 1; s < n; ++s) {
            send_ctrl(comm, s, kOpAgree,
                      agreed ? FrameKind::Fail : FrameKind::Ack, gen);
        }
    } else {
        send_ctrl(comm, 0, kOpAgree,
                  my_fail ? FrameKind::Fail : FrameKind::Ack, gen);
        PostedRecv pr;
        minimpi::detail::post_frame_recv(comm, &pr, nullptr, 0, 0,
                                         minimpi::kAnyTag,
                                         minimpi::kRobustCtrlCtx);
        if (!tp.wait_recv_intr(ctx.world_rank, &pr, bailed)) {
            minimpi::detail::throw_comm_interrupt(comm.state(), ctx);
        }
        const auto r = minimpi::detail::finish_frame_recv(comm, pr);
        agreed = kind_of_tag(r.tag) == FrameKind::Fail;
    }
    return agreed;
}

}  // namespace hympi::robust
