#pragma once

#include <cstdlib>

namespace hympi {

/// Configuration of the resilience layer. Resolved once per Runtime::run
/// and wired read-only into every rank context; never consulted when
/// `enabled` is false, so the fault-free fast path is untouched.
struct RobustConfig {
    /// Master switch (HYMPI_ROBUST=1). Off: the legacy behaviour — faults
    /// abort or corrupt, exactly as before this layer existed.
    bool enabled = false;

    /// Bounded retry budget per frame transfer (HYMPI_RETRY_MAX). A
    /// receiver NACKs a bad/dropped frame at most this many times before
    /// declaring the transfer failed and triggering the degradation ladder.
    int retry_max = 8;

    /// Virtual-time cost charged when the watchdog detects a lost frame or
    /// a divergent flag round (HYMPI_WATCHDOG_US). Also the deadline used
    /// by NodeSync to classify a flag signal as "late".
    double watchdog_us = 50.0;

    /// Base of the exponential backoff charged (in virtual time) before a
    /// retransmission: backoff = base * 2^(attempt-1) * jitter, with
    /// deterministic jitter in [0.5, 1.5).
    double backoff_base_us = 2.0;

    /// Verify a per-partition FNV-1a checksum on every DATA frame. The
    /// checksum scan cost is charged in both payload modes so Real and
    /// SizeOnly timings agree under drop/dup plans.
    bool checksums = true;

    /// Consecutive late flag rounds tolerated before NodeSync downgrades
    /// Flags -> Barrier for the rest of the job.
    int sync_trip_limit = 3;

    /// Print the per-rank RobustStats aggregate to stderr when a run
    /// finishes with any counter nonzero.
    bool dump_at_finalize = false;

    /// Resolve from the environment: HYMPI_ROBUST, HYMPI_RETRY_MAX,
    /// HYMPI_WATCHDOG_US (dump_at_finalize defaults to `enabled`, so an
    /// operator who switched robustness on also gets the finalize report).
    static RobustConfig from_env() {
        RobustConfig c;
        if (const char* v = std::getenv("HYMPI_ROBUST")) {
            c.enabled = v[0] != '\0' && v[0] != '0';
        }
        if (const char* v = std::getenv("HYMPI_RETRY_MAX")) {
            const int n = std::atoi(v);
            if (n >= 0) c.retry_max = n;
        }
        if (const char* v = std::getenv("HYMPI_WATCHDOG_US")) {
            const double d = std::atof(v);
            if (d >= 0.0) c.watchdog_us = d;
        }
        c.dump_at_finalize = c.enabled;
        return c;
    }
};

}  // namespace hympi
