#pragma once

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hympi {

/// Configuration of the resilience layer. Resolved once per Runtime::run
/// and wired read-only into every rank context; never consulted when
/// `enabled` is false, so the fault-free fast path is untouched.
struct RobustConfig {
    /// Master switch (HYMPI_ROBUST=1). Off: the legacy behaviour — faults
    /// abort or corrupt, exactly as before this layer existed.
    bool enabled = false;

    /// Bounded retry budget per frame transfer (HYMPI_RETRY_MAX). A
    /// receiver NACKs a bad/dropped frame at most this many times before
    /// declaring the transfer failed and triggering the degradation ladder.
    int retry_max = 8;

    /// Virtual-time cost charged when the watchdog detects a lost frame or
    /// a divergent flag round (HYMPI_WATCHDOG_US). Also the deadline used
    /// by NodeSync to classify a flag signal as "late", and the detection
    /// latency charged when a wait surfaces a dead peer. 0 is the
    /// strictest setting (any waited-for flag counts as late; failures are
    /// detected at the death instant), not a disable knob.
    double watchdog_us = 50.0;

    /// Base of the exponential backoff charged (in virtual time) before a
    /// retransmission: backoff = base * 2^(attempt-1) * jitter, with
    /// deterministic jitter in [0.5, 1.5).
    double backoff_base_us = 2.0;

    /// Verify a per-partition FNV-1a checksum on every DATA frame. The
    /// checksum scan cost is charged in both payload modes so Real and
    /// SizeOnly timings agree under drop/dup plans.
    bool checksums = true;

    /// Consecutive late flag rounds tolerated before NodeSync downgrades
    /// Flags -> Barrier for the rest of the job.
    int sync_trip_limit = 3;

    /// Print the per-rank RobustStats aggregate to stderr when a run
    /// finishes with any counter nonzero.
    bool dump_at_finalize = false;

    /// Resolve from the environment: HYMPI_ROBUST, HYMPI_RETRY_MAX,
    /// HYMPI_WATCHDOG_US (dump_at_finalize defaults to `enabled`, so an
    /// operator who switched robustness on also gets the finalize report).
    ///
    /// Numeric variables are parsed strictly: the whole value must be a
    /// nonnegative number in range (atoi-style silent truncation of
    /// "8abc" -> 8 or "abc" -> 0 hid typos). A malformed value falls back
    /// to the built-in default with ONE stderr warning per variable per
    /// process naming the variable, the rejected value and the fallback —
    /// repeated from_env() calls (one per Runtime) stay silent.
    static RobustConfig from_env() {
        RobustConfig c;
        if (const char* v = std::getenv("HYMPI_ROBUST")) {
            c.enabled = v[0] != '\0' && v[0] != '0';
        }
        if (const char* v = std::getenv("HYMPI_RETRY_MAX")) {
            char* end = nullptr;
            errno = 0;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || errno == ERANGE || n < 0 ||
                n > INT_MAX) {
                static bool warned = false;
                if (!warned) {
                    warned = true;
                    std::fprintf(stderr,
                                 "hympi: invalid HYMPI_RETRY_MAX=\"%s\" "
                                 "(want a nonnegative integer); using "
                                 "default %d\n",
                                 v, c.retry_max);
                }
            } else {
                c.retry_max = static_cast<int>(n);
            }
        }
        if (const char* v = std::getenv("HYMPI_WATCHDOG_US")) {
            char* end = nullptr;
            errno = 0;
            const double d = std::strtod(v, &end);
            if (end == v || *end != '\0' || errno == ERANGE ||
                !std::isfinite(d) || d < 0.0) {
                static bool warned = false;
                if (!warned) {
                    warned = true;
                    std::fprintf(stderr,
                                 "hympi: invalid HYMPI_WATCHDOG_US=\"%s\" "
                                 "(want a nonnegative number); using "
                                 "default %g\n",
                                 v, c.watchdog_us);
                }
            } else {
                c.watchdog_us = d;
            }
        }
        c.dump_at_finalize = c.enabled;
        return c;
    }
};

}  // namespace hympi
