#pragma once

#include <stdexcept>
#include <string>

namespace hympi {

/// Error taxonomy of the resilience layer. Recoverable conditions flow
/// through Status values instead of exceptions/abort when robustness is
/// enabled (HYMPI_ROBUST=1): the caller can retry, degrade, or surface the
/// condition; only genuinely unrecoverable misuse still throws.
enum class StatusCode {
    Ok = 0,
    /// A frame (or its acknowledgement window) timed out: the watchdog
    /// observed a dropped message or a peer that stopped progressing.
    Timeout,
    /// A received frame failed integrity verification (bad magic, wrong
    /// generation stamp, size mismatch, or per-partition checksum mismatch).
    ChecksumMismatch,
    /// The bounded-retry budget (HYMPI_RETRY_MAX) was exhausted without a
    /// clean transfer.
    RetriesExhausted,
    /// Shared-memory window allocation failed; the communicator cannot host
    /// a node-shared segment.
    AllocFailed,
    /// A node-shared buffer was constructed with zero bytes: no segment
    /// exists and every partition pointer is null. Not an error, but it is
    /// now signalled instead of silently handing out null pointers.
    EmptyBuffer,
    /// The operation completed, but only after degrading to a slower mode
    /// (Flags -> Barrier, or hybrid -> flat MPI).
    Degraded,
};

/// Lightweight status object returned by robust entry points.
struct Status {
    StatusCode code = StatusCode::Ok;
    std::string detail;

    bool ok() const { return code == StatusCode::Ok; }
    explicit operator bool() const { return ok(); }

    static Status okay() { return {}; }
    static Status make(StatusCode c, std::string d) {
        return Status{c, std::move(d)};
    }
};

inline const char* to_string(StatusCode c) {
    switch (c) {
        case StatusCode::Ok: return "ok";
        case StatusCode::Timeout: return "timeout";
        case StatusCode::ChecksumMismatch: return "checksum-mismatch";
        case StatusCode::RetriesExhausted: return "retries-exhausted";
        case StatusCode::AllocFailed: return "alloc-failed";
        case StatusCode::EmptyBuffer: return "empty-buffer";
        case StatusCode::Degraded: return "degraded";
    }
    return "unknown";
}

/// Thrown on UNRECOVERABLE robust-mode conditions — an exhausted retry
/// budget on a path with no degradation rung left (the extra channels have
/// no flat fallback). Recoverable conditions never throw; they flow through
/// Status and the counters instead.
class RobustError : public std::runtime_error {
public:
    RobustError(StatusCode c, const std::string& detail)
        : std::runtime_error(std::string("robust: ") + to_string(c) + ": " +
                             detail),
          code(c) {}
    StatusCode code;
};

}  // namespace hympi
