#pragma once

/// Umbrella header of the resilience layer: integrity-guarded, watchdogged,
/// bounded-retry frame transfers plus the error/statistics surface used by
/// the hybrid collectives' graceful-degradation ladder. See README
/// "Resilience model".

#include "robust/checksum.h"   // IWYU pragma: export
#include "robust/config.h"     // IWYU pragma: export
#include "robust/reliable.h"   // IWYU pragma: export
#include "robust/stats.h"      // IWYU pragma: export
#include "robust/status.h"     // IWYU pragma: export
