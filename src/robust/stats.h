#pragma once

#include <cstdint>

namespace hympi {

/// Per-communicator (and per-rank aggregate) resilience counters. Every
/// recovery action the robust layer takes is counted here, so tests can
/// assert that injected faults were actually detected and survived — not
/// silently absorbed — and operators can see what a job had to work around.
///
/// All perturbations behind these counters are deterministic functions of
/// the fault plan, so identical (seed, plan, config) runs produce identical
/// counter values; test_determinism relies on this.
struct RobustStats {
    std::uint64_t retries = 0;             ///< DATA frames retransmitted
    std::uint64_t timeouts = 0;            ///< watchdog-detected drops/stalls
    std::uint64_t checksum_failures = 0;   ///< frames failing verification
    std::uint64_t stale_discards = 0;      ///< duplicate/stale frames ignored
    std::uint64_t recoveries = 0;          ///< transfers that succeeded after retry
    std::uint64_t sync_trips = 0;          ///< flag-sync watchdog trips
    std::uint64_t sync_downgrades = 0;     ///< Flags -> Barrier downgrades
    std::uint64_t flat_downgrades = 0;     ///< hybrid -> flat MPI downgrades
    std::uint64_t alloc_failures = 0;      ///< shared-window allocation failures
    std::uint64_t failures_detected = 0;   ///< peer process deaths observed
    std::uint64_t shrinks = 0;             ///< successful agree+shrink recoveries

    RobustStats& operator+=(const RobustStats& o) {
        retries += o.retries;
        timeouts += o.timeouts;
        checksum_failures += o.checksum_failures;
        stale_discards += o.stale_discards;
        recoveries += o.recoveries;
        sync_trips += o.sync_trips;
        sync_downgrades += o.sync_downgrades;
        flat_downgrades += o.flat_downgrades;
        alloc_failures += o.alloc_failures;
        failures_detected += o.failures_detected;
        shrinks += o.shrinks;
        return *this;
    }

    bool any() const {
        return retries || timeouts || checksum_failures || stale_discards ||
               recoveries || sync_trips || sync_downgrades ||
               flat_downgrades || alloc_failures || failures_detected ||
               shrinks;
    }

    bool operator==(const RobustStats&) const = default;
};

}  // namespace hympi
