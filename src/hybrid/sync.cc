#include "hybrid/sync.h"

namespace hympi {

NodeSync::NodeSync(const HierComm& hc) : hc_(&hc) {
    const Comm& shm = hc.shm();
    minimpi::RankCtx& ctx = shm.ctx();
    // Collective one-off: share the flag block among the node's ranks (a
    // real MPI port would place it in a small MPI_Win_allocate_shared
    // window; the cost model below charges flag traffic identically).
    struct Boot {
        std::shared_ptr<Shared> shared;
    };
    auto boot = minimpi::detail::rendezvous<Boot>(
        shm.state(), ctx, shm.rank(),
        ctx.runtime->one_off_sync_cost(shm.size()), [](Boot&) {},
        [&](Boot& b) {
            b.shared = std::make_shared<Shared>();
            b.shared->ready.resize(static_cast<std::size_t>(shm.size()));
            b.shared->release.resize(static_cast<std::size_t>(shm.size()));
        });
    shared_ = boot->shared;
}

void NodeSync::signal(Cell& c, minimpi::RankCtx& ctx) {
    ctx.clock.advance(ctx.model->flag_signal_us);
    std::lock_guard<std::mutex> lock(shared_->mu);
    c.vtime = ctx.clock.now();
    ++c.seq;
    shared_->cv.notify_all();
}

void NodeSync::wait_for(const Cell& c, std::uint64_t target,
                        minimpi::RankCtx& ctx) {
    std::unique_lock<std::mutex> lock(shared_->mu);
    shared_->cv.wait(lock, [&] { return c.seq >= target; });
    const VTime signal_time = c.vtime;
    lock.unlock();
    ctx.clock.sync_to(signal_time);
    ctx.clock.advance(ctx.model->flag_poll_us);
}

void NodeSync::ready_phase(SyncPolicy p) {
    const Comm& shm = hc_->shm();
    if (p == SyncPolicy::Barrier) {
        minimpi::barrier(shm);
        return;
    }
    minimpi::RankCtx& ctx = shm.ctx();
    ++my_ready_epoch_;
    signal(shared_->ready[static_cast<std::size_t>(shm.rank())], ctx);
    if (hc_->is_leader()) {
        for (int r = 0; r < shm.size(); ++r) {
            wait_for(shared_->ready[static_cast<std::size_t>(r)],
                     my_ready_epoch_, ctx);
        }
    }
}

void NodeSync::release_phase(SyncPolicy p) {
    const Comm& shm = hc_->shm();
    if (p == SyncPolicy::Barrier) {
        minimpi::barrier(shm);
        return;
    }
    minimpi::RankCtx& ctx = shm.ctx();
    ++release_epoch_;
    const int nleaders = std::min(hc_->leaders_per_node(), shm.size());
    if (hc_->is_leader()) {
        signal(shared_->release[static_cast<std::size_t>(hc_->leader_index())],
               ctx);
    }
    // Everyone (leaders included) proceeds only once every leader has
    // published its slice of the exchange.
    for (int l = 0; l < nleaders; ++l) {
        wait_for(shared_->release[static_cast<std::size_t>(l)], release_epoch_,
                 ctx);
    }
}

void NodeSync::full_sync(SyncPolicy p) {
    if (p == SyncPolicy::Barrier) {
        minimpi::barrier(hc_->shm());
        return;
    }
    ready_phase(p);
    release_phase(p);
}

}  // namespace hympi
