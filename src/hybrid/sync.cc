#include "hybrid/sync.h"

#include <chrono>

#include "hybrid/hy_trace.h"
#include "minimpi/runtime.h"
#include "minimpi/transport.h"

namespace hympi {

namespace {

/// A flag this rank is waiting on is owned by a dead rank and was never
/// published: the same deterministic detection accounting as a dead-peer
/// receive — clock advances to death + watchdog_us, failures_detected
/// counters bump, a Robust "detect" span covers the wait.
[[noreturn]] void throw_flag_owner_dead(minimpi::RankCtx& ctx,
                                        minimpi::Transport& tp, int owner) {
    const VTime death = tp.death_vtime(owner);
    const VTime watchdog =
        ctx.robust_cfg != nullptr ? ctx.robust_cfg->watchdog_us : 0.0;
    const VTime t0 = ctx.clock.now();
    ctx.clock.sync_to(death + watchdog);
    ctx.robust_stats.failures_detected += 1;
    HYTRACE_COUNTER(ctx, failures_detected, 1);
    if (hytrace::Span* s = minimpi::trace_complete(
            ctx, hytrace::Phase::Robust, "detect", t0)) {
        s->peer = owner;
    }
    throw minimpi::ProcessFailedError(owner, death);
}

}  // namespace

std::shared_ptr<NodeFailWord> boot_fail_word(const HierComm& hc) {
    const Comm& shm = hc.shm();
    minimpi::RankCtx& ctx = shm.ctx();
    struct Boot {
        std::shared_ptr<NodeFailWord> word;
    };
    auto boot = minimpi::detail::rendezvous<Boot>(
        shm.state(), ctx, shm.rank(),
        ctx.runtime->one_off_sync_cost(shm.size()), [](Boot&) {},
        [&](Boot& b) { b.word = std::make_shared<NodeFailWord>(); });
    return boot->word;
}

NodeSync::NodeSync(const HierComm& hc) : hc_(&hc) {
    const Comm& shm = hc.shm();
    minimpi::RankCtx& ctx = shm.ctx();
    // Collective one-off: share the flag block among the node's ranks (a
    // real MPI port would place it in a small MPI_Win_allocate_shared
    // window; the cost model below charges flag traffic identically).
    struct Boot {
        std::shared_ptr<Shared> shared;
    };
    auto boot = minimpi::detail::rendezvous<Boot>(
        shm.state(), ctx, shm.rank(),
        ctx.runtime->one_off_sync_cost(shm.size()), [](Boot&) {},
        [&](Boot& b) {
            b.shared = std::make_shared<Shared>();
            b.shared->ready.resize(static_cast<std::size_t>(shm.size()));
            b.shared->release.resize(static_cast<std::size_t>(shm.size()));
            b.shared->chunk.resize(static_cast<std::size_t>(shm.size()) + 1 +
                                   static_cast<std::size_t>(
                                       hc.sockets_on_node()));
        });
    shared_ = boot->shared;
    chunk_next_.assign(shared_->chunk.size(), 0);
    if (ctx.cluster->sockets_per_node() > 1) {
        xsocket_flags_ = shm.socket_of(shm.rank()) != shm.socket_of(0);
    }
}

void NodeSync::signal(Cell& c, minimpi::RankCtx& ctx) {
    minimpi::detail::check_alive(ctx);
    ctx.clock.advance(ctx.model->flag_signal_us);
    if (xsocket_flags_) ctx.clock.advance(ctx.model->xsocket_flag_penalty_us);
    std::lock_guard<std::mutex> lock(shared_->mu);
    c.vtime = ctx.clock.now();
    ++c.seq;
    shared_->cv.notify_all();
}

void NodeSync::wait_for(const Cell& c, std::uint64_t target,
                        minimpi::RankCtx& ctx, bool count_trips,
                        int owner_world) {
    minimpi::detail::check_alive(ctx);
    const VTime wait_begin = ctx.clock.now();
    std::unique_lock<std::mutex> lock(shared_->mu);
    // Poison-aware wait: a peer that threw (e.g. an exhausted robust retry
    // budget on a path with no degradation rung) poisons the transport but
    // has no way to signal this condition variable — poll so an aborted job
    // unblocks flag waiters instead of hanging them. The timeout is wall
    // clock only; virtual time is untouched by spurious wakeups. The same
    // poll notices a dead flag owner (the flag will never be published) and
    // a revoked world comm (some survivor started recovery) — completion
    // wins: the predicate is re-checked before every interrupt check, so a
    // flag published before the failure is always consumed normally.
    minimpi::Transport& tp = ctx.runtime->transport();
    while (!shared_->cv.wait_for(lock, std::chrono::milliseconds(2),
                                 [&] { return c.seq >= target; })) {
        if (tp.poisoned()) {
            lock.unlock();
            tp.check_poison();
        }
        if (owner_world >= 0 && tp.any_dead() && tp.is_dead(owner_world)) {
            lock.unlock();
            throw_flag_owner_dead(ctx, tp, owner_world);
        }
        if (hc_->world().state().revoked.load(std::memory_order_acquire)) {
            lock.unlock();
            throw minimpi::CommRevokedError();
        }
    }
    const VTime signal_time = c.vtime;
    // Progress watchdog: a flag that was published later than the virtual-
    // time deadline counts as a divergence trip (a straggling rank whose
    // flag rounds lag the node). Trips feed the Flags -> Barrier ladder.
    // Only waits whose recording provably happens-before the primary
    // leader's next downgrade decision may count (count_trips), keeping the
    // trip total it reads deterministic.
    // watchdog_us = 0 is the strictest setting — ANY flag published after
    // the wait began counts as late (immediate trip) — not a disable knob.
    const hympi::RobustConfig* cfg = ctx.robust_cfg;
    if (count_trips && cfg != nullptr && cfg->enabled &&
        signal_time > wait_begin + cfg->watchdog_us) {
        shared_->trips += 1;
        ctx.robust_stats.sync_trips += 1;
    }
    lock.unlock();
    ctx.clock.sync_to(signal_time);
    ctx.clock.advance(ctx.model->flag_poll_us);
    if (xsocket_flags_) ctx.clock.advance(ctx.model->xsocket_flag_penalty_us);
    // The wait portion is the virtual time this rank idled until the flag
    // was published (0 when the signal predates the wait); the flag_poll
    // advance is active cost, not waiting.
    if (signal_time > wait_begin) {
        HYTRACE_COUNTER(ctx, sync_wait_us, signal_time - wait_begin);
    }
}

int NodeSync::chunk_slot_owner(int slot) const {
    const Comm& shm = hc_->shm();
    const int ppn = shm.size();
    if (slot < ppn) return shm.to_world(slot);       // per-rank ready flag
    if (slot == ppn) return shm.to_world(0);         // node release: primary leader
    const int s = slot - ppn - 1;                    // socket s's release
    for (int r = 0; r < ppn; ++r) {
        if (shm.socket_of(r) == s) return shm.to_world(r);  // lowest = leader
    }
    return -1;
}

void NodeSync::chunk_signal(int slot) {
    minimpi::RankCtx& ctx = hc_->shm().ctx();
    minimpi::detail::check_alive(ctx);
    ctx.clock.advance(ctx.model->flag_signal_us);
    if (xsocket_flags_) ctx.clock.advance(ctx.model->xsocket_flag_penalty_us);
    ChunkSlot& c = shared_->chunk[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lock(shared_->mu);
    c.stamps.push_back(ctx.clock.now());
    ++c.seq;
    ++chunk_next_[static_cast<std::size_t>(slot)];
    shared_->cv.notify_all();
}

void NodeSync::chunk_wait(int slot, std::uint64_t target) {
    minimpi::RankCtx& ctx = hc_->shm().ctx();
    minimpi::detail::check_alive(ctx);
    const VTime wait_begin = ctx.clock.now();
    const ChunkSlot& c = shared_->chunk[static_cast<std::size_t>(slot)];
    std::unique_lock<std::mutex> lock(shared_->mu);
    // Same poison-aware poll as wait_for, plus the failure checks: the
    // slot's publisher is derivable from the slot index, so a dead
    // publisher (or a revoked world comm) interrupts the wait instead of
    // hanging the pipeline.
    minimpi::Transport& tp = ctx.runtime->transport();
    while (!shared_->cv.wait_for(lock, std::chrono::milliseconds(2),
                                 [&] { return c.seq >= target; })) {
        if (tp.poisoned()) {
            lock.unlock();
            tp.check_poison();
        }
        if (tp.any_dead()) {
            const int owner = chunk_slot_owner(slot);
            if (owner >= 0 && tp.is_dead(owner)) {
                lock.unlock();
                throw_flag_owner_dead(ctx, tp, owner);
            }
        }
        if (hc_->world().state().revoked.load(std::memory_order_acquire)) {
            lock.unlock();
            throw minimpi::CommRevokedError();
        }
    }
    // This chunk's OWN stamp, read by index from the append-only log — the
    // publisher may already be several chunks ahead in wall-clock time.
    const VTime signal_time = c.stamps[static_cast<std::size_t>(target - 1)];
    lock.unlock();
    ctx.clock.sync_to(signal_time);
    ctx.clock.advance(ctx.model->flag_poll_us);
    if (xsocket_flags_) ctx.clock.advance(ctx.model->xsocket_flag_penalty_us);
    if (signal_time > wait_begin) {
        HYTRACE_COUNTER(ctx, sync_wait_us, signal_time - wait_begin);
    }
}

void NodeSync::ready_phase(SyncPolicy p, bool collector) {
    const Comm& shm = hc_->shm();
    TraceSpan span(shm.ctx(), hytrace::Phase::Sync, "ready_sync");
    if (effective(p) == SyncPolicy::Barrier) {
        span.set_algo("barrier");
        minimpi::barrier(shm);
        return;
    }
    span.set_algo("flags");
    minimpi::RankCtx& ctx = shm.ctx();
    ++my_ready_epoch_;
    signal(shared_->ready[static_cast<std::size_t>(shm.rank())], ctx);
    if (hc_->is_leader() || collector) {
        for (int r = 0; r < shm.size(); ++r) {
            wait_for(shared_->ready[static_cast<std::size_t>(r)],
                     my_ready_epoch_, ctx, hc_->is_primary_leader(),
                     shm.to_world(r));
        }
    }
}

void NodeSync::release_phase(SyncPolicy p) {
    const Comm& shm = hc_->shm();
    TraceSpan span(shm.ctx(), hytrace::Phase::Sync, "release_sync");
    if (effective(p) == SyncPolicy::Barrier) {
        span.set_algo("barrier");
        minimpi::barrier(shm);
        return;
    }
    span.set_algo("flags");
    minimpi::RankCtx& ctx = shm.ctx();
    const hympi::RobustConfig* cfg = ctx.robust_cfg;
    const bool robust = cfg != nullptr && cfg->enabled;
    ++release_epoch_;
    const int nleaders = std::min(hc_->leaders_per_node(), shm.size());
    if (hc_->is_leader()) {
        if (robust && hc_->is_primary_leader()) {
            // Downgrade decision, published BEFORE the round-R release
            // signal: any rank that observes seq >= R (same mutex) also
            // observes degrade_after, so the whole node flips at the same
            // round boundary.
            std::lock_guard<std::mutex> lock(shared_->mu);
            if (shared_->degrade_after == 0 &&
                shared_->trips >=
                    static_cast<std::uint64_t>(cfg->sync_trip_limit)) {
                shared_->degrade_after = release_epoch_;
            }
        }
        signal(shared_->release[static_cast<std::size_t>(hc_->leader_index())],
               ctx);
    }
    // Everyone (leaders included) proceeds only once every leader has
    // published its slice of the exchange.
    // Leader l is shm rank l (the node's lowest L ranks lead).
    for (int l = 0; l < nleaders; ++l) {
        wait_for(shared_->release[static_cast<std::size_t>(l)], release_epoch_,
                 ctx, true, shm.to_world(l));
    }
    if (robust && !degraded_) {
        std::lock_guard<std::mutex> lock(shared_->mu);
        if (shared_->degrade_after != 0 &&
            release_epoch_ >= shared_->degrade_after) {
            degraded_ = true;
            ctx.robust_stats.sync_downgrades += 1;
            minimpi::trace_instant(ctx, hytrace::Phase::Robust,
                                   "sync_downgrade");
            HYTRACE_COUNTER(ctx, degradations, 1);
        }
    }
}

void NodeSync::full_sync(SyncPolicy p) {
    if (p == SyncPolicy::Barrier) {
        TraceSpan span(hc_->shm().ctx(), hytrace::Phase::Sync, "full_sync");
        span.set_algo("barrier");
        minimpi::barrier(hc_->shm());
        return;
    }
    ready_phase(p);
    release_phase(p);
}

}  // namespace hympi
