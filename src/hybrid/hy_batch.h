#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "hybrid/hier_comm.h"
#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
#include "minimpi/icoll.h"

namespace hympi {

/// Whether CollBatcher fuses eligible small collectives into one bridge
/// exchange or passes everything through immediately:
///  * Auto   — consult the profile's tuned BatchWindow table (legacy 1 KiB
///    threshold when the profile has none);
///  * Always — fuse every batchable op regardless of size;
///  * Never  — immediate execution only (the batcher becomes a thin shim).
enum class BatchPolicy : std::uint8_t {
    Auto,
    Always,
    Never,
};

/// Default fused-window capacity: enough for dozens of sub-KiB ops without
/// approaching the sizes where fusing stops paying.
inline constexpr std::size_t kDefaultBatchCapacity = 256 * 1024;

/// Small-collective aggregation shim (the startup-dominated regime of the
/// paper's Fig. 8, pushed one step further): concurrent small allgathers,
/// bcasts and allreduces posted on the same HierComm within one window are
/// coalesced into a single fused node-block exchange — the window's
/// per-node contributions travel as ONE aggregated Bruck message per
/// bridge round (detail::node_block_bruck, the LocBruck core) instead of
/// one inter-node exchange per op, and each op is demultiplexed out of the
/// node-shared window on release.
///
/// Usage discipline (collective, SPMD): every rank of hc.world() must
/// construct the batcher collectively, post the SAME ops in the SAME
/// program order, and flush / wait in the same order — window membership
/// is decided rank-locally from that shared order (capacity, policy,
/// explicit flush, first wait), so identical posting sequences produce
/// identical windows on every rank. Posted buffers must stay valid and
/// unmodified until the op's request is waited (MPI nonblocking rule);
/// every returned request must be waited before the batcher is destroyed.
///
/// Under robust mode the batcher is inert: every op executes immediately
/// through the flat reliable collectives, so the recovery ladder never
/// sees a fused frame. kInPlace send buffers are not supported.
class CollBatcher {
public:
    /// Collective over hc.shm() (allocates the node-shared window unless
    /// robust mode forces the inert path).
    explicit CollBatcher(const HierComm& hc,
                         std::size_t capacity_bytes = kDefaultBatchCapacity);

    /// Batching machinery live (not robust-inert, window allocated).
    bool active() const { return active_; }

    /// Queue one allgather of @p bytes per rank: recv[r*bytes) receives
    /// comm rank r's contribution, as minimpi::allgather over hc.world().
    minimpi::CollRequest post_allgather(const void* send, std::size_t bytes,
                                        void* recv);
    /// Queue one bcast of @p bytes from comm rank @p root.
    minimpi::CollRequest post_bcast(void* buf, std::size_t bytes, int root);
    /// Queue one allreduce of @p count elements of @p dt under @p op.
    minimpi::CollRequest post_allreduce(const void* send, void* recv,
                                        std::size_t count, minimpi::Datatype dt,
                                        minimpi::Op op);

    /// Close and execute the open window (no-op when empty). Collective:
    /// every rank must flush at the same point of the shared posting order.
    /// Waiting any of the window's requests flushes implicitly.
    void flush(SyncPolicy sync);
    void flush() { flush(sync_policy_); }

    void set_policy(BatchPolicy p) { policy_ = p; }
    /// Explicit fuse threshold in bytes (per-op payload); overrides the
    /// tuned BatchWindow table. 0 restores Auto resolution.
    void set_threshold(std::size_t bytes) { threshold_bytes_ = bytes; }
    /// Sync policy used by implicit (wait-triggered / capacity) flushes.
    void set_sync_policy(SyncPolicy p) { sync_policy_ = p; }

    /// Virtual-time window bound: once advance_window() observes the open
    /// window older than @p us, it flushes. A window opens at POST time —
    /// the clock value last observed by advance_window when its first op
    /// is enqueued — so its age never exceeds @p us by more than the gap
    /// between advance calls; ops posted before any observation age from
    /// the first advance_window call instead. 0 disables (default) —
    /// windows then close only on capacity, explicit flush or first wait.
    void set_window_us(double us) { window_us_ = us; }
    /// Drive the time-bound window. @p now_us MUST be uniform across the
    /// communicator's ranks (e.g. schedule arrival times that are a pure
    /// function of shared config) — per-rank virtual clocks diverge and
    /// would split the window membership across ranks.
    void advance_window(double now_us);

    struct Stats {
        std::uint64_t posted = 0;     ///< ops accepted by post_*
        std::uint64_t fused = 0;      ///< ops shipped through fused windows
        std::uint64_t immediate = 0;  ///< ops executed unfused
        std::uint64_t windows = 0;    ///< non-empty windows flushed
        std::uint64_t fused_bytes = 0;  ///< total fused window payload
    };
    const Stats& stats() const { return stats_; }

private:
    enum class Kind : std::uint8_t { Allgather, Bcast, Allreduce };

    struct PendingOp {
        Kind kind;
        const void* send = nullptr;  ///< allgather/allreduce input
        void* recv = nullptr;        ///< output (bcast: the buffer)
        std::size_t bytes = 0;       ///< per-rank contribution bytes
        std::size_t count = 0;       ///< allreduce element count
        minimpi::Datatype dt = minimpi::Datatype::Byte;
        minimpi::Op rop = minimpi::Op::Sum;
        int root = 0;  ///< bcast root (comm rank)
    };

    /// Per-rank contribution of @p op for comm rank @p r.
    static std::size_t contrib(const PendingOp& op, int r);
    /// Whole-window footprint of @p op (sum of contributions).
    std::size_t op_total(const PendingOp& op) const;
    /// Fuse decision for one op's per-payload size (policy -> explicit
    /// threshold -> tuned BatchWindow table -> legacy 1 KiB).
    bool should_batch(std::size_t bytes) const;
    /// Enqueue (flushing a full window first) or execute immediately.
    minimpi::CollRequest enqueue(PendingOp op);
    void run_immediate(const PendingOp& op);
    minimpi::CollRequest make_ticket();

    const HierComm* hc_;
    NodeSharedBuffer win_;
    std::optional<NodeSync> sync_;
    bool active_ = false;
    std::size_t capacity_ = 0;
    BatchPolicy policy_ = BatchPolicy::Auto;
    std::size_t threshold_bytes_ = 0;
    SyncPolicy sync_policy_ = SyncPolicy::Flags;
    double window_us_ = 0.0;
    double window_open_us_ = 0.0;
    bool window_clocked_ = false;  ///< window_open_us_ holds a timestamp
    double clock_us_ = 0.0;    ///< last advance_window observation
    bool clock_valid_ = false;  ///< clock_us_ holds an observation

    std::vector<PendingOp> pending_;
    std::size_t pending_bytes_ = 0;
    /// Generation of the OPEN window; a ticket flushes only while its
    /// captured id still names it (later waits of the same window no-op).
    std::uint64_t window_id_ = 0;
    Stats stats_;
};

}  // namespace hympi
