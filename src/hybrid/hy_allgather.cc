#include "hybrid/hy_allgather.h"

#include <numeric>

#include "minimpi/coll_internal.h"

namespace hympi {

namespace {

/// Members-per-node slice handled by leader @p l of a node with @p size
/// members when @p L leaders are requested: [first, last) indices within
/// the node.
std::pair<int, int> slice_range(int size, int L, int l) {
    const int leaders = std::min(L, size);
    const int first = size * l / leaders;
    const int last = size * (l + 1) / leaders;
    return {first, last};
}

}  // namespace

AllgatherChannel::AllgatherChannel(const HierComm& hc, std::size_t block_bytes)
    : hc_(&hc), sync_(hc) {
    std::vector<std::size_t> per_rank(
        static_cast<std::size_t>(hc.world().size()), block_bytes);
    init_layout(per_rank);
}

AllgatherChannel::AllgatherChannel(const HierComm& hc,
                                   std::span<const std::size_t> bytes_per_rank)
    : hc_(&hc), sync_(hc) {
    if (bytes_per_rank.size() != static_cast<std::size_t>(hc.world().size())) {
        throw minimpi::ArgumentError(
            "AllgatherChannel needs one block size per comm rank");
    }
    init_layout(bytes_per_rank);
}

void AllgatherChannel::init_layout(
    std::span<const std::size_t> bytes_per_rank) {
    const int p = hc_->world().size();
    block_bytes_.assign(bytes_per_rank.begin(), bytes_per_rank.end());

    // Slot-major (node-major) layout with a sentinel for size queries.
    slot_offset_.resize(static_cast<std::size_t>(p) + 1);
    std::size_t off = 0;
    for (int s = 0; s < p; ++s) {
        slot_offset_[static_cast<std::size_t>(s)] = off;
        off += block_bytes_[static_cast<std::size_t>(hc_->rank_at(s))];
    }
    slot_offset_[static_cast<std::size_t>(p)] = off;
    total_bytes_ = off;

    // The node-shared result buffer: ONE copy per node (collective one-off).
    buf_ = NodeSharedBuffer(*hc_, total_bytes_);

    // Derived datatype describing the gathered data in RANK order relative
    // to the slot-major buffer (one-off; see repack_rank_order).
    {
        std::vector<std::pair<std::size_t, std::size_t>> extents;
        extents.reserve(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            const auto s = static_cast<std::size_t>(hc_->slot_of(r));
            extents.emplace_back(slot_offset_[s],
                                 block_bytes_[static_cast<std::size_t>(r)]);
        }
        rank_order_layout_ = minimpi::Layout::indexed(std::move(extents));
    }

    // One-off bridge parameters for my leader role.
    if (hc_->is_leader() && hc_->num_nodes() > 1) {
        const int l = hc_->leader_index();
        const int L = hc_->leaders_per_node();
        for (int n = 0; n < hc_->num_nodes(); ++n) {
            const int sz = hc_->node_size(n);
            if (sz <= l) continue;  // node has no leader l (irregular)
            const auto [first, last] = slice_range(sz, L, l);
            const int s0 = hc_->node_offset(n) + first;
            const int s1 = hc_->node_offset(n) + last;
            bridge_displs_.push_back(slot_offset_[static_cast<std::size_t>(s0)]);
            bridge_counts_.push_back(
                slot_offset_[static_cast<std::size_t>(s1)] -
                slot_offset_[static_cast<std::size_t>(s0)]);
        }
        if (static_cast<int>(bridge_counts_.size()) != hc_->bridge().size()) {
            throw minimpi::CommError(
                "bridge layout disagrees with bridge communicator size");
        }
    }
}

void AllgatherChannel::repack_rank_order(void* dst) const {
    rank_order_layout_.pack(hc_->world().ctx(), buf_.data(), dst);
}

void AllgatherChannel::bridge_exchange(BridgeAlgo algo) {
    const Comm& bridge = hc_->bridge();
    const int bp = bridge.size();
    const int br = bridge.rank();
    if (bp <= 1) return;

    switch (algo) {
        case BridgeAlgo::Allgatherv: {
            // Fig. 4 line 26: MPI_Allgatherv(s_buf, ..., r_buf, bridgeComm);
            // every leader's slice is already in place in the shared buffer.
            minimpi::allgatherv(
                bridge, minimpi::kInPlace,
                bridge_counts_[static_cast<std::size_t>(br)], buf_.data(),
                bridge_counts_, bridge_displs_, minimpi::Datatype::Byte);
            return;
        }
        case BridgeAlgo::Bcast: {
            // N rooted broadcasts of the node blocks (the "regular
            // operation" alternative of Sect. 4.1).
            for (int n = 0; n < bp; ++n) {
                minimpi::bcast(bridge,
                               buf_.at(bridge_displs_[static_cast<std::size_t>(n)]),
                               bridge_counts_[static_cast<std::size_t>(n)],
                               minimpi::Datatype::Byte, n);
            }
            return;
        }
        case BridgeAlgo::Pipelined: {
            // Segmented ring (Traeff et al. '08): forward the previously
            // received block segment by segment while the next block
            // arrives, hiding the per-hop start-up cost of large blocks.
            std::size_t max_blk = 0;
            for (std::size_t c : bridge_counts_) max_blk = std::max(max_blk, c);
            // Bounded pipeline depth, as in bcast_pipelined_chain.
            const std::size_t seg =
                std::max(kPipelineSegmentBytes, (max_blk + 63) / 64);
            auto nsegs = [&](int blk) {
                return (bridge_counts_[static_cast<std::size_t>(blk)] + seg - 1) /
                       seg;
            };
            const int left = (br - 1 + bp) % bp;
            const int right = (br + 1) % bp;
            constexpr int tag = minimpi::detail::kTagHier + 0x10;
            for (int k = 0; k < bp - 1; ++k) {
                const int send_blk = (br - k + bp) % bp;
                const int recv_blk = (br - k - 1 + bp) % bp;
                const std::size_t ns = nsegs(send_blk);
                const std::size_t nr = nsegs(recv_blk);
                const std::size_t send_off =
                    bridge_displs_[static_cast<std::size_t>(send_blk)];
                const std::size_t recv_off =
                    bridge_displs_[static_cast<std::size_t>(recv_blk)];
                const std::size_t send_len =
                    bridge_counts_[static_cast<std::size_t>(send_blk)];
                const std::size_t recv_len =
                    bridge_counts_[static_cast<std::size_t>(recv_blk)];
                for (std::size_t s = 0; s < std::max(ns, nr); ++s) {
                    if (s < ns) {
                        const std::size_t o = s * seg;
                        minimpi::detail::send_bytes(
                            bridge, buf_.at(send_off + o),
                            std::min(seg, send_len - o), right, tag, true);
                    }
                    if (s < nr) {
                        const std::size_t o = s * seg;
                        minimpi::detail::recv_bytes(
                            bridge, buf_.at(recv_off + o),
                            std::min(seg, recv_len - o), left, tag, true);
                    }
                }
            }
            return;
        }
    }
}

void AllgatherChannel::run(SyncPolicy sync, BridgeAlgo algo) {
    if (hc_->num_nodes() == 1) {
        // Fig. 4 lines 29-30/37-38: single node — one on-node sync makes
        // every partition visible; there is no inter-node traffic at all.
        sync_.full_sync(sync);
        return;
    }
    // Fig. 4 line 25/34: leaders wait until all partitions on their node
    // are initialized.
    sync_.ready_phase(sync);
    if (hc_->is_leader()) {
        bridge_exchange(algo);
    }
    // Fig. 4 line 27/35: children wait until the exchange has finished.
    sync_.release_phase(sync);
}

void AllgatherChannel::begin(SyncPolicy sync, BridgeAlgo algo) {
    if (hc_->num_nodes() == 1) {
        sync_.ready_phase(sync);
        return;
    }
    sync_.ready_phase(sync);
    if (hc_->is_leader()) {
        // CAUTION: the leader's compute window only opens after its
        // transfers; children's opens immediately — that asymmetry is the
        // paper's "idle cores" discussion and exactly what overlap buys.
        bridge_exchange(algo);
    }
}

void AllgatherChannel::finish(SyncPolicy sync) {
    sync_.release_phase(sync);
}

}  // namespace hympi
