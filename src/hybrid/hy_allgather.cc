#include "hybrid/hy_allgather.h"

#include <algorithm>
#include <numeric>

#include "hybrid/hy_trace.h"
#include "minimpi/coll_internal.h"
#include "tuning/decision.h"

namespace hympi {

namespace {

const char* bridge_algo_name(BridgeAlgo a) {
    switch (a) {
        case BridgeAlgo::Auto: return "auto";
        case BridgeAlgo::Allgatherv: return "vendor_allgatherv";
        case BridgeAlgo::Bcast: return "bcast";
        case BridgeAlgo::Pipelined: return "pipelined_ring";
        case BridgeAlgo::BruckV: return "bruck_v";
        case BridgeAlgo::NeighborExchange: return "neighbor_exchange";
        case BridgeAlgo::LocBruck: return "loc_bruck";
    }
    return "?";
}

}  // namespace

AllgatherChannel::AllgatherChannel(const HierComm& hc, std::size_t block_bytes)
    : hc_(&hc), sync_(hc), stager_(hc) {
    std::vector<std::size_t> per_rank(
        static_cast<std::size_t>(hc.world().size()), block_bytes);
    init_layout(per_rank);
}

AllgatherChannel::AllgatherChannel(const HierComm& hc,
                                   std::span<const std::size_t> bytes_per_rank)
    : hc_(&hc), sync_(hc), stager_(hc) {
    if (bytes_per_rank.size() != static_cast<std::size_t>(hc.world().size())) {
        throw minimpi::ArgumentError(
            "AllgatherChannel needs one block size per comm rank");
    }
    init_layout(bytes_per_rank);
}

void AllgatherChannel::init_layout(
    std::span<const std::size_t> bytes_per_rank) {
    const int p = hc_->world().size();
    block_bytes_.assign(bytes_per_rank.begin(), bytes_per_rank.end());

    // Slot-major (node-major) layout with a sentinel for size queries.
    slot_offset_.resize(static_cast<std::size_t>(p) + 1);
    std::size_t off = 0;
    for (int s = 0; s < p; ++s) {
        slot_offset_[static_cast<std::size_t>(s)] = off;
        off += block_bytes_[static_cast<std::size_t>(hc_->rank_at(s))];
    }
    slot_offset_[static_cast<std::size_t>(p)] = off;
    total_bytes_ = off;

    // The node-shared result buffer: ONE copy per node (collective one-off).
    buf_ = NodeSharedBuffer(*hc_, total_bytes_);

    // Derived datatype describing the gathered data in RANK order relative
    // to the slot-major buffer (one-off; see repack_rank_order).
    {
        std::vector<std::pair<std::size_t, std::size_t>> extents;
        extents.reserve(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
            const auto s = static_cast<std::size_t>(hc_->slot_of(r));
            extents.emplace_back(slot_offset_[s],
                                 block_bytes_[static_cast<std::size_t>(r)]);
        }
        rank_order_layout_ = minimpi::Layout::indexed(std::move(extents));
    }

    // Largest whole-node block — every rank derives it from the (uniform)
    // slot-major layout, so it is a safe rank-uniform tuning key.
    for (int n = 0; n < hc_->num_nodes(); ++n) {
        const auto s0 = static_cast<std::size_t>(hc_->node_offset(n));
        const auto s1 = static_cast<std::size_t>(
            n + 1 < hc_->num_nodes() ? hc_->node_offset(n + 1) : p);
        max_node_block_ =
            std::max(max_node_block_, slot_offset_[s1] - slot_offset_[s0]);
    }

    // One-off bridge parameters for my leader role. Bridge rank order is
    // ascending comm rank of each node's leader l (the split key), which
    // matches node-major order on bridge 0 — node-major order IS ascending
    // lowest comm rank — but for l >= 1 a round-robin placement or a gapped
    // sub-communicator can permute it: the second leader of an early node
    // may outrank a later node's. Sort the per-node slices by their
    // leader's comm rank so bridge_{counts,displs}_[i] really describes
    // bridge rank i on every bridge, not just the primary one.
    if (hc_->is_leader() && hc_->num_nodes() > 1) {
        const int l = hc_->leader_index();
        std::vector<std::pair<int, std::pair<std::size_t, std::size_t>>> by_rank;
        for (int n = 0; n < hc_->num_nodes(); ++n) {
            const auto [first, last] = hc_->leader_slice(n, l);
            if (first == last) continue;  // node has no leader l
            const int s0 = hc_->node_offset(n) + first;
            const int s1 = hc_->node_offset(n) + last;
            const int leader = hc_->rank_at(hc_->node_offset(n) + l);
            by_rank.emplace_back(
                leader,
                std::pair<std::size_t, std::size_t>{
                    slot_offset_[static_cast<std::size_t>(s0)],
                    slot_offset_[static_cast<std::size_t>(s1)] -
                        slot_offset_[static_cast<std::size_t>(s0)]});
        }
        std::sort(by_rank.begin(), by_rank.end());
        for (const auto& [leader, slice] : by_rank) {
            bridge_displs_.push_back(slice.first);
            bridge_counts_.push_back(slice.second);
        }
        if (static_cast<int>(bridge_counts_.size()) != hc_->bridge().size()) {
            throw minimpi::CommError(
                "bridge layout disagrees with bridge communicator size");
        }
        for (std::size_t i = 0; i < bridge_counts_.size(); ++i) {
            max_bridge_count_ = std::max(max_bridge_count_, bridge_counts_[i]);
            if (i > 0 && bridge_displs_[i] !=
                             bridge_displs_[i - 1] + bridge_counts_[i - 1]) {
                bridge_contiguous_ = false;
            }
        }
    }

    // Resilience one-offs (robust mode only — the fast path pays nothing).
    minimpi::RankCtx& ctx = hc_->world().ctx();
    const RobustConfig* cfg = ctx.robust_cfg;
    if (cfg != nullptr && cfg->enabled) {
        chan_uid_ = robust::alloc_channel_uid(hc_->world());
        fail_shared_ = boot_fail_word(*hc_);
        // SHM allocation failure (pillar 4, second trigger): agree across
        // the whole job and degrade together, so no rank is left holding a
        // null partition while others use the window. Gated on an active
        // injection plan — fault-free runs send no agreement traffic.
        if (ctx.runtime->fault_plan().shm_fail_every > 0) {
            const bool agreed_fail = robust::agree_failure(
                hc_->world(), buf_.alloc_failed(), gen64(), *cfg, stats_);
            if (agreed_fail) downgrade_to_flat(/*refill=*/false);
        }
    }
}

void AllgatherChannel::repack_rank_order(void* dst) const {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    TraceSpan span(ctx, hytrace::Phase::Copy, "repack_rank_order");
    ShmBytesScope bytes_scope(ctx, span);
    rank_order_layout_.pack(ctx, data(), dst);
}

BridgeAlgo AllgatherChannel::tuned_bridge_algo(std::size_t& seg) const {
    const tuning::DecisionTable* table = hc_->world().ctx().tuned;
    if (table == nullptr) return BridgeAlgo::Allgatherv;  // the paper's default
    // Rank-uniform LocBruck consultation FIRST (multi-leader channels only):
    // keyed by (node count, largest WHOLE node block) — identical on every
    // leader, so either all of a node's leaders enter the combined exchange
    // or none does; a per-leader key here could let the primary's whole-
    // block writes overlap a divergently-resolved peer's slice writes. It
    // must also precede the 0-byte clamp below: max_bridge_count_ is PER
    // LEADER, and a leader whose own slices happen to be empty (e.g. an
    // allgatherv where only another leader's slices carry data) still has
    // to resolve kLbCombined together with its siblings — the primary's
    // bridge ships whole node blocks on everyone's behalf, and non-primary
    // leaders return without exchanging. The max_node_block_ > 0 guard
    // keeps the truly-empty exchange (total payload 0, rank-uniform) on
    // the default path. With one leader per node LocBruck degenerates to
    // BruckV, which the per-leader BridgeExchange row already covers.
    if (hc_->leaders_per_node() > 1 && max_node_block_ > 0) {
        const auto lc =
            table->lookup(tuning::Op::LocBruck, tuning::Shape::Net,
                          hc_->num_nodes(), max_node_block_);
        if (lc.has_value() && lc->algo == tuning::algo::kLbCombined) {
            return BridgeAlgo::LocBruck;
        }
    }
    // A 0-byte exchange has no geometric position on the size axis: log-
    // rounding would land on the smallest grid row, whose winner (possibly
    // Pipelined) is tuned for data that is not there. Nothing moves over
    // THIS bridge (max_bridge_count_ is the max over the whole bridge's
    // counts, so the clamp is uniform within the bridge comm), so take the
    // paper's default (mirrors SocketStager::resolve's 0-byte clamp).
    if (max_bridge_count_ == 0) return BridgeAlgo::Allgatherv;
    const auto c =
        table->lookup(tuning::Op::BridgeExchange, tuning::Shape::Net,
                      hc_->bridge().size(), max_bridge_count_);
    if (c.has_value()) {
        switch (c->algo) {
            case tuning::algo::kBrBcast:
                return BridgeAlgo::Bcast;
            case tuning::algo::kBrPipelined:
                if (seg == 0) seg = c->segment_bytes;
                seg = detail::clamp_segment(seg, kPipelineSegmentBytes,
                                            (max_bridge_count_ + 63) / 64,
                                            max_bridge_count_);
                return BridgeAlgo::Pipelined;
            case tuning::algo::kBrBruckV:
                return BridgeAlgo::BruckV;
            case tuning::algo::kBrNeighborExchange:
                return BridgeAlgo::NeighborExchange;
            case tuning::algo::kBrVendorAllgatherv:
            default:
                return BridgeAlgo::Allgatherv;
        }
    }
    return BridgeAlgo::Allgatherv;  // the paper's default
}

std::size_t AllgatherChannel::tuned_split_segment() const {
    const tuning::DecisionTable* table = hc_->world().ctx().tuned;
    if (table == nullptr) return 0;
    const auto c =
        table->lookup(tuning::Op::SplitSegment, tuning::Shape::Net,
                      hc_->bridge().size(), max_bridge_count_);
    if (c.has_value() && c->algo == tuning::algo::kSpSegmented) {
        return c->segment_bytes;
    }
    return 0;
}

void AllgatherChannel::bridge_exchange(BridgeAlgo algo,
                                       std::size_t seg_override) {
    const Comm& bridge = hc_->bridge();
    const int bp = bridge.size();
    const int br = bridge.rank();
    if (bp <= 1) return;
    minimpi::RankCtx& ctx = bridge.ctx();

    // An explicit set_pipeline_segment() wins; then the split-phase tuned
    // chunk; then the tuned/heuristic resolution below.
    std::size_t seg =
        pipeline_segment_ != 0 ? pipeline_segment_ : seg_override;
    if (algo == BridgeAlgo::Auto) algo = tuned_bridge_algo(seg);
    // Neighbor exchange pairs up adjacent blocks: it needs an even bridge
    // and abutting slices (one leader per node). The fallback is the
    // status-quo vendor allgatherv — a tuned table row from a nearby even
    // size may name NeighborExchange at an odd size, and any other
    // substitute could be slower than what the legacy path would have run.
    if (algo == BridgeAlgo::NeighborExchange &&
        (bp % 2 != 0 || !bridge_contiguous_)) {
        algo = BridgeAlgo::Allgatherv;
    }

    TraceSpan span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
    span.set_algo(bridge_algo_name(algo));
    span.set_comm(bp, br);
    BridgeBytesScope bytes_scope(ctx, span);

    switch (algo) {
        case BridgeAlgo::Auto:  // resolved above; unreachable
            return;
        case BridgeAlgo::Allgatherv: {
            // Fig. 4 line 26: MPI_Allgatherv(s_buf, ..., r_buf, bridgeComm);
            // every leader's slice is already in place in the shared buffer.
            minimpi::allgatherv(
                bridge, minimpi::kInPlace,
                bridge_counts_[static_cast<std::size_t>(br)], buf_.data(),
                bridge_counts_, bridge_displs_, minimpi::Datatype::Byte);
            return;
        }
        case BridgeAlgo::Bcast: {
            // N rooted broadcasts of the node blocks (the "regular
            // operation" alternative of Sect. 4.1).
            for (int n = 0; n < bp; ++n) {
                minimpi::bcast(bridge,
                               buf_.at(bridge_displs_[static_cast<std::size_t>(n)]),
                               bridge_counts_[static_cast<std::size_t>(n)],
                               minimpi::Datatype::Byte, n);
            }
            return;
        }
        case BridgeAlgo::Pipelined: {
            // Segmented ring (Traeff et al. '08): forward the previously
            // received block segment by segment while the next block
            // arrives, hiding the per-hop start-up cost of large blocks.
            // Tuned/explicit segment sizes still honor the bounded
            // pipeline depth, as in bcast_pipelined_chain.
            seg = detail::clamp_segment(seg, kPipelineSegmentBytes,
                                        (max_bridge_count_ + 63) / 64,
                                        max_bridge_count_);
            auto nsegs = [&](int blk) {
                return (bridge_counts_[static_cast<std::size_t>(blk)] + seg - 1) /
                       seg;
            };
            const int left = (br - 1 + bp) % bp;
            const int right = (br + 1) % bp;
            constexpr int tag = minimpi::detail::kTagHier + 0x10;
            for (int k = 0; k < bp - 1; ++k) {
                const int send_blk = (br - k + bp) % bp;
                const int recv_blk = (br - k - 1 + bp) % bp;
                const std::size_t ns = nsegs(send_blk);
                const std::size_t nr = nsegs(recv_blk);
                const std::size_t send_off =
                    bridge_displs_[static_cast<std::size_t>(send_blk)];
                const std::size_t recv_off =
                    bridge_displs_[static_cast<std::size_t>(recv_blk)];
                const std::size_t send_len =
                    bridge_counts_[static_cast<std::size_t>(send_blk)];
                const std::size_t recv_len =
                    bridge_counts_[static_cast<std::size_t>(recv_blk)];
                for (std::size_t s = 0; s < std::max(ns, nr); ++s) {
                    if (s < ns) {
                        const std::size_t o = s * seg;
                        minimpi::detail::send_bytes(
                            bridge, buf_.at(send_off + o),
                            std::min(seg, send_len - o), right, tag, true);
                    }
                    if (s < nr) {
                        const std::size_t o = s * seg;
                        minimpi::detail::recv_bytes(
                            bridge, buf_.at(recv_off + o),
                            std::min(seg, recv_len - o), left, tag, true);
                    }
                }
            }
            return;
        }
        case BridgeAlgo::BruckV: {
            // Bruck allgatherv on bridge point-to-point traffic: ceil(log2
            // bp) rounds of doubling aggregated sends through a rotated
            // scratch, then one unrotation pass into the shared buffer.
            // Unlike BridgeAlgo::Allgatherv this never enters the vendor
            // MPI_Allgatherv, so it skips the vector-collective tuning
            // penalty — the small-message winner the tables pick for the
            // Fig. 8 regime.
            detail::node_block_bruck(bridge, buf_.data(), bridge_displs_,
                                     bridge_counts_, 0x30);
            return;
        }
        case BridgeAlgo::LocBruck: {
            // Locality-aware Bruck (arXiv:2206.03564): the flat algorithm's
            // first ceil(log2 ppn) rounds move rank-adjacent data — here
            // that data already reached the contiguous node block over
            // shared memory (the ready phase), so those rounds collapse
            // into the block itself and every inter-node message ships one
            // aggregated whole-node block. Only the PRIMARY leaders'
            // bridge carries traffic (bridge rank == node index there:
            // node-major order is ascending lowest comm rank, which is
            // exactly bridge 0's split order under ANY rank placement);
            // with L leaders per node this replaces L interleaved
            // per-slice Bruck exchanges with one — an L-fold message-count
            // reduction at identical volume. Non-primary leaders are done:
            // the release phase makes every rank wait for the primary's
            // signal, which happens-after its whole-block writes.
            if (!hc_->is_primary_leader()) return;
            const int nn = hc_->num_nodes();
            const int p = hc_->world().size();
            std::vector<std::size_t> displs(static_cast<std::size_t>(nn));
            std::vector<std::size_t> counts(static_cast<std::size_t>(nn));
            for (int n = 0; n < nn; ++n) {
                const auto s0 = static_cast<std::size_t>(hc_->node_offset(n));
                const auto s1 = static_cast<std::size_t>(
                    n + 1 < nn ? hc_->node_offset(n + 1) : p);
                displs[static_cast<std::size_t>(n)] = slot_offset_[s0];
                counts[static_cast<std::size_t>(n)] =
                    slot_offset_[s1] - slot_offset_[s0];
            }
            detail::node_block_bruck(bridge, buf_.data(), displs, counts,
                                     0x50);
            return;
        }
        case BridgeAlgo::NeighborExchange: {
            // Neighbor exchange (Chen et al. '05, Open MPI's medium-size
            // allgather): round 0 pairs adjacent ranks; each later round
            // forwards the pair of blocks received in the previous round to
            // the alternating neighbor. bp/2 rounds in total — half the
            // start-ups of the ring at the same traffic volume, and no
            // scratch copies at all.
            constexpr int tag = minimpi::detail::kTagHier + 0x40;
            const bool even = (br % 2 == 0);
            int neighbor[2], offset[2], recv_from[2];
            if (even) {
                neighbor[0] = (br + 1) % bp;
                neighbor[1] = (br - 1 + bp) % bp;
                offset[0] = 2;
                offset[1] = bp - 2;
                recv_from[0] = recv_from[1] = br;
            } else {
                neighbor[0] = (br - 1 + bp) % bp;
                neighbor[1] = (br + 1) % bp;
                offset[0] = bp - 2;
                offset[1] = 2;
                recv_from[0] = recv_from[1] = neighbor[0];
            }
            {
                minimpi::Request rr = minimpi::detail::irecv_bytes(
                    bridge,
                    buf_.at(bridge_displs_[static_cast<std::size_t>(
                        neighbor[0])]),
                    bridge_counts_[static_cast<std::size_t>(neighbor[0])],
                    neighbor[0], tag, true);
                minimpi::detail::send_bytes(
                    bridge,
                    buf_.at(bridge_displs_[static_cast<std::size_t>(br)]),
                    bridge_counts_[static_cast<std::size_t>(br)], neighbor[0],
                    tag, true);
                rr.wait();
            }
            // Pairs are named by their (even) first block; slices abut, so
            // a pair is one contiguous span of the shared buffer.
            auto pair_len = [&](int b) {
                return bridge_counts_[static_cast<std::size_t>(b)] +
                       bridge_counts_[static_cast<std::size_t>(b + 1)];
            };
            int send_pair = even ? br : neighbor[0];
            for (int i = 1; i < bp / 2; ++i) {
                const int j = i % 2;
                recv_from[j] = (recv_from[j] + offset[j]) % bp;
                const int rp = recv_from[j];
                minimpi::Request rr = minimpi::detail::irecv_bytes(
                    bridge,
                    buf_.at(bridge_displs_[static_cast<std::size_t>(rp)]),
                    pair_len(rp), neighbor[j], tag + i, true);
                minimpi::detail::send_bytes(
                    bridge,
                    buf_.at(bridge_displs_[static_cast<std::size_t>(
                        send_pair)]),
                    pair_len(send_pair), neighbor[j], tag + i, true);
                rr.wait();
                send_pair = rp;
            }
            return;
        }
    }
}

bool AllgatherChannel::robust_bridge_exchange() {
    const Comm& bridge = hc_->bridge();
    const int bp = bridge.size();
    const int br = bridge.rank();
    if (bp <= 1) return true;
    minimpi::RankCtx& ctx = bridge.ctx();
    TraceSpan span(ctx, hytrace::Phase::Bridge, "robust_bridge_exchange");
    span.set_algo("pairwise_reliable");
    span.set_comm(bp, br);
    BridgeBytesScope bytes_scope(ctx, span);
    const RobustConfig& cfg = *ctx.robust_cfg;
    const std::uint64_t gen = gen64();
    bool ok = true;
    // Pairwise ring: round k sends my slice to (br+k) while receiving
    // (br-k)'s slice — each round is one full-duplex reliable transfer, so
    // dropped/corrupted frames are retried instead of hanging the ring.
    // On exhaustion we keep serving later rounds (the engine always
    // terminates) and let agree_failure publish the verdict.
    for (int k = 1; k < bp; ++k) {
        const int dst = (br + k) % bp;
        const int src = (br - k + bp) % bp;
        const auto sb = static_cast<std::size_t>(br);
        const auto rb = static_cast<std::size_t>(src);
        if (!robust::reliable_xfer(
                bridge, buf_.at(bridge_displs_[sb]), bridge_counts_[sb], dst,
                buf_.at(bridge_displs_[rb]), bridge_counts_[rb], src,
                robust::kOpAllgather + ((k - 1) & 0xFF), gen, cfg, stats_)) {
            ok = false;
        }
    }
    return ok;
}

bool AllgatherChannel::run_pipelined(const PipelinePlan& plan,
                                     const RobustConfig* cfg) {
    const std::size_t chunk = plan.chunk_bytes;
    const int nn = hc_->num_nodes();
    const int p = hc_->world().size();
    // Per-node block lengths from the slot-major layout — available on
    // every rank (with one leader per node, required by plan(), the node
    // block IS the leader's bridge slice).
    std::vector<std::size_t> node_len(static_cast<std::size_t>(nn));
    std::size_t max_len = 0;
    for (int n = 0; n < nn; ++n) {
        const auto s0 = static_cast<std::size_t>(hc_->node_offset(n));
        const auto s1 = static_cast<std::size_t>(
            n + 1 < nn ? hc_->node_offset(n + 1) : p);
        node_len[static_cast<std::size_t>(n)] =
            slot_offset_[s1] - slot_offset_[s0];
        max_len = std::max(max_len, node_len[static_cast<std::size_t>(n)]);
    }
    const std::size_t nchunks = (max_len + chunk - 1) / chunk;
    // Pass c ships slice [c*chunk, (c+1)*chunk) of EVERY node block at
    // once, so the bridge stays balanced (full-duplex) and each pass lands
    // as one node-level release flag. Pass lengths taper as short blocks
    // run dry; every rank derives the identical vector.
    std::vector<std::size_t> pass_len(nchunks, 0);
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t off = c * chunk;
        for (int n = 0; n < nn; ++n) {
            const std::size_t len = node_len[static_cast<std::size_t>(n)];
            if (off < len) pass_len[c] += std::min(chunk, len - off);
        }
    }
    if (!hc_->is_leader()) {
        stager_.consume_chunks(sync_, pass_len, plan.leaf);
        return true;
    }
    const Comm& bridge = hc_->bridge();
    const int bp = bridge.size();
    const int br = bridge.rank();
    minimpi::RankCtx& ctx = bridge.ctx();
    const int node_slot = sync_.chunk_slot_node();
    TraceSpan span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
    span.set_algo(cfg != nullptr ? "reliable_chunked" : "chunked_allgatherv");
    span.set_comm(bp, br);
    span.set_chunks(nchunks);
    HYTRACE_COUNTER(ctx, chunks, nchunks);
    BridgeBytesScope bytes_scope(ctx, span);
    bool ok = true;
    std::vector<std::size_t> counts(static_cast<std::size_t>(bp));
    std::vector<std::size_t> displs(static_cast<std::size_t>(bp));
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t off = c * chunk;
        for (std::size_t n = 0; n < static_cast<std::size_t>(bp); ++n) {
            const std::size_t len = bridge_counts_[n];
            counts[n] = off < len ? std::min(chunk, len - off) : 0;
            displs[n] = bridge_displs_[n] + std::min(off, len);
        }
        if (cfg == nullptr) {
            minimpi::allgatherv(bridge, minimpi::kInPlace,
                                counts[static_cast<std::size_t>(br)],
                                buf_.data(), counts, displs,
                                minimpi::Datatype::Byte);
        } else {
            // Each chunk's frames live under their own generation stamp so
            // a duplicated frame of chunk i can never be accepted as chunk
            // j (varying the op code instead would wrap at 256 chunks).
            const std::uint64_t gen =
                robust::chunked_gen(gen64(), static_cast<std::uint64_t>(c));
            for (int k = 1; k < bp; ++k) {
                const int dst = (br + k) % bp;
                const int src = (br - k + bp) % bp;
                const auto sb = static_cast<std::size_t>(br);
                const auto rb = static_cast<std::size_t>(src);
                if (!robust::reliable_xfer(
                        bridge, buf_.at(displs[sb]), counts[sb], dst,
                        buf_.at(displs[rb]), counts[rb], src,
                        robust::kOpAllgather + ((k - 1) & 0xFF), gen, *cfg,
                        stats_)) {
                    ok = false;
                }
            }
        }
        // Publish this pass down the node/socket tree: the consumers'
        // leaf phase for pass c overlaps our bridge transfer of pass c+1.
        sync_.chunk_signal(node_slot);
    }
    return ok;
}

void AllgatherChannel::downgrade_to_flat(bool refill) {
    const Comm& world = hc_->world();
    minimpi::RankCtx& ctx = world.ctx();
    degraded_flat_ = true;
    stats_.flat_downgrades += 1;
    ctx.robust_stats.flat_downgrades += 1;
    minimpi::trace_instant(ctx, hytrace::Phase::Robust, "flat_downgrade");
    HYTRACE_COUNTER(ctx, degradations, 1);
    // Counts by world rank, displacements preserving the slot-major layout
    // so block_of()/data() keep the exact same offsets.
    flat_counts_ = block_bytes_;
    flat_displs_.resize(block_bytes_.size());
    for (std::size_t r = 0; r < block_bytes_.size(); ++r) {
        flat_displs_[r] = slot_offset_[static_cast<std::size_t>(
            hc_->slot_of(static_cast<int>(r)))];
    }
    if (ctx.payload_mode == minimpi::PayloadMode::Real) {
        flat_buf_.assign(total_bytes_, std::byte{0});
    }
    if (refill) {
        // Mid-run downgrade: this generation's contributions were already
        // written into the (still valid) shared segment; salvage our own
        // block and redo the whole exchange flat so the result stays
        // byte-identical to pure MPI.
        const auto me = static_cast<std::size_t>(world.rank());
        ctx.copy_bytes(flat_at(flat_displs_[me]), buf_.at(flat_displs_[me]),
                       block_bytes_[me]);
        run_flat();
    }
}

void AllgatherChannel::run_flat() {
    const Comm& world = hc_->world();
    minimpi::allgatherv(
        world, minimpi::kInPlace,
        block_bytes_[static_cast<std::size_t>(world.rank())], flat_at(0),
        flat_counts_, flat_displs_, minimpi::Datatype::Byte);
}

void AllgatherChannel::run(SyncPolicy sync, BridgeAlgo algo) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    TraceSpan root(ctx, hytrace::Phase::Coll, "hy_allgather");
    root.set_coll("Hy_Allgather");
    root.set_bytes(total_bytes_);
    root.set_comm(hc_->world().size(), hc_->world().rank());
    const RobustConfig* cfg = ctx.robust_cfg;
    const bool robust = cfg != nullptr && cfg->enabled;
    ++generation_;
    if (degraded_flat_) {
        // Rung 2 reached earlier: callers already write through my_block()
        // into the private buffer; one flat allgatherv completes the round.
        run_flat();
        return;
    }
    if (hc_->num_nodes() == 1) {
        // Fig. 4 lines 29-30/37-38: single node — one on-node sync makes
        // every partition visible; there is no inter-node traffic at all.
        sync_.full_sync(sync);
        // On-node NUMA phase: remote-socket readers pay for pulling the
        // gathered result across the socket boundary (or their socket
        // leader mirrors it once when staging is selected).
        stager_.distribute(total_bytes_, staging_);
        return;
    }
    // Fig. 4 line 25/34: leaders wait until all partitions on their node
    // are initialized.
    sync_.ready_phase(sync);
    const PipelinePlan pp =
        stager_.plan(staging_, total_bytes_, /*multi_node=*/true, chunk_bytes_);
    if (pp.pipelined) {
        root.set_algo("pipelined");
        const bool ok = run_pipelined(pp, robust ? cfg : nullptr);
        if (robust && hc_->is_leader() &&
            robust::agree_failure(hc_->bridge(), !ok, gen64(), *cfg, stats_)) {
            fail_shared_->fail_gen.store(gen64());
        }
        // The trailing release keeps the degradation ladder and release
        // epochs identical to the whole-message rounds (it is one fixed-cost
        // flag wave: the per-chunk flags already published the data).
        sync_.release_phase(sync);
        if (robust && fail_shared_ != nullptr &&
            fail_shared_->fail_gen.load() == gen64()) {
            downgrade_to_flat(/*refill=*/true);
        }
        return;
    }
    if (!robust) {
        if (hc_->is_leader()) {
            bridge_exchange(algo);
        }
        // Fig. 4 line 27/35: children wait until the exchange finished.
        sync_.release_phase(sync);
        stager_.distribute(total_bytes_, staging_);
        return;
    }
    if (hc_->is_leader()) {
        const bool ok = robust_bridge_exchange();
        // Every bridge spans every node (leaders_per_node is clamped to the
        // smallest node), so a per-bridge agreement reaches every node via
        // its member leader; the failure word makes it node-visible.
        if (robust::agree_failure(hc_->bridge(), !ok, gen64(), *cfg, stats_)) {
            fail_shared_->fail_gen.store(gen64());
        }
    }
    sync_.release_phase(sync);
    if (fail_shared_->fail_gen.load() == gen64()) {
        downgrade_to_flat(/*refill=*/true);
    }
}

void AllgatherChannel::begin(SyncPolicy sync, BridgeAlgo algo) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    TraceSpan root(ctx, hytrace::Phase::Coll, "hy_allgather_begin");
    root.set_coll("Hy_Allgather_begin");
    root.set_bytes(total_bytes_);
    root.set_comm(hc_->world().size(), hc_->world().rank());
    const RobustConfig* cfg = ctx.robust_cfg;
    const bool robust = cfg != nullptr && cfg->enabled;
    ++generation_;
    if (degraded_flat_) {
        // Flat path: the exchange is deferred to finish() so callers still
        // get a compute window on their own partition in between.
        began_flat_ = true;
        return;
    }
    if (hc_->num_nodes() == 1) {
        sync_.ready_phase(sync);
        return;
    }
    sync_.ready_phase(sync);
    if (hc_->is_leader()) {
        // CAUTION: the leader's compute window only opens after its
        // transfers; children's opens immediately — that asymmetry is the
        // paper's "idle cores" discussion and exactly what overlap buys.
        if (!robust) {
            bridge_exchange(algo);
        } else {
            const bool ok = robust_bridge_exchange();
            if (robust::agree_failure(hc_->bridge(), !ok, gen64(), *cfg,
                                      stats_)) {
                fail_shared_->fail_gen.store(gen64());
            }
        }
    }
}

minimpi::CollRequest AllgatherChannel::start(SyncPolicy sync,
                                             BridgeAlgo algo) {
    const Comm& world = hc_->world();
    minimpi::RankCtx& ctx = world.ctx();
    if (round_active_) {
        throw minimpi::RequestError(
            "Hy_Allgather split-phase round already in flight on this "
            "channel; wait() on it before the next start()");
    }
    const RobustConfig* cfg = ctx.robust_cfg;
    if (cfg != nullptr && cfg->enabled && !degraded_flat_) {
        // The reliable (ARQ) frame paths are main-clock by design: complete
        // the whole round at post and hand back a finished request.
        run(sync, algo);
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_iallgather", {}));
    }
    TraceSpan root(ctx, hytrace::Phase::Coll, "hy_allgather_start");
    root.set_coll("Hy_Allgather_start");
    root.set_bytes(total_bytes_);
    root.set_comm(world.size(), world.rank());
    ++generation_;
    round_active_ = true;
    if (degraded_flat_) {
        // Flat path: defer the exchange to wait() so callers still get a
        // compute window on their own partition in between.
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_iallgather", [this] {
                round_active_ = false;
                run_flat();
            }));
    }
    started_sync_ = sync;
    auto on_wait = [this] {
        round_active_ = false;
        minimpi::RankCtx& wctx = hc_->world().ctx();
        TraceSpan fin(wctx, hytrace::Phase::Coll, "hy_allgather_finish");
        fin.set_coll("Hy_Allgather_finish");
        fin.set_comm(hc_->world().size(), hc_->world().rank());
        sync_.release_phase(started_sync_);
        // Same rationale as finish(): children already overlapped, so a
        // staged mirror would re-serialize them behind the socket leader.
        stager_.distribute(total_bytes_, SocketStaging::Flat);
    };
    if (hc_->num_nodes() == 1) {
        // Single node: there is no bridge traffic to overlap — defer the
        // WHOLE publishing sync to wait(). Same one-barrier shape as run()
        // (exact vtime identity on 1-socket nodes) and the widest compute
        // window.
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_iallgather", [this] {
                round_active_ = false;
                minimpi::RankCtx& wctx = hc_->world().ctx();
                TraceSpan fin(wctx, hytrace::Phase::Coll,
                              "hy_allgather_finish");
                fin.set_coll("Hy_Allgather_finish");
                fin.set_comm(hc_->world().size(), hc_->world().rank());
                sync_.full_sync(started_sync_);
                stager_.distribute(total_bytes_, SocketStaging::Flat);
            }));
    }
    sync_.ready_phase(sync);
    if (!hc_->is_leader()) {
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_iallgather", std::move(on_wait)));
    }
    started_algo_ = algo;
    started_seg_ = tuned_split_segment();
    if (task_ == nullptr) {
        // One-off: the engine worker and private matching context persist
        // across rounds (the lazy creation is collective over the bridge —
        // every leader's first start() happens in the same round).
        task_ = minimpi::detail::create_icoll(
            hc_->bridge(), "hy_iallgather",
            [this] { bridge_exchange(started_algo_, started_seg_); },
            std::move(on_wait));
    }
    minimpi::detail::arm_icoll(*task_);
    minimpi::detail::drive_icoll(*task_);
    return minimpi::CollRequest(task_);
}

void AllgatherChannel::finish(SyncPolicy sync) {
    minimpi::RankCtx& fctx = hc_->world().ctx();
    TraceSpan root(fctx, hytrace::Phase::Coll, "hy_allgather_finish");
    root.set_coll("Hy_Allgather_finish");
    root.set_comm(hc_->world().size(), hc_->world().rank());
    if (began_flat_) {
        began_flat_ = false;
        run_flat();
        return;
    }
    sync_.release_phase(sync);
    // The split-phase variant keeps the flat on-node distribution: children
    // already overlap compute with the leaders' transfers, and a staged
    // mirror would re-serialize them behind the socket leader.
    stager_.distribute(total_bytes_, SocketStaging::Flat);
    minimpi::RankCtx& ctx = hc_->world().ctx();
    const RobustConfig* cfg = ctx.robust_cfg;
    if (cfg != nullptr && cfg->enabled && hc_->num_nodes() > 1 &&
        fail_shared_ != nullptr && fail_shared_->fail_gen.load() == gen64()) {
        downgrade_to_flat(/*refill=*/true);
    }
}

namespace detail {

void node_block_bruck(const minimpi::Comm& bridge, std::byte* base,
                      std::span<const std::size_t> displs,
                      std::span<const std::size_t> counts, int tag_base) {
    const int bp = bridge.size();
    const int br = bridge.rank();
    if (bp <= 1) return;
    minimpi::RankCtx& ctx = bridge.ctx();
    // Rotated prefix sums: scratch slot i holds the block of rank (br+i)%bp,
    // so every send is one contiguous doubling prefix. Zero-count blocks
    // collapse to empty slots and unrotate as 0-byte copies.
    std::vector<std::size_t> slot_off(static_cast<std::size_t>(bp) + 1, 0);
    for (int i = 0; i < bp; ++i) {
        slot_off[static_cast<std::size_t>(i) + 1] =
            slot_off[static_cast<std::size_t>(i)] +
            counts[static_cast<std::size_t>((br + i) % bp)];
    }
    minimpi::detail::Scratch tmp_s(ctx,
                                   slot_off[static_cast<std::size_t>(bp)]);
    std::byte* tmp = tmp_s.data();
    ctx.copy_bytes(tmp,
                   minimpi::detail::at(base,
                                       displs[static_cast<std::size_t>(br)]),
                   counts[static_cast<std::size_t>(br)]);
    const int tag = minimpi::detail::kTagHier + tag_base;
    int round = 0;
    for (int mask = 1; mask < bp; mask <<= 1, ++round) {
        const int cnt = std::min(mask, bp - mask);
        const int dst = (br - mask + bp) % bp;
        const int src = (br + mask) % bp;
        const std::size_t send_len = slot_off[static_cast<std::size_t>(cnt)];
        const std::size_t recv_off = slot_off[static_cast<std::size_t>(mask)];
        const std::size_t recv_len =
            slot_off[static_cast<std::size_t>(std::min(mask + cnt, bp))] -
            recv_off;
        minimpi::Request rr = minimpi::detail::irecv_bytes(
            bridge, minimpi::detail::at(tmp, recv_off), recv_len, src,
            tag + round, true);
        minimpi::detail::send_bytes(bridge, tmp, send_len, dst, tag + round,
                                    true);
        rr.wait();
    }
    // Un-rotate into the destination; our own block (i == 0) is already in
    // place.
    for (int i = 1; i < bp; ++i) {
        const int owner = (br + i) % bp;
        ctx.copy_bytes(
            minimpi::detail::at(base, displs[static_cast<std::size_t>(owner)]),
            minimpi::detail::at(tmp, slot_off[static_cast<std::size_t>(i)]),
            counts[static_cast<std::size_t>(owner)]);
    }
}

}  // namespace detail

}  // namespace hympi
