#include "hybrid/hy_bcast.h"

#include <algorithm>

#include "hybrid/hy_trace.h"
#include "minimpi/p2p.h"

namespace hympi {

namespace {
std::size_t pad64(std::size_t x) { return (x + 63) & ~std::size_t{63}; }

/// Tag of the engine-fill completion token (root -> node leader). Carried
/// on the fill task's private explicit-sequence context, so it can never
/// collide with collective-tag traffic regardless of the value.
constexpr int kTagFill = 0xC000;
}  // namespace

BcastChannel::BcastChannel(const HierComm& hc, std::size_t bytes)
    : hc_(&hc),
      buf_(hc, 2 * pad64(bytes)),
      sync_(hc),
      stager_(hc),
      bytes_(bytes),
      bytes_padded_(pad64(bytes)) {
    // Resilience one-offs (robust mode only — the fast path pays nothing).
    minimpi::RankCtx& ctx = hc.world().ctx();
    const RobustConfig* cfg = ctx.robust_cfg;
    if (cfg != nullptr && cfg->enabled) {
        chan_uid_ = robust::alloc_channel_uid(hc.world());
        fail_shared_ = boot_fail_word(hc);
        if (ctx.runtime->fault_plan().shm_fail_every > 0) {
            const bool agreed_fail = robust::agree_failure(
                hc.world(), buf_.alloc_failed(), gen64(), *cfg, stats_);
            if (agreed_fail) downgrade_to_flat(0, /*refill=*/false);
        }
    }
}

void BcastChannel::downgrade_to_flat(int root, bool refill) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    degraded_flat_ = true;
    stats_.flat_downgrades += 1;
    ctx.robust_stats.flat_downgrades += 1;
    minimpi::trace_instant(ctx, hytrace::Phase::Robust, "flat_downgrade");
    HYTRACE_COUNTER(ctx, degradations, 1);
    if (ctx.payload_mode == minimpi::PayloadMode::Real) {
        flat_buf_.assign(2 * bytes_padded_, std::byte{0});
    }
    if (refill) {
        // Mid-run downgrade: the root's payload sits in its node's (still
        // valid) shared write slot; salvage it into the private slot, then
        // rebroadcast flat so the round's result matches pure MPI.
        if (hc_->world().rank() == root) {
            const std::size_t off = (epoch_ % 2) * bytes_padded_;
            ctx.copy_bytes(flat_at(off), buf_.at(off), bytes_);
        }
        run_flat(root);
    }
}

void BcastChannel::run_flat(int root) {
    minimpi::bcast(hc_->world(), flat_at((epoch_ % 2) * bytes_padded_),
                   bytes_, minimpi::Datatype::Byte, root);
}

void BcastChannel::run(int root, SyncPolicy sync) {
    const Comm& world = hc_->world();
    if (root < 0 || root >= world.size()) {
        throw minimpi::ArgumentError("Hy_Bcast root out of range");
    }
    minimpi::RankCtx& ctx = world.ctx();
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_bcast");
    root_span.set_coll("Hy_Bcast");
    root_span.set_bytes(bytes_);
    root_span.set_comm(world.size(), world.rank());
    const RobustConfig* cfg = ctx.robust_cfg;
    const bool robust = cfg != nullptr && cfg->enabled;
    ++generation_;
    if (degraded_flat_) {
        run_flat(root);
        ++epoch_;
        return;
    }
    std::byte* slot = write_buffer();

    if (hc_->num_nodes() == 1) {
        // Fig. 6 lines 9-10: single node — the root's store to the shared
        // segment is the broadcast; one sync publishes it.
        sync_.full_sync(sync);
        // On-node NUMA phase: remote-socket readers pull the payload
        // across (or their socket leader mirrors it once when staged).
        stager_.distribute(bytes_, staging_);
        ++epoch_;
        return;
    }

    const int root_node = hc_->node_of_rank(root);

    // The paper's example (Fig. 5) has the root as a node leader. In the
    // general case the root may be a child: its payload is already in the
    // node-shared segment, but the node's leader must not ship it before
    // the root's store completes — the root's node runs a ready sync.
    // (With the light-weight flag sync every node runs it: the leader-only
    // release below does not order a child's next write against the other
    // children's reads, so the ready round supplies that edge.)
    const bool root_is_child =
        hc_->rank_at(hc_->node_offset(root_node)) != root;
    if (sync == SyncPolicy::Flags) {
        sync_.ready_phase(sync);
    } else if (hc_->my_node() == root_node && root_is_child) {
        sync_.ready_phase(sync);
    }

    // Chunked single-copy pipeline: the per-chunk bridge broadcast and the
    // per-chunk release flags replace the whole-message bridge + staged
    // mirror, so bridge recv of chunk i+1 overlaps the cross-socket mirror
    // of chunk i and the leaf reads of chunk i-1. The trailing release
    // round keeps the epoch bookkeeping and the degradation ladder on the
    // same protocol as the whole-message path.
    const PipelinePlan pp =
        stager_.plan(staging_, bytes_, /*multi_node=*/true, chunk_bytes_);
    if (pp.pipelined) {
        root_span.set_algo("pipelined");
        root_span.set_chunks((bytes_ + pp.chunk_bytes - 1) / pp.chunk_bytes);
        run_pipelined(root_node, pp, robust ? cfg : nullptr);
        sync_.release_phase(sync);
        if (robust && fail_shared_ != nullptr &&
            fail_shared_->fail_gen.load() == gen64()) {
            downgrade_to_flat(root, /*refill=*/true);
        }
        ++epoch_;
        return;
    }

    // Fig. 6 line 6: broadcast across nodes over the bridge (leader 0 only
    // — a broadcast has no slices to hand to extra leaders).
    if (hc_->is_primary_leader()) {
        TraceSpan span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
        span.set_algo(robust ? "reliable_linear" : "bcast");
        span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
        BridgeBytesScope bytes_scope(ctx, span);
        if (!robust) {
            minimpi::bcast(hc_->bridge(), slot, bytes_,
                           minimpi::Datatype::Byte, root_node);
        } else {
            // Reliable linear broadcast: the root node's leader ships the
            // slot to every other node's leader with bounded retransmit
            // recovery (bridge rank == node index on the primary bridge).
            const Comm& bridge = hc_->bridge();
            bool ok = true;
            if (bridge.rank() == root_node) {
                for (int n = 0; n < bridge.size(); ++n) {
                    if (n == root_node) continue;
                    if (!robust::reliable_send(bridge, slot, bytes_, n,
                                               robust::kOpBcast, gen64(),
                                               *cfg, stats_)) {
                        ok = false;
                    }
                }
            } else {
                ok = robust::reliable_recv(bridge, slot, bytes_, root_node,
                                           robust::kOpBcast, gen64(), *cfg,
                                           stats_);
            }
            if (robust::agree_failure(bridge, !ok, gen64(), *cfg, stats_)) {
                fail_shared_->fail_gen.store(gen64());
            }
        }
    }

    // Fig. 6 lines 7/13: everyone waits until the broadcast data is ready.
    sync_.release_phase(sync);
    // On-node NUMA phase (inert under robust mode and on 1-socket nodes).
    stager_.distribute(bytes_, staging_);
    if (robust && fail_shared_ != nullptr &&
        fail_shared_->fail_gen.load() == gen64()) {
        downgrade_to_flat(root, /*refill=*/true);
    }
    ++epoch_;
}

void BcastChannel::run_pipelined(int root_node, const PipelinePlan& plan,
                                 const RobustConfig* cfg) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    std::byte* slot = write_buffer();
    const std::size_t chunk = plan.chunk_bytes;
    const std::size_t nchunks = (bytes_ + chunk - 1) / chunk;
    if (!hc_->is_primary_leader()) {
        stager_.consume_chunks(sync_, bytes_, chunk, plan.leaf);
        return;
    }
    const Comm& bridge = hc_->bridge();
    TraceSpan span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
    span.set_algo(cfg != nullptr ? "reliable_chunked" : "chunked_bcast");
    span.set_comm(bridge.size(), bridge.rank());
    span.set_chunks(nchunks);
    HYTRACE_COUNTER(ctx, chunks, nchunks);
    BridgeBytesScope bytes_scope(ctx, span);
    const int node_slot = sync_.chunk_slot_node();
    bool ok = true;
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t off = c * chunk;
        const std::size_t len = std::min(chunk, bytes_ - off);
        if (cfg == nullptr) {
            minimpi::bcast(bridge, slot + off, len, minimpi::Datatype::Byte,
                           root_node);
        } else {
            // Per-chunk reliable transfers: each chunk's frames carry their
            // own generation stamp (base + chunk index in the bits above
            // the per-round counter), so a duplicated frame of chunk i can
            // never be accepted as chunk j — the sequence-numbered flags
            // and the frame layer's gen/length checksums stay consistent.
            const std::uint64_t g =
                robust::chunked_gen(gen64(), static_cast<std::uint64_t>(c));
            if (bridge.rank() == root_node) {
                for (int n = 0; n < bridge.size(); ++n) {
                    if (n == root_node) continue;
                    if (!robust::reliable_send(bridge, slot + off, len, n,
                                               robust::kOpBcast, g, *cfg,
                                               stats_)) {
                        ok = false;
                    }
                }
            } else if (!robust::reliable_recv(bridge, slot + off, len,
                                              root_node, robust::kOpBcast, g,
                                              *cfg, stats_)) {
                ok = false;
            }
        }
        // Publish the chunk the moment it lands: consumers on this node
        // start mirroring/reading it while the next chunk is in flight.
        sync_.chunk_signal(node_slot);
    }
    if (cfg != nullptr &&
        robust::agree_failure(bridge, !ok, gen64(), *cfg, stats_)) {
        fail_shared_->fail_gen.store(gen64());
    }
}

minimpi::CollRequest BcastChannel::start(int root, SyncPolicy sync,
                                         std::optional<const void*> fill) {
    const Comm& world = hc_->world();
    if (root < 0 || root >= world.size()) {
        throw minimpi::ArgumentError("Hy_Bcast root out of range");
    }
    minimpi::RankCtx& ctx = world.ctx();
    if (round_active_) {
        throw minimpi::RequestError(
            "Hy_Bcast split-phase round already in flight on this channel; "
            "wait() on it before the next start()");
    }
    const bool fill_round = fill.has_value();
    const bool i_fill = fill_round && world.rank() == root;
    const RobustConfig* cfg = ctx.robust_cfg;
    if (cfg != nullptr && cfg->enabled && !degraded_flat_) {
        if (i_fill) ctx.copy_bytes(write_buffer(), *fill, bytes_);
        run(root, sync);
        return minimpi::CollRequest(
            minimpi::detail::make_complete_icoll(world, "hy_ibcast", {}));
    }
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_bcast_start");
    root_span.set_coll("Hy_Bcast_start");
    root_span.set_bytes(bytes_);
    root_span.set_comm(world.size(), world.rank());
    ++generation_;
    round_active_ = true;
    started_sync_ = sync;
    started_root_ = root;
    started_fill_ = fill_round;
    started_fill_src_ = fill_round ? *fill : nullptr;
    if (fill_round) {
        // The fill task's rendezvous context (explicit-sequence namespace,
        // keyed by the generation) — the token's matching context on both
        // the root's send and the leader's receive. Must track the formula
        // in create_icoll; the cached task's gate is updated every round.
        started_fill_ctx_ = (std::uint64_t{1} << 63) |
                            (std::uint64_t{1} << 62) |
                            (world.state().ctx_coll << 20) |
                            (generation_ & 0xFFFFFu);
    }
    if (degraded_flat_) {
        if (i_fill) ctx.copy_bytes(write_buffer(), *fill, bytes_);
        // Flat path: the broadcast itself is deferred to wait(), preserving
        // the compute window the split phase promises.
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_ibcast", [this, root] {
                round_active_ = false;
                run_flat(root);
                ++epoch_;
            }));
    }
    auto on_wait = [this] {
        round_active_ = false;
        minimpi::RankCtx& wctx = hc_->world().ctx();
        TraceSpan fin(wctx, hytrace::Phase::Coll, "hy_bcast_finish");
        fin.set_coll("Hy_Bcast_finish");
        fin.set_comm(hc_->world().size(), hc_->world().rank());
        sync_.release_phase(started_sync_);
        // Flat on-node copy, as in the allgather split phase: a staged
        // mirror would re-serialize the already-overlapped children.
        stager_.distribute(bytes_, SocketStaging::Flat);
        ++epoch_;
    };
    if (hc_->num_nodes() == 1) {
        // Single node: the root's store IS the broadcast — defer the WHOLE
        // publishing sync to wait(). Same one-barrier shape as run() (exact
        // vtime identity on 1-socket nodes) and the widest compute window.
        auto on_wait_local = [this] {
            round_active_ = false;
            minimpi::RankCtx& wctx = hc_->world().ctx();
            TraceSpan fin(wctx, hytrace::Phase::Coll, "hy_bcast_finish");
            fin.set_coll("Hy_Bcast_finish");
            fin.set_comm(hc_->world().size(), hc_->world().rank());
            sync_.full_sync(started_sync_);
            stager_.distribute(bytes_, SocketStaging::Flat);
            ++epoch_;
        };
        if (i_fill) {
            // The root's staging copy rides an engine sub-clock here too.
            // No completion token is needed: the deferred full sync above
            // is what publishes the slot, every reader runs it inside its
            // wait(), and the root's own wait() joins this task before it
            // participates — so in wall and virtual time alike no reader
            // can pass the sync until the copy has landed. Left on the
            // main clock instead, the copy's cost skews the root and the
            // full sync's clock merge spreads that skew to the whole node
            // every round.
            if (fill_task_ == nullptr) {
                fill_task_ = minimpi::detail::create_icoll(
                    world, "hy_ibcast_fill",
                    [this] {
                        hc_->world().ctx().copy_bytes(
                            started_slot_, started_fill_src_, bytes_);
                    },
                    on_wait_local, /*match_seq=*/generation_);
            } else {
                fill_task_->gate.rdv_ctx = started_fill_ctx_;
            }
            started_slot_ = write_buffer();
            minimpi::detail::arm_icoll(*fill_task_);
            minimpi::detail::drive_icoll(*fill_task_);
            return minimpi::CollRequest(fill_task_);
        }
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_ibcast", std::move(on_wait_local)));
    }
    started_root_node_ = hc_->node_of_rank(root);
    started_slot_ = write_buffer();
    // Same pre-exchange ordering edges as run(): with flags every node runs
    // the ready round; with barriers only a child root's node needs it. A
    // fill round widens this to every node under BOTH policies, and the
    // root collects: the engine-side slot writes this round posts (the
    // root's fill copy, the leaders' bridge receives) happen-after every
    // on-node rank's reads of the slot's previous contents exactly because
    // each collector observes all ready flags before arming its task.
    const bool root_is_child =
        hc_->rank_at(hc_->node_offset(started_root_node_)) != root;
    if (fill_round) {
        sync_.ready_phase(sync, /*collector=*/i_fill);
    } else if (sync == SyncPolicy::Flags) {
        sync_.ready_phase(sync);
    } else if (hc_->my_node() == started_root_node_ && root_is_child) {
        sync_.ready_phase(sync);
    }
    if (!hc_->is_primary_leader()) {
        if (i_fill) {
            // Non-leader root: the staging copy runs as its own engine
            // task, then hands the node leader a zero-byte token on the
            // task's private context — the leader's bridge body consumes
            // it before shipping the slot, so the copy's cost rides the
            // sub-clock (hidden behind caller compute) while the bridge
            // still observes its completion in both wall and virtual time.
            if (fill_task_ == nullptr) {
                fill_task_ = minimpi::detail::create_icoll(
                    hc_->world(), "hy_ibcast_fill",
                    [this] {
                        minimpi::RankCtx& fctx = hc_->world().ctx();
                        fctx.copy_bytes(started_slot_, started_fill_src_,
                                        bytes_);
                        minimpi::detail::send_bytes(
                            hc_->world(), nullptr, 0,
                            hc_->rank_at(hc_->node_offset(started_root_node_)),
                            kTagFill, /*coll_ctx=*/true);
                    },
                    on_wait, /*match_seq=*/generation_);
            } else {
                fill_task_->gate.rdv_ctx = started_fill_ctx_;
            }
            minimpi::detail::arm_icoll(*fill_task_);
            minimpi::detail::drive_icoll(*fill_task_);
            return minimpi::CollRequest(fill_task_);
        }
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_ibcast", std::move(on_wait)));
    }
    if (task_ == nullptr) {
        task_ = minimpi::detail::create_icoll(
            hc_->bridge(), "hy_ibcast",
            [this] {
                minimpi::RankCtx& bctx = hc_->bridge().ctx();
                if (started_fill_ && hc_->my_node() == started_root_node_) {
                    if (hc_->world().rank() == started_root_) {
                        // Leader root: fill the slot right here, ahead of
                        // the bridge send — same sub-clock, no token.
                        bctx.copy_bytes(started_slot_, started_fill_src_,
                                        bytes_);
                    } else {
                        // The round's root is another rank of this node:
                        // absorb its completion token before shipping the
                        // slot (the arrival stamp carries the copy's end
                        // time into this task's sub-clock).
                        minimpi::detail::irecv_bytes_ctx(
                            hc_->world(), nullptr, 0, started_root_,
                            kTagFill, started_fill_ctx_)
                            .wait();
                    }
                }
                TraceSpan span(bctx, hytrace::Phase::Bridge,
                               "bridge_exchange");
                span.set_algo("bcast");
                span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
                BridgeBytesScope bytes_scope(bctx, span);
                minimpi::bcast(hc_->bridge(), started_slot_, bytes_,
                               minimpi::Datatype::Byte, started_root_node_);
            },
            std::move(on_wait));
    }
    minimpi::detail::arm_icoll(*task_);
    minimpi::detail::drive_icoll(*task_);
    return minimpi::CollRequest(task_);
}

}  // namespace hympi
