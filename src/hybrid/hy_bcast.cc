#include "hybrid/hy_bcast.h"

#include "hybrid/hy_trace.h"

namespace hympi {

namespace {
std::size_t pad64(std::size_t x) { return (x + 63) & ~std::size_t{63}; }
}  // namespace

BcastChannel::BcastChannel(const HierComm& hc, std::size_t bytes)
    : hc_(&hc),
      buf_(hc, 2 * pad64(bytes)),
      sync_(hc),
      stager_(hc),
      bytes_(bytes),
      bytes_padded_(pad64(bytes)) {
    // Resilience one-offs (robust mode only — the fast path pays nothing).
    minimpi::RankCtx& ctx = hc.world().ctx();
    const RobustConfig* cfg = ctx.robust_cfg;
    if (cfg != nullptr && cfg->enabled) {
        chan_uid_ = robust::alloc_channel_uid(hc.world());
        fail_shared_ = boot_fail_word(hc);
        if (ctx.runtime->fault_plan().shm_fail_every > 0) {
            const bool agreed_fail = robust::agree_failure(
                hc.world(), buf_.alloc_failed(), gen64(), *cfg, stats_);
            if (agreed_fail) downgrade_to_flat(0, /*refill=*/false);
        }
    }
}

void BcastChannel::downgrade_to_flat(int root, bool refill) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    degraded_flat_ = true;
    stats_.flat_downgrades += 1;
    ctx.robust_stats.flat_downgrades += 1;
    minimpi::trace_instant(ctx, hytrace::Phase::Robust, "flat_downgrade");
    HYTRACE_COUNTER(ctx, degradations, 1);
    if (ctx.payload_mode == minimpi::PayloadMode::Real) {
        flat_buf_.assign(2 * bytes_padded_, std::byte{0});
    }
    if (refill) {
        // Mid-run downgrade: the root's payload sits in its node's (still
        // valid) shared write slot; salvage it into the private slot, then
        // rebroadcast flat so the round's result matches pure MPI.
        if (hc_->world().rank() == root) {
            const std::size_t off = (epoch_ % 2) * bytes_padded_;
            ctx.copy_bytes(flat_at(off), buf_.at(off), bytes_);
        }
        run_flat(root);
    }
}

void BcastChannel::run_flat(int root) {
    minimpi::bcast(hc_->world(), flat_at((epoch_ % 2) * bytes_padded_),
                   bytes_, minimpi::Datatype::Byte, root);
}

void BcastChannel::run(int root, SyncPolicy sync) {
    const Comm& world = hc_->world();
    if (root < 0 || root >= world.size()) {
        throw minimpi::ArgumentError("Hy_Bcast root out of range");
    }
    minimpi::RankCtx& ctx = world.ctx();
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_bcast");
    root_span.set_coll("Hy_Bcast");
    root_span.set_bytes(bytes_);
    root_span.set_comm(world.size(), world.rank());
    const RobustConfig* cfg = ctx.robust_cfg;
    const bool robust = cfg != nullptr && cfg->enabled;
    ++generation_;
    if (degraded_flat_) {
        run_flat(root);
        ++epoch_;
        return;
    }
    std::byte* slot = write_buffer();

    if (hc_->num_nodes() == 1) {
        // Fig. 6 lines 9-10: single node — the root's store to the shared
        // segment is the broadcast; one sync publishes it.
        sync_.full_sync(sync);
        // On-node NUMA phase: remote-socket readers pull the payload
        // across (or their socket leader mirrors it once when staged).
        stager_.distribute(bytes_, staging_);
        ++epoch_;
        return;
    }

    const int root_node = hc_->node_of_rank(root);

    // The paper's example (Fig. 5) has the root as a node leader. In the
    // general case the root may be a child: its payload is already in the
    // node-shared segment, but the node's leader must not ship it before
    // the root's store completes — the root's node runs a ready sync.
    // (With the light-weight flag sync every node runs it: the leader-only
    // release below does not order a child's next write against the other
    // children's reads, so the ready round supplies that edge.)
    const bool root_is_child =
        hc_->rank_at(hc_->node_offset(root_node)) != root;
    if (sync == SyncPolicy::Flags) {
        sync_.ready_phase(sync);
    } else if (hc_->my_node() == root_node && root_is_child) {
        sync_.ready_phase(sync);
    }

    // Fig. 6 line 6: broadcast across nodes over the bridge (leader 0 only
    // — a broadcast has no slices to hand to extra leaders).
    if (hc_->is_primary_leader()) {
        TraceSpan span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
        span.set_algo(robust ? "reliable_linear" : "bcast");
        span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
        BridgeBytesScope bytes_scope(ctx, span);
        if (!robust) {
            minimpi::bcast(hc_->bridge(), slot, bytes_,
                           minimpi::Datatype::Byte, root_node);
        } else {
            // Reliable linear broadcast: the root node's leader ships the
            // slot to every other node's leader with bounded retransmit
            // recovery (bridge rank == node index on the primary bridge).
            const Comm& bridge = hc_->bridge();
            bool ok = true;
            if (bridge.rank() == root_node) {
                for (int n = 0; n < bridge.size(); ++n) {
                    if (n == root_node) continue;
                    if (!robust::reliable_send(bridge, slot, bytes_, n,
                                               robust::kOpBcast, gen64(),
                                               *cfg, stats_)) {
                        ok = false;
                    }
                }
            } else {
                ok = robust::reliable_recv(bridge, slot, bytes_, root_node,
                                           robust::kOpBcast, gen64(), *cfg,
                                           stats_);
            }
            if (robust::agree_failure(bridge, !ok, gen64(), *cfg, stats_)) {
                fail_shared_->fail_gen.store(gen64());
            }
        }
    }

    // Fig. 6 lines 7/13: everyone waits until the broadcast data is ready.
    sync_.release_phase(sync);
    // On-node NUMA phase (inert under robust mode and on 1-socket nodes).
    stager_.distribute(bytes_, staging_);
    if (robust && fail_shared_ != nullptr &&
        fail_shared_->fail_gen.load() == gen64()) {
        downgrade_to_flat(root, /*refill=*/true);
    }
    ++epoch_;
}

}  // namespace hympi
