#include "hybrid/hy_bcast.h"

namespace hympi {

namespace {
std::size_t pad64(std::size_t x) { return (x + 63) & ~std::size_t{63}; }
}  // namespace

BcastChannel::BcastChannel(const HierComm& hc, std::size_t bytes)
    : hc_(&hc),
      buf_(hc, 2 * pad64(bytes)),
      sync_(hc),
      bytes_(bytes),
      bytes_padded_(pad64(bytes)) {}

void BcastChannel::run(int root, SyncPolicy sync) {
    const Comm& world = hc_->world();
    if (root < 0 || root >= world.size()) {
        throw minimpi::ArgumentError("Hy_Bcast root out of range");
    }
    std::byte* slot = write_buffer();

    if (hc_->num_nodes() == 1) {
        // Fig. 6 lines 9-10: single node — the root's store to the shared
        // segment is the broadcast; one sync publishes it.
        sync_.full_sync(sync);
        ++epoch_;
        return;
    }

    const int root_node = hc_->node_of_rank(root);

    // The paper's example (Fig. 5) has the root as a node leader. In the
    // general case the root may be a child: its payload is already in the
    // node-shared segment, but the node's leader must not ship it before
    // the root's store completes — the root's node runs a ready sync.
    // (With the light-weight flag sync every node runs it: the leader-only
    // release below does not order a child's next write against the other
    // children's reads, so the ready round supplies that edge.)
    const bool root_is_child =
        hc_->rank_at(hc_->node_offset(root_node)) != root;
    if (sync == SyncPolicy::Flags) {
        sync_.ready_phase(sync);
    } else if (hc_->my_node() == root_node && root_is_child) {
        sync_.ready_phase(sync);
    }

    // Fig. 6 line 6: broadcast across nodes over the bridge (leader 0 only
    // — a broadcast has no slices to hand to extra leaders).
    if (hc_->is_primary_leader()) {
        minimpi::bcast(hc_->bridge(), slot, bytes_, minimpi::Datatype::Byte,
                       root_node);
    }

    // Fig. 6 lines 7/13: everyone waits until the broadcast data is ready.
    sync_.release_phase(sync);
    ++epoch_;
}

}  // namespace hympi
