#include "hybrid/halo.h"

#include "minimpi/coll_internal.h"

namespace hympi {

using minimpi::detail::at;
using minimpi::detail::irecv_bytes;
using minimpi::detail::kTagHier;
using minimpi::detail::send_bytes;

namespace {
constexpr int kTagLeftward = kTagHier + 0x30;   // halo moving toward lower ranks
constexpr int kTagRightward = kTagHier + 0x31;  // halo moving toward higher ranks
}  // namespace

HaloExchange1D::HaloExchange1D(const HierComm& hc, std::size_t cells_per_rank,
                               std::size_t halo_width, HaloBackend backend)
    : hc_(&hc),
      cells_(cells_per_rank),
      halo_(halo_width),
      backend_(backend),
      sync_(hc) {
    const minimpi::Comm& world = hc.world();
    if (halo_ > cells_) {
        throw minimpi::ArgumentError("halo wider than the owned cell block");
    }
    if (backend_ == HaloBackend::Hybrid && !hc.smp_contiguous()) {
        throw minimpi::ArgumentError(
            "hybrid halo exchange needs SMP-contiguous rank placement (the "
            "node slab maps consecutive ranks to consecutive cells)");
    }
    const int p = world.size();
    left_rank_ = (world.rank() - 1 + p) % p;
    right_rank_ = (world.rank() + 1) % p;

    if (backend_ == HaloBackend::Hybrid) {
        const auto node_cells =
            static_cast<std::size_t>(hc.node_size(hc.my_node())) * cells_;
        slab_doubles_ = node_cells + 2 * halo_;
        slab_ = NodeSharedBuffer(hc, 2 * slab_doubles_ * sizeof(double));
    } else if (world.ctx().payload_mode == minimpi::PayloadMode::Real) {
        priv_.assign(2 * (cells_ + 2 * halo_), 0.0);
    }
}

double* HaloExchange1D::slab_base(int s) const {
    return reinterpret_cast<double*>(
        slab_.at(static_cast<std::size_t>(s) * slab_doubles_ * sizeof(double)));
}

double* HaloExchange1D::slab_cells(int s, int local_idx) const {
    double* base = slab_base(s);
    if (base == nullptr) return nullptr;
    return base + halo_ + static_cast<std::size_t>(local_idx) * cells_;
}

double* HaloExchange1D::write_cells() {
    if (backend_ == HaloBackend::Hybrid) {
        const int local = hc_->shm().rank();
        return slab_cells(write_slab(), local);
    }
    if (priv_.empty()) return nullptr;
    return priv_.data() +
           static_cast<std::size_t>(write_slab()) * (cells_ + 2 * halo_) +
           halo_;
}

const double* HaloExchange1D::cells() const {
    if (backend_ == HaloBackend::Hybrid) {
        return slab_cells(pub_slab(), hc_->shm().rank());
    }
    if (priv_.empty()) return nullptr;
    return priv_.data() +
           static_cast<std::size_t>(pub_slab()) * (cells_ + 2 * halo_) + halo_;
}

const double* HaloExchange1D::left_halo() const {
    if (backend_ == HaloBackend::Hybrid) {
        const int local = hc_->shm().rank();
        if (local > 0) {
            // Alias the on-node left neighbor's rightmost cells: no copy.
            const double* n = slab_cells(pub_slab(), local - 1);
            return n ? n + (cells_ - halo_) : nullptr;
        }
        double* base = slab_base(pub_slab());
        return base;  // node ghost
    }
    return priv_.empty() ? nullptr : cells() - halo_;
}

const double* HaloExchange1D::right_halo() const {
    if (backend_ == HaloBackend::Hybrid) {
        const int local = hc_->shm().rank();
        if (local + 1 < hc_->shm().size()) {
            return slab_cells(pub_slab(), local + 1);  // alias, no copy
        }
        double* base = slab_base(pub_slab());
        return base ? base + (slab_doubles_ - halo_) : nullptr;
    }
    return priv_.empty() ? nullptr : cells() + cells_;
}

void HaloExchange1D::publish_and_exchange(SyncPolicy sync) {
    const minimpi::Comm& world = hc_->world();
    const std::size_t hb = halo_ * sizeof(double);
    ++epoch_;  // the slab just written becomes the published one

    if (backend_ == HaloBackend::PureMpi) {
        // Every rank exchanges with BOTH neighbors — on-node neighbors
        // included, each a real message through the shm transport.
        double* base =
            priv_.empty()
                ? nullptr
                : priv_.data() + static_cast<std::size_t>(pub_slab()) *
                                     (cells_ + 2 * halo_);
        double* my = base ? base + halo_ : nullptr;
        // Rightward: my last H cells -> right neighbor's left ghost.
        minimpi::Request r1 =
            irecv_bytes(world, base, hb, left_rank_, kTagRightward, true);
        send_bytes(world, my ? my + (cells_ - halo_) : nullptr, hb,
                   right_rank_, kTagRightward, true);
        r1.wait();
        // Leftward: my first H cells -> left neighbor's right ghost.
        minimpi::Request r2 =
            irecv_bytes(world, my ? my + cells_ : nullptr, hb, right_rank_,
                        kTagLeftward, true);
        send_bytes(world, my, hb, left_rank_, kTagLeftward, true);
        r2.wait();
        return;
    }

    // Hybrid: only node-edge ranks touch the network; everyone then syncs
    // on node so the aliased reads see the published slab.
    const int s = pub_slab();
    const int local = hc_->shm().rank();
    const int ppn = hc_->shm().size();
    double* base = slab_base(s);
    double* my = slab_cells(s, local);

    // Post receives, then send, then wait — a rank can hold BOTH edge roles
    // (single-rank node), so interleaving the phases avoids self-deadlock.
    minimpi::Request r_right, r_left;
    if (local == ppn - 1) {
        // The right node's first rank fills my node's right ghost.
        r_right = irecv_bytes(
            world, base ? base + (slab_doubles_ - halo_) : nullptr, hb,
            right_rank_, kTagLeftward, true);
    }
    if (local == 0) {
        r_left = irecv_bytes(world, base, hb, left_rank_, kTagRightward, true);
    }
    if (local == ppn - 1) {
        send_bytes(world, my ? my + (cells_ - halo_) : nullptr, hb,
                   right_rank_, kTagRightward, true);
    }
    if (local == 0) {
        send_bytes(world, my, hb, left_rank_, kTagLeftward, true);
    }
    r_right.wait();
    r_left.wait();
    sync_.full_sync(sync);
}

minimpi::CollRequest HaloExchange1D::start_exchange(SyncPolicy sync) {
    if (backend_ != HaloBackend::Hybrid) {
        throw minimpi::ArgumentError(
            "split-phase halo exchange requires the hybrid backend (pure "
            "MPI has no engine phase to overlap)");
    }
    const minimpi::Comm& world = hc_->world();
    const std::size_t hb = halo_ * sizeof(double);
    ++epoch_;
    const int s = pub_slab();
    const int local = hc_->shm().rank();
    const int ppn = hc_->shm().size();
    auto on_wait = [this, sync] { sync_.full_sync(sync); };

    if (local != 0 && local != ppn - 1) {
        // Interior ranks carry no network traffic; only the publishing
        // sync remains, and that runs owner-side at wait().
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_halo", std::move(on_wait)));
    }
    // Only the node-edge ranks post engine tasks, so the per-comm posting
    // counter cannot be used for matching — the halo's own epoch counter
    // is the explicit sequence instead (identical on every rank, and
    // monotonic so in-flight epochs cannot cross-match).
    double* base = slab_base(s);
    double* my = slab_cells(s, local);
    return minimpi::CollRequest(minimpi::detail::post_icoll(
        world, "hy_halo",
        [this, world, base, my, hb, local, ppn] {
            minimpi::Request r_right, r_left;
            if (local == ppn - 1) {
                r_right = irecv_bytes(
                    world, base ? base + (slab_doubles_ - halo_) : nullptr,
                    hb, right_rank_, kTagLeftward, true);
            }
            if (local == 0) {
                r_left = irecv_bytes(world, base, hb, left_rank_,
                                     kTagRightward, true);
            }
            if (local == ppn - 1) {
                send_bytes(world, my ? my + (cells_ - halo_) : nullptr, hb,
                           right_rank_, kTagRightward, true);
            }
            if (local == 0) {
                send_bytes(world, my, hb, left_rank_, kTagLeftward, true);
            }
            r_right.wait();
            r_left.wait();
        },
        std::move(on_wait), epoch_));
}

}  // namespace hympi
