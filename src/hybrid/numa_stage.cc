#include "hybrid/numa_stage.h"

#include <algorithm>
#include <vector>

#include "hybrid/hy_trace.h"
#include "tuning/decision.h"

namespace hympi {

SocketStager::SocketStager(const HierComm& hc) : hc_(&hc) {
    const RobustConfig* cfg = hc.world().ctx().robust_cfg;
    // Staging regions are defined per whole node, so multi-leader slicing
    // is out of scope; the robust path keeps its pre-socket cost structure
    // so recovery traces stay comparable across socket counts.
    active_ = hc.has_socket_level() && hc.leaders_per_node() == 1 &&
              (cfg == nullptr || !cfg->enabled);
}

SocketStaging SocketStager::resolve(SocketStaging mode,
                                    std::size_t bytes) const {
    // A pipelined round stages its chunks through the socket mirror when
    // the socket model applies; everywhere else its leaf phase is flat.
    if (mode == SocketStaging::Pipelined) {
        return active_ ? SocketStaging::Staged : SocketStaging::Flat;
    }
    if (mode != SocketStaging::Auto) return mode;
    if (!active_) return SocketStaging::Flat;
    // Clamp before the tuned-table log-rounding: a 0-byte query has no
    // geometric position on the size axis (and the legacy threshold below
    // is trivially false), so it resolves like the smallest positive size
    // instead of leaning on lookup fallback behaviour.
    if (bytes == 0) bytes = 1;
    const tuning::DecisionTable* table = hc_->world().ctx().tuned;
    if (table != nullptr) {
        const auto c = table->lookup(tuning::Op::SocketStaging,
                                     tuning::Shape::Shm, hc_->shm().size(),
                                     bytes);
        if (c.has_value()) {
            return c->algo == tuning::algo::kSsStaged ? SocketStaging::Staged
                                                      : SocketStaging::Flat;
        }
    }
    // Legacy heuristic: staging pays a socket barrier and a serialized
    // mirror copy; it wins once the contended per-reader crossing
    // dominates those fixed costs.
    return (bytes >= 16 * 1024 && hc_->socket().size() >= 2)
               ? SocketStaging::Staged
               : SocketStaging::Flat;
}

PipelinePlan SocketStager::plan(SocketStaging mode, std::size_t bytes,
                                bool multi_node,
                                std::size_t chunk_override) const {
    PipelinePlan p;
    p.leaf = resolve(mode, bytes);
    // The chunked path overlaps the bridge transfer with the on-node
    // copies, so it needs a bridge (multi-node) and whole-node staging
    // slices (one leader per node); a single-node or multi-leader round
    // falls back to the whole-message modes above.
    if (bytes == 0 || !multi_node || hc_ == nullptr ||
        hc_->leaders_per_node() != 1) {
        return p;
    }
    std::size_t chunk = chunk_override;
    if (mode == SocketStaging::Auto) {
        // Auto engages pipelining only on a tuned ChunkSize entry (and
        // only where the socket model applies — with free leaf reads the
        // chunked bridge has nothing to overlap): no table, no pipeline,
        // so untouched profiles keep their exact pre-pipeline clocks.
        if (!active_) return p;
        const tuning::DecisionTable* table = hc_->world().ctx().tuned;
        if (table == nullptr) return p;
        const auto c =
            table->lookup(tuning::Op::ChunkSize, tuning::Shape::Shm,
                          hc_->shm().size(), bytes == 0 ? 1 : bytes);
        if (!c.has_value() || c->algo != tuning::algo::kCsPipelined) return p;
        if (chunk == 0) chunk = c->segment_bytes;
    } else if (mode != SocketStaging::Pipelined) {
        return p;
    } else if (chunk == 0) {
        const tuning::DecisionTable* table = hc_->world().ctx().tuned;
        if (table != nullptr) {
            const auto c =
                table->lookup(tuning::Op::ChunkSize, tuning::Shape::Shm,
                              hc_->shm().size(), bytes == 0 ? 1 : bytes);
            if (c.has_value() && c->segment_bytes != 0) {
                chunk = c->segment_bytes;
            }
        }
    }
    p.pipelined = true;
    p.chunk_bytes = detail::clamp_segment(chunk, kDefaultChunkBytes, 64, bytes);
    return p;
}

void SocketStager::distribute_chunk(std::size_t chunk_len,
                                    SocketStaging leaf) {
    if (!active_ || chunk_len == 0) return;
    if (hc_->my_socket() == hc_->home_socket()) return;
    minimpi::RankCtx& ctx = hc_->world().ctx();
    if (leaf == SocketStaging::Staged) {
        if (hc_->is_socket_leader()) {
            // One chunk-sized crossing into the socket-local mirror; the
            // per-chunk socket flag (signalled by the caller) replaces the
            // whole-message socket barrier.
            ctx.charge_xsocket_read(chunk_len, 1);
            ctx.charge_memcpy(chunk_len);
        }
    } else {
        ctx.charge_xsocket_read(chunk_len, hc_->socket().size());
    }
}

void SocketStager::consume_chunks(NodeSync& sync, std::size_t bytes,
                                  std::size_t chunk_bytes,
                                  SocketStaging leaf) {
    const std::size_t nchunks = (bytes + chunk_bytes - 1) / chunk_bytes;
    std::vector<std::size_t> lens(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
        lens[c] = std::min(chunk_bytes, bytes - c * chunk_bytes);
    }
    consume_chunks(sync, lens, leaf);
}

void SocketStager::consume_chunks(NodeSync& sync,
                                  std::span<const std::size_t> chunk_lens,
                                  SocketStaging leaf) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    const std::size_t nchunks = chunk_lens.size();
    std::size_t bytes = 0;
    for (const std::size_t l : chunk_lens) bytes += l;
    const bool remote =
        active_ && hc_->my_socket() != hc_->home_socket();
    const bool staged_leaf = leaf == SocketStaging::Staged && remote;
    const int node_slot = sync.chunk_slot_node();
    TraceSpan span(ctx, hytrace::Phase::Copy, "pipeline_consume");
    span.set_algo(staged_leaf ? "staged" : "flat");
    span.set_bytes(bytes);
    span.set_chunks(nchunks);
    HYTRACE_COUNTER(ctx, chunks, nchunks);
    auto chunk_len = [&](std::size_t c) { return chunk_lens[c]; };
    if (staged_leaf && hc_->is_socket_leader()) {
        // Mirror each chunk across as it lands, then re-publish it on this
        // socket's flag: the mirror of chunk i overlaps the producer's
        // bridge transfer of chunk i+1 in virtual time.
        const int sslot = sync.chunk_slot_socket(hc_->my_socket());
        const std::uint64_t base = sync.chunk_mark(node_slot);
        for (std::size_t c = 0; c < nchunks; ++c) {
            sync.chunk_wait(node_slot, base + c + 1);
            TraceSpan mirror(ctx, hytrace::Phase::Copy, "pipeline_chunk");
            mirror.set_bytes(chunk_len(c));
            distribute_chunk(chunk_len(c), SocketStaging::Staged);
            sync.chunk_signal(sslot);
        }
        sync.chunk_skip(node_slot, nchunks);
    } else if (staged_leaf) {
        // Remote-socket peer: read each chunk from the socket-local
        // mirror as the socket leader publishes it (local reads, free).
        const int sslot = sync.chunk_slot_socket(hc_->my_socket());
        const std::uint64_t base = sync.chunk_mark(sslot);
        for (std::size_t c = 0; c < nchunks; ++c) {
            sync.chunk_wait(sslot, base + c + 1);
        }
        sync.chunk_skip(sslot, nchunks);
        sync.chunk_skip(node_slot, nchunks);
    } else {
        // Flat leaf (or home socket): follow the node-level chunk flags;
        // remote-socket readers pull each chunk across contended.
        const std::uint64_t base = sync.chunk_mark(node_slot);
        for (std::size_t c = 0; c < nchunks; ++c) {
            sync.chunk_wait(node_slot, base + c + 1);
            distribute_chunk(chunk_len(c), SocketStaging::Flat);
        }
        sync.chunk_skip(node_slot, nchunks);
    }
}

void SocketStager::distribute(std::size_t bytes, SocketStaging mode) {
    if (!active_ || bytes == 0) return;
    if (hc_->my_socket() == hc_->home_socket()) return;
    minimpi::RankCtx& ctx = hc_->world().ctx();
    mode = resolve(mode, bytes);
    TraceSpan span(ctx, hytrace::Phase::Copy, "numa_distribute");
    span.set_algo(mode == SocketStaging::Staged ? "staged" : "flat");
    span.set_bytes(bytes);
    if (mode == SocketStaging::Staged) {
        if (hc_->is_socket_leader()) {
            // One bulk crossing into the socket-local mirror region.
            ctx.charge_xsocket_read(bytes, 1);
            ctx.charge_memcpy(bytes);
        }
        // Socket-scoped publication: children read the mirror locally.
        minimpi::barrier(hc_->socket());
    } else {
        // Every reader pulls the result across, sharing the inter-socket
        // link with its socket's co-readers.
        ctx.charge_xsocket_read(bytes, hc_->socket().size());
    }
}

void SocketStager::reduce_gather(std::size_t vec_bytes, SocketStaging mode) {
    if (!active_ || vec_bytes == 0) return;
    minimpi::RankCtx& ctx = hc_->world().ctx();
    mode = resolve(mode, vec_bytes);
    const int ppn = hc_->shm().size();
    const int mine = hc_->socket().size();
    TraceSpan span(ctx, hytrace::Phase::Copy, "numa_reduce_gather");
    span.set_algo(mode == SocketStaging::Staged ? "staged" : "flat");
    span.set_bytes(vec_bytes);
    if (mode == SocketStaging::Staged) {
        // Two-level reduction: the socket partial is local; only the
        // leaders cross, each pulling the other sockets' partials once.
        if (hc_->is_socket_leader() && hc_->sockets_on_node() > 1) {
            ctx.charge_xsocket_read(
                vec_bytes *
                    static_cast<std::size_t>(hc_->sockets_on_node() - 1),
                1);
        }
    } else if (ppn > mine) {
        // Striping over all on-node inputs pulls the other sockets' share
        // of every stripe across, contended by this socket's co-workers.
        ctx.charge_xsocket_read(
            vec_bytes * static_cast<std::size_t>(ppn - mine) /
                static_cast<std::size_t>(ppn),
            mine);
    }
}

}  // namespace hympi
