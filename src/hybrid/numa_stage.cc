#include "hybrid/numa_stage.h"

#include "hybrid/hy_trace.h"
#include "tuning/decision.h"

namespace hympi {

SocketStager::SocketStager(const HierComm& hc) : hc_(&hc) {
    const RobustConfig* cfg = hc.world().ctx().robust_cfg;
    // Staging regions are defined per whole node, so multi-leader slicing
    // is out of scope; the robust path keeps its pre-socket cost structure
    // so recovery traces stay comparable across socket counts.
    active_ = hc.has_socket_level() && hc.leaders_per_node() == 1 &&
              (cfg == nullptr || !cfg->enabled);
}

SocketStaging SocketStager::resolve(SocketStaging mode,
                                    std::size_t bytes) const {
    if (mode != SocketStaging::Auto) return mode;
    if (!active_) return SocketStaging::Flat;
    const tuning::DecisionTable* table = hc_->world().ctx().tuned;
    if (table != nullptr) {
        const auto c = table->lookup(tuning::Op::SocketStaging,
                                     tuning::Shape::Shm, hc_->shm().size(),
                                     bytes);
        if (c.has_value()) {
            return c->algo == tuning::algo::kSsStaged ? SocketStaging::Staged
                                                      : SocketStaging::Flat;
        }
    }
    // Legacy heuristic: staging pays a socket barrier and a serialized
    // mirror copy; it wins once the contended per-reader crossing
    // dominates those fixed costs.
    return (bytes >= 16 * 1024 && hc_->socket().size() >= 2)
               ? SocketStaging::Staged
               : SocketStaging::Flat;
}

void SocketStager::distribute(std::size_t bytes, SocketStaging mode) {
    if (!active_ || bytes == 0) return;
    if (hc_->my_socket() == hc_->home_socket()) return;
    minimpi::RankCtx& ctx = hc_->world().ctx();
    mode = resolve(mode, bytes);
    TraceSpan span(ctx, hytrace::Phase::Copy, "numa_distribute");
    span.set_algo(mode == SocketStaging::Staged ? "staged" : "flat");
    span.set_bytes(bytes);
    if (mode == SocketStaging::Staged) {
        if (hc_->is_socket_leader()) {
            // One bulk crossing into the socket-local mirror region.
            ctx.charge_xsocket_read(bytes, 1);
            ctx.charge_memcpy(bytes);
        }
        // Socket-scoped publication: children read the mirror locally.
        minimpi::barrier(hc_->socket());
    } else {
        // Every reader pulls the result across, sharing the inter-socket
        // link with its socket's co-readers.
        ctx.charge_xsocket_read(bytes, hc_->socket().size());
    }
}

void SocketStager::reduce_gather(std::size_t vec_bytes, SocketStaging mode) {
    if (!active_ || vec_bytes == 0) return;
    minimpi::RankCtx& ctx = hc_->world().ctx();
    mode = resolve(mode, vec_bytes);
    const int ppn = hc_->shm().size();
    const int mine = hc_->socket().size();
    TraceSpan span(ctx, hytrace::Phase::Copy, "numa_reduce_gather");
    span.set_algo(mode == SocketStaging::Staged ? "staged" : "flat");
    span.set_bytes(vec_bytes);
    if (mode == SocketStaging::Staged) {
        // Two-level reduction: the socket partial is local; only the
        // leaders cross, each pulling the other sockets' partials once.
        if (hc_->is_socket_leader() && hc_->sockets_on_node() > 1) {
            ctx.charge_xsocket_read(
                vec_bytes *
                    static_cast<std::size_t>(hc_->sockets_on_node() - 1),
                1);
        }
    } else if (ppn > mine) {
        // Striping over all on-node inputs pulls the other sockets' share
        // of every stripe across, contended by this socket's co-workers.
        ctx.charge_xsocket_read(
            vec_bytes * static_cast<std::size_t>(ppn - mine) /
                static_cast<std::size_t>(ppn),
            mine);
    }
}

}  // namespace hympi
