#include "hybrid/hy_extra.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "hybrid/hy_trace.h"
#include "minimpi/coll_internal.h"

namespace hympi {

using minimpi::datatype_size;
using minimpi::detail::apply_op;
using minimpi::detail::Scratch;

namespace {

/// Element stripe [lo, hi) owned by @p idx of @p n workers.
std::pair<std::size_t, std::size_t> stripe(std::size_t count, int n, int idx) {
    return {count * static_cast<std::size_t>(idx) / static_cast<std::size_t>(n),
            count * (static_cast<std::size_t>(idx) + 1) /
                static_cast<std::size_t>(n)};
}

/// Active robust config, or null on the legacy fast path.
const RobustConfig* robust_on(const minimpi::RankCtx& ctx) {
    const RobustConfig* cfg = ctx.robust_cfg;
    return (cfg != nullptr && cfg->enabled) ? cfg : nullptr;
}

/// The extra channels have no flat fallback: a failed node-shared
/// allocation in robust mode surfaces as a typed error instead of null
/// partition pointers (legacy mode already threw inside NodeSharedBuffer).
void require_alloc(const NodeSharedBuffer& buf, const char* what) {
    if (buf.alloc_failed()) {
        throw RobustError(StatusCode::AllocFailed,
                          std::string(what) + ": " + buf.status().detail);
    }
}

}  // namespace

void RobustChannelState::init(const minimpi::Comm& world) {
    if (robust_on(world.ctx()) != nullptr) {
        uid = robust::alloc_channel_uid(world);
    }
}

// ---- AllreduceChannel ----

AllreduceChannel::AllreduceChannel(const HierComm& hc, std::size_t count,
                                   Datatype dt)
    : hc_(&hc),
      buf_(hc, (static_cast<std::size_t>(hc.shm().size()) + 1) * count *
                   datatype_size(dt)),
      sync_(hc),
      stager_(hc),
      count_(count),
      dt_(dt),
      vec_bytes_(count * datatype_size(dt)) {
    rs_.init(hc.world());
    require_alloc(buf_, "Hy_Allreduce");
}

std::byte* AllreduceChannel::my_input() const {
    return buf_.at(static_cast<std::size_t>(hc_->shm().rank()) * vec_bytes_);
}

std::byte* AllreduceChannel::result() const {
    return buf_.at(static_cast<std::size_t>(hc_->shm().size()) * vec_bytes_);
}

void AllreduceChannel::run(Op op, SyncPolicy sync) {
    const Comm& shm = hc_->shm();
    minimpi::RankCtx& ctx = shm.ctx();
    const int ppn = shm.size();
    const std::size_t ds = datatype_size(dt_);
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_allreduce");
    root_span.set_coll("Hy_Allreduce");
    root_span.set_bytes(vec_bytes_);
    root_span.set_comm(hc_->world().size(), hc_->world().rank());
    ++rs_.generation;

    // Inputs written -> visible to all on-node ranks.
    sync_.full_sync(sync);

    if (hc_->num_nodes() > 1) {
        const PipelinePlan pp = stager_.plan(staging_, vec_bytes_,
                                             /*multi_node=*/true, chunk_bytes_);
        if (pp.pipelined) {
            // XBRC-style chunked round: the per-rank chunk-ready flags
            // replace ready_phase (the leader bridges chunk 0 while the
            // node is still reducing chunk 1); the trailing release keeps
            // the epoch bookkeeping identical to whole-message rounds.
            root_span.set_algo("pipelined");
            run_pipelined(op, pp, robust_on(ctx));
            sync_.release_phase(sync);
            return;
        }
    }

    // Cooperative on-node reduction: every rank reduces its stripe of
    // elements across all on-node contributions — parallel work instead of
    // a leader bottleneck.
    const auto [lo, hi] = stripe(count_, ppn, shm.rank());
    const std::size_t sb = (hi - lo) * ds;
    std::byte* res = buf_.at(static_cast<std::size_t>(ppn) * vec_bytes_ + lo * ds);
    {
        TraceSpan reduce_span(ctx, hytrace::Phase::Compute, "node_reduce");
        reduce_span.set_bytes(sb);
        ctx.copy_bytes(res, buf_.at(lo * ds), sb);
        for (int k = 1; k < ppn; ++k) {
            apply_op(ctx, op, dt_, res,
                     buf_.at(static_cast<std::size_t>(k) * vec_bytes_ + lo * ds),
                     hi - lo);
        }
    }
    // NUMA cost of the striped reduction: every rank read the inputs of the
    // OTHER socket's members (inert on 1-socket clusters).
    stager_.reduce_gather(vec_bytes_, staging_);

    if (hc_->num_nodes() == 1) {
        sync_.full_sync(sync);
        // Result read-back across the socket boundary.
        stager_.distribute(vec_bytes_, staging_);
        return;
    }

    // Node sum complete -> leader ships it.
    sync_.ready_phase(sync);
    if (hc_->is_primary_leader()) {
        const RobustConfig* cfg = robust_on(ctx);
        TraceSpan bridge_span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
        bridge_span.set_algo(cfg == nullptr ? "allreduce" : "reliable_ring");
        bridge_span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
        BridgeBytesScope bytes_scope(ctx, bridge_span);
        if (cfg == nullptr) {
            minimpi::allreduce(hc_->bridge(), minimpi::kInPlace, result(),
                               count_, dt_, op);
        } else {
            // Reliable ring allgather of the node partials, then a local
            // reduction in ascending node order — identical on every
            // leader, so the shared result vectors agree bitwise.
            const Comm& bridge = hc_->bridge();
            const int bp = bridge.size();
            const int br = bridge.rank();
            Scratch parts_s(ctx, static_cast<std::size_t>(bp) * vec_bytes_);
            std::byte* parts = parts_s.data();
            ctx.copy_bytes(
                minimpi::detail::at(parts,
                                    static_cast<std::size_t>(br) * vec_bytes_),
                result(), vec_bytes_);
            bool ok = true;
            for (int k = 1; k < bp; ++k) {
                const int dst = (br + k) % bp;
                const int src = (br - k + bp) % bp;
                if (!robust::reliable_xfer(
                        bridge, result(), vec_bytes_, dst,
                        minimpi::detail::at(
                            parts, static_cast<std::size_t>(src) * vec_bytes_),
                        vec_bytes_, src,
                        robust::kOpAllreduce + ((k - 1) & 0xFF), rs_.gen(),
                        *cfg, rs_.stats)) {
                    ok = false;
                }
            }
            if (!ok) {
                throw RobustError(StatusCode::RetriesExhausted,
                                  "Hy_Allreduce bridge exchange");
            }
            ctx.copy_bytes(result(), parts, vec_bytes_);
            for (int n = 1; n < bp; ++n) {
                apply_op(ctx, op, dt_, result(),
                         minimpi::detail::at(
                             parts, static_cast<std::size_t>(n) * vec_bytes_),
                         count_);
            }
        }
    }
    sync_.release_phase(sync);
    // Result read-back across the socket boundary (inert under robust mode
    // and on 1-socket nodes).
    stager_.distribute(vec_bytes_, staging_);
}

void AllreduceChannel::run_pipelined(Op op, const PipelinePlan& plan,
                                     const RobustConfig* cfg) {
    const Comm& shm = hc_->shm();
    minimpi::RankCtx& ctx = shm.ctx();
    const int ppn = shm.size();
    const int me = shm.rank();
    const std::size_t ds = datatype_size(dt_);
    const std::size_t ce = std::max<std::size_t>(plan.chunk_bytes / ds, 1);
    const std::size_t nchunks = (count_ + ce - 1) / ce;
    const int node_slot = sync_.chunk_slot_node();
    std::vector<std::size_t> lens(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
        lens[c] = std::min(ce, count_ - c * ce) * ds;
    }

    // Chunked cooperative reduction (XBRC): each rank reduces its stripe
    // of chunk c's elements directly into the node result slice — the
    // leader's staging buffer, so there is no second copy — and publishes
    // chunk c on its per-rank ready flag as soon as the stripe is done.
    {
        TraceSpan reduce_span(ctx, hytrace::Phase::Compute, "node_reduce");
        reduce_span.set_chunks(nchunks);
        std::size_t total_sb = 0;
        for (std::size_t c = 0; c < nchunks; ++c) {
            const std::size_t e0 = c * ce;
            const std::size_t ec = std::min(ce, count_ - e0);
            const auto [clo, chi] = stripe(ec, ppn, me);
            const std::size_t lo = e0 + clo;
            const std::size_t nelem = chi - clo;
            const std::size_t sb = nelem * ds;
            std::byte* res =
                buf_.at(static_cast<std::size_t>(ppn) * vec_bytes_ + lo * ds);
            ctx.copy_bytes(res, buf_.at(lo * ds), sb);
            for (int k = 1; k < ppn; ++k) {
                apply_op(ctx, op, dt_, res,
                         buf_.at(static_cast<std::size_t>(k) * vec_bytes_ +
                                 lo * ds),
                         nelem);
            }
            // NUMA cost of this chunk's striped input gather.
            stager_.reduce_gather(lens[c], plan.leaf);
            total_sb += sb;
            // The leader consumes its own completion in program order; only
            // the other ranks need a flag (slot 0 stays untouched all round,
            // which keeps every rank's mirror of it trivially consistent).
            if (me != 0) sync_.chunk_signal(sync_.chunk_slot_rank(me));
        }
        reduce_span.set_bytes(total_sb);
    }

    if (!hc_->is_primary_leader()) {
        for (int r = 1; r < ppn; ++r) {
            if (r != me) sync_.chunk_skip(sync_.chunk_slot_rank(r), nchunks);
        }
        stager_.consume_chunks(sync_, lens, plan.leaf);
        return;
    }

    // Producer (the primary leader): bridge chunk c as soon as its ppn-1
    // ready flags land — overlapping the node's reduction of chunk c+1 —
    // then publish the globally-reduced chunk on the node-level flag.
    const Comm& bridge = hc_->bridge();
    const int bp = bridge.size();
    const int br = bridge.rank();
    TraceSpan span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
    span.set_algo(cfg == nullptr ? "chunked_allreduce" : "reliable_chunked");
    span.set_comm(bp, br);
    span.set_chunks(nchunks);
    HYTRACE_COUNTER(ctx, chunks, nchunks);
    BridgeBytesScope bytes_scope(ctx, span);
    std::vector<std::uint64_t> base(static_cast<std::size_t>(ppn), 0);
    for (int r = 1; r < ppn; ++r) {
        base[static_cast<std::size_t>(r)] =
            sync_.chunk_mark(sync_.chunk_slot_rank(r));
    }
    std::optional<Scratch> parts_s;
    if (cfg != nullptr) {
        parts_s.emplace(ctx, static_cast<std::size_t>(bp) * lens[0]);
    }
    bool ok = true;
    for (std::size_t c = 0; c < nchunks; ++c) {
        for (int r = 1; r < ppn; ++r) {
            sync_.chunk_wait(sync_.chunk_slot_rank(r),
                             base[static_cast<std::size_t>(r)] + c + 1);
        }
        const std::size_t cb = lens[c];
        const std::size_t cn = cb / ds;
        std::byte* slice = buf_.at(static_cast<std::size_t>(ppn) * vec_bytes_ +
                                   c * ce * ds);
        if (cfg == nullptr) {
            minimpi::allreduce(bridge, minimpi::kInPlace, slice, cn, dt_, op);
        } else {
            // Reliable ring allgather of the chunk partials + ascending
            // fold, as in the whole-message robust leg; each chunk's frames
            // live under their own generation stamp so a duplicated frame
            // of chunk i can never be accepted as chunk j.
            std::byte* parts = parts_s->data();
            ctx.copy_bytes(
                minimpi::detail::at(parts, static_cast<std::size_t>(br) * cb),
                slice, cb);
            const std::uint64_t gen = robust::chunked_gen(
                rs_.gen(), static_cast<std::uint64_t>(c));
            for (int k = 1; k < bp; ++k) {
                const int dst = (br + k) % bp;
                const int src = (br - k + bp) % bp;
                if (!robust::reliable_xfer(
                        bridge, slice, cb, dst,
                        minimpi::detail::at(
                            parts, static_cast<std::size_t>(src) * cb),
                        cb, src, robust::kOpAllreduce + ((k - 1) & 0xFF), gen,
                        *cfg, rs_.stats)) {
                    ok = false;
                }
            }
            ctx.copy_bytes(slice, parts, cb);
            for (int n = 1; n < bp; ++n) {
                apply_op(ctx, op, dt_, slice,
                         minimpi::detail::at(
                             parts, static_cast<std::size_t>(n) * cb),
                         cn);
            }
        }
        sync_.chunk_signal(node_slot);
    }
    for (int r = 1; r < ppn; ++r) {
        sync_.chunk_skip(sync_.chunk_slot_rank(r), nchunks);
    }
    if (cfg != nullptr && !ok) {
        throw RobustError(StatusCode::RetriesExhausted,
                          "Hy_Allreduce bridge exchange");
    }
}

minimpi::CollRequest AllreduceChannel::start(Op op, SyncPolicy sync) {
    const Comm& world = hc_->world();
    const Comm& shm = hc_->shm();
    minimpi::RankCtx& ctx = shm.ctx();
    if (round_active_) {
        throw minimpi::RequestError(
            "Hy_Allreduce split-phase round already in flight on this "
            "channel; wait() on it before the next start()");
    }
    if (robust_on(ctx) != nullptr) {
        // The reliable ring is main-clock by design: complete at post.
        run(op, sync);
        return minimpi::CollRequest(
            minimpi::detail::make_complete_icoll(world, "hy_iallreduce", {}));
    }
    const int ppn = shm.size();
    const std::size_t ds = datatype_size(dt_);
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_allreduce_start");
    root_span.set_coll("Hy_Allreduce_start");
    root_span.set_bytes(vec_bytes_);
    root_span.set_comm(world.size(), world.rank());
    ++rs_.generation;
    round_active_ = true;
    started_sync_ = sync;

    // The striped on-node reduction is the callers' own compute: it stays
    // at post, on the main clock, exactly as in run().
    sync_.full_sync(sync);
    const auto [lo, hi] = stripe(count_, ppn, shm.rank());
    const std::size_t sb = (hi - lo) * ds;
    std::byte* res =
        buf_.at(static_cast<std::size_t>(ppn) * vec_bytes_ + lo * ds);
    {
        TraceSpan reduce_span(ctx, hytrace::Phase::Compute, "node_reduce");
        reduce_span.set_bytes(sb);
        ctx.copy_bytes(res, buf_.at(lo * ds), sb);
        for (int k = 1; k < ppn; ++k) {
            apply_op(ctx, op, dt_, res,
                     buf_.at(static_cast<std::size_t>(k) * vec_bytes_ + lo * ds),
                     hi - lo);
        }
    }
    stager_.reduce_gather(vec_bytes_, staging_);

    auto on_wait = [this] {
        round_active_ = false;
        minimpi::RankCtx& wctx = hc_->world().ctx();
        TraceSpan fin(wctx, hytrace::Phase::Coll, "hy_allreduce_finish");
        fin.set_coll("Hy_Allreduce_finish");
        fin.set_comm(hc_->world().size(), hc_->world().rank());
        if (hc_->num_nodes() == 1) {
            sync_.full_sync(started_sync_);
        } else {
            sync_.release_phase(started_sync_);
        }
        // Flat read-back, as in the other split phases: a staged mirror
        // would re-serialize the already-overlapped children.
        stager_.distribute(vec_bytes_, SocketStaging::Flat);
    };
    if (hc_->num_nodes() == 1) {
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_iallreduce", std::move(on_wait)));
    }
    sync_.ready_phase(sync);
    if (!hc_->is_primary_leader()) {
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            world, "hy_iallreduce", std::move(on_wait)));
    }
    started_op_ = op;
    if (task_ == nullptr) {
        task_ = minimpi::detail::create_icoll(
            hc_->bridge(), "hy_iallreduce",
            [this] {
                minimpi::RankCtx& bctx = hc_->bridge().ctx();
                TraceSpan span(bctx, hytrace::Phase::Bridge,
                               "bridge_exchange");
                span.set_algo("allreduce");
                span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
                BridgeBytesScope bytes_scope(bctx, span);
                minimpi::allreduce(hc_->bridge(), minimpi::kInPlace, result(),
                                   count_, dt_, started_op_);
            },
            std::move(on_wait));
    }
    minimpi::detail::arm_icoll(*task_);
    minimpi::detail::drive_icoll(*task_);
    return minimpi::CollRequest(task_);
}

// ---- GatherChannel ----

GatherChannel::GatherChannel(const HierComm& hc, std::size_t block_bytes,
                             int root)
    : hc_(&hc),
      buf_(hc, (hc.node_of_rank(root) == hc.my_node()
                    ? static_cast<std::size_t>(hc.world().size())
                    : static_cast<std::size_t>(hc.node_size(hc.my_node()))) *
                   block_bytes),
      sync_(hc),
      bb_(block_bytes),
      root_(root),
      root_node_(hc.node_of_rank(root)) {
    rs_.init(hc.world());
    require_alloc(buf_, "Hy_Gather");
}

std::byte* GatherChannel::my_block() const {
    const int me = hc_->world().rank();
    const std::size_t slot = static_cast<std::size_t>(hc_->slot_of(me));
    if (hc_->my_node() == root_node_) return buf_.at(slot * bb_);
    return buf_.at(
        (slot - static_cast<std::size_t>(hc_->node_offset(hc_->my_node()))) *
        bb_);
}

std::byte* GatherChannel::gathered(int comm_rank) const {
    return buf_.at(static_cast<std::size_t>(hc_->slot_of(comm_rank)) * bb_);
}

void GatherChannel::run(SyncPolicy sync) {
    minimpi::RankCtx& gctx = hc_->world().ctx();
    TraceSpan root_span(gctx, hytrace::Phase::Coll, "hy_gather");
    root_span.set_coll("Hy_Gather");
    root_span.set_bytes(static_cast<std::size_t>(hc_->world().size()) * bb_);
    root_span.set_comm(hc_->world().size(), hc_->world().rank());
    ++rs_.generation;
    if (hc_->num_nodes() == 1) {
        sync_.full_sync(sync);
        return;
    }
    sync_.ready_phase(sync);
    if (hc_->is_primary_leader()) {
        const Comm& bridge = hc_->bridge();
        const int nn = hc_->num_nodes();
        std::vector<std::size_t> counts(static_cast<std::size_t>(nn));
        std::vector<std::size_t> displs(static_cast<std::size_t>(nn));
        for (int n = 0; n < nn; ++n) {
            counts[static_cast<std::size_t>(n)] =
                static_cast<std::size_t>(hc_->node_size(n)) * bb_;
            displs[static_cast<std::size_t>(n)] =
                static_cast<std::size_t>(hc_->node_offset(n)) * bb_;
        }
        const std::size_t my_count =
            counts[static_cast<std::size_t>(hc_->my_node())];
        const RobustConfig* cfg = robust_on(bridge.ctx());
        TraceSpan bridge_span(bridge.ctx(), hytrace::Phase::Bridge,
                              "bridge_exchange");
        bridge_span.set_algo(cfg == nullptr ? "gatherv" : "reliable_linear");
        bridge_span.set_comm(bridge.size(), bridge.rank());
        BridgeBytesScope bytes_scope(bridge.ctx(), bridge_span);
        if (cfg != nullptr) {
            // Reliable linear gather: the root's leader drains node blocks
            // in ascending node order (bridge rank == node index).
            bool ok = true;
            if (hc_->my_node() == root_node_) {
                for (int n = 0; n < nn; ++n) {
                    if (n == root_node_) continue;
                    if (!robust::reliable_recv(
                            bridge,
                            buf_.at(displs[static_cast<std::size_t>(n)]),
                            counts[static_cast<std::size_t>(n)], n,
                            robust::kOpGather, rs_.gen(), *cfg, rs_.stats)) {
                        ok = false;
                    }
                }
            } else {
                ok = robust::reliable_send(bridge, buf_.data(), my_count,
                                           root_node_, robust::kOpGather,
                                           rs_.gen(), *cfg, rs_.stats);
            }
            if (!ok) {
                throw RobustError(StatusCode::RetriesExhausted,
                                  "Hy_Gather bridge exchange");
            }
        } else if (hc_->my_node() == root_node_) {
            minimpi::gatherv(bridge, minimpi::kInPlace, my_count, buf_.data(),
                             counts, displs, Datatype::Byte, root_node_);
        } else {
            minimpi::gatherv(bridge, buf_.data(), my_count, nullptr, counts,
                             displs, Datatype::Byte, root_node_);
        }
    }
    sync_.release_phase(sync);
}

// ---- ScatterChannel ----

ScatterChannel::ScatterChannel(const HierComm& hc, std::size_t block_bytes,
                               int root)
    : hc_(&hc),
      buf_(hc, (hc.node_of_rank(root) == hc.my_node()
                    ? static_cast<std::size_t>(hc.world().size())
                    : static_cast<std::size_t>(hc.node_size(hc.my_node()))) *
                   block_bytes),
      sync_(hc),
      bb_(block_bytes),
      root_(root),
      root_node_(hc.node_of_rank(root)) {
    rs_.init(hc.world());
    require_alloc(buf_, "Hy_Scatter");
}

std::byte* ScatterChannel::outgoing(int comm_rank) const {
    return buf_.at(static_cast<std::size_t>(hc_->slot_of(comm_rank)) * bb_);
}

std::byte* ScatterChannel::my_block() const {
    const int me = hc_->world().rank();
    const std::size_t slot = static_cast<std::size_t>(hc_->slot_of(me));
    if (hc_->my_node() == root_node_) return buf_.at(slot * bb_);
    return buf_.at(
        (slot - static_cast<std::size_t>(hc_->node_offset(hc_->my_node()))) *
        bb_);
}

void ScatterChannel::run(SyncPolicy sync) {
    minimpi::RankCtx& sctx = hc_->world().ctx();
    TraceSpan root_span(sctx, hytrace::Phase::Coll, "hy_scatter");
    root_span.set_coll("Hy_Scatter");
    root_span.set_bytes(static_cast<std::size_t>(hc_->world().size()) * bb_);
    root_span.set_comm(hc_->world().size(), hc_->world().rank());
    ++rs_.generation;
    if (hc_->num_nodes() == 1) {
        sync_.full_sync(sync);
        return;
    }
    // The root's stores must complete before its leader ships the slices.
    sync_.ready_phase(sync);
    if (hc_->is_primary_leader()) {
        const Comm& bridge = hc_->bridge();
        const int nn = hc_->num_nodes();
        std::vector<std::size_t> counts(static_cast<std::size_t>(nn));
        std::vector<std::size_t> displs(static_cast<std::size_t>(nn));
        for (int n = 0; n < nn; ++n) {
            counts[static_cast<std::size_t>(n)] =
                static_cast<std::size_t>(hc_->node_size(n)) * bb_;
            displs[static_cast<std::size_t>(n)] =
                static_cast<std::size_t>(hc_->node_offset(n)) * bb_;
        }
        const std::size_t my_count =
            counts[static_cast<std::size_t>(hc_->my_node())];
        const RobustConfig* cfg = robust_on(bridge.ctx());
        TraceSpan bridge_span(bridge.ctx(), hytrace::Phase::Bridge,
                              "bridge_exchange");
        bridge_span.set_algo(cfg == nullptr ? "scatterv" : "reliable_linear");
        bridge_span.set_comm(bridge.size(), bridge.rank());
        BridgeBytesScope bytes_scope(bridge.ctx(), bridge_span);
        if (cfg != nullptr) {
            // Reliable linear scatter: the root's leader ships node slices
            // in ascending node order.
            bool ok = true;
            if (hc_->my_node() == root_node_) {
                for (int n = 0; n < nn; ++n) {
                    if (n == root_node_) continue;
                    if (!robust::reliable_send(
                            bridge,
                            buf_.at(displs[static_cast<std::size_t>(n)]),
                            counts[static_cast<std::size_t>(n)], n,
                            robust::kOpScatter, rs_.gen(), *cfg, rs_.stats)) {
                        ok = false;
                    }
                }
            } else {
                ok = robust::reliable_recv(bridge, buf_.data(), my_count,
                                           root_node_, robust::kOpScatter,
                                           rs_.gen(), *cfg, rs_.stats);
            }
            if (!ok) {
                throw RobustError(StatusCode::RetriesExhausted,
                                  "Hy_Scatter bridge exchange");
            }
        } else if (hc_->my_node() == root_node_) {
            // Own slice is already in place inside the full buffer.
            minimpi::scatterv(
                bridge, buf_.data(), counts, displs,
                buf_.at(displs[static_cast<std::size_t>(root_node_)]), my_count,
                Datatype::Byte, root_node_);
        } else {
            minimpi::scatterv(bridge, nullptr, counts, displs, buf_.data(),
                              my_count, Datatype::Byte, root_node_);
        }
    }
    sync_.release_phase(sync);
}

// ---- ReduceChannel ----

ReduceChannel::ReduceChannel(const HierComm& hc, std::size_t count,
                             Datatype dt, int root)
    : hc_(&hc),
      buf_(hc, (static_cast<std::size_t>(hc.shm().size()) + 1) * count *
                   datatype_size(dt)),
      sync_(hc),
      count_(count),
      dt_(dt),
      vec_bytes_(count * datatype_size(dt)),
      root_(root),
      root_node_(hc.node_of_rank(root)) {
    rs_.init(hc.world());
    require_alloc(buf_, "Hy_Reduce");
}

std::byte* ReduceChannel::my_input() const {
    return buf_.at(static_cast<std::size_t>(hc_->shm().rank()) * vec_bytes_);
}

std::byte* ReduceChannel::result() const {
    return buf_.at(static_cast<std::size_t>(hc_->shm().size()) * vec_bytes_);
}

void ReduceChannel::run(Op op, SyncPolicy sync) {
    const Comm& shm = hc_->shm();
    minimpi::RankCtx& ctx = shm.ctx();
    const int ppn = shm.size();
    const std::size_t ds = datatype_size(dt_);
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_reduce");
    root_span.set_coll("Hy_Reduce");
    root_span.set_bytes(vec_bytes_);
    root_span.set_comm(hc_->world().size(), hc_->world().rank());
    ++rs_.generation;

    sync_.full_sync(sync);
    const auto [lo, hi] = stripe(count_, ppn, shm.rank());
    const std::size_t sb = (hi - lo) * ds;
    std::byte* res = buf_.at(static_cast<std::size_t>(ppn) * vec_bytes_ + lo * ds);
    {
        TraceSpan reduce_span(ctx, hytrace::Phase::Compute, "node_reduce");
        reduce_span.set_bytes(sb);
        ctx.copy_bytes(res, buf_.at(lo * ds), sb);
        for (int k = 1; k < ppn; ++k) {
            apply_op(ctx, op, dt_, res,
                     buf_.at(static_cast<std::size_t>(k) * vec_bytes_ + lo * ds),
                     hi - lo);
        }
    }

    if (hc_->num_nodes() == 1) {
        sync_.full_sync(sync);
        return;
    }

    sync_.ready_phase(sync);
    if (hc_->is_primary_leader()) {
        const RobustConfig* cfg = robust_on(ctx);
        TraceSpan bridge_span(ctx, hytrace::Phase::Bridge, "bridge_exchange");
        bridge_span.set_algo(cfg == nullptr ? "reduce" : "reliable_linear");
        bridge_span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
        BridgeBytesScope bytes_scope(ctx, bridge_span);
        if (cfg != nullptr) {
            // Reliable linear reduce: the root's leader drains node partials
            // in ascending node order and folds them in that same order —
            // deterministic regardless of arrival interleaving.
            const Comm& bridge = hc_->bridge();
            bool ok = true;
            if (hc_->my_node() == root_node_) {
                Scratch part_s(ctx, vec_bytes_);
                for (int n = 0; n < bridge.size(); ++n) {
                    if (n == root_node_) continue;
                    if (!robust::reliable_recv(bridge, part_s.data(),
                                               vec_bytes_, n,
                                               robust::kOpReduce, rs_.gen(),
                                               *cfg, rs_.stats)) {
                        ok = false;
                        continue;
                    }
                    apply_op(ctx, op, dt_, result(), part_s.data(), count_);
                }
            } else {
                ok = robust::reliable_send(bridge, result(), vec_bytes_,
                                           root_node_, robust::kOpReduce,
                                           rs_.gen(), *cfg, rs_.stats);
            }
            if (!ok) {
                throw RobustError(StatusCode::RetriesExhausted,
                                  "Hy_Reduce bridge exchange");
            }
        } else if (hc_->my_node() == root_node_) {
            minimpi::reduce(hc_->bridge(), minimpi::kInPlace, result(), count_,
                            dt_, op, root_node_);
        } else {
            minimpi::reduce(hc_->bridge(), result(), nullptr, count_, dt_, op,
                            root_node_);
        }
    }
    sync_.release_phase(sync);
}

// ---- AlltoallChannel ----

AlltoallChannel::AlltoallChannel(const HierComm& hc, std::size_t block_bytes)
    : hc_(&hc),
      buf_(hc, 2 * static_cast<std::size_t>(hc.node_size(hc.my_node())) *
                   static_cast<std::size_t>(hc.world().size()) * block_bytes),
      sync_(hc),
      bb_(block_bytes) {
    rs_.init(hc.world());
    require_alloc(buf_, "Hy_Alltoall");
}

std::size_t AlltoallChannel::row_bytes() const {
    return static_cast<std::size_t>(hc_->world().size()) * bb_;
}

std::byte* AlltoallChannel::send_block(int dest_rank) const {
    const std::size_t local =
        static_cast<std::size_t>(hc_->slot_of(hc_->world().rank()) -
                                 hc_->node_offset(hc_->my_node()));
    return buf_.at(local * row_bytes() +
                   static_cast<std::size_t>(hc_->slot_of(dest_rank)) * bb_);
}

std::byte* AlltoallChannel::recv_block(int src_rank) const {
    const std::size_t ppn = static_cast<std::size_t>(hc_->node_size(hc_->my_node()));
    const std::size_t local =
        static_cast<std::size_t>(hc_->slot_of(hc_->world().rank()) -
                                 hc_->node_offset(hc_->my_node()));
    return buf_.at((ppn + local) * row_bytes() +
                   static_cast<std::size_t>(hc_->slot_of(src_rank)) * bb_);
}

void AlltoallChannel::run(SyncPolicy sync) {
    minimpi::RankCtx& ctx = hc_->world().ctx();
    const int nn = hc_->num_nodes();
    const int my_node = hc_->my_node();
    const std::size_t ppn = static_cast<std::size_t>(hc_->node_size(my_node));
    const std::size_t row = row_bytes();
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "hy_alltoall");
    root_span.set_coll("Hy_Alltoall");
    root_span.set_bytes(row);
    root_span.set_comm(hc_->world().size(), hc_->world().rank());
    ++rs_.generation;

    sync_.ready_phase(sync);

    if (hc_->is_primary_leader()) {
        auto send_row = [&](std::size_t m) { return buf_.at(m * row); };
        auto recv_row = [&](std::size_t m) { return buf_.at((ppn + m) * row); };
        const std::size_t my_off =
            static_cast<std::size_t>(hc_->node_offset(my_node)) * bb_;

        // Intra-node transpose: member m's block for member c moves from
        // m's send row to c's receive row — pure load/store.
        {
            TraceSpan copy_span(ctx, hytrace::Phase::Copy,
                                "intra_node_transpose");
            ShmBytesScope shm_scope(ctx, copy_span);
            for (std::size_t m = 0; m < ppn; ++m) {
                for (std::size_t c = 0; c < ppn; ++c) {
                    ctx.copy_bytes(recv_row(c) ? recv_row(c) + my_off + m * bb_
                                               : nullptr,
                                   send_row(m) ? send_row(m) + my_off + c * bb_
                                               : nullptr,
                                   bb_);
                }
            }
        }

        if (nn > 1) {
            TraceSpan bridge_span(ctx, hytrace::Phase::Bridge,
                                  "bridge_exchange");
            bridge_span.set_algo(robust_on(ctx) == nullptr
                                     ? "pairwise"
                                     : "reliable_pairwise");
            bridge_span.set_comm(hc_->bridge().size(), hc_->bridge().rank());
            BridgeBytesScope bytes_scope(ctx, bridge_span);
            std::size_t max_sz = 0;
            for (int n = 0; n < nn; ++n) {
                max_sz = std::max(max_sz,
                                  static_cast<std::size_t>(hc_->node_size(n)));
            }
            Scratch out_s(ctx, ppn * max_sz * bb_);
            Scratch in_s(ctx, max_sz * ppn * bb_);
            constexpr int tag = minimpi::detail::kTagHier + 0x20;

            for (int k = 1; k < nn; ++k) {
                const int to_node = (my_node + k) % nn;
                const int from_node = (my_node - k + nn) % nn;
                const std::size_t to_sz =
                    static_cast<std::size_t>(hc_->node_size(to_node));
                const std::size_t from_sz =
                    static_cast<std::size_t>(hc_->node_size(from_node));
                const std::size_t to_off =
                    static_cast<std::size_t>(hc_->node_offset(to_node)) * bb_;

                // Pack: every local row's blocks destined to to_node.
                for (std::size_t m = 0; m < ppn; ++m) {
                    ctx.copy_bytes(
                        out_s.data() ? out_s.data() + m * to_sz * bb_ : nullptr,
                        send_row(m) ? send_row(m) + to_off : nullptr,
                        to_sz * bb_);
                }
                const RobustConfig* cfg = robust_on(ctx);
                if (cfg != nullptr) {
                    // Same pairwise schedule, reliable transport.
                    if (!robust::reliable_xfer(
                            hc_->bridge(), out_s.data(), ppn * to_sz * bb_,
                            to_node, in_s.data(), from_sz * ppn * bb_,
                            from_node,
                            robust::kOpAlltoall + ((k - 1) & 0xFF), rs_.gen(),
                            *cfg, rs_.stats)) {
                        throw RobustError(StatusCode::RetriesExhausted,
                                          "Hy_Alltoall bridge exchange");
                    }
                } else {
                    minimpi::Request rr = minimpi::detail::irecv_bytes(
                        hc_->bridge(), in_s.data(), from_sz * ppn * bb_,
                        from_node, tag + k, true);
                    minimpi::detail::send_bytes(hc_->bridge(), out_s.data(),
                                                ppn * to_sz * bb_, to_node,
                                                tag + k, true);
                    rr.wait();
                }

                // Unpack: sender member m2's block for local member c lands
                // in c's receive row at the sender's slot.
                const std::size_t from_slot0 =
                    static_cast<std::size_t>(hc_->node_offset(from_node)) * bb_;
                for (std::size_t m2 = 0; m2 < from_sz; ++m2) {
                    for (std::size_t c = 0; c < ppn; ++c) {
                        ctx.copy_bytes(
                            recv_row(c) ? recv_row(c) + from_slot0 + m2 * bb_
                                        : nullptr,
                            in_s.data()
                                ? in_s.data() + (m2 * ppn + c) * bb_
                                : nullptr,
                            bb_);
                    }
                }
            }
        }
    }

    sync_.release_phase(sync);
}

}  // namespace hympi
