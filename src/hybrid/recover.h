#pragma once

#include <memory>
#include <vector>

#include "hybrid/hier_comm.h"

namespace hympi {

/// Outcome of one detect–agree–shrink recovery round.
struct RecoveryResult {
    /// The shrunken flat communicator (survivors of the broken comm, old
    /// rank order preserved).
    minimpi::Comm world;
    /// The hierarchy rebuilt over @p world: node/bridge/socket comms and
    /// leader roles recomputed from scratch, so leaders are re-elected
    /// deterministically (lowest surviving rank per node leads).
    std::shared_ptr<HierComm> hier;
    /// World ranks agreed dead, in the broken comm's rank order.
    std::vector<int> failed_world;
    /// Every member some node contributed to the broken comm died: the
    /// shrunken job spans fewer nodes.
    bool node_lost = false;
    /// Some node lost its primary leader but not its whole population — a
    /// new leader (the node's lowest surviving rank) was elected.
    bool leader_replaced = false;
};

/// Revoke every communicator of the hierarchy (world first, then the
/// on-node and bridge levels). Called by any survivor that observed a
/// ProcessFailedError so ALL survivors — including those blocked on flags
/// or on live-but-erroring peers — are interrupted onto the recovery path.
/// Idempotent.
void revoke_hierarchy(const HierComm& hc);

/// ULFM-style recovery over a broken (revoked and/or failure-carrying)
/// communicator: agree on the survivor set (Comm::agree_shrink — the
/// fault-tolerant rendezvous), cross-check the agreement outcome over the
/// robust ARQ side channel when robust mode is on (the confirmation leg
/// rides reliable_xfer, so it converges through dropped frames in bounded
/// retries), then rebuild the communicator hierarchy over the survivors.
/// Collective over the SURVIVORS of @p broken. Emits a Robust "recovery"
/// span wrapping "agree" and "rebuild" child spans, and counts one shrink.
///
/// Post-shrink collectives on the returned hierarchy are byte-identical to
/// a fresh run on the survivor set: every piece of hierarchy and channel
/// state is rebuilt, nothing from the broken comm is reused.
RecoveryResult shrink_and_rebuild(const minimpi::Comm& broken,
                                  int leaders_per_node = 1);

}  // namespace hympi
