#include "hybrid/hy_batch.h"

#include <algorithm>

#include "hybrid/hy_allgather.h"
#include "hybrid/hy_trace.h"
#include "minimpi/coll_internal.h"
#include "tuning/decision.h"

namespace hympi {

CollBatcher::CollBatcher(const HierComm& hc, std::size_t capacity_bytes)
    : hc_(&hc), capacity_(std::max<std::size_t>(capacity_bytes, 1)) {
    const RobustConfig* cfg = hc.world().ctx().robust_cfg;
    if (cfg != nullptr && cfg->enabled) return;  // inert: flat reliable path
    win_ = NodeSharedBuffer(hc, capacity_);
    if (win_.alloc_failed()) return;
    sync_.emplace(hc);
    active_ = true;
}

std::size_t CollBatcher::contrib(const PendingOp& op, int r) {
    switch (op.kind) {
        case Kind::Allgather: return op.bytes;
        case Kind::Bcast: return r == op.root ? op.bytes : 0;
        case Kind::Allreduce: return op.bytes;
    }
    return 0;
}

std::size_t CollBatcher::op_total(const PendingOp& op) const {
    const auto p = static_cast<std::size_t>(hc_->world().size());
    switch (op.kind) {
        case Kind::Allgather: return op.bytes * p;
        case Kind::Bcast: return op.bytes;
        case Kind::Allreduce: return op.bytes * p;
    }
    return 0;
}

bool CollBatcher::should_batch(std::size_t bytes) const {
    if (policy_ == BatchPolicy::Always) return true;
    if (policy_ == BatchPolicy::Never || !active_) return false;
    if (threshold_bytes_ != 0) return bytes <= threshold_bytes_;
    const tuning::DecisionTable* table = hc_->world().ctx().tuned;
    if (table != nullptr) {
        const auto c =
            table->lookup(tuning::Op::BatchWindow, tuning::Shape::Net,
                          hc_->num_nodes(), std::max<std::uint64_t>(bytes, 1));
        if (c.has_value()) return c->algo == tuning::algo::kBwFused;
    }
    // Legacy heuristic: fusing trades one extra shared-window pass for the
    // per-op bridge start-ups, so it wins only while those dominate.
    return bytes <= 1024;
}

minimpi::CollRequest CollBatcher::make_ticket() {
    // The ticket's wait-side hook closes the op's window if it is still
    // open; once any ticket (or an explicit flush) closed it, later waits
    // of the same window see a newer id and no-op. Completion work is
    // entirely wait-side, so the engine never needs a worker here.
    return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
        hc_->world(), "hy_batch", [this, id = window_id_] {
            if (id == window_id_) flush(sync_policy_);
        }));
}

minimpi::CollRequest CollBatcher::enqueue(PendingOp op) {
    ++stats_.posted;
    const std::size_t total = op_total(op);
    if (!active_ || !should_batch(op.bytes) || total > capacity_) {
        // Unbatchable: drain the open window first so the shared posting
        // order stays intact, then run the op in place.
        flush(sync_policy_);
        run_immediate(op);
        ++stats_.immediate;
        return minimpi::CollRequest(minimpi::detail::make_complete_icoll(
            hc_->world(), "hy_batch_immediate", {}));
    }
    if (pending_bytes_ + total > capacity_) flush(sync_policy_);
    const bool opens_window = pending_.empty();
    pending_.push_back(op);
    pending_bytes_ += total;
    // Stamp the window at POST time with the last observed clock, so its
    // age is measured from when the first op arrived, not from the next
    // advance_window call (which may come arbitrarily later).
    if (opens_window && clock_valid_) {
        window_clocked_ = true;
        window_open_us_ = clock_us_;
    }
    return make_ticket();
}

minimpi::CollRequest CollBatcher::post_allgather(const void* send,
                                                 std::size_t bytes,
                                                 void* recv) {
    PendingOp op;
    op.kind = Kind::Allgather;
    op.send = send;
    op.recv = recv;
    op.bytes = bytes;
    return enqueue(op);
}

minimpi::CollRequest CollBatcher::post_bcast(void* buf, std::size_t bytes,
                                             int root) {
    PendingOp op;
    op.kind = Kind::Bcast;
    op.recv = buf;
    op.bytes = bytes;
    op.root = root;
    return enqueue(op);
}

minimpi::CollRequest CollBatcher::post_allreduce(const void* send, void* recv,
                                                 std::size_t count,
                                                 minimpi::Datatype dt,
                                                 minimpi::Op rop) {
    PendingOp op;
    op.kind = Kind::Allreduce;
    op.send = send;
    op.recv = recv;
    op.bytes = count * minimpi::datatype_size(dt);
    op.count = count;
    op.dt = dt;
    op.rop = rop;
    return enqueue(op);
}

void CollBatcher::run_immediate(const PendingOp& op) {
    const Comm& world = hc_->world();
    switch (op.kind) {
        case Kind::Allgather:
            minimpi::allgather(world, op.send, op.bytes, op.recv,
                               minimpi::Datatype::Byte);
            return;
        case Kind::Bcast:
            minimpi::bcast(world, op.recv, op.bytes, minimpi::Datatype::Byte,
                           op.root);
            return;
        case Kind::Allreduce:
            minimpi::allreduce(world, op.send, op.recv, op.count, op.dt,
                               op.rop);
            return;
    }
}

void CollBatcher::advance_window(double now_us) {
    clock_us_ = now_us;
    clock_valid_ = true;
    if (pending_.empty() || window_us_ <= 0.0) return;
    if (!window_clocked_) {
        // Ops posted before any clock observation: their window ages from
        // this first observation (the post-time stamp had no clock yet).
        window_clocked_ = true;
        window_open_us_ = now_us;
    }
    if (now_us - window_open_us_ >= window_us_) flush(sync_policy_);
}

void CollBatcher::flush(SyncPolicy sync) {
    if (pending_.empty()) return;
    // Close the window FIRST: the demux below may run under a ticket whose
    // id must already be stale, and the next post opens a fresh window.
    ++window_id_;
    window_clocked_ = false;
    std::vector<PendingOp> ops;
    ops.swap(pending_);
    const std::size_t window_bytes = pending_bytes_;
    pending_bytes_ = 0;

    const Comm& world = hc_->world();
    const int p = world.size();
    const int nn = hc_->num_nodes();
    const std::size_t nops = ops.size();
    minimpi::RankCtx& ctx = world.ctx();
    TraceSpan root(ctx, hytrace::Phase::Coll, "hy_batch_flush");
    root.set_coll("Hy_Batch");
    root.set_comm(p, world.rank());
    root.set_bytes(window_bytes);
    root.set_chunks(nops);

    // Node-major window layout (node -> op -> slot): node n's block is one
    // contiguous span holding every window op's contributions from n's
    // ranks, so the bridge ships the whole window in ONE node-block Bruck —
    // per round, one aggregated message instead of one per fused op.
    std::vector<std::size_t> off(nops * static_cast<std::size_t>(p), 0);
    std::vector<std::size_t> node_displ(static_cast<std::size_t>(nn), 0);
    std::vector<std::size_t> node_count(static_cast<std::size_t>(nn), 0);
    std::size_t cur = 0;
    for (int n = 0; n < nn; ++n) {
        node_displ[static_cast<std::size_t>(n)] = cur;
        const int s0 = hc_->node_offset(n);
        const int s1 = s0 + hc_->node_size(n);
        for (std::size_t j = 0; j < nops; ++j) {
            for (int s = s0; s < s1; ++s) {
                off[j * static_cast<std::size_t>(p) +
                    static_cast<std::size_t>(s)] = cur;
                cur += contrib(ops[j], hc_->rank_at(s));
            }
        }
        node_count[static_cast<std::size_t>(n)] =
            cur - node_displ[static_cast<std::size_t>(n)];
    }
    const int my_rank = world.rank();
    const auto my_slot = static_cast<std::size_t>(hc_->my_slot());
    auto slot_off = [&](std::size_t j, int r) {
        return off[j * static_cast<std::size_t>(p) +
                   static_cast<std::size_t>(hc_->slot_of(r))];
    };

    {
        // Pack my contributions into the node-shared window.
        TraceSpan span(ctx, hytrace::Phase::Copy, "batch_pack");
        ShmBytesScope scope(ctx, span);
        for (std::size_t j = 0; j < nops; ++j) {
            const std::size_t mine = contrib(ops[j], my_rank);
            if (mine == 0) continue;
            const void* src =
                ops[j].kind == Kind::Bcast ? ops[j].recv : ops[j].send;
            ctx.copy_bytes(
                win_.at(off[j * static_cast<std::size_t>(p) + my_slot]), src,
                mine);
        }
    }
    sync_->ready_phase(sync);
    if (hc_->is_primary_leader() && nn > 1) {
        TraceSpan span(ctx, hytrace::Phase::Bridge, "batch_bridge");
        span.set_algo("fused_bruck");
        BridgeBytesScope scope(ctx, span);
        detail::node_block_bruck(hc_->bridge(), win_.data(), node_displ,
                                 node_count, 0x60);
    }
    sync_->release_phase(sync);
    {
        // Demultiplex every op out of the fully-populated window.
        TraceSpan span(ctx, hytrace::Phase::Copy, "batch_demux");
        ShmBytesScope scope(ctx, span);
        for (std::size_t j = 0; j < nops; ++j) {
            const PendingOp& op = ops[j];
            switch (op.kind) {
                case Kind::Allgather:
                    for (int r = 0; r < p; ++r) {
                        ctx.copy_bytes(
                            minimpi::detail::at(
                                op.recv,
                                static_cast<std::size_t>(r) * op.bytes),
                            win_.at(slot_off(j, r)), op.bytes);
                    }
                    break;
                case Kind::Bcast:
                    if (my_rank != op.root) {
                        ctx.copy_bytes(op.recv, win_.at(slot_off(j, op.root)),
                                       op.bytes);
                    }
                    break;
                case Kind::Allreduce:
                    // Comm-rank association order — identical on every
                    // rank, so the fused reduction is deterministic.
                    ctx.copy_bytes(op.recv, win_.at(slot_off(j, 0)), op.bytes);
                    for (int r = 1; r < p; ++r) {
                        minimpi::detail::apply_op(ctx, op.rop, op.dt, op.recv,
                                                  win_.at(slot_off(j, r)),
                                                  op.count);
                    }
                    break;
            }
        }
    }
    // Quiesce: the next window's layout differs, so its pack phase must
    // happen-after every on-node reader's demux of THIS window.
    sync_->full_sync(sync);
    stats_.fused += nops;
    stats_.fused_bytes += window_bytes;
    ++stats_.windows;
}

}  // namespace hympi
