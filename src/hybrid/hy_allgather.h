#pragma once

#include <atomic>
#include <span>

#include "hybrid/numa_stage.h"
#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
#include "minimpi/icoll.h"
#include "robust/robust.h"

namespace hympi {

/// How the per-node leaders exchange node blocks (paper Sect. 4.1: "the
/// irregular allgather variant is employed... can also be replaced by other
/// regular operations (e.g., broadcast)"; the pipelined variant is the
/// large-message method of Traeff et al. '08 that the conclusion points to).
///
/// Allgatherv delegates to the vendor library's MPI_Allgatherv and pays its
/// under-tuning penalty (the Fig. 8 gap). BruckV, NeighborExchange and
/// Pipelined are hybrid-layer implementations built directly on bridge
/// point-to-point traffic — the directions of "A Locality-Aware Bruck
/// Allgather" (arXiv:2206.03564) — which is exactly what lets the tuned
/// tables close that gap.
enum class BridgeAlgo {
    Auto,        ///< consult the profile's decision table (default;
                 ///< falls back to Allgatherv when the profile has none)
    Allgatherv,  ///< MPI_Allgatherv over the bridge (the paper's default)
    Bcast,       ///< one rooted broadcast per node block
    Pipelined,   ///< segmented, pipelined ring for large node blocks
    BruckV,      ///< log-round Bruck allgatherv on bridge point-to-point
    NeighborExchange,  ///< pairwise neighbor exchange (even bridge size,
                       ///< contiguous slices; falls back to Allgatherv)
    LocBruck,    ///< locality-aware Bruck (arXiv:2206.03564): the primary
                 ///< leader ships whole aggregated node blocks — the data
                 ///< classic Bruck's first ceil(log2 ppn) rounds would move
                 ///< rank-by-rank already travelled over shared memory into
                 ///< the node block, and with L leaders per node ONE Bruck
                 ///< exchange replaces L interleaved ones (an L-fold
                 ///< inter-node message-count reduction). Non-primary
                 ///< leaders send nothing; their slices ride along.
};

/// Hy_Allgather / Hy_Allgatherv (paper Fig. 3b and Fig. 4): a reusable
/// channel holding the one-off state — the node-shared result buffer, the
/// synchronization flags, and the bridge counts/displacements — so the
/// repeated collective is exactly the paper's lines 23-39.
///
/// Usage per iteration:
///   1. each rank writes its contribution through my_block();
///   2. run();
///   3. every rank reads any rank's data through block_of(r).
///
/// The buffer is laid out node-major ("slot" order). Under SMP-style
/// placement on a node-contiguous communicator, slot == rank; otherwise
/// block_of() translates through the node-sorted rank array (Sect. 6) —
/// readers are position-independent either way.
class AllgatherChannel {
public:
    /// Regular allgather: every rank contributes @p block_bytes.
    /// Collective over hc.world().
    AllgatherChannel(const HierComm& hc, std::size_t block_bytes);

    /// Irregular allgather (Hy_Allgatherv): bytes_per_rank indexed by comm
    /// rank. Collective over hc.world().
    AllgatherChannel(const HierComm& hc,
                     std::span<const std::size_t> bytes_per_rank);

    /// Where this rank writes its contribution (its private partition of
    /// the node-shared buffer — Fig. 4 line 21).
    std::byte* my_block() const { return block_of(hc_->world().rank()); }

    /// Where rank @p comm_rank's gathered data lives after run(). After a
    /// hybrid->flat downgrade this transparently redirects into the rank's
    /// private buffer (same slot-major offsets), so readers never notice.
    std::byte* block_of(int comm_rank) const {
        const std::size_t off =
            slot_offset_[static_cast<std::size_t>(hc_->slot_of(comm_rank))];
        return degraded_flat_ ? flat_at(off) : buf_.at(off);
    }
    std::size_t block_size(int comm_rank) const {
        return block_bytes_[static_cast<std::size_t>(comm_rank)];
    }

    /// Whole result buffer (node-major slot order): the node-shared segment,
    /// or the private flat copy after a downgrade.
    std::byte* data() const {
        return degraded_flat_ ? flat_at(0) : buf_.data();
    }
    std::size_t total_bytes() const { return total_bytes_; }

    /// Paper Sect. 6's datatype alternative for non-SMP placements:
    /// materialize a RANK-ordered private copy of the gathered data in
    /// @p dst (total_bytes() bytes) through a derived-datatype pack. This
    /// pays exactly the pack/unpack penalty that the node-sorted slot map
    /// (block_of) avoids — provided for interfacing with code that expects
    /// the pure-MPI allgather layout, and for the placement ablation.
    void repack_rank_order(void* dst) const;

    /// The repeated collective: on-node sync, leader bridge exchange,
    /// on-node sync (Fig. 4 lines 23-39). Single-node communicators take
    /// the one-barrier fast path (lines 29-30).
    void run(SyncPolicy sync = SyncPolicy::Barrier,
             BridgeAlgo algo = BridgeAlgo::Auto);

    /// Separate a read phase from the next write phase: callers that READ
    /// other ranks' blocks after run() and then REWRITE their own partition
    /// before the next run() must quiesce in between, or a fast writer
    /// races slow on-node readers (the result buffer is genuinely shared —
    /// the hazard the pure-MPI version's private copies never see).
    /// After a hybrid->flat downgrade every rank owns a private copy, so
    /// there is nothing to quiesce.
    void quiesce(SyncPolicy sync = SyncPolicy::Barrier) {
        if (!degraded_flat_) sync_.full_sync(sync);
    }

    /// Resilience counters of this channel (robust mode only; all zero on
    /// the fault-free fast path).
    const RobustStats& robust_stats() const { return stats_; }

    /// Rung 2 of the degradation ladder: the channel has fallen back to a
    /// flat MPI_Allgatherv over the full communicator (exhausted bridge
    /// retries or SHM allocation failure). Sticky for the channel lifetime.
    bool degraded_flat() const { return degraded_flat_; }

    /// Split-phase variant implementing the overlap the paper's conclusion
    /// describes: "it is straightforward to let the on-node MPI processes
    /// overlap with the network traffic by working on their own data
    /// regions". begin() runs the ready sync and — on leaders — the bridge
    /// exchange; between begin() and finish() every rank may compute on its
    /// OWN partition (children genuinely overlap the leaders' transfers);
    /// finish() runs the release sync, after which all blocks are readable.
    void begin(SyncPolicy sync = SyncPolicy::Barrier,
               BridgeAlgo algo = BridgeAlgo::Auto);
    void finish(SyncPolicy sync = SyncPolicy::Barrier);

    /// Nonblocking split-phase round on the progress engine: runs the ready
    /// sync, posts the leaders' bridge exchange as an engine task (charged
    /// to the request's sub-clock, so it overlaps caller compute on ANY
    /// rank — unlike begin(), which blocks the leader until its transfers
    /// are done), and defers the release sync + on-node NUMA copy to the
    /// returned request's wait(). The channel is the persistent descriptor:
    /// the HierComm, SHM window, SocketStager, bridge layout and the
    /// leader's engine worker are all cached across start() calls — only
    /// one round may be in flight per channel at a time (RequestError
    /// otherwise). Robust mode completes synchronously at post (the
    /// reliable frame paths are main-clock by design).
    minimpi::CollRequest start(SyncPolicy sync = SyncPolicy::Barrier,
                               BridgeAlgo algo = BridgeAlgo::Auto);

    /// Override the segment size of BridgeAlgo::Pipelined (0 = use the
    /// tuned/default heuristic). For the tuner's segment sweep and for
    /// experiments.
    void set_pipeline_segment(std::size_t bytes) {
        pipeline_segment_ = bytes;
    }

    /// How the on-node phases treat the NUMA socket boundary (only
    /// meaningful on clusters with sockets_per_node > 1; inert otherwise).
    /// Default Auto consults the tuned SocketStaging decision table.
    /// SocketStaging::Pipelined runs the chunked single-copy engine on
    /// multi-node rounds (single-node rounds degrade to Staged).
    void set_socket_staging(SocketStaging s) { staging_ = s; }
    SocketStaging socket_staging() const { return staging_; }

    /// Explicit pipeline chunk size (0 = the tuned/default size). Only
    /// meaningful for rounds the engine actually chunks.
    void set_chunk_bytes(std::size_t b) { chunk_bytes_ = b; }
    std::size_t chunk_bytes() const { return chunk_bytes_; }

    const HierComm& hier() const { return *hc_; }

private:
    void init_layout(std::span<const std::size_t> bytes_per_rank);
    /// @p seg_override: a split-phase segment choice (tuning::Op::
    /// SplitSegment) applied when set_pipeline_segment() has not pinned one.
    void bridge_exchange(BridgeAlgo algo, std::size_t seg_override = 0);
    /// Resolve BridgeAlgo::Auto via the profile's decision table, keyed by
    /// (bridge size, largest node-block byte count). May set @p seg when
    /// the table tuned a pipeline segment size.
    BridgeAlgo tuned_bridge_algo(std::size_t& seg) const;
    /// Tuned chunk size of the split-phase (engine-driven) bridge exchange
    /// (tuning::Op::SplitSegment); 0 = no tuned entry / "whole" = keep the
    /// per-algorithm heuristic. Tables without split_segment rows — all
    /// currently baked ones — leave the split phase identical to run().
    std::size_t tuned_split_segment() const;

    /// Robust-mode leader exchange: pairwise ring of reliable (ARQ)
    /// transfers over the bridge. Returns false when any transfer exhausted
    /// its retry budget (the rank keeps serving peers regardless, so
    /// everyone terminates).
    bool robust_bridge_exchange();
    /// The chunked single-copy round: the leader's exchange runs in chunk
    /// passes (pass c ships bytes [c*chunk, (c+1)*chunk) of every node
    /// block), each pass published down the node/socket tree by its own
    /// release flag. Returns the robust failure verdict (always true on
    /// the fast path).
    bool run_pipelined(const PipelinePlan& plan, const RobustConfig* cfg);
    /// Rung 2: collective over world. Marks the channel flat, builds the
    /// private slot-major buffer, and — when @p refill — re-runs this
    /// generation's exchange as a flat allgatherv so the result is still
    /// byte-identical to pure MPI.
    void downgrade_to_flat(bool refill);
    /// Flat MPI_Allgatherv over world into the private buffer (counts per
    /// world rank, displacements preserving the slot-major layout).
    void run_flat();
    /// Channel-unique generation stamp: (channel uid << 32) | round.
    std::uint64_t gen64() const {
        return (chan_uid_ << 32) | (generation_ & 0xFFFFFFFFULL);
    }
    std::byte* flat_at(std::size_t off) const {
        return flat_buf_.empty()
                   ? nullptr
                   : const_cast<std::byte*>(flat_buf_.data()) + off;
    }

    const HierComm* hc_ = nullptr;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    SocketStager stager_;
    SocketStaging staging_ = SocketStaging::Auto;
    std::size_t total_bytes_ = 0;
    std::vector<std::size_t> block_bytes_;  ///< per comm rank
    std::vector<std::size_t> slot_offset_;  ///< per slot, bytes into buffer

    /// One-off bridge parameters for my leader role (Fig. 4: "the omitted
    /// computation of ... received count and displacement ... is a one-off").
    std::vector<std::size_t> bridge_counts_;  ///< per bridge rank, bytes
    std::vector<std::size_t> bridge_displs_;  ///< per bridge rank, bytes
    std::size_t max_bridge_count_ = 0;        ///< largest bridge slice
    /// Largest whole-node block (rank-uniform, unlike max_bridge_count_,
    /// which is per leader slice) — the LocBruck table key, so every
    /// leader of a multi-leader node resolves Auto identically and the
    /// primary's whole-block writes can never overlap a divergent peer's.
    std::size_t max_node_block_ = 0;
    /// Bridge slices abut in the shared buffer (true with one leader per
    /// node: node-major order); NeighborExchange requires it.
    bool bridge_contiguous_ = true;
    std::size_t pipeline_segment_ = 0;  ///< 0 = tuned/default heuristic
    std::size_t chunk_bytes_ = 0;       ///< explicit pipeline chunk override

    /// Persistent engine task of the leader's split-phase bridge exchange
    /// (lazily created at the first start(); re-armed on every later one).
    std::shared_ptr<minimpi::detail::IcollState> task_;
    BridgeAlgo started_algo_ = BridgeAlgo::Auto;  ///< algo of the armed round
    SyncPolicy started_sync_ = SyncPolicy::Barrier;
    std::size_t started_seg_ = 0;  ///< tuned split-segment of the armed round
    /// A split-phase round is in flight on THIS rank (children have no
    /// engine task, so the guard cannot live on task_ alone).
    bool round_active_ = false;

    /// Derived datatype mapping slot-major storage to rank order (one-off).
    minimpi::Layout rank_order_layout_;

    // --- resilience state (robust mode only; inert on the fast path) ---
    std::uint64_t chan_uid_ = 0;    ///< program-order channel id
    std::uint64_t generation_ = 0;  ///< run()/begin() round counter
    bool degraded_flat_ = false;    ///< sticky hybrid->flat downgrade
    bool began_flat_ = false;       ///< begin() ran on the flat path
    std::vector<std::byte> flat_buf_;          ///< private slot-major copy
    std::vector<std::size_t> flat_counts_;     ///< per world rank, bytes
    std::vector<std::size_t> flat_displs_;     ///< per world rank, bytes
    std::shared_ptr<NodeFailWord> fail_shared_;  ///< per node
    RobustStats stats_;
};

/// Default segment size for BridgeAlgo::Pipelined, used when neither the
/// decision table nor set_pipeline_segment supplies one.
inline constexpr std::size_t kPipelineSegmentBytes = 32 * 1024;

namespace detail {

/// The rotated-doubling Bruck allgatherv core shared by BridgeAlgo::BruckV
/// (per-leader bridge slices), BridgeAlgo::LocBruck (whole node blocks) and
/// the small-collective batcher (fused per-node regions): block i of @p base
/// — @p counts[i] bytes at @p displs[i] — is owned by bridge rank i; after
/// the call every rank holds every block. ceil(log2 p) rounds of doubling
/// aggregated transfers through a rotated scratch, then one unrotation pass.
/// Zero-count blocks cost nothing and land correctly (the rotated prefix
/// sums simply collapse); null @p base (SizeOnly payload mode) is fine.
/// Tags kTagHier + @p tag_base + round.
void node_block_bruck(const minimpi::Comm& bridge, std::byte* base,
                      std::span<const std::size_t> displs,
                      std::span<const std::size_t> counts, int tag_base);

}  // namespace detail

}  // namespace hympi
