#pragma once

#include "hybrid/hier_comm.h"
#include "robust/status.h"

namespace hympi {

/// One node-shared memory segment (paper Fig. 1b / Fig. 4 lines 13-20):
/// the node leader allocates @p total bytes through
/// MPI_Win_allocate_shared; every other on-node rank allocates zero bytes
/// and locates the segment with MPI_Win_shared_query. Construction is
/// collective over hc.shm() and a one-off.
///
/// This is the paper's central memory-saving device: ONE copy of the
/// replicated data per node, instead of one per process.
class NodeSharedBuffer {
public:
    NodeSharedBuffer() = default;

    /// Collective over hc.shm(). A zero-byte request or a failed window
    /// allocation no longer leaves base_ null WITHOUT a signal: consult
    /// status() before dereferencing partitions. With robustness disabled,
    /// an allocation failure throws minimpi::WinError (legacy diagnostic);
    /// with HYMPI_ROBUST=1 it is reported through status() so the channel
    /// can degrade to flat MPI instead of aborting.
    NodeSharedBuffer(const HierComm& hc, std::size_t total_bytes);

    /// Base of the node's shared segment (null in SizeOnly payload mode,
    /// for zero-byte buffers, and after an allocation failure).
    std::byte* data() const { return base_; }
    std::size_t size() const { return bytes_; }

    /// Construction outcome: Ok, EmptyBuffer (total_bytes == 0), or
    /// AllocFailed (injected/real window-allocation failure).
    const Status& status() const { return status_; }
    bool alloc_failed() const {
        return status_.code == StatusCode::AllocFailed;
    }

    /// Convenience: pointer at byte offset @p off (null-safe). Throws
    /// minimpi::ArgumentError when @p off lies beyond the segment; the
    /// one-past-end offset itself stays legal, since zero-size blocks at
    /// the end of the window (irregular populations, sentinel offsets)
    /// legitimately resolve there and are never dereferenced.
    std::byte* at(std::size_t off) const {
        if (off > bytes_) throw_out_of_range(off);
        return base_ ? base_ + off : nullptr;
    }

private:
    [[noreturn]] void throw_out_of_range(std::size_t off) const;

    minimpi::Win win_;
    std::byte* base_ = nullptr;
    std::size_t bytes_ = 0;
    Status status_;
};

}  // namespace hympi
