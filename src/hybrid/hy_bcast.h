#pragma once

#include <optional>

#include "hybrid/numa_stage.h"
#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
#include "minimpi/icoll.h"
#include "robust/robust.h"

namespace hympi {

/// Hy_Bcast (paper Fig. 5 / Fig. 6): one node-shared segment holds the
/// broadcast payload per node; only the leaders move data across nodes; all
/// on-node processes read the shared segment through a local pointer.
///
/// Usage per iteration (root rank):
///   1. the root writes the payload through write_buffer();
///   2. every rank calls run(root);
///   3. every rank reads read_buffer().
///
/// Unlike the pure-MPI broadcast there is no intra-node message copy at all
/// — the post-exchange synchronization (Fig. 6 lines 7/10/13) is the only
/// on-node activity.
///
/// The channel is DOUBLE-BUFFERED so it can be reused every iteration with
/// just the paper's single post-exchange sync: the root of iteration e+2
/// overwrites the slot last read at iteration e, and every reader of that
/// slot has since passed the iteration-e+1 synchronization. Without the
/// second slot, the next root's store would race the previous iteration's
/// readers.
class BcastChannel {
public:
    /// Collective over hc.world(); 2 x @p bytes of shared memory per node
    /// (one-off).
    BcastChannel(const HierComm& hc, std::size_t bytes);

    /// Staging slot for the NEXT run(); only the root's writes matter.
    /// After a hybrid->flat downgrade this redirects into the rank's
    /// private double buffer.
    std::byte* write_buffer() const {
        return degraded_flat_ ? flat_at((epoch_ % 2) * bytes_padded_)
                              : buf_.at((epoch_ % 2) * bytes_padded_);
    }
    /// Slot broadcast by the most recent run().
    std::byte* read_buffer() const {
        return degraded_flat_ ? flat_at(((epoch_ + 1) % 2) * bytes_padded_)
                              : buf_.at(((epoch_ + 1) % 2) * bytes_padded_);
    }
    std::size_t size() const { return bytes_; }

    /// The repeated collective. @p root is a rank of hc.world(); only the
    /// root's buffer contents are significant on entry.
    void run(int root, SyncPolicy sync = SyncPolicy::Barrier);

    /// Nonblocking split-phase round: posts the primary leaders' bridge
    /// broadcast as an engine task and defers the release sync + on-node
    /// NUMA copy (and the epoch flip — read_buffer() switches slots only at
    /// completion) to the returned request's wait(). One round in flight per
    /// channel; robust mode completes synchronously at post. The channel is
    /// the persistent descriptor — shared slots, sync flags and the leader's
    /// engine worker are reused across start() calls.
    ///
    /// @p fill delegates the root's staging copy (fill -> write_buffer())
    /// to the progress engine so it overlaps the caller's compute instead
    /// of serializing on the main clock before the post. Engaging it is a
    /// COLLECTIVE property of the round: every rank passes an engaged
    /// optional (only the root's pointer is non-null; *fill must stay valid
    /// until wait()), because it widens the pre-post ready sync to all
    /// nodes — the edge that orders the engine-side slot writes after the
    /// previous round's on-node readers. The root hands the node leader a
    /// zero-byte completion token so the bridge never ships a stale slot;
    /// on one node no token is needed (the deferred full sync at wait()
    /// is what publishes the slot, and the root joins its fill task
    /// before participating). Disengaged (the default) is the classic
    /// contract: the root
    /// staged its payload into write_buffer() before the call, and nothing
    /// in the sync shape changes.
    minimpi::CollRequest start(int root, SyncPolicy sync = SyncPolicy::Barrier,
                               std::optional<const void*> fill = std::nullopt);

    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return stats_; }
    /// The channel has fallen back to a flat MPI_Bcast over the full
    /// communicator. Sticky for the channel lifetime.
    bool degraded_flat() const { return degraded_flat_; }

    /// On-node NUMA policy for the post-exchange read phase (inert on
    /// 1-socket clusters). Default Auto consults the tuned table.
    /// SocketStaging::Pipelined runs the chunked single-copy engine on
    /// multi-node rounds (single-node rounds degrade to Staged).
    void set_socket_staging(SocketStaging s) { staging_ = s; }
    SocketStaging socket_staging() const { return staging_; }

    /// Explicit pipeline chunk size (0 = the tuned/default size). Only
    /// meaningful for rounds the engine actually chunks.
    void set_chunk_bytes(std::size_t b) { chunk_bytes_ = b; }
    std::size_t chunk_bytes() const { return chunk_bytes_; }

    const HierComm& hier() const { return *hc_; }

private:
    /// Rung 2: mark flat, build the private double buffer, optionally redo
    /// this generation's broadcast flat (salvaging the root's payload from
    /// the still-valid shared slot).
    void downgrade_to_flat(int root, bool refill);
    /// Flat MPI_Bcast over world out of the private write slot.
    void run_flat(int root);
    std::uint64_t gen64() const {
        return (chan_uid_ << 32) | (generation_ & 0xFFFFFFFFULL);
    }
    std::byte* flat_at(std::size_t off) const {
        return flat_buf_.empty()
                   ? nullptr
                   : const_cast<std::byte*>(flat_buf_.data()) + off;
    }

    /// The chunked single-copy round: per-chunk bridge broadcast at the
    /// primary leaders, per-chunk release flags down the node/socket tree.
    void run_pipelined(int root_node, const PipelinePlan& plan,
                       const RobustConfig* cfg);

    const HierComm* hc_ = nullptr;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    SocketStager stager_;
    SocketStaging staging_ = SocketStaging::Auto;
    std::size_t chunk_bytes_ = 0;  ///< explicit pipeline chunk override
    std::size_t bytes_ = 0;
    std::size_t bytes_padded_ = 0;  ///< slot stride (cache-line aligned)
    std::uint64_t epoch_ = 0;       ///< completed run() count (rank-local)

    /// Persistent engine task of the primary leader's bridge broadcast
    /// (lazily created at the first start(); re-armed on later ones).
    std::shared_ptr<minimpi::detail::IcollState> task_;
    /// Persistent engine task of a fill round's staging copy when it does
    /// not ride task_ — a non-leader root on a multi-node channel, or any
    /// root on a single-node one (lazily created on first use).
    std::shared_ptr<minimpi::detail::IcollState> fill_task_;
    int started_root_ = 0;        ///< root rank of the armed round
    int started_root_node_ = 0;   ///< root node of the armed round
    std::byte* started_slot_ = nullptr;  ///< write slot of the armed round
    SyncPolicy started_sync_ = SyncPolicy::Barrier;
    bool started_fill_ = false;   ///< the armed round is an engine-fill one
    const void* started_fill_src_ = nullptr;  ///< root only; else nullptr
    /// Matching context of the fill completion token: the fill task's
    /// explicit-sequence rendezvous context, recomputed per round (both the
    /// root's send and the leader's receive derive the same value).
    std::uint64_t started_fill_ctx_ = 0;
    /// A split-phase round is in flight on THIS rank (children have no
    /// engine task, so the guard cannot live on task_ alone).
    bool round_active_ = false;

    // --- resilience state (robust mode only; inert on the fast path) ---
    std::uint64_t chan_uid_ = 0;
    std::uint64_t generation_ = 0;
    bool degraded_flat_ = false;
    std::vector<std::byte> flat_buf_;  ///< private double buffer
    std::shared_ptr<NodeFailWord> fail_shared_;
    RobustStats stats_;
};

}  // namespace hympi
