#pragma once

#include "hybrid/numa_stage.h"
#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
#include "robust/robust.h"

namespace hympi {

/// Hy_Bcast (paper Fig. 5 / Fig. 6): one node-shared segment holds the
/// broadcast payload per node; only the leaders move data across nodes; all
/// on-node processes read the shared segment through a local pointer.
///
/// Usage per iteration (root rank):
///   1. the root writes the payload through write_buffer();
///   2. every rank calls run(root);
///   3. every rank reads read_buffer().
///
/// Unlike the pure-MPI broadcast there is no intra-node message copy at all
/// — the post-exchange synchronization (Fig. 6 lines 7/10/13) is the only
/// on-node activity.
///
/// The channel is DOUBLE-BUFFERED so it can be reused every iteration with
/// just the paper's single post-exchange sync: the root of iteration e+2
/// overwrites the slot last read at iteration e, and every reader of that
/// slot has since passed the iteration-e+1 synchronization. Without the
/// second slot, the next root's store would race the previous iteration's
/// readers.
class BcastChannel {
public:
    /// Collective over hc.world(); 2 x @p bytes of shared memory per node
    /// (one-off).
    BcastChannel(const HierComm& hc, std::size_t bytes);

    /// Staging slot for the NEXT run(); only the root's writes matter.
    /// After a hybrid->flat downgrade this redirects into the rank's
    /// private double buffer.
    std::byte* write_buffer() const {
        return degraded_flat_ ? flat_at((epoch_ % 2) * bytes_padded_)
                              : buf_.at((epoch_ % 2) * bytes_padded_);
    }
    /// Slot broadcast by the most recent run().
    std::byte* read_buffer() const {
        return degraded_flat_ ? flat_at(((epoch_ + 1) % 2) * bytes_padded_)
                              : buf_.at(((epoch_ + 1) % 2) * bytes_padded_);
    }
    std::size_t size() const { return bytes_; }

    /// The repeated collective. @p root is a rank of hc.world(); only the
    /// root's buffer contents are significant on entry.
    void run(int root, SyncPolicy sync = SyncPolicy::Barrier);

    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return stats_; }
    /// The channel has fallen back to a flat MPI_Bcast over the full
    /// communicator. Sticky for the channel lifetime.
    bool degraded_flat() const { return degraded_flat_; }

    /// On-node NUMA policy for the post-exchange read phase (inert on
    /// 1-socket clusters). Default Auto consults the tuned table.
    void set_socket_staging(SocketStaging s) { staging_ = s; }
    SocketStaging socket_staging() const { return staging_; }

    const HierComm& hier() const { return *hc_; }

private:
    /// Rung 2: mark flat, build the private double buffer, optionally redo
    /// this generation's broadcast flat (salvaging the root's payload from
    /// the still-valid shared slot).
    void downgrade_to_flat(int root, bool refill);
    /// Flat MPI_Bcast over world out of the private write slot.
    void run_flat(int root);
    std::uint64_t gen64() const {
        return (chan_uid_ << 32) | (generation_ & 0xFFFFFFFFULL);
    }
    std::byte* flat_at(std::size_t off) const {
        return flat_buf_.empty()
                   ? nullptr
                   : const_cast<std::byte*>(flat_buf_.data()) + off;
    }

    const HierComm* hc_ = nullptr;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    SocketStager stager_;
    SocketStaging staging_ = SocketStaging::Auto;
    std::size_t bytes_ = 0;
    std::size_t bytes_padded_ = 0;  ///< slot stride (cache-line aligned)
    std::uint64_t epoch_ = 0;       ///< completed run() count (rank-local)

    // --- resilience state (robust mode only; inert on the fast path) ---
    std::uint64_t chan_uid_ = 0;
    std::uint64_t generation_ = 0;
    bool degraded_flat_ = false;
    std::vector<std::byte> flat_buf_;  ///< private double buffer
    std::shared_ptr<NodeFailWord> fail_shared_;
    RobustStats stats_;
};

}  // namespace hympi
