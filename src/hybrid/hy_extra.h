#pragma once

#include "hybrid/numa_stage.h"
#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
#include "minimpi/icoll.h"
#include "robust/robust.h"

namespace hympi {

using minimpi::Datatype;
using minimpi::Op;

/// Robust identity shared by the extra channels: generation stamps for the
/// reliable (ARQ) bridge legs plus the channel's resilience counters. The
/// extra channels have no hybrid->flat rung — their reliable legs retry
/// within the budget and throw a typed RobustError on exhaustion (never a
/// silent hang).
struct RobustChannelState {
    std::uint64_t uid = 0;
    std::uint64_t generation = 0;
    RobustStats stats;

    /// One-off, collective over @p world: claim a program-order uid when
    /// robustness is enabled (no-op otherwise).
    void init(const minimpi::Comm& world);
    std::uint64_t gen() const {
        return (uid << 32) | (generation & 0xFFFFFFFFULL);
    }
};

/// Extensions beyond the paper's two worked examples (its conclusion calls
/// for "more experiences" in the hybrid MPI+MPI style). Each follows the
/// same template as Hy_Allgather: one-off node-shared buffers + hierarchy,
/// repeated cheap collective with explicit on-node synchronization and
/// leader-only inter-node traffic.

/// Hybrid allreduce: on-node processes reduce their node's contributions
/// cooperatively (each rank owns a stripe of elements), the leader runs the
/// inter-node allreduce over the bridge, and the node shares ONE result
/// vector.
class AllreduceChannel {
public:
    /// Collective over hc.world(); @p count elements of @p dt.
    AllreduceChannel(const HierComm& hc, std::size_t count, Datatype dt);

    /// This rank's private input vector (count elements, node-shared slot).
    std::byte* my_input() const;
    /// The node-shared result vector (valid after run()).
    std::byte* result() const;

    void run(Op op, SyncPolicy sync = SyncPolicy::Barrier);

    /// Nonblocking split-phase round: the cooperative on-node reduction
    /// runs at post (it is the callers' own compute), the primary leaders'
    /// bridge allreduce is posted as an engine task, and the release sync +
    /// result read-back happen at the returned request's wait(). One round
    /// in flight per channel; robust mode completes synchronously at post.
    minimpi::CollRequest start(Op op, SyncPolicy sync = SyncPolicy::Barrier);

    /// On-node NUMA policy: how the striped node reduction and the result
    /// read-back treat the socket boundary (inert on 1-socket clusters).
    /// Default Auto consults the tuned SocketStaging decision table.
    /// SocketStaging::Pipelined runs the XBRC-style chunked reduction on
    /// multi-node rounds (single-node rounds degrade to Staged).
    void set_socket_staging(SocketStaging s) { staging_ = s; }
    SocketStaging socket_staging() const { return staging_; }

    /// Explicit pipeline chunk size (0 = the tuned/default size). Only
    /// meaningful for rounds the engine actually chunks.
    void set_chunk_bytes(std::size_t b) { chunk_bytes_ = b; }
    std::size_t chunk_bytes() const { return chunk_bytes_; }

    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return rs_.stats; }

private:
    /// The XBRC-style chunked round: each rank reduces its stripe of chunk
    /// c directly into the node result slice and publishes it on its
    /// per-rank ready flag; the leader bridges chunk c as soon as its ppn
    /// ready flags land (overlapping the node reduction of chunk c+1) and
    /// re-publishes it on the node-level chunk flag for the leaf readers.
    void run_pipelined(Op op, const PipelinePlan& plan,
                       const RobustConfig* cfg);

    const HierComm* hc_;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    SocketStager stager_;
    SocketStaging staging_ = SocketStaging::Auto;
    std::size_t chunk_bytes_ = 0;  ///< explicit pipeline chunk override
    std::size_t count_;
    Datatype dt_;
    std::size_t vec_bytes_;
    RobustChannelState rs_;

    /// Persistent engine task of the primary leader's bridge allreduce
    /// (lazily created at the first start(); re-armed on later ones).
    std::shared_ptr<minimpi::detail::IcollState> task_;
    Op started_op_ = Op::Sum;  ///< op of the armed round
    SyncPolicy started_sync_ = SyncPolicy::Barrier;
    /// A split-phase round is in flight on THIS rank (children have no
    /// engine task, so the guard cannot live on task_ alone).
    bool round_active_ = false;
};

/// Hybrid gather to a fixed root: children write their partitions into the
/// node-shared block; leaders forward node blocks to the root's leader; the
/// gathered vector exists ONCE, on the root's node.
class GatherChannel {
public:
    GatherChannel(const HierComm& hc, std::size_t block_bytes, int root);

    /// Where this rank writes its contribution.
    std::byte* my_block() const;
    /// Gathered block of @p comm_rank — valid on the root's node after run().
    std::byte* gathered(int comm_rank) const;

    void run(SyncPolicy sync = SyncPolicy::Barrier);


    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return rs_.stats; }

private:
    const HierComm* hc_;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    std::size_t bb_;
    int root_;
    int root_node_;
    RobustChannelState rs_;
};

/// Hybrid scatter from a fixed root: the root writes all blocks into its
/// node's shared buffer; leaders receive only their node's slice; children
/// read their block from the node-shared slice — no per-process copies.
class ScatterChannel {
public:
    ScatterChannel(const HierComm& hc, std::size_t block_bytes, int root);

    /// Root only: where to write rank @p comm_rank's outgoing block.
    std::byte* outgoing(int comm_rank) const;
    /// Where this rank reads its received block after run().
    std::byte* my_block() const;

    void run(SyncPolicy sync = SyncPolicy::Barrier);


    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return rs_.stats; }

private:
    const HierComm* hc_;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    std::size_t bb_;
    int root_;
    int root_node_;
    RobustChannelState rs_;
};

/// Hybrid reduce to a fixed root: on-node striped reduction into the node
/// result vector, bridge reduce to the root's leader; result lives once on
/// the root's node.
class ReduceChannel {
public:
    ReduceChannel(const HierComm& hc, std::size_t count, Datatype dt, int root);

    std::byte* my_input() const;
    /// Valid on the root's node after run().
    std::byte* result() const;

    void run(Op op, SyncPolicy sync = SyncPolicy::Barrier);


    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return rs_.stats; }

private:
    const HierComm* hc_;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    std::size_t count_;
    Datatype dt_;
    std::size_t vec_bytes_;
    int root_;
    int root_node_;
    RobustChannelState rs_;
};

/// Hybrid all-to-all: each node keeps ONE send matrix and ONE receive
/// matrix (local members x all slots); leaders pack per-destination-node
/// slices, exchange pairwise over the bridge, and unpack — on-node traffic
/// is pure load/store.
class AlltoallChannel {
public:
    AlltoallChannel(const HierComm& hc, std::size_t block_bytes);

    /// Block this rank sends to @p dest_rank (write before run()).
    std::byte* send_block(int dest_rank) const;
    /// Block this rank received from @p src_rank (read after run()).
    std::byte* recv_block(int src_rank) const;

    void run(SyncPolicy sync = SyncPolicy::Barrier);


    /// Resilience counters of this channel (robust mode only).
    const RobustStats& robust_stats() const { return rs_.stats; }

private:
    std::size_t row_bytes() const;

    const HierComm* hc_;
    NodeSharedBuffer buf_;
    NodeSync sync_;
    std::size_t bb_;
    RobustChannelState rs_;
};

}  // namespace hympi
