#include "hybrid/recover.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "hybrid/hy_trace.h"
#include "minimpi/runtime.h"
#include "robust/reliable.h"

namespace hympi {

namespace {

/// FNV-1a over the agreement outcome: the failed set plus the survivor
/// list. Every survivor must compute the same digest, since agree_shrink
/// finalizes both once under the op lock.
std::uint64_t agreement_digest(const std::vector<int>& failed,
                               const minimpi::CommState& child) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    mix(static_cast<std::uint64_t>(failed.size()));
    for (int w : failed) mix(static_cast<std::uint64_t>(w) + 1);
    for (int w : child.members) mix((static_cast<std::uint64_t>(w) << 20) + 1);
    return h;
}

/// The ARQ confirmation leg: rank 0 of the shrunken comm collects every
/// survivor's digest of the agreed outcome and echoes its own back, all
/// over the reliable frame channel (kOpAgree) — so confirmation converges
/// through dropped frames in bounded retries, and robust-mode recovery
/// never trusts a lossy fabric with the one value everyone must share.
/// A digest mismatch (impossible unless memory was corrupted — the outcome
/// is finalized once under the op lock) is fatal.
void confirm_agreement(const minimpi::Comm& world,
                       const std::vector<int>& failed, std::uint64_t gen,
                       const RobustConfig& cfg, minimpi::RankCtx& ctx) {
    const std::uint64_t mine = agreement_digest(failed, world.state());
    RobustStats scratch;  // channel-level counters; rank aggregate is
                          // updated inside reliable_xfer as usual
    bool ok = true;
    if (world.rank() == 0) {
        for (int r = 1; r < world.size(); ++r) {
            std::uint64_t theirs = 0;
            ok = robust::reliable_recv(world, &theirs, sizeof theirs, r,
                                       robust::kOpAgree, gen, cfg, scratch) &&
                 ok;
            if (ctx.payload_mode == minimpi::PayloadMode::Real &&
                theirs != mine) {
                ok = false;
            }
        }
        for (int r = 1; r < world.size(); ++r) {
            ok = robust::reliable_send(world, &mine, sizeof mine, r,
                                       robust::kOpAgree, gen, cfg, scratch) &&
                 ok;
        }
    } else {
        std::uint64_t echo = 0;
        ok = robust::reliable_send(world, &mine, sizeof mine, 0,
                                   robust::kOpAgree, gen, cfg, scratch) &&
             ok;
        ok = robust::reliable_recv(world, &echo, sizeof echo, 0,
                                   robust::kOpAgree, gen, cfg, scratch) &&
             ok;
        if (ctx.payload_mode == minimpi::PayloadMode::Real && echo != mine) {
            ok = false;
        }
    }
    if (!ok) {
        throw minimpi::MpiError(
            "recovery agreement confirmation failed: reliable channel "
            "exhausted its retry budget or digests diverged");
    }
}

}  // namespace

void revoke_hierarchy(const HierComm& hc) {
    // World first: the NodeSync poll loops watch the world comm's revoked
    // flag, so flag waiters unblock as soon as any level is torn down.
    hc.world().revoke();
    hc.shm().revoke();
    if (hc.bridge().valid()) hc.bridge().revoke();
    if (hc.socket().valid()) hc.socket().revoke();
    if (hc.socket_leaders().valid()) hc.socket_leaders().revoke();
}

RecoveryResult shrink_and_rebuild(const minimpi::Comm& broken,
                                  int leaders_per_node) {
    minimpi::RankCtx& ctx = broken.ctx();
    TraceSpan span(ctx, hytrace::Phase::Robust, "recovery");
    RecoveryResult res;

    {
        TraceSpan agree(ctx, hytrace::Phase::Robust, "agree");
        res.world = broken.agree_shrink(&res.failed_world);
        const RobustConfig* cfg = ctx.robust_cfg;
        if (cfg != nullptr && cfg->enabled && res.world.size() > 1) {
            // Generation stamp for the confirmation frames: the broken
            // comm's shrink epoch, identical on every survivor (matched
            // collective order) and fresh per recovery round.
            const std::uint64_t epoch =
                broken.state().member_shrink_epoch.at(
                    static_cast<std::size_t>(broken.rank()));
            const std::uint64_t gen = (0xA6ULL << 56) | epoch;
            confirm_agreement(res.world, res.failed_world, gen, *cfg, ctx);
        }
    }

    {
        TraceSpan rebuild(ctx, hytrace::Phase::Robust, "rebuild");
        res.hier = std::make_shared<HierComm>(res.world, leaders_per_node);
    }

    // Classify the damage against the broken comm's node layout. Members
    // are grouped by simulated node; the first member of a node in comm
    // order is its primary leader (lowest rank leads — the same election
    // rule HierComm just re-applied to the survivors).
    const minimpi::CommState& old_state = broken.state();
    std::map<int, std::pair<int, int>> per_node;  // node -> (members, dead)
    std::map<int, bool> leader_dead;              // node -> its leader died
    for (int w : old_state.members) {
        const int node = ctx.cluster->node_of(w);
        const bool dead = std::find(res.failed_world.begin(),
                                    res.failed_world.end(),
                                    w) != res.failed_world.end();
        auto [it, fresh] = per_node.try_emplace(node, 0, 0);
        if (fresh) leader_dead[node] = dead;
        it->second.first += 1;
        if (dead) it->second.second += 1;
    }
    for (const auto& [node, counts] : per_node) {
        if (counts.second == counts.first) {
            res.node_lost = true;
        } else if (leader_dead[node]) {
            res.leader_replaced = true;
        }
    }

    ctx.robust_stats.shrinks += 1;
    HYTRACE_COUNTER(ctx, shrinks, 1);
    return res;
}

}  // namespace hympi
