#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "hybrid/hier_comm.h"
#include "hybrid/sync.h"

namespace hympi {

/// How a hybrid channel's on-node phases treat the NUMA socket boundary
/// (only meaningful when the cluster models sockets_per_node > 1):
///  * Flat   — the pre-socket behaviour: every rank touches the node-shared
///    buffer directly, so ranks on a remote socket pay the contended
///    cross-socket (QPI/UPI) cost for every byte they pull across;
///  * Staged — the socket leader crosses the boundary ONCE on behalf of its
///    socket (a bulk mirror copy into a socket-local region), then its
///    socket's ranks read locally after one socket-scoped sync;
///  * Pipelined — the staged single-copy tree, but chunked: the payload
///    moves in chunks, each published down the node->socket->leaf tree by
///    its own release flag as soon as it lands, so the bridge transfer of
///    chunk i+1 overlaps the cross-socket mirror of chunk i and the leaf
///    reads of chunk i-1 (only meaningful on multi-node channels; a
///    single-node round degrades to Staged);
///  * Auto   — consult the profile's tuned decision tables (falls back to a
///    size threshold when the profile has none; Auto never picks Pipelined
///    without a tuned ChunkSize entry saying so).
enum class SocketStaging : std::uint8_t {
    Auto,
    Flat,
    Staged,
    Pipelined,
};

/// Chunk size of a pipelined round when neither an explicit override nor a
/// tuned ChunkSize entry names one.
inline constexpr std::size_t kDefaultChunkBytes = 32 * 1024;

namespace detail {

/// The one segment/chunk clamp rule shared by every segmented path
/// (PipelinePlan::plan, BridgeAlgo::Pipelined in bridge_exchange, and the
/// tuned_bridge_algo resolution): a 0 request means "use @p fallback", the
/// result is floored at max(@p floor, 1) and capped at the payload (itself
/// floored at 1, so a 0-byte round can never divide by zero). Idempotent —
/// re-clamping a clamped value with the same bounds is the identity.
constexpr std::size_t clamp_segment(std::size_t seg, std::size_t fallback,
                                    std::size_t floor, std::size_t payload) {
    if (seg == 0) seg = fallback;
    if (floor < 1) floor = 1;
    if (seg < floor) seg = floor;
    if (payload < 1) payload = 1;
    return seg < payload ? seg : payload;
}

}  // namespace detail

/// Resolved shape of one pipelined round (see SocketStager::plan).
struct PipelinePlan {
    bool pipelined = false;       ///< run the chunked single-copy path
    std::size_t chunk_bytes = 0;  ///< resolved chunk size (0 when off)
    /// Leaf read mode of each chunk (and of the whole round when the
    /// chunked path is off): Flat or Staged, never Auto/Pipelined.
    SocketStaging leaf = SocketStaging::Flat;
};

/// Per-channel driver of the socket-staged on-node phases. Construction is
/// cheap and local; all methods are no-ops unless the hierarchy has a
/// socket level, the channel has a single leader per node (staging slices
/// are defined per whole node) and robust mode is off — so on every
/// existing configuration the channel's behaviour and virtual clocks are
/// bit-identical to the pre-socket code.
class SocketStager {
public:
    SocketStager() = default;
    explicit SocketStager(const HierComm& hc);

    /// Whether the socket model applies to this channel at all.
    bool active() const { return active_; }

    /// Resolve Auto against the tuned SocketStaging table (keyed by the
    /// on-node population and @p bytes); deterministic and uniform across
    /// the ranks of one socket. Pipelined resolves to the leaf mode it
    /// stages chunks with (Staged when the socket model applies, else
    /// Flat); plan() is the chunked-path entry point.
    SocketStaging resolve(SocketStaging mode, std::size_t bytes) const;

    /// Resolve the full pipeline shape of a round moving @p bytes.
    /// Forced Pipelined engages the chunked path on any multi-node round
    /// (@p chunk_override, then the tuned ChunkSize segment, then a 32 KiB
    /// default picks the chunk size); Auto engages it only when the tuned
    /// ChunkSize table names pipelined at this (ppn, bytes) point AND the
    /// socket model applies — without a table Auto never pipelines, so
    /// every previously-tuned configuration keeps its exact clocks.
    PipelinePlan plan(SocketStaging mode, std::size_t bytes, bool multi_node,
                      std::size_t chunk_override) const;

    /// Charge one pipelined chunk's leaf phase: the socket leaders mirror
    /// the chunk across (Staged leaf) or every remote-socket reader pulls
    /// it (Flat leaf). Unlike distribute() there is no trailing socket
    /// barrier — per-chunk socket flags provide the ordering.
    void distribute_chunk(std::size_t chunk_len, SocketStaging leaf);

    /// Consumer side of one pipelined round of @p bytes in @p chunk_bytes
    /// chunks: wait for each chunk's node-level release flag (published by
    /// the producing primary leader as the chunk lands), run the chunk's
    /// leaf phase, and — Staged leaf — have each remote socket's leader
    /// re-publish the chunk on its socket flag so its peers read the
    /// socket-local mirror chunk by chunk. Every rank of the node except
    /// the primary leader calls this exactly once per pipelined round
    /// (the per-slot flag mirrors stay consistent because the round shape
    /// is deterministic and uniform across the node).
    void consume_chunks(NodeSync& sync, std::size_t bytes,
                        std::size_t chunk_bytes, SocketStaging leaf);

    /// Same protocol with an explicit per-chunk length vector — for rounds
    /// whose chunks are not an even split of one linear buffer (allgather
    /// passes ship one slice of EVERY node block, so pass lengths taper as
    /// short blocks run dry). The producer must signal exactly
    /// chunk_lens.size() node-level flags.
    void consume_chunks(NodeSync& sync, std::span<const std::size_t> chunk_lens,
                        SocketStaging leaf);

    /// Charge the on-node distribution of a @p bytes result that lives in
    /// the home-socket-resident shared buffer. Flat: every remote-socket
    /// rank pulls the result across, contended by its socket's co-readers.
    /// Staged: the socket leader mirrors it across once, then a socket
    /// barrier publishes the mirror. Home-socket ranks read locally (free)
    /// either way.
    void distribute(std::size_t bytes, SocketStaging mode);

    /// Charge the input side of the cooperative on-node reduction, whose
    /// input partitions are homed on their OWNERS' sockets (first touch).
    /// Flat: every rank pulls the other sockets' share of the inputs
    /// across while striping. Staged: each socket reduces locally first and
    /// only its leader crosses, pulling the other sockets' partials once.
    void reduce_gather(std::size_t vec_bytes, SocketStaging mode);

private:
    const HierComm* hc_ = nullptr;
    bool active_ = false;
};

}  // namespace hympi
