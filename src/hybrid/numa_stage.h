#pragma once

#include <cstddef>
#include <cstdint>

#include "hybrid/hier_comm.h"

namespace hympi {

/// How a hybrid channel's on-node phases treat the NUMA socket boundary
/// (only meaningful when the cluster models sockets_per_node > 1):
///  * Flat   — the pre-socket behaviour: every rank touches the node-shared
///    buffer directly, so ranks on a remote socket pay the contended
///    cross-socket (QPI/UPI) cost for every byte they pull across;
///  * Staged — the socket leader crosses the boundary ONCE on behalf of its
///    socket (a bulk mirror copy into a socket-local region), then its
///    socket's ranks read locally after one socket-scoped sync;
///  * Auto   — consult the profile's tuned decision table (falls back to a
///    size threshold when the profile has none).
enum class SocketStaging : std::uint8_t {
    Auto,
    Flat,
    Staged,
};

/// Per-channel driver of the socket-staged on-node phases. Construction is
/// cheap and local; all methods are no-ops unless the hierarchy has a
/// socket level, the channel has a single leader per node (staging slices
/// are defined per whole node) and robust mode is off — so on every
/// existing configuration the channel's behaviour and virtual clocks are
/// bit-identical to the pre-socket code.
class SocketStager {
public:
    SocketStager() = default;
    explicit SocketStager(const HierComm& hc);

    /// Whether the socket model applies to this channel at all.
    bool active() const { return active_; }

    /// Resolve Auto against the tuned SocketStaging table (keyed by the
    /// on-node population and @p bytes); deterministic and uniform across
    /// the ranks of one socket.
    SocketStaging resolve(SocketStaging mode, std::size_t bytes) const;

    /// Charge the on-node distribution of a @p bytes result that lives in
    /// the home-socket-resident shared buffer. Flat: every remote-socket
    /// rank pulls the result across, contended by its socket's co-readers.
    /// Staged: the socket leader mirrors it across once, then a socket
    /// barrier publishes the mirror. Home-socket ranks read locally (free)
    /// either way.
    void distribute(std::size_t bytes, SocketStaging mode);

    /// Charge the input side of the cooperative on-node reduction, whose
    /// input partitions are homed on their OWNERS' sockets (first touch).
    /// Flat: every rank pulls the other sockets' share of the inputs
    /// across while striping. Staged: each socket reduces locally first and
    /// only its leader crosses, pulling the other sockets' partials once.
    void reduce_gather(std::size_t vec_bytes, SocketStaging mode);

private:
    const HierComm* hc_ = nullptr;
    bool active_ = false;
};

}  // namespace hympi
