#include "hybrid/hier_comm.h"

namespace hympi {

HierComm::HierComm(const Comm& comm, int leaders_per_node)
    : world_(comm), leaders_per_node_(leaders_per_node) {
    if (leaders_per_node < 1) {
        throw minimpi::ArgumentError("leaders_per_node must be >= 1");
    }
    const int p = comm.size();

    // Node-major bookkeeping from cluster topology (a real MPI port would
    // derive the same from MPI_Get_processor_name or the shared-memory
    // communicator membership; it is local knowledge either way).
    std::vector<int> node_ids;  // node-major order of cluster node ids
    std::vector<std::vector<int>> members;
    node_index_of_.assign(static_cast<std::size_t>(p), -1);
    for (int r = 0; r < p; ++r) {
        const int n = comm.node_of(r);
        int idx = -1;
        for (std::size_t j = 0; j < node_ids.size(); ++j) {
            if (node_ids[j] == n) {
                idx = static_cast<int>(j);
                break;
            }
        }
        if (idx < 0) {
            idx = static_cast<int>(node_ids.size());
            node_ids.push_back(n);
            members.emplace_back();
        }
        node_index_of_[static_cast<std::size_t>(r)] = idx;
        members[static_cast<std::size_t>(idx)].push_back(r);
    }

    const int nnodes = static_cast<int>(node_ids.size());
    node_sizes_.resize(static_cast<std::size_t>(nnodes));
    node_offsets_.resize(static_cast<std::size_t>(nnodes));
    slot_of_.assign(static_cast<std::size_t>(p), -1);
    rank_at_.reserve(static_cast<std::size_t>(p));
    int offset = 0;
    for (int i = 0; i < nnodes; ++i) {
        const auto& m = members[static_cast<std::size_t>(i)];
        node_sizes_[static_cast<std::size_t>(i)] = static_cast<int>(m.size());
        node_offsets_[static_cast<std::size_t>(i)] = offset;
        for (int r : m) {
            slot_of_[static_cast<std::size_t>(r)] = offset++;
            rank_at_.push_back(r);
        }
    }
    smp_contiguous_ = true;
    for (int r = 0; r < p; ++r) {
        if (slot_of_[static_cast<std::size_t>(r)] != r) {
            smp_contiguous_ = false;
            break;
        }
    }

    my_node_ = node_index_of_[static_cast<std::size_t>(comm.rank())];

    // A node smaller than the requested leader count cannot host every
    // leader role: bridge l would skip that node entirely and the slices
    // exchanged over it would never arrive there. Clamp to the smallest
    // node so each bridge communicator spans every node.
    for (int sz : node_sizes_) {
        leaders_per_node_ = std::min(leaders_per_node_, sz);
    }

    // Fig. 4 lines 2-10: the two-level splitting, expressed through the
    // public MPI facilities only.
    shm_ = comm.split_shared();
    leader_index_ =
        (shm_.rank() < leaders_per_node_) ? shm_.rank() : -1;
    // One bridge communicator per leader slice; ranks that lead slice l
    // join bridge color l. (With L == 1 this is exactly Fig. 4 line 8-10.)
    bridge_ = comm.split(leader_index_ >= 0 ? leader_index_ : minimpi::kUndefined,
                         comm.rank());

    // Optional third level: NUMA sockets. Only materialized when the
    // cluster models more than one socket per node — flat nodes skip the
    // extra splits entirely, keeping the two-level construction (and every
    // virtual clock downstream of it) bit-identical to the pre-socket code.
    if (comm.ctx().cluster->sockets_per_node() > 1) {
        my_socket_ = comm.socket_of(comm.rank());
        home_socket_ = shm_.socket_of(0);
        int max_socket = 0;
        for (int r = 0; r < shm_.size(); ++r) {
            max_socket = std::max(max_socket, shm_.socket_of(r));
        }
        sockets_on_node_ = max_socket + 1;
        if (sockets_on_node_ > 1) {
            socket_ = shm_.split(my_socket_, shm_.rank());
            is_socket_leader_ = (socket_.rank() == 0);
            socket_leaders_ = shm_.split(
                is_socket_leader_ ? 0 : minimpi::kUndefined, shm_.rank());
        } else {
            is_socket_leader_ = (shm_.rank() == 0);
        }
    } else {
        is_socket_leader_ = (shm_.rank() == 0);
    }
}

std::pair<int, int> HierComm::leader_slice(int n, int l) const {
    const int size = node_size(n);
    const int leaders = std::min(leaders_per_node_, size);
    if (l < 0 || l >= leaders) return {0, 0};
    return {size * l / leaders, size * (l + 1) / leaders};
}

}  // namespace hympi
