#pragma once

#include <utility>
#include <vector>

#include "minimpi/minimpi.h"

/// hympi — the paper's contribution: MPI collectives for the hybrid
/// MPI+MPI programming model. Built exclusively on the public minimpi API
/// (the same calls an MPI-3 port would make): MPI_Comm_split_type,
/// MPI_Comm_split, MPI_Win_allocate_shared, MPI_Win_shared_query, barriers
/// and the bridge collectives.
namespace hympi {

using minimpi::Comm;
using minimpi::VTime;

/// The two-level communicator hierarchy of paper Sect. 3 (Fig. 1/2):
/// a shared-memory communicator per node (MPI_Comm_split_type with
/// MPI_COMM_TYPE_SHARED) and a bridge communicator of the per-node leaders
/// (lowest-ranking process of each node). Construction is collective over
/// @p world and is a one-off (paper Fig. 4 lines 2-10).
///
/// The hierarchy also precomputes the node-sorted global rank array of
/// paper Sect. 6, which lets the hybrid collectives lay shared buffers out
/// node-contiguously under ANY rank placement (SMP-style or round-robin):
/// a rank's block lives at slot_of(rank), not necessarily at its own rank
/// index.
class HierComm {
public:
    /// Collective over @p comm. @p leaders_per_node > 1 enables the
    /// multi-leader extension (Kandalla et al. '09): the lowest L ranks of
    /// each node each drive a slice of the node's inter-node traffic over
    /// their own bridge communicator. The count is clamped to the smallest
    /// node's population (every bridge must span every node);
    /// leaders_per_node() reports the effective value.
    explicit HierComm(const Comm& comm, int leaders_per_node = 1);

    const Comm& world() const { return world_; }
    const Comm& shm() const { return shm_; }
    /// Bridge communicator for this rank's leader role; null unless
    /// is_leader(). With multi-leader, this is the bridge of my slice.
    const Comm& bridge() const { return bridge_; }

    bool is_leader() const { return leader_index_ >= 0; }
    /// Which of the node's leaders this rank is (0-based), or -1.
    int leader_index() const { return leader_index_; }
    int leaders_per_node() const { return leaders_per_node_; }
    /// The node's first leader — the single rank per node that drives
    /// whole-node bridge operations in channels that do not slice.
    bool is_primary_leader() const { return leader_index_ == 0; }

    /// Members-per-node slice of node @p n driven by leader @p l:
    /// [first, last) member indices within the node. The constructor clamps
    /// the leader count to the smallest node, so every node hosts all
    /// leaders_per_node() leaders and every slice is non-empty; an
    /// out-of-range @p l yields the empty slice {0, 0}.
    std::pair<int, int> leader_slice(int n, int l) const;

    int num_nodes() const { return static_cast<int>(node_sizes_.size()); }
    /// Index of my node in node-major order (nodes ordered by their lowest
    /// world-comm rank).
    int my_node() const { return my_node_; }
    /// Members of node @p n (count / offset in block slots).
    int node_size(int n) const { return node_sizes_.at(static_cast<std::size_t>(n)); }
    int node_offset(int n) const { return node_offsets_.at(static_cast<std::size_t>(n)); }
    int node_of_rank(int comm_rank) const {
        return node_index_of_.at(static_cast<std::size_t>(comm_rank));
    }

    /// Node-sorted slot of a comm rank's block within node-major buffers.
    int slot_of(int comm_rank) const {
        return slot_of_.at(static_cast<std::size_t>(comm_rank));
    }
    /// Comm rank whose block occupies @p slot.
    int rank_at(int slot) const {
        return rank_at_.at(static_cast<std::size_t>(slot));
    }
    /// True when slot order equals rank order (SMP-style placement on a
    /// node-contiguous communicator) — block accesses need no translation.
    bool smp_contiguous() const { return smp_contiguous_; }

    /// My own slot.
    int my_slot() const { return slot_of(world_.rank()); }

    // --- optional third level: NUMA sockets under the node leader ---
    // Built only when the cluster models more than one socket per node
    // (ClusterSpec::sockets_per_node() > 1); on flat nodes the accessors
    // below report the degenerate 1-socket view and no extra communicators
    // exist, so the two-level hierarchy is bit-identical to before.

    /// True when this node actually spans more than one populated socket.
    bool has_socket_level() const { return sockets_on_node_ > 1; }
    /// Populated sockets on my node (1 on flat nodes).
    int sockets_on_node() const { return sockets_on_node_; }
    /// My socket index within the node (0 on flat nodes).
    int my_socket() const { return my_socket_; }
    /// The socket hosting shm rank 0 — where the node-shared buffers are
    /// homed (NUMA first touch by the allocating leader).
    int home_socket() const { return home_socket_; }
    /// Per-socket shared communicator (my socket's on-node ranks); null
    /// unless has_socket_level().
    const Comm& socket() const { return socket_; }
    /// The node's socket leaders (lowest shm rank of each populated
    /// socket) under the node leader; null unless this rank is a socket
    /// leader on a node with a socket level.
    const Comm& socket_leaders() const { return socket_leaders_; }
    /// True when this rank drives its socket's staged copies (the lowest
    /// shm rank of its socket). On flat nodes only the node leader is.
    bool is_socket_leader() const { return is_socket_leader_; }

private:
    Comm world_;
    Comm shm_;
    Comm bridge_;
    Comm socket_;
    Comm socket_leaders_;
    int sockets_on_node_ = 1;
    int my_socket_ = 0;
    int home_socket_ = 0;
    bool is_socket_leader_ = false;
    int leaders_per_node_ = 1;
    int leader_index_ = -1;
    int my_node_ = -1;
    std::vector<int> node_sizes_;
    std::vector<int> node_offsets_;
    std::vector<int> node_index_of_;
    std::vector<int> slot_of_;
    std::vector<int> rank_at_;
    bool smp_contiguous_ = true;
};

}  // namespace hympi
