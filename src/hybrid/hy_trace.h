#pragma once

#include "minimpi/trace_span.h"

/// Hybrid-layer tracing helpers on top of minimpi/trace_span.h: scoped
/// byte attribution for the two counters whose value is a *delta* of
/// existing CommStats fields across a phase, so the counter is correct by
/// construction no matter which algorithm ran inside the scope.
namespace hympi {

using minimpi::TraceSpan;

#if HYMPI_TRACE_ENABLED

/// Attributes the bytes_sent delta across its lifetime to the enclosing
/// span and the rank's bridge_bytes counter. Scope exactly around a bridge
/// exchange.
class BridgeBytesScope {
public:
    BridgeBytesScope(minimpi::RankCtx& ctx, TraceSpan& span)
        : ctx_(&ctx), span_(&span), before_(ctx.stats.bytes_sent) {}
    ~BridgeBytesScope() {
        const std::uint64_t delta = ctx_->stats.bytes_sent - before_;
        span_->set_bytes(delta);
        HYTRACE_COUNTER(*ctx_, bridge_bytes, delta);
    }
    BridgeBytesScope(const BridgeBytesScope&) = delete;
    BridgeBytesScope& operator=(const BridgeBytesScope&) = delete;

private:
    minimpi::RankCtx* ctx_;
    TraceSpan* span_;
    std::uint64_t before_;
};

/// Attributes the memcpy_bytes delta across its lifetime to the enclosing
/// span and the rank's shm_bytes counter. Scope around node-shared copy
/// phases (repack, on-node staging).
class ShmBytesScope {
public:
    ShmBytesScope(minimpi::RankCtx& ctx, TraceSpan& span)
        : ctx_(&ctx), span_(&span), before_(ctx.stats.memcpy_bytes) {}
    ~ShmBytesScope() {
        const std::uint64_t delta = ctx_->stats.memcpy_bytes - before_;
        span_->set_bytes(delta);
        HYTRACE_COUNTER(*ctx_, shm_bytes, delta);
    }
    ShmBytesScope(const ShmBytesScope&) = delete;
    ShmBytesScope& operator=(const ShmBytesScope&) = delete;

private:
    minimpi::RankCtx* ctx_;
    TraceSpan* span_;
    std::uint64_t before_;
};

#else

class BridgeBytesScope {
public:
    BridgeBytesScope(minimpi::RankCtx&, TraceSpan&) {}
    BridgeBytesScope(const BridgeBytesScope&) = delete;
    BridgeBytesScope& operator=(const BridgeBytesScope&) = delete;
};

class ShmBytesScope {
public:
    ShmBytesScope(minimpi::RankCtx&, TraceSpan&) {}
    ShmBytesScope(const ShmBytesScope&) = delete;
    ShmBytesScope& operator=(const ShmBytesScope&) = delete;
};

#endif  // HYMPI_TRACE_ENABLED

}  // namespace hympi
