#include "hybrid/shared_buffer.h"

#include "minimpi/error.h"

namespace hympi {

NodeSharedBuffer::NodeSharedBuffer(const HierComm& hc, std::size_t total_bytes)
    : bytes_(total_bytes) {
    const Comm& shm = hc.shm();
    // Fig. 4 line 13: msgSize = (sharedmemRank==leader) ? msg*nprocs : 0.
    const bool allocator = (shm.rank() == 0);
    win_ = minimpi::win_allocate_shared(shm, allocator ? total_bytes : 0);
    if (win_.alloc_failed()) {
        status_ = Status::make(
            StatusCode::AllocFailed,
            "node-shared window allocation failed on node " +
                std::to_string(hc.my_node()));
        minimpi::RankCtx& ctx = shm.ctx();
        if (allocator) ctx.robust_stats.alloc_failures += 1;
        if (ctx.robust_cfg == nullptr || !ctx.robust_cfg->enabled) {
            // Legacy mode: a diagnostic instead of handing out null
            // partition pointers that crash later and far away.
            throw minimpi::WinError(status_.detail +
                                    " (set HYMPI_ROBUST=1 to degrade to "
                                    "flat MPI instead)");
        }
        return;
    }
    if (total_bytes == 0) {
        status_ = Status::make(StatusCode::EmptyBuffer,
                               "zero-byte node-shared buffer");
        return;
    }
    // Fig. 4 lines 17-20: children query the leader's base pointer.
    base_ = win_.shared_query(0).first;
}

void NodeSharedBuffer::throw_out_of_range(std::size_t off) const {
    throw minimpi::ArgumentError(
        "NodeSharedBuffer::at: offset " + std::to_string(off) +
        " past end of " + std::to_string(bytes_) + "-byte shared segment");
}

}  // namespace hympi
