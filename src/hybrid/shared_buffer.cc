#include "hybrid/shared_buffer.h"

namespace hympi {

NodeSharedBuffer::NodeSharedBuffer(const HierComm& hc, std::size_t total_bytes)
    : bytes_(total_bytes) {
    const Comm& shm = hc.shm();
    // Fig. 4 line 13: msgSize = (sharedmemRank==leader) ? msg*nprocs : 0.
    const bool allocator = (shm.rank() == 0);
    win_ = minimpi::win_allocate_shared(shm, allocator ? total_bytes : 0);
    // Fig. 4 lines 17-20: children query the leader's base pointer.
    base_ = win_.shared_query(0).first;
}

}  // namespace hympi
