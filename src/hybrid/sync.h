#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hybrid/hier_comm.h"

namespace hympi {

/// Node-shared failure word for the hybrid->flat degradation ladder: a
/// leader whose bridge AGREED that an exchange failed stores the transfer's
/// generation stamp here BEFORE its release signal; after the release every
/// on-node rank compares the word against the current generation (stale
/// stamps from earlier rounds never match), so the whole job downgrades at
/// the same round boundary or not at all.
struct NodeFailWord {
    std::atomic<std::uint64_t> fail_gen{0};
};

/// Collective over hc.shm(): rendezvous-boot one NodeFailWord per node
/// (robust mode one-off; stands in for a tiny shared window).
std::shared_ptr<NodeFailWord> boot_fail_word(const HierComm& hc);

/// The two synchronization flavors of paper Sect. 6 ("Explicit
/// synchronization"):
///  * Barrier — heavy-weight MPI_Barrier across the on-node processes
///    (what the paper's evaluation uses);
///  * Flags — light-weight shared sequence flags: each rank owns a
///    cache-line-padded epoch counter; the leader waits for all children's
///    counters, children wait for the leader's release counter (cf. Graham
///    & Shipman '08, referenced in the paper's conclusion).
enum class SyncPolicy {
    Barrier,
    Flags,
};

/// On-node synchronization engine for one shared-memory communicator.
/// Construction is collective over hc.shm() and a one-off.
///
/// Modelled cost: each flag store charges flag_signal_us; each wait charges
/// flag_poll_us per flag inspected and synchronizes the waiter's virtual
/// clock to the signaller's store time — the same propagation rule as
/// message arrivals, so determinism is preserved.
class NodeSync {
public:
    explicit NodeSync(const HierComm& hc);

    /// Phase A of Hy_Allgather (Fig. 4 line 25/34): every rank announces
    /// "my partition is initialized"; the leader returns once all on-node
    /// ranks have announced. Children return immediately after signalling,
    /// unless they pass @p collector — then they run the leader's collect
    /// loop too. A split-phase rank about to hand a shared slot to the
    /// progress engine collects so its engine-side write happens-after
    /// every on-node reader's previous-round reads (Barrier mode collects
    /// everyone by construction; @p collector only matters under Flags).
    void ready_phase(SyncPolicy p, bool collector = false);

    /// Phase B (Fig. 4 line 27/35): the leader announces "exchange done";
    /// children return once they observe it. Call on every rank; leaders
    /// (leader_index 0) publish, everyone else waits.
    void release_phase(SyncPolicy p);

    /// The single-node fast path (Fig. 4 lines 29-30/37-38) and Hy_Bcast's
    /// post-exchange sync (Fig. 6): one on-node barrier (or the equivalent
    /// flag round-trip).
    void full_sync(SyncPolicy p);

    // --- per-chunk pipeline flags (the chunked single-copy engine) ---
    //
    // A pipelined round moves a large payload in chunks; each chunk gets
    // its own release flag so a consumer stage can start on chunk i while
    // the producer is still working on chunk i+1. Flags live in fixed
    // per-publisher slots with MONOTONE ABSOLUTE sequence numbers: chunk c
    // of a round whose publisher had issued `base` signals before the
    // round targets seq base+c+1. Every rank mirrors each slot's absolute
    // count locally (chunk_mark/chunk_skip) — rounds are deterministic and
    // uniform across the node, so the mirrors agree without any shared
    // coordination.
    //
    // Each signal's virtual-time stamp is kept in an append-only per-slot
    // log indexed by absolute seq: a waiter synchronizes to ITS chunk's
    // stamp, never to the latest one — a single overwritten stamp would
    // leak the wall-clock interleaving of later signals into virtual time.

    /// Slot of rank @p r's per-chunk ready flag (pipelined reductions).
    int chunk_slot_rank(int r) const { return r; }
    /// Slot of the node-level per-chunk release flag (primary leader).
    int chunk_slot_node() const { return hc_->shm().size(); }
    /// Slot of socket @p s's per-chunk release flag (socket leader s).
    int chunk_slot_socket(int s) const { return hc_->shm().size() + 1 + s; }

    /// Publish the next chunk from @p slot (advances this rank's mirror).
    void chunk_signal(int slot);
    /// Absolute signal count of @p slot as of the last completed round on
    /// this rank — the base a waiter adds chunk indices to.
    std::uint64_t chunk_mark(int slot) const {
        return chunk_next_[static_cast<std::size_t>(slot)];
    }
    /// Wait until @p slot reaches absolute seq @p target (1-based), then
    /// synchronize this rank's clock to that signal's own stamp. Aware of
    /// process failures: when the slot's publisher is dead and the target
    /// seq was never reached, raises ProcessFailedError instead of hanging.
    void chunk_wait(int slot, std::uint64_t target);
    /// Advance this rank's mirror of @p slot by a round's @p n chunks
    /// (non-publishers call this once per pipelined round they observe).
    void chunk_skip(int slot, std::size_t n) {
        chunk_next_[static_cast<std::size_t>(slot)] += n;
    }

    /// Degradation ladder, step 1 (robust mode only): once the flag-sync
    /// watchdog has tripped sync_trip_limit times on this node, Flags
    /// requests are served with Barrier for the rest of the job. The flip
    /// happens at an identical round boundary on every on-node rank.
    bool degraded() const { return degraded_; }

    /// The policy actually used for @p p on this rank right now.
    SyncPolicy effective(SyncPolicy p) const {
        return (degraded_ && p == SyncPolicy::Flags) ? SyncPolicy::Barrier : p;
    }

private:
    struct Cell {
        alignas(64) std::uint64_t seq = 0;
        VTime vtime = 0.0;
    };
    /// One publisher's pipeline flag: a monotone counter plus the
    /// append-only stamp log (stamps[i] is the vtime of signal i+1).
    struct ChunkSlot {
        alignas(64) std::uint64_t seq = 0;
        std::vector<VTime> stamps;
    };
    /// Host-shared state standing in for a flags window; the model charges
    /// the costs a window-resident flag array would incur.
    struct Shared {
        std::mutex mu;
        std::condition_variable cv;
        std::vector<Cell> ready;    ///< one per shm rank
        std::vector<Cell> release;  ///< one per leader (first L entries used)
        /// Pipeline flag slots: [0, ppn) per-rank chunk-ready, [ppn] the
        /// node-level chunk release, [ppn+1+s] socket s's chunk release.
        std::vector<ChunkSlot> chunk;

        /// Watchdog trips observed on this node (flag signals arriving
        /// later than watchdog_us of virtual time after the waiter began
        /// waiting). Guarded by mu; ordering with respect to the primary
        /// leader's downgrade decision follows from the flag seq protocol.
        std::uint64_t trips = 0;
        /// Release round R after which Flags is abandoned (0 = never).
        /// Written once by the node's primary leader BEFORE its round-R
        /// release signal, so every rank that completes round R observes it.
        std::uint64_t degrade_after = 0;
    };

    void signal(Cell& c, minimpi::RankCtx& ctx);
    /// @p owner_world is the world rank that publishes this cell (-1 = not
    /// tracked): a flag owned by a dead rank can never be published, so the
    /// waiter raises ProcessFailedError (charging the deterministic
    /// detection latency) instead of spinning forever; a revoked world comm
    /// raises CommRevokedError so survivors blocked on live-but-erroring
    /// peers reach the recovery path too.
    void wait_for(const Cell& c, std::uint64_t target, minimpi::RankCtx& ctx,
                  bool count_trips, int owner_world = -1);
    /// World rank that publishes chunk flag @p slot (per-rank, node-release
    /// or socket-release slot).
    int chunk_slot_owner(int slot) const;

    const HierComm* hc_;
    std::shared_ptr<Shared> shared_;
    /// Rank-local mirror of every chunk slot's absolute signal count.
    std::vector<std::uint64_t> chunk_next_;
    std::uint64_t my_ready_epoch_ = 0;
    std::uint64_t release_epoch_ = 0;
    bool degraded_ = false;
    /// This rank's flag traffic crosses the socket boundary: the flag block
    /// is homed on shm rank 0's socket (first touch), so ranks on the other
    /// socket(s) pay xsocket_flag_penalty_us per store/poll. Always false on
    /// 1-socket clusters.
    bool xsocket_flags_ = false;
};

}  // namespace hympi
