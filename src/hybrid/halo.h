#pragma once

#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
#include "minimpi/icoll.h"

namespace hympi {

/// Backend selector shared with the application layer (same meaning as
/// apps::Backend, duplicated here to keep the hybrid library free of app
/// dependencies).
enum class HaloBackend {
    PureMpi,
    Hybrid,
};

/// 1D halo (ghost-cell) exchange — the point-to-point pattern of Hoefler et
/// al.'s original MPI+MPI paper, which the reproduced paper cites as the
/// prior art its collectives extend, and which its conclusion lists as the
/// natural companion ("more experiences (e.g., p2p communications)").
///
/// Pure MPI: every rank owns  [ghost H | cells | ghost H]  privately and
/// exchanges H-cell halos with BOTH neighbors every iteration — including
/// neighbors on the same node, whose halos travel through the shm transport
/// as real messages.
///
/// Hybrid MPI+MPI: each node holds ONE contiguous slab
/// [ghost H | rank0 cells | rank1 cells | ... | ghost H] in a shared
/// window. On-node neighbors need no transfer at all — a rank's "halo" IS
/// its neighbor's boundary cells, read in place. Only the node-edge ranks
/// exchange halos across the network, and an on-node sync publishes the
/// iteration (paper Sect. 6 suggests the light-weight flag flavor for
/// exactly this non-collective pattern).
///
/// The global domain is a periodic ring of comm.size() * cells_per_rank
/// cells (SMP-contiguous placement assumed, as in the paper's Sect. 4).
class HaloExchange1D {
public:
    /// Collective over hc.world().
    HaloExchange1D(const HierComm& hc, std::size_t cells_per_rank,
                   std::size_t halo_width, HaloBackend backend);

    std::size_t cells_per_rank() const { return cells_; }
    std::size_t halo_width() const { return halo_; }

    /// Where to produce the NEXT iteration's cell values (double-buffered:
    /// writing here never races readers of the published slab).
    double* write_cells();

    /// My cells as of the last publish_and_exchange().
    const double* cells() const;
    /// The H cells logically left/right of my published cells. For hybrid
    /// interior ranks these ALIAS the on-node neighbor's cells — no copy
    /// ever exists; node-edge ranks read the node slab's ghost region.
    const double* left_halo() const;
    const double* right_halo() const;

    /// Publish the values written through write_cells() and refresh the
    /// ghost regions across node boundaries. The sync policy is honored by
    /// the hybrid backend only (pure MPI synchronizes through its halo
    /// messages).
    void publish_and_exchange(SyncPolicy sync = SyncPolicy::Flags);

    /// Split-phase publish (hybrid backend only): posts the node-edge
    /// network transfers on the progress engine and returns immediately;
    /// compute charged between start and wait() overlaps them in virtual
    /// time (interior ranks have no traffic and complete at once). wait()
    /// runs the on-node sync that publishes the slab, so no aliased ghost
    /// may be read before it. One exchange may be outstanding at a time;
    /// do not mix with the blocking form while one is in flight.
    minimpi::CollRequest start_exchange(SyncPolicy sync = SyncPolicy::Flags);

private:
    const HierComm* hc_;
    std::size_t cells_;
    std::size_t halo_;
    HaloBackend backend_;
    std::uint64_t epoch_ = 0;  ///< completed publishes (rank-local)

    // Hybrid: two node slabs in one shared window; slab layout:
    // [H ghost][node_size * cells][H ghost].
    NodeSharedBuffer slab_;
    std::size_t slab_doubles_ = 0;  ///< stride between the two slabs
    NodeSync sync_;

    // Pure MPI: two private slabs [H][cells][H].
    std::vector<double> priv_;

    int left_rank_ = minimpi::kProcNull;
    int right_rank_ = minimpi::kProcNull;

    /// Base (in doubles) of slab @p s (0/1).
    double* slab_base(int s) const;
    /// Published / write slab selectors.
    int pub_slab() const { return static_cast<int>((epoch_ + 1) % 2); }
    int write_slab() const { return static_cast<int>(epoch_ % 2); }
    /// Pointer to local member @p idx's cells within slab @p s (hybrid).
    double* slab_cells(int s, int local_idx) const;
};

}  // namespace hympi
