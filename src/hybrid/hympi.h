#pragma once

/// Umbrella header for hympi — the hybrid MPI+MPI collectives library
/// reproducing Zhou, Gracia & Schneider (ICPP '19). See DESIGN.md.

#include "hybrid/hier_comm.h"
#include "hybrid/hy_allgather.h"
#include "hybrid/hy_batch.h"
#include "hybrid/hy_bcast.h"
#include "hybrid/halo.h"
#include "hybrid/hy_extra.h"
#include "hybrid/recover.h"
#include "hybrid/shared_buffer.h"
#include "hybrid/sync.h"
