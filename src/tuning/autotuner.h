#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "minimpi/netmodel.h"
#include "tuning/decision.h"

/// Offline virtual-time autotuner.
///
/// For one vendor profile, measures every registered candidate algorithm
/// of every tuned operation over a (comm size x message size x link shape)
/// grid inside the simulator (SizeOnly payloads, OSU-style max-over-ranks
/// latency) and records the argmin per grid point into a DecisionTable.
/// Ties resolve toward the lowest algorithm id — i.e. the pre-table
/// default — so tuning never flips a choice without a strict win.
///
/// The whole measurement is deterministic (the simulator is), so two runs
/// with the same config produce byte-identical tables; the config seed is
/// only stamped into the table header for provenance.
namespace tuning {

struct TuneConfig {
    std::uint64_t seed = 20260806;

    /// Communicator-size axes per link shape. Includes non-powers-of-two
    /// so clamping between grid points stays honest.
    std::vector<int> net_sizes = {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
    std::vector<int> shm_sizes = {2, 3, 4, 6, 8, 12, 16, 24, 32};
    std::vector<int> bridge_sizes = {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};

    /// Per-rank block bytes for allgather/allgatherv (table keys are the
    /// resulting totals, comm_size * block). Dense enough that the legacy
    /// threshold boundaries fall between adjacent grid points.
    std::vector<std::size_t> block_bytes = {16,   128,   1024,  4096,  8192,
                                            16384, 24576, 32768, 65536};
    /// Message bytes for bcast/allreduce.
    std::vector<std::size_t> message_bytes = {64,    1024,   4096,
                                              16384, 65536,  262144,
                                              1048576, 4194304};
    /// Node-block bytes for the hybrid bridge exchange.
    std::vector<std::size_t> bridge_block_bytes = {
        64, 1024, 16384, 32768, 65536, 262144, 1048576, 4194304};
    /// Segment sizes swept for the pipelined candidates (0 — the built-in
    /// heuristic — is always included as a candidate).
    std::vector<std::uint32_t> segment_bytes = {2048, 8192, 32768, 131072};

    int warmup = 1;
    int iters = 2;

    /// The full grid used for the checked-in tables.
    static TuneConfig full() { return {}; }
    /// A reduced grid for the tuning regression ctest.
    static TuneConfig quick();
};

/// All candidate choices of @p op valid at @p comm_size (e.g. recursive
/// doubling only at powers of two; one pipelined candidate per swept
/// segment size).
std::vector<Choice> candidates(Op op, int comm_size, const TuneConfig& cfg);

/// The pre-table hardcoded selection at this grid point (what the legacy
/// thresholds would run) — the baseline the tuning ctest compares against.
Choice legacy_choice(const minimpi::ModelParams& profile, Op op,
                     int comm_size, std::size_t bytes);

/// Virtual-time latency (us) of one candidate at one grid point: builds
/// the matching cluster (Net: comm_size nodes x 1 rank, Shm: 1 node), runs
/// the candidate cfg.warmup + cfg.iters times in SizeOnly mode, returns
/// the max per-iteration latency over ranks. For Op::BridgeExchange the
/// candidates that delegate to minimpi collectives run under whatever
/// table is currently registered for the profile.
double measure(const minimpi::ModelParams& profile, Op op, Shape shape,
               int comm_size, std::size_t bytes, const Choice& choice,
               const TuneConfig& cfg);

/// Sweep the full grid for @p profile and return the filled table.
/// Progress lines go to @p log when non-null. Temporarily registers the
/// partially built table while tuning Op::BridgeExchange (so its vendor
/// Allgatherv candidate runs with tuned inner selection), then removes the
/// override again; the caller decides whether to register the result.
DecisionTable tune_profile(const minimpi::ModelParams& profile,
                           const TuneConfig& cfg, std::ostream* log);

}  // namespace tuning
