#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

/// Tuned collective-selection tables.
///
/// Production MPI libraries do not pick collective algorithms from a couple
/// of compile-time thresholds: they ship decision tables produced by an
/// offline tuner (Open MPI's `coll_tuned` dynamic rules, Intel MPI's
/// I_MPI_ADJUST tables). This module is the equivalent for the simulator:
/// an offline autotuner (autotuner.h) sweeps every candidate algorithm over
/// a (communicator size x message size x link shape) grid in virtual time,
/// per vendor profile, and bakes the winners into per-profile
/// DecisionTables that minimpi collectives and the hybrid bridge consult
/// at runtime.
///
/// This library is deliberately free of any minimpi dependency: minimpi
/// links against it (RankCtx carries a table pointer), and the autotuner —
/// which needs the full simulator — lives in a separate target on top.
namespace tuning {

/// Operations with tuned selection.
enum class Op : std::uint8_t {
    Allgather,       ///< keyed by total receive-buffer bytes
    Allgatherv,      ///< keyed by total receive-buffer bytes
    Bcast,           ///< keyed by message bytes
    Allreduce,       ///< keyed by message bytes
    Barrier,         ///< keyed by 0 (no message size axis)
    BridgeExchange,  ///< hybrid bridge allgatherv; keyed by the largest
                     ///< node-block byte count on the bridge
    SocketStaging,   ///< hybrid on-node NUMA phase (flat vs socket-staged);
                     ///< Shm shape, keyed by the distributed byte count
    SplitSegment,    ///< split-phase (nonblocking) bridge exchange: whether
                     ///< the engine-driven round segments its transfers, and
                     ///< at which chunk size; keyed like BridgeExchange
    ChunkSize,       ///< hybrid pipeline engine: whether a large-message
                     ///< round runs whole-message staged or chunked
                     ///< (pipelined), and at which chunk size; Shm shape,
                     ///< keyed by the distributed byte count
    LocBruck,        ///< hybrid bridge: whether the multi-leader exchange
                     ///< runs the per-leader tuned algorithms or the
                     ///< locality-aware combined Bruck (one aggregated
                     ///< node block per inter-node message); keyed by
                     ///< (node count, largest node-block byte count) —
                     ///< rank-uniform, so every leader resolves alike
    BatchWindow,     ///< small-collective aggregation shim: whether ops of
                     ///< a given size are coalesced into the fused bridge
                     ///< exchange or executed immediately; keyed by
                     ///< (node count, per-op payload bytes)
};
inline constexpr int kNumOps = 11;

/// Link class of the communicator the operation runs on. Collective call
/// sites in minimpi are link-pure: the SMP-aware dispatch sends mixed
/// communicators down the hierarchical path, whose sub-operations run on
/// all-shared-memory (Shm) or all-network (Net) communicators.
enum class Shape : std::uint8_t { Net, Shm };
inline constexpr int kNumShapes = 2;

const char* op_name(Op op);
const char* shape_name(Shape shape);

/// Per-operation algorithm identifiers (the `algo` field of a Choice).
/// The value 0 is always the pre-table default family, so ties during
/// tuning resolve toward the status quo.
namespace algo {
// Op::Allgather
inline constexpr std::uint8_t kAgRecDoubling = 0;
inline constexpr std::uint8_t kAgBruck = 1;
inline constexpr std::uint8_t kAgRing = 2;
// Op::Allgatherv
inline constexpr std::uint8_t kAgvBruck = 0;
inline constexpr std::uint8_t kAgvRing = 1;
// Op::Bcast
inline constexpr std::uint8_t kBcBinomial = 0;
inline constexpr std::uint8_t kBcPipelined = 1;
// Op::Allreduce
inline constexpr std::uint8_t kArRecDoubling = 0;
inline constexpr std::uint8_t kArRing = 1;
// Op::Barrier
inline constexpr std::uint8_t kBarDissemination = 0;
inline constexpr std::uint8_t kBarTree = 1;
// Op::BridgeExchange
inline constexpr std::uint8_t kBrVendorAllgatherv = 0;
inline constexpr std::uint8_t kBrBcast = 1;
inline constexpr std::uint8_t kBrPipelined = 2;
inline constexpr std::uint8_t kBrBruckV = 3;
inline constexpr std::uint8_t kBrNeighborExchange = 4;
// Op::SocketStaging
inline constexpr std::uint8_t kSsFlat = 0;
inline constexpr std::uint8_t kSsStaged = 1;
// Op::SplitSegment
inline constexpr std::uint8_t kSpWhole = 0;
inline constexpr std::uint8_t kSpSegmented = 1;
// Op::ChunkSize
inline constexpr std::uint8_t kCsWhole = 0;
inline constexpr std::uint8_t kCsPipelined = 1;
// Op::LocBruck
inline constexpr std::uint8_t kLbPerLeader = 0;
inline constexpr std::uint8_t kLbCombined = 1;
// Op::BatchWindow
inline constexpr std::uint8_t kBwOff = 0;
inline constexpr std::uint8_t kBwFused = 1;
}  // namespace algo

/// Number of algorithm ids defined for @p op.
int algo_count(Op op);
/// Stable serialization name of algorithm @p a of @p op ("" if invalid).
const char* algo_name(Op op, std::uint8_t a);

/// One tuned decision: which algorithm, and (for segmented/pipelined
/// algorithms) which segment size. segment_bytes == 0 means "the
/// algorithm's own built-in heuristic".
struct Choice {
    std::uint8_t algo = 0;
    std::uint32_t segment_bytes = 0;

    bool operator==(const Choice&) const = default;
};

/// A per-profile decision table over the swept grid. Lookup rounds each
/// axis to the geometrically nearest grid point (nearest in log space —
/// message sizes and communicator sizes grow multiplicatively, so 196 KiB
/// is closer to 512 KiB than to 64 KiB), ties and out-of-range queries
/// clamping to the nearer end. It is total over positive sizes, exact at
/// grid points, and deterministic.
class DecisionTable {
public:
    DecisionTable() = default;
    DecisionTable(std::string profile, std::uint64_t seed)
        : profile_(std::move(profile)), seed_(seed) {}

    const std::string& profile() const { return profile_; }
    std::uint64_t seed() const { return seed_; }

    void set(Op op, Shape shape, int comm_size, std::uint64_t bytes,
             Choice choice);

    /// Tuned choice for @p op on a @p comm_size communicator of link class
    /// @p shape moving @p bytes; nullopt when the table has no entries for
    /// (op, shape) at all (callers fall back to the legacy thresholds).
    std::optional<Choice> lookup(Op op, Shape shape, int comm_size,
                                 std::uint64_t bytes) const;

    bool empty() const;
    /// Number of grid entries stored for @p op (both shapes).
    std::size_t entries(Op op) const;

    /// Stable text form (grid entries in axis order). parse() inverts it.
    std::string serialize() const;
    /// Throws std::runtime_error with a line diagnostic on malformed input.
    static DecisionTable parse(std::string_view text);

private:
    std::string profile_;
    std::uint64_t seed_ = 0;
    /// [op][shape] -> comm size -> bytes -> choice. Ordered maps keep
    /// serialization and clamping deterministic.
    std::map<int, std::map<std::uint64_t, Choice>>
        grid_[kNumOps][kNumShapes];
};

/// Registry consulted once per Runtime::run, keyed by ModelParams::name.
///
/// Resolution order: tables registered at runtime (register_table or the
/// HYMPI_TUNING_FILE environment variable — ';'-separated paths to
/// serialized tables, loaded on first use) shadow the baked-in tables
/// generated by the `tune_tables` CLI and checked in under
/// src/tuning/tables/. Setting HYMPI_TUNING_DISABLE=1 makes find_table
/// return null for every profile (pure legacy-threshold behavior).
/// Returns nullptr when no table is known for @p profile — notably the
/// "test" profile, which keeps unit tests on the legacy selection.
const DecisionTable* find_table(std::string_view profile);

/// Install (or replace) a runtime override for table.profile().
void register_table(DecisionTable table);
/// Drop a runtime override; any baked table for the profile resurfaces.
void unregister_table(std::string_view profile);

/// Parse a serialized table from @p path into the runtime overrides.
/// Returns false (with a message in *error if non-null) on failure.
bool load_table_file(const std::string& path, std::string* error);

}  // namespace tuning
