#include "tuning/baked.h"

/// Checked-in decision tables, regenerated with:
///   ./build/src/tuning/tune_tables --format inc --out-dir src/tuning/tables
/// (see TESTING.md "Autotuner"). Each .inc file is a raw string literal
/// holding one serialized DecisionTable; the header records the seed the
/// tuner ran with so the tables are reproducible.
namespace tuning::baked {

namespace {

const char kCrayTable[] =
#include "tuning/tables/cray.inc"
    ;  // NOLINT

const char kOpenmpiTable[] =
#include "tuning/tables/openmpi.inc"
    ;  // NOLINT

const BakedTable kTables[] = {
    {"cray", kCrayTable},
    {"openmpi", kOpenmpiTable},
};

}  // namespace

const BakedTable* tables(int* count) {
    *count = static_cast<int>(sizeof(kTables) / sizeof(kTables[0]));
    return kTables;
}

}  // namespace tuning::baked
