#include "tuning/autotuner.h"

#include <functional>
#include <limits>
#include <memory>
#include <ostream>
#include <vector>

#include "bench_util/latency.h"
#include "hybrid/hympi.h"
#include "minimpi/coll.h"
#include "minimpi/runtime.h"

namespace tuning {

namespace {

namespace mm = ::minimpi;

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

mm::ClusterSpec cluster_for(Shape shape, int comm_size) {
    // Link-pure topologies: every flat-algorithm call site runs over either
    // all-network or all-shared-memory links (see coll_select.cc), so one
    // node per rank / one node total reproduces the runtime cost exactly.
    return shape == Shape::Net ? mm::ClusterSpec::regular(comm_size, 1)
                               : mm::ClusterSpec::regular(1, comm_size);
}

hympi::BridgeAlgo bridge_algo_of(std::uint8_t id) {
    switch (id) {
        case algo::kBrBcast:
            return hympi::BridgeAlgo::Bcast;
        case algo::kBrPipelined:
            return hympi::BridgeAlgo::Pipelined;
        case algo::kBrBruckV:
            return hympi::BridgeAlgo::BruckV;
        case algo::kBrNeighborExchange:
            return hympi::BridgeAlgo::NeighborExchange;
        default:
            return hympi::BridgeAlgo::Allgatherv;
    }
}

/// The repeated operation for one minimpi candidate at one grid point
/// (direct detail:: entry points — selection must not re-enter the tables
/// being built). SizeOnly mode: null buffers carry the modelled sizes.
std::function<void()> make_op(mm::Comm& comm, Op op, std::size_t bytes,
                              const Choice& choice) {
    const auto p = static_cast<std::size_t>(comm.size());
    switch (op) {
        case Op::Allgather: {
            const std::size_t block = bytes / p;
            switch (choice.algo) {
                case algo::kAgRing:
                    return [&comm, block] {
                        mm::detail::allgather_ring(comm, nullptr, nullptr,
                                                   block);
                    };
                case algo::kAgBruck:
                    return [&comm, block] {
                        mm::detail::allgather_bruck(comm, nullptr, nullptr,
                                                    block);
                    };
                default:
                    return [&comm, block] {
                        mm::detail::allgather_recursive_doubling(
                            comm, nullptr, nullptr, block);
                    };
            }
        }
        case Op::Allgatherv: {
            const std::size_t block = bytes / p;
            auto counts = std::make_shared<std::vector<std::size_t>>(p, block);
            auto displs = std::make_shared<std::vector<std::size_t>>(p);
            for (std::size_t i = 0; i < p; ++i) (*displs)[i] = i * block;
            if (choice.algo == algo::kAgvRing) {
                return [&comm, block, counts, displs] {
                    mm::detail::allgatherv_ring(comm, nullptr, block, nullptr,
                                                *counts, *displs);
                };
            }
            return [&comm, block, counts, displs] {
                mm::detail::allgatherv_bruck(comm, nullptr, block, nullptr,
                                             *counts, *displs);
            };
        }
        case Op::Bcast:
            if (choice.algo == algo::kBcPipelined) {
                const std::size_t seg = choice.segment_bytes;
                return [&comm, bytes, seg] {
                    mm::detail::bcast_pipelined_chain(comm, nullptr, bytes, 0,
                                                      seg);
                };
            }
            return [&comm, bytes] {
                mm::detail::bcast_binomial(comm, nullptr, bytes, 0);
            };
        case Op::Allreduce:
            // Byte elements: count == bytes.
            if (choice.algo == algo::kArRing) {
                return [&comm, bytes] {
                    mm::detail::allreduce_ring(comm, nullptr, nullptr, bytes,
                                               mm::Datatype::Byte,
                                               mm::Op::Max);
                };
            }
            return [&comm, bytes] {
                mm::detail::allreduce_recursive_doubling(
                    comm, nullptr, nullptr, bytes, mm::Datatype::Byte,
                    mm::Op::Max);
            };
        case Op::Barrier:
        default:
            if (choice.algo == algo::kBarTree) {
                return [&comm] { mm::detail::barrier_tree(comm); };
            }
            return [&comm] { mm::detail::barrier_dissemination(comm); };
    }
}

/// Argmin over candidates; strict improvement required to displace an
/// earlier (lower-id) candidate, so ties keep the pre-table default.
Choice best_choice(const mm::ModelParams& profile, Op op, Shape shape,
                   int comm_size, std::size_t bytes, const TuneConfig& cfg) {
    double best_t = std::numeric_limits<double>::infinity();
    Choice best{};
    for (const Choice& c : candidates(op, comm_size, cfg)) {
        const double t = measure(profile, op, shape, comm_size, bytes, c, cfg);
        if (t + 1e-9 < best_t) {
            best_t = t;
            best = c;
        }
    }
    return best;
}

}  // namespace

TuneConfig TuneConfig::quick() {
    TuneConfig cfg;
    cfg.net_sizes = {2, 4, 8, 16};
    cfg.shm_sizes = {2, 4, 8};
    cfg.bridge_sizes = {2, 4, 8};
    cfg.block_bytes = {128, 8192};
    cfg.message_bytes = {1024, 262144};
    cfg.bridge_block_bytes = {1024, 262144};
    cfg.segment_bytes = {8192, 65536};
    cfg.warmup = 1;
    cfg.iters = 1;
    return cfg;
}

std::vector<Choice> candidates(Op op, int comm_size, const TuneConfig& cfg) {
    std::vector<Choice> out;
    auto add = [&out](std::uint8_t a, std::uint32_t seg = 0) {
        out.push_back(Choice{a, seg});
    };
    switch (op) {
        case Op::Allgather:
            if (is_pow2(comm_size)) add(algo::kAgRecDoubling);
            add(algo::kAgBruck);
            add(algo::kAgRing);
            break;
        case Op::Allgatherv:
            add(algo::kAgvBruck);
            add(algo::kAgvRing);
            break;
        case Op::Bcast:
            add(algo::kBcBinomial);
            add(algo::kBcPipelined);  // segment 0 = built-in heuristic
            for (std::uint32_t s : cfg.segment_bytes) {
                add(algo::kBcPipelined, s);
            }
            break;
        case Op::Allreduce:
            add(algo::kArRecDoubling);
            add(algo::kArRing);
            break;
        case Op::Barrier:
            add(algo::kBarDissemination);
            add(algo::kBarTree);
            break;
        case Op::BridgeExchange:
            add(algo::kBrVendorAllgatherv);
            add(algo::kBrBcast);
            add(algo::kBrPipelined);  // segment 0 = built-in heuristic
            for (std::uint32_t s : cfg.segment_bytes) {
                add(algo::kBrPipelined, s);
            }
            add(algo::kBrBruckV);
            // Requires an even bridge size (and contiguous slices, which one
            // leader per node guarantees).
            if (comm_size % 2 == 0) add(algo::kBrNeighborExchange);
            break;
        case Op::SocketStaging:
            add(algo::kSsFlat);
            add(algo::kSsStaged);
            break;
        case Op::ChunkSize:
            // Whole-message staging (the tuned flat/staged selection) vs.
            // the chunked single-copy pipeline at each candidate chunk size.
            add(algo::kCsWhole);
            for (std::uint32_t s : cfg.segment_bytes) {
                add(algo::kCsPipelined, s);
            }
            break;
        case Op::LocBruck:
            add(algo::kLbPerLeader);  // status-quo per-leader slicing (Auto)
            add(algo::kLbCombined);   // force the locality-aware Bruck
            break;
        case Op::BatchWindow:
            add(algo::kBwOff);    // every op immediate
            add(algo::kBwFused);  // window fused into one bridge exchange
            break;
        case Op::SplitSegment:
            // No offline sweep (only hand-registered tables carry rows):
            // the split-phase engine shape depends on the caller's overlap
            // window, which a closed-loop latency probe cannot see.
            break;
    }
    return out;
}

Choice legacy_choice(const mm::ModelParams& profile, Op op, int comm_size,
                     std::size_t bytes) {
    switch (op) {
        case Op::Allgather:
            if (bytes > profile.allgather_long_threshold) {
                return Choice{algo::kAgRing, 0};
            }
            return Choice{
                is_pow2(comm_size) ? algo::kAgRecDoubling : algo::kAgBruck, 0};
        case Op::Allgatherv:
            return Choice{bytes > profile.allgather_long_threshold
                              ? algo::kAgvRing
                              : algo::kAgvBruck,
                          0};
        case Op::Bcast:
            return Choice{bytes > profile.bcast_long_threshold
                              ? algo::kBcPipelined
                              : algo::kBcBinomial,
                          0};
        case Op::Allreduce:
            return Choice{bytes > profile.allreduce_long_threshold
                              ? algo::kArRing
                              : algo::kArRecDoubling,
                          0};
        case Op::Barrier:
            return Choice{algo::kBarDissemination, 0};
        case Op::ChunkSize:
            // Pre-pipeline behaviour: Auto never chunks without a table row.
            return Choice{algo::kCsWhole, 0};
        case Op::SocketStaging:
            // Mirror of SocketStager's pre-table heuristic: two sockets on a
            // comm_size-rank node give sockets of comm_size/2 ranks.
            return Choice{bytes >= 16 * 1024 && comm_size >= 4
                              ? algo::kSsStaged
                              : algo::kSsFlat,
                          0};
        case Op::LocBruck:
            // Pre-table behaviour: Auto never combines without a table row.
            return Choice{algo::kLbPerLeader, 0};
        case Op::BatchWindow:
            // Mirror of CollBatcher's legacy fuse threshold.
            return Choice{bytes <= 1024 ? algo::kBwFused : algo::kBwOff, 0};
        case Op::BridgeExchange:
        default:
            return Choice{algo::kBrVendorAllgatherv, 0};
    }
}

double measure(const mm::ModelParams& profile, Op op, Shape shape,
               int comm_size, std::size_t bytes, const Choice& choice,
               const TuneConfig& cfg) {
    // Ring allreduce needs one element per rank; below that the runtime
    // dispatch falls back to recursive doubling regardless of the table, so
    // the candidate is meaningless at this grid point.
    if (op == Op::Allreduce && choice.algo == algo::kArRing &&
        bytes < static_cast<std::size_t>(comm_size)) {
        return std::numeric_limits<double>::infinity();
    }
    if (op == Op::SocketStaging) {
        // One dual-socket node of comm_size ranks; the channel's on-node
        // distribution phase (forced flat or staged) is what differs between
        // the candidates — a broadcast carries exactly `bytes` through it.
        mm::Runtime srt(
            mm::ClusterSpec::regular(1, comm_size, mm::Placement::Smp, 2),
            profile, mm::PayloadMode::SizeOnly);
        const hympi::SocketStaging s = choice.algo == algo::kSsStaged
                                           ? hympi::SocketStaging::Staged
                                           : hympi::SocketStaging::Flat;
        return benchu::osu_latency(
            srt, cfg.warmup, cfg.iters,
            [bytes, s](mm::Comm& world) -> std::function<void()> {
                auto hc = std::make_shared<hympi::HierComm>(world, 1);
                auto ch = std::make_shared<hympi::BcastChannel>(*hc, bytes);
                ch->set_socket_staging(s);
                return [hc, ch] { ch->run(0); };
            });
    }
    if (op == Op::ChunkSize) {
        // Two dual-socket nodes at comm_size ranks each: the smallest shape
        // where the chunked engine has both a bridge transfer and a socket
        // mirror to overlap. The whole-message candidate runs the channel's
        // status-quo Auto selection (flat or staged from the registered
        // partial table); the chunked candidates force the pipeline at the
        // candidate chunk size.
        mm::Runtime prt(
            mm::ClusterSpec::regular(2, comm_size, mm::Placement::Smp, 2),
            profile, mm::PayloadMode::SizeOnly);
        const bool pipelined = choice.algo == algo::kCsPipelined;
        const std::size_t seg = choice.segment_bytes;
        return benchu::osu_latency(
            prt, cfg.warmup, cfg.iters,
            [bytes, pipelined, seg](mm::Comm& world) -> std::function<void()> {
                auto hc = std::make_shared<hympi::HierComm>(world, 1);
                auto ch = std::make_shared<hympi::BcastChannel>(*hc, bytes);
                ch->set_socket_staging(pipelined
                                           ? hympi::SocketStaging::Pipelined
                                           : hympi::SocketStaging::Auto);
                if (pipelined) ch->set_chunk_bytes(seg);
                return [hc, ch] { ch->run(0); };
            });
    }
    if (op == Op::LocBruck) {
        // comm_size nodes x 4 ranks with EVERY rank a leader — the
        // multi-leader regime where the combined algorithm's one-message-
        // per-node aggregation differs from per-leader slicing. `bytes` is
        // the whole node block (the runtime lookup key), so each rank
        // contributes a quarter. The per-leader baseline runs the channel's
        // status-quo Auto selection under the registered partial table.
        mm::Runtime lrt(mm::ClusterSpec::regular(comm_size, 4), profile,
                        mm::PayloadMode::SizeOnly);
        const hympi::BridgeAlgo a = choice.algo == algo::kLbCombined
                                        ? hympi::BridgeAlgo::LocBruck
                                        : hympi::BridgeAlgo::Auto;
        const std::size_t block = bytes / 4;
        return benchu::osu_latency(
            lrt, cfg.warmup, cfg.iters,
            [block, a](mm::Comm& world) -> std::function<void()> {
                auto hc = std::make_shared<hympi::HierComm>(world, 4);
                auto ch =
                    std::make_shared<hympi::AllgatherChannel>(*hc, block);
                return [hc, ch, a] { ch->run(hympi::SyncPolicy::Barrier, a); };
            });
    }
    if (op == Op::BatchWindow) {
        // comm_size nodes x 2 ranks; one window of 8 back-to-back
        // allgathers of `bytes` per rank. The candidates force the batcher
        // policy (fused vs immediate), so the probe never re-enters the
        // BatchWindow table being built.
        mm::Runtime brt(mm::ClusterSpec::regular(comm_size, 2), profile,
                        mm::PayloadMode::SizeOnly);
        const bool fused = choice.algo == algo::kBwFused;
        return benchu::osu_latency(
            brt, cfg.warmup, cfg.iters,
            [bytes, fused](mm::Comm& world) -> std::function<void()> {
                auto hc = std::make_shared<hympi::HierComm>(world, 1);
                auto bat = std::make_shared<hympi::CollBatcher>(*hc);
                bat->set_policy(fused ? hympi::BatchPolicy::Always
                                      : hympi::BatchPolicy::Never);
                return [hc, bat, bytes] {
                    std::vector<mm::CollRequest> reqs;
                    reqs.reserve(8);
                    for (int i = 0; i < 8; ++i) {
                        reqs.push_back(
                            bat->post_allgather(nullptr, bytes, nullptr));
                    }
                    mm::wait_all(reqs);
                };
            });
    }
    mm::Runtime rt(cluster_for(shape, comm_size), profile,
                   mm::PayloadMode::SizeOnly);
    if (op == Op::BridgeExchange) {
        // The Fig. 8 scenario: comm_size nodes at 1 process per node; each
        // node block is `bytes`. Candidates that delegate to minimpi
        // collectives (vendor allgatherv, bcast) run under whatever table
        // is currently registered for the profile.
        const hympi::BridgeAlgo a = bridge_algo_of(choice.algo);
        const std::size_t seg = choice.segment_bytes;
        return benchu::osu_latency(
            rt, cfg.warmup, cfg.iters,
            [bytes, a, seg](mm::Comm& world) -> std::function<void()> {
                auto hc = std::make_shared<hympi::HierComm>(world, 1);
                auto ch =
                    std::make_shared<hympi::AllgatherChannel>(*hc, bytes);
                ch->set_pipeline_segment(seg);
                return [hc, ch, a] { ch->run(hympi::SyncPolicy::Barrier, a); };
            });
    }
    return benchu::osu_latency(
        rt, cfg.warmup, cfg.iters,
        [op, bytes, choice](mm::Comm& world) -> std::function<void()> {
            return make_op(world, op, bytes, choice);
        });
}

DecisionTable tune_profile(const mm::ModelParams& profile,
                           const TuneConfig& cfg, std::ostream* log) {
    DecisionTable table(profile.name, cfg.seed);
    auto sweep = [&](Op op, Shape shape, const std::vector<int>& sizes,
                     const std::vector<std::size_t>& bytes_list,
                     bool per_rank) {
        for (int s : sizes) {
            for (std::size_t b : bytes_list) {
                // Table keys are aggregate volumes for the gather ops.
                const std::size_t key =
                    per_rank ? b * static_cast<std::size_t>(s) : b;
                table.set(op, shape, s, key,
                          best_choice(profile, op, shape, s, key, cfg));
            }
        }
        if (log) {
            *log << "  " << profile.name << ": " << op_name(op) << "/"
                 << shape_name(shape) << " swept " << sizes.size() << " x "
                 << bytes_list.size() << " points\n";
        }
    };

    if (log) *log << "tuning profile '" << profile.name << "'\n";
    sweep(Op::Allgather, Shape::Net, cfg.net_sizes, cfg.block_bytes, true);
    sweep(Op::Allgather, Shape::Shm, cfg.shm_sizes, cfg.block_bytes, true);
    sweep(Op::Allgatherv, Shape::Net, cfg.net_sizes, cfg.block_bytes, true);
    sweep(Op::Allgatherv, Shape::Shm, cfg.shm_sizes, cfg.block_bytes, true);
    sweep(Op::Bcast, Shape::Net, cfg.net_sizes, cfg.message_bytes, false);
    sweep(Op::Bcast, Shape::Shm, cfg.shm_sizes, cfg.message_bytes, false);
    sweep(Op::Allreduce, Shape::Net, cfg.net_sizes, cfg.message_bytes, false);
    sweep(Op::Allreduce, Shape::Shm, cfg.shm_sizes, cfg.message_bytes, false);
    // On-node barriers always use the shared-counter implementation, so
    // only the network shape is tuned; the byte axis is degenerate.
    sweep(Op::Barrier, Shape::Net, cfg.net_sizes, {0}, false);
    // Hybrid on-node NUMA phase, measured on one dual-socket node. The
    // candidates are forced (never Auto), so this sweep cannot re-enter the
    // table being built.
    sweep(Op::SocketStaging, Shape::Shm, cfg.shm_sizes, cfg.message_bytes,
          false);

    // Bridge exchange last, with the partial table registered so the
    // vendor-allgatherv and bcast candidates run with tuned inner selection
    // (an override shadows any baked table of the same profile).
    register_table(table);
    sweep(Op::BridgeExchange, Shape::Net, cfg.bridge_sizes,
          cfg.bridge_block_bytes, false);

    // Pipeline chunk size, with the table still registered so the
    // whole-message baseline runs the tuned flat/staged selection. Results
    // are collected aside and merged only after the whole sweep: a
    // ChunkSize row set at an earlier grid point would otherwise be picked
    // up (via log-rounding) by a later point's Auto baseline, contaminating
    // the very comparison being measured.
    {
        std::vector<std::pair<std::pair<int, std::size_t>, Choice>> rows;
        for (int s : cfg.shm_sizes) {
            for (std::size_t b : cfg.message_bytes) {
                rows.push_back({{s, b},
                                best_choice(profile, Op::ChunkSize, Shape::Shm,
                                            s, b, cfg)});
            }
        }
        for (const auto& [key, c] : rows) {
            table.set(Op::ChunkSize, Shape::Shm, key.first, key.second, c);
        }
        if (log) {
            *log << "  " << profile.name << ": " << op_name(Op::ChunkSize)
                 << "/" << shape_name(Shape::Shm) << " swept "
                 << cfg.shm_sizes.size() << " x " << cfg.message_bytes.size()
                 << " points\n";
        }
    }
    // Re-register so the locality-aware sweep's per-leader baseline (Auto)
    // runs the tuned bridge selection just swept. LocBruck rows are
    // collected aside like ChunkSize's: tuned_bridge_algo consults them
    // FIRST, so a row set at an earlier grid point would hijack a later
    // point's Auto baseline.
    register_table(table);
    {
        std::vector<std::pair<std::pair<int, std::size_t>, Choice>> rows;
        for (int s : cfg.bridge_sizes) {
            for (std::size_t b : cfg.bridge_block_bytes) {
                rows.push_back({{s, b},
                                best_choice(profile, Op::LocBruck, Shape::Net,
                                            s, b, cfg)});
            }
        }
        for (const auto& [key, c] : rows) {
            table.set(Op::LocBruck, Shape::Net, key.first, key.second, c);
        }
        if (log) {
            *log << "  " << profile.name << ": " << op_name(Op::LocBruck)
                 << "/" << shape_name(Shape::Net) << " swept "
                 << cfg.bridge_sizes.size() << " x "
                 << cfg.bridge_block_bytes.size() << " points\n";
        }
    }
    // Batch-window fusing, keyed by (node count, per-op payload). The
    // probes force the batcher policy, so rows can land in the table
    // directly without contaminating later grid points.
    sweep(Op::BatchWindow, Shape::Net, cfg.bridge_sizes, cfg.block_bytes,
          false);
    unregister_table(profile.name);
    return table;
}

}  // namespace tuning
