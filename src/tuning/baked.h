#pragma once

/// Internal bridge between the registry (decision.cc) and the checked-in
/// tables (tables_baked.cc). Not part of the public tuning API.
namespace tuning::baked {

struct BakedTable {
    const char* name;  ///< profile name the text claims (sanity-checked)
    const char* text;  ///< serialized DecisionTable
};

/// Pointer to the baked table array; *count receives its length.
const BakedTable* tables(int* count);

}  // namespace tuning::baked
