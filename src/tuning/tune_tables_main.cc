// tune_tables: offline autotuner CLI.
//
// Sweeps every candidate collective algorithm over the tuning grid in the
// virtual-time simulator and writes one decision table per vendor profile.
//
//   tune_tables [--profile cray|openmpi|all] [--seed N] [--quick]
//               [--out-dir DIR] [--format table|inc]
//
// --format table (default) writes plain serialized tables loadable via
// HYMPI_TUNING_FILE; --format inc wraps them in raw string literals for
// the checked-in baked tables:
//   ./build/src/tuning/tune_tables --format inc --out-dir src/tuning/tables

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "minimpi/netmodel.h"
#include "tuning/autotuner.h"

namespace {

int usage(const char* argv0, int code) {
    std::cerr << "usage: " << argv0
              << " [--profile cray|openmpi|all] [--seed N] [--quick]"
                 " [--out-dir DIR] [--format table|inc]\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    std::string profile = "all";
    std::string out_dir = ".";
    std::string format = "table";
    bool quick = false;
    std::uint64_t seed = 0;
    bool seed_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires a value\n";
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--profile") {
            profile = value();
        } else if (arg == "--seed") {
            seed = std::strtoull(value(), nullptr, 10);
            seed_set = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out-dir") {
            out_dir = value();
        } else if (arg == "--format") {
            format = value();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return usage(argv[0], 2);
        }
    }
    if (format != "table" && format != "inc") {
        std::cerr << "unknown format: " << format << "\n";
        return usage(argv[0], 2);
    }

    std::vector<minimpi::ModelParams> profiles;
    if (profile == "cray" || profile == "all") {
        profiles.push_back(minimpi::ModelParams::cray());
    }
    if (profile == "openmpi" || profile == "all") {
        profiles.push_back(minimpi::ModelParams::openmpi());
    }
    if (profiles.empty()) {
        std::cerr << "unknown profile: " << profile << "\n";
        return usage(argv[0], 2);
    }

    tuning::TuneConfig cfg =
        quick ? tuning::TuneConfig::quick() : tuning::TuneConfig::full();
    if (seed_set) cfg.seed = seed;

    for (const minimpi::ModelParams& p : profiles) {
        const tuning::DecisionTable table =
            tuning::tune_profile(p, cfg, &std::cerr);
        const std::string text = table.serialize();
        const std::string path =
            out_dir + "/" + p.name + (format == "inc" ? ".inc" : ".table");
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write " << path << "\n";
            return 1;
        }
        if (format == "inc") {
            // A raw string literal ready for #include as an initializer.
            out << "R\"HYTBL(" << text << ")HYTBL\"\n";
        } else {
            out << text;
        }
        std::cerr << "wrote " << path << " ("
                  << table.entries(tuning::Op::BridgeExchange)
                  << " bridge entries)\n";
    }
    return 0;
}
