#include "tuning/decision.h"

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "tuning/baked.h"

namespace tuning {

namespace {

const char* const kOpNames[kNumOps] = {"allgather",       "allgatherv",
                                       "bcast",           "allreduce",
                                       "barrier",         "bridge_exchange",
                                       "socket_staging",  "split_segment",
                                       "chunk_size",      "loc_bruck",
                                       "batch_window"};
const char* const kShapeNames[kNumShapes] = {"net", "shm"};

/// Per-op algorithm name tables, indexed by the algo:: constants.
const std::vector<const char*>& algo_names(Op op) {
    static const std::vector<const char*> names[kNumOps] = {
        {"recursive_doubling", "bruck", "ring"},         // Allgather
        {"bruck", "ring"},                               // Allgatherv
        {"binomial", "pipelined"},                       // Bcast
        {"recursive_doubling", "ring"},                  // Allreduce
        {"dissemination", "tree"},                       // Barrier
        {"allgatherv", "bcast", "pipelined", "bruckv",   // BridgeExchange
         "neighbor_exchange"},
        {"flat", "staged"},                              // SocketStaging
        {"whole", "segmented"},                          // SplitSegment
        {"whole", "pipelined"},                          // ChunkSize
        {"per_leader", "combined"},                      // LocBruck
        {"off", "fused"},                                // BatchWindow
    };
    return names[static_cast<int>(op)];
}

}  // namespace

const char* op_name(Op op) { return kOpNames[static_cast<int>(op)]; }
const char* shape_name(Shape shape) {
    return kShapeNames[static_cast<int>(shape)];
}

int algo_count(Op op) { return static_cast<int>(algo_names(op).size()); }

const char* algo_name(Op op, std::uint8_t a) {
    const auto& names = algo_names(op);
    return a < names.size() ? names[a] : "";
}

void DecisionTable::set(Op op, Shape shape, int comm_size,
                        std::uint64_t bytes, Choice choice) {
    grid_[static_cast<int>(op)][static_cast<int>(shape)][comm_size][bytes] =
        choice;
}

namespace {

/// Round @p q to the geometrically nearest of the two bracketing grid keys:
/// the upper neighbor wins iff q lies above the geometric mean of the
/// bracket, i.e. lo * hi < q * q. Exact at grid points; clamps outside the
/// grid range; ties round down.
template <typename Map, typename Key>
typename Map::const_iterator nearest_log(const Map& m, Key q) {
    auto hi = m.lower_bound(q);
    if (hi == m.end()) return std::prev(m.end());
    if (hi == m.begin() || hi->first == q) return hi;
    auto lo = std::prev(hi);
    const auto prod = static_cast<unsigned __int128>(lo->first) *
                      static_cast<unsigned __int128>(hi->first);
    const auto qq = static_cast<unsigned __int128>(q) *
                    static_cast<unsigned __int128>(q);
    return prod < qq ? hi : lo;
}

}  // namespace

std::optional<Choice> DecisionTable::lookup(Op op, Shape shape, int comm_size,
                                            std::uint64_t bytes) const {
    const auto& by_size =
        grid_[static_cast<int>(op)][static_cast<int>(shape)];
    if (by_size.empty()) return std::nullopt;
    const auto row = nearest_log(by_size, comm_size);
    const auto cell = nearest_log(row->second, bytes);
    return cell->second;
}

bool DecisionTable::empty() const {
    for (int op = 0; op < kNumOps; ++op) {
        for (int sh = 0; sh < kNumShapes; ++sh) {
            if (!grid_[op][sh].empty()) return false;
        }
    }
    return true;
}

std::size_t DecisionTable::entries(Op op) const {
    std::size_t n = 0;
    for (int sh = 0; sh < kNumShapes; ++sh) {
        for (const auto& [size, row] : grid_[static_cast<int>(op)][sh]) {
            n += row.size();
        }
    }
    return n;
}

std::string DecisionTable::serialize() const {
    std::ostringstream os;
    os << "# hympi tuned decision table v1\n";
    os << "profile " << profile_ << "\n";
    os << "seed " << seed_ << "\n";
    for (int op = 0; op < kNumOps; ++op) {
        for (int sh = 0; sh < kNumShapes; ++sh) {
            for (const auto& [size, row] : grid_[op][sh]) {
                for (const auto& [bytes, choice] : row) {
                    os << "entry " << kOpNames[op] << " " << kShapeNames[sh]
                       << " " << size << " " << bytes << " "
                       << algo_name(static_cast<Op>(op), choice.algo) << " "
                       << choice.segment_bytes << "\n";
                }
            }
        }
    }
    return os.str();
}

DecisionTable DecisionTable::parse(std::string_view text) {
    DecisionTable t;
    std::istringstream is{std::string(text)};
    std::string line;
    int lineno = 0;
    auto fail = [&](const std::string& what) {
        throw std::runtime_error("decision table line " +
                                 std::to_string(lineno) + ": " + what);
    };
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "profile") {
            ls >> t.profile_;
        } else if (kw == "seed") {
            ls >> t.seed_;
        } else if (kw == "entry") {
            std::string op_s, shape_s, algo_s;
            int size = 0;
            std::uint64_t bytes = 0;
            std::uint32_t seg = 0;
            ls >> op_s >> shape_s >> size >> bytes >> algo_s >> seg;
            if (!ls) fail("malformed entry");
            int op = -1, sh = -1;
            for (int i = 0; i < kNumOps; ++i) {
                if (op_s == kOpNames[i]) op = i;
            }
            for (int i = 0; i < kNumShapes; ++i) {
                if (shape_s == kShapeNames[i]) sh = i;
            }
            if (op < 0) fail("unknown op '" + op_s + "'");
            if (sh < 0) fail("unknown shape '" + shape_s + "'");
            if (size < 1) fail("comm size must be >= 1");
            const auto& names = algo_names(static_cast<Op>(op));
            int a = -1;
            for (std::size_t i = 0; i < names.size(); ++i) {
                if (algo_s == names[i]) a = static_cast<int>(i);
            }
            if (a < 0) fail("unknown algorithm '" + algo_s + "'");
            t.grid_[op][sh][size][bytes] =
                Choice{static_cast<std::uint8_t>(a), seg};
        } else {
            fail("unknown keyword '" + kw + "'");
        }
    }
    if (t.profile_.empty()) {
        throw std::runtime_error("decision table: missing profile line");
    }
    return t;
}

namespace {

struct Registry {
    std::mutex mu;
    bool env_loaded = false;
    bool baked_loaded = false;
    std::unordered_map<std::string, DecisionTable> overrides;
    std::unordered_map<std::string, DecisionTable> baked;

    /// Call with mu held.
    void ensure_loaded() {
        if (!baked_loaded) {
            baked_loaded = true;
            int count = 0;
            const baked::BakedTable* tables = baked::tables(&count);
            for (int i = 0; i < count; ++i) {
                DecisionTable t = DecisionTable::parse(tables[i].text);
                if (t.profile() != tables[i].name) {
                    throw std::runtime_error(
                        "baked decision table profile mismatch: " +
                        t.profile());
                }
                baked.emplace(t.profile(), std::move(t));
            }
        }
        if (!env_loaded) {
            env_loaded = true;
            if (const char* env = std::getenv("HYMPI_TUNING_FILE")) {
                std::string paths(env);
                std::size_t start = 0;
                while (start <= paths.size()) {
                    const std::size_t sep = paths.find(';', start);
                    const std::string path = paths.substr(
                        start, sep == std::string::npos ? std::string::npos
                                                        : sep - start);
                    if (!path.empty()) {
                        std::ifstream in(path);
                        if (!in) {
                            throw std::runtime_error(
                                "HYMPI_TUNING_FILE: cannot open " + path);
                        }
                        std::ostringstream buf;
                        buf << in.rdbuf();
                        DecisionTable t = DecisionTable::parse(buf.str());
                        overrides.insert_or_assign(t.profile(), std::move(t));
                    }
                    if (sep == std::string::npos) break;
                    start = sep + 1;
                }
            }
        }
    }
};

Registry& registry() {
    static Registry r;
    return r;
}

}  // namespace

const DecisionTable* find_table(std::string_view profile) {
    if (const char* off = std::getenv("HYMPI_TUNING_DISABLE");
        off != nullptr && off[0] != '\0' && off[0] != '0') {
        return nullptr;
    }
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.ensure_loaded();
    const std::string key(profile);
    if (auto it = r.overrides.find(key); it != r.overrides.end()) {
        return &it->second;
    }
    if (auto it = r.baked.find(key); it != r.baked.end()) {
        return &it->second;
    }
    return nullptr;
}

void register_table(DecisionTable table) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.overrides.insert_or_assign(table.profile(), std::move(table));
}

void unregister_table(std::string_view profile) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.overrides.erase(std::string(profile));
}

bool load_table_file(const std::string& path, std::string* error) {
    try {
        std::ifstream in(path);
        if (!in) throw std::runtime_error("cannot open " + path);
        std::ostringstream buf;
        buf << in.rdbuf();
        register_table(DecisionTable::parse(buf.str()));
        return true;
    } catch (const std::exception& e) {
        if (error) *error = e.what();
        return false;
    }
}

}  // namespace tuning
