#include "minimpi/trace.h"

#include <algorithm>
#include <cstdio>

namespace minimpi {

namespace {

char glyph(TraceEvent::Kind k) {
    switch (k) {
        case TraceEvent::Kind::Send: return 's';
        case TraceEvent::Kind::Recv: return 'r';
        case TraceEvent::Kind::Copy: return 'c';
        case TraceEvent::Kind::Compute: return '#';
        case TraceEvent::Kind::Sync: return '|';
    }
    return '?';
}

}  // namespace

TraceSummary summarize(const std::vector<TraceEvent>& events) {
    TraceSummary s;
    for (const auto& e : events) {
        const VTime dt = e.t_end - e.t_start;
        switch (e.kind) {
            case TraceEvent::Kind::Send: s.send_us += dt; break;
            case TraceEvent::Kind::Recv: s.recv_us += dt; break;
            case TraceEvent::Kind::Copy: s.copy_us += dt; break;
            case TraceEvent::Kind::Compute: s.compute_us += dt; break;
            case TraceEvent::Kind::Sync: s.sync_us += dt; break;
        }
    }
    return s;
}

std::string render_timeline(const std::vector<std::vector<TraceEvent>>& ranks,
                            int columns) {
    VTime horizon = 0.0;
    for (const auto& evs : ranks) {
        for (const auto& e : evs) horizon = std::max(horizon, e.t_end);
    }
    std::string out;
    if (horizon <= 0.0 || columns <= 0) return out;

    char header[96];
    std::snprintf(header, sizeof(header),
                  "timeline: %d columns spanning %.2f us "
                  "(s=send r=recv c=copy #=compute |=sync)\n",
                  columns, horizon);
    out += header;

    const double scale = static_cast<double>(columns) / horizon;
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        std::string row(static_cast<std::size_t>(columns), '.');
        for (const auto& e : ranks[r]) {
            int lo = static_cast<int>(e.t_start * scale);
            int hi = static_cast<int>(e.t_end * scale);
            lo = std::clamp(lo, 0, columns - 1);
            hi = std::clamp(hi, lo, columns - 1);
            for (int c = lo; c <= hi; ++c) {
                row[static_cast<std::size_t>(c)] = glyph(e.kind);
            }
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%4zu ", r);
        out += label;
        out += row;
        out += '\n';
    }
    return out;
}

}  // namespace minimpi
