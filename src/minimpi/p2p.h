#pragma once

#include <span>

#include "minimpi/comm.h"
#include "minimpi/request.h"

namespace minimpi {

/// Blocking standard send (buffered-eager: always completes locally).
/// @p dest may be kProcNull (no-op). Tags must be in [0, kTagUpperBound).
void send(const Comm& comm, const void* buf, std::size_t count, Datatype dt,
          int dest, int tag);

/// Synchronous send (MPI_Ssend): returns only once the matching receive
/// has started, modelled as a zero-byte acknowledgement from the receiver.
/// Faithful to MPI also in the unhappy case: two ranks ssend-ing to each
/// other before receiving deadlock, exactly as the standard says they must.
void ssend(const Comm& comm, const void* buf, std::size_t count, Datatype dt,
           int dest, int tag);

/// Blocking receive. @p source may be kAnySource, @p tag may be kAnyTag.
Status recv(const Comm& comm, void* buf, std::size_t count, Datatype dt,
            int source, int tag);

/// Nonblocking send/receive.
Request isend(const Comm& comm, const void* buf, std::size_t count,
              Datatype dt, int dest, int tag);
Request irecv(const Comm& comm, void* buf, std::size_t count, Datatype dt,
              int source, int tag);

/// MPI_Sendrecv: concurrent send and receive (deadlock-free).
Status sendrecv(const Comm& comm, const void* sendbuf, std::size_t sendcount,
                int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                int source, int recvtag, Datatype dt);

/// MPI_Iprobe / MPI_Probe. Status::bytes reports payload size; source is a
/// comm-local rank.
bool iprobe(const Comm& comm, int source, int tag, Status* out);
void probe(const Comm& comm, int source, int tag, Status* out);

/// Typed convenience wrappers.
template <typename T>
void send(const Comm& comm, std::span<const T> data, int dest, int tag) {
    send(comm, data.data(), data.size(), datatype_of<T>(), dest, tag);
}
template <typename T>
Status recv(const Comm& comm, std::span<T> data, int source, int tag) {
    return recv(comm, data.data(), data.size(), datatype_of<T>(), source, tag);
}
template <typename T>
void send_value(const Comm& comm, const T& v, int dest, int tag) {
    send(comm, &v, 1, datatype_of<T>(), dest, tag);
}
template <typename T>
T recv_value(const Comm& comm, int source, int tag) {
    T v{};
    recv(comm, &v, 1, datatype_of<T>(), source, tag);
    return v;
}

namespace detail {

/// Internal byte-level primitives used by both the public p2p layer and the
/// collective algorithms. `coll_ctx` selects the collective matching context
/// (the stand-in for MPI's separate collective communicator context).
void send_bytes(const Comm& comm, const void* buf, std::size_t bytes, int dest,
                int tag, bool coll_ctx);
Status recv_bytes(const Comm& comm, void* buf, std::size_t bytes, int source,
                  int tag, bool coll_ctx);
Request isend_bytes(const Comm& comm, const void* buf, std::size_t bytes,
                    int dest, int tag, bool coll_ctx);
Request irecv_bytes(const Comm& comm, void* buf, std::size_t bytes, int source,
                    int tag, bool coll_ctx);

/// Like irecv_bytes but on an explicit matching context, for protocol
/// traffic that must pair across two different engine tasks (each task's
/// gate overrides the collective context with its own private one, so the
/// implicit selection above cannot reach a peer task's stream). The caller
/// guarantees both sides derive the same @p ctx_id.
Request irecv_bytes_ctx(const Comm& comm, void* buf, std::size_t bytes,
                        int source, int tag, std::uint64_t ctx_id);

/// Frame primitives for the resilience layer (src/robust). They bypass the
/// Request machinery so the caller can tolerate tombstoned (dropped)
/// deliveries instead of receiving a thrown TimeoutError.
///
/// send_frame: like send_bytes but on an explicit matching context.
/// `robust_frame` marks the message as a robust DATA frame — the only
/// traffic payload faults may hit under FaultScope::RobustFrames; control
/// frames go on kRobustCtrlCtx with robust_frame == false and are exempt
/// from fault injection entirely.
void send_frame(const Comm& comm, const void* buf, std::size_t bytes, int dest,
                int tag, std::uint64_t ctx_id, bool robust_frame);

/// Post a frame receive on an explicit matching context. @p pr must outlive
/// the match (stack- or member-owned by the robust protocol state).
void post_frame_recv(const Comm& comm, PostedRecv* pr, void* buf,
                     std::size_t bytes, int source, int tag,
                     std::uint64_t ctx_id);

/// Delivery state of a completed frame receive.
struct FrameRecvResult {
    std::size_t bytes = 0;  ///< envelope size of the matched message
    int src = -1;           ///< comm-local source rank
    int tag = 0;
    bool dropped = false;  ///< payload was lost in transit (tombstone)
};

/// Charge the receiver's clock and stats for a completed frame receive and
/// report its delivery state. Unlike Request::finish_recv this never throws
/// on drops — the robust protocol observes the loss and retries.
FrameRecvResult finish_frame_recv(const Comm& comm, PostedRecv& pr);

}  // namespace detail

}  // namespace minimpi
