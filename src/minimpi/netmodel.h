#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/types.h"

namespace minimpi {

/// Hockney-style parameters of one link class. The time to move an m-byte
/// message over the link is  alpha + m * beta  once it leaves the sender;
/// the sender and receiver CPUs are each busy for `overhead` per message
/// (the o of LogGP).
struct LinkParams {
    VTime alpha_us = 0.0;          ///< end-to-end message start-up latency
    VTime beta_us_per_byte = 0.0;  ///< inverse bandwidth
    VTime overhead_us = 0.0;       ///< per-message CPU overhead at each end
};

/// Full cost model for a simulated machine plus the collective-algorithm
/// selection thresholds of its MPI library ("vendor profile"). Thresholds
/// follow the MPICH/Open MPI convention of switching on the aggregate
/// message volume of the operation.
struct ModelParams {
    std::string name;  ///< profile name for reports ("cray", "openmpi", ...)

    LinkParams shm;  ///< intra-socket transfers (shared-memory transport)
    LinkParams net;  ///< inter-node transfers (Aries / InfiniBand)

    /// Same-node, different-socket transfers: the QPI/UPI hop between NUMA
    /// domains. Only consulted when the cluster has sockets_per_node > 1 —
    /// flat (1-socket) nodes use `shm` for every on-node message, so the
    /// default model is unchanged. Profiles set this slightly worse than
    /// `shm` (higher latency, lower bandwidth), still far better than `net`.
    LinkParams shm_xsocket;

    /// Local memory copy: alpha + bytes * beta charged to the copying rank.
    VTime memcpy_alpha_us = 0.05;
    VTime memcpy_beta_us_per_byte = 1.0 / 8000.0;  // ~8 GB/s

    /// Extra per-byte cost of a memory copy whose source or destination
    /// lives on a remote NUMA domain (reading a leader-socket-homed shared
    /// buffer from the other socket). Added on top of memcpy_beta; zero
    /// effect on 1-socket clusters because nothing ever crosses a socket.
    VTime memcpy_xsocket_beta_us_per_byte = 1.0 / 16000.0;  // ~+50% copy cost

    /// Floating-point throughput used when applications charge compute.
    double flops_per_us = 2000.0;  // ~2 GFLOP/s per core

    /// Shared-memory flag signalling (the light-weight synchronization of
    /// paper Sect. 6): cost of one flag store (release) and of one flag
    /// check (acquire) through the cache-coherence fabric.
    VTime flag_signal_us = 0.06;
    VTime flag_poll_us = 0.04;

    /// Additional cost of a flag store/check whose cache line is homed on
    /// the other socket (coherence traffic over QPI/UPI instead of the
    /// on-die ring). Charged per cross-socket flag operation; irrelevant
    /// on 1-socket nodes.
    VTime xsocket_flag_penalty_us = 0.05;

    /// MPI_Barrier on a purely on-node communicator. Production libraries
    /// implement it with shared counters/flags, NOT message passing, which
    /// is why an on-node barrier is far cheaper than an on-node broadcast
    /// — the asymmetry the paper's hybrid collectives exploit (Fig. 7).
    /// Cost = base + hop * log2(p).
    VTime shm_barrier_base_us = 0.30;
    VTime shm_barrier_hop_us = 0.25;

    /// Allgather: recursive doubling / Bruck below this aggregate volume
    /// (receive-buffer bytes), ring above.
    std::size_t allgather_long_threshold = 80 * 1024;
    /// Bcast: binomial tree below this message size, scatter + ring
    /// allgather (van de Geijn) above.
    std::size_t bcast_long_threshold = 12 * 1024;
    /// Allreduce: recursive doubling below, reduce-scatter + allgather above.
    std::size_t allreduce_long_threshold = 2 * 1024;
    /// Alltoall: nonblocking flood below this per-pair message size,
    /// pairwise exchange above.
    std::size_t alltoall_small_threshold = 256;

    /// Whether the library's collectives are SMP-aware (hierarchical:
    /// intra-node phase at a per-node leader + inter-node phase on a bridge
    /// communicator), as the paper assumes of production MPI libraries
    /// (Sect. 4.1, Fig. 3a). Disable to force the flat algorithms.
    bool smp_aware = true;

    /// Multiplicative penalty applied to the vector collectives' effective
    /// start-up cost (MPI_Allgatherv is consistently less tuned than
    /// MPI_Allgather in production libraries; see Traeff '09 and paper
    /// Sect. 5.1.1). Expressed as extra alpha factor per ring round.
    double vector_coll_alpha_factor = 1.35;

    /// Predefined profiles approximating the paper's two systems.
    static ModelParams cray();     ///< Hazel Hen: Cray XC40, Aries, Cray MPI
    static ModelParams openmpi();  ///< Vulcan: NEC cluster, InfiniBand, OpenMPI
    /// A fast, zero-latency-ish profile useful in unit tests that only care
    /// about data correctness.
    static ModelParams test();
};

/// Time for an m-byte transfer over @p link once injected (no CPU overhead).
inline VTime wire_time(const LinkParams& link, std::size_t bytes) {
    return link.alpha_us + static_cast<VTime>(bytes) * link.beta_us_per_byte;
}

/// Which messages the payload/delivery faults (corruption, drops,
/// duplication) may hit. Timing faults (jitter, rank delay) are always
/// global — they only move modelled arrivals and never change data.
enum class FaultScope : std::uint8_t {
    /// Every non-reserved message. Corruption in this scope is a harness
    /// self-test: it MUST make the differential checker fire.
    AllTraffic,
    /// Only messages flagged InMsg::robust_frame — the framed transfers of
    /// the resilience layer (src/robust). The flat reference path of the
    /// differential harness stays byte-clean, so a robust case must still
    /// match it exactly after recovery.
    RobustFrames,
};

/// Deterministic fault/jitter injection for the conformance harness.
///
/// Every perturbation is a pure function of (seed, sender, receiver,
/// per-pair message index), so a run under a given plan is bit-for-bit
/// reproducible regardless of host thread scheduling — the property the
/// differential harness's clock checks rely on. Timing faults perturb only
/// the MODELLED arrival times (they can reorder virtual-time interleavings,
/// e.g. a leader's bridge traffic against on-node flag rounds, but never
/// change payloads). Payload faults (corruption, drops, duplication) give
/// the resilience layer real triggers; under scope == AllTraffic they also
/// let the harness prove to itself that the checker and shrinker fire.
struct FaultPlan {
    std::uint64_t seed = 0;

    /// Uniform extra wire latency in [0, max_jitter_us) added to each
    /// message's modelled arrival.
    VTime max_jitter_us = 0.0;

    /// Extra injection latency for every message SENT by a rank listed in
    /// delayed_ranks — models a straggling (leader) process whose bridge
    /// traffic lags its node's ready/release synchronization.
    VTime rank_delay_us = 0.0;
    std::vector<int> delayed_ranks;  ///< world ranks with delayed progress

    /// When > 0, flip one payload bit of (deterministically) every
    /// corrupt_every-th message.
    std::uint64_t corrupt_every = 0;

    /// When > 0, drop (deterministically) every drop_every-th message: the
    /// envelope is still delivered as a tombstone (payload cleared,
    /// InMsg::dropped set) so blocked receivers wake — a plain receive then
    /// raises TimeoutError (watchdog semantics), a tolerant robust receive
    /// observes the loss and retries.
    std::uint64_t drop_every = 0;

    /// When > 0, deliver every dup_every-th message twice; the duplicate
    /// trails the original by dup_delay_us of modelled wire time. Dropped
    /// messages are never duplicated.
    std::uint64_t dup_every = 0;
    VTime dup_delay_us = 0.5;

    /// When > 0, fail (deterministically) every shm_fail_every-th shared
    /// window allocation of each node — the SHM-allocation-failure trigger
    /// of the hybrid→flat degradation ladder.
    std::uint64_t shm_fail_every = 0;

    /// Process failure: the listed world rank stops progressing at the first
    /// communication checkpoint at or after `at_us` of ITS OWN virtual time.
    /// Death is a pure function of the killed rank's program (the vtime at
    /// which it reaches that checkpoint), so the failure — and everything
    /// survivors can deterministically observe about it — is reproducible
    /// regardless of host scheduling. A dead rank's pending inbound traffic
    /// tombstones (deliveries addressed to it are discarded) and it sends
    /// nothing from the death point on.
    struct Kill {
        int world_rank = -1;
        VTime at_us = 0.0;
    };
    std::vector<Kill> kills;

    /// Schedule a process failure: @p world_rank stops progressing at the
    /// first checkpoint at or after @p at_us of its own virtual time.
    void kill(int world_rank, VTime at_us) {
        kills.push_back({world_rank, at_us});
    }

    FaultScope scope = FaultScope::AllTraffic;

    bool timing_active() const {
        return max_jitter_us > 0.0 ||
               (rank_delay_us > 0.0 && !delayed_ranks.empty());
    }
    bool payload_active() const {
        return corrupt_every > 0 || drop_every > 0 || dup_every > 0;
    }
    bool kill_active() const { return !kills.empty(); }
    bool active() const {
        return timing_active() || payload_active() || shm_fail_every > 0 ||
               kill_active();
    }

    /// Scheduled death time of @p world_rank, or a negative value when the
    /// rank is not on the kill list. The earliest entry wins if a rank is
    /// listed twice.
    VTime kill_time(int world_rank) const;

    bool delays(int world_rank) const;

    /// Jitter for the @p seq-th message from @p src to @p dst (world ranks).
    VTime jitter_us(int src, int dst, std::uint64_t seq) const;

    bool should_corrupt(int src, int dst, std::uint64_t seq) const;

    /// Payload byte index to corrupt (bytes > 0).
    std::size_t corrupt_byte(int src, int dst, std::uint64_t seq,
                             std::size_t bytes) const;

    bool should_drop(int src, int dst, std::uint64_t seq) const;
    bool should_dup(int src, int dst, std::uint64_t seq) const;

    /// Whether the @p alloc_idx-th shared window allocation on @p node fails.
    bool should_fail_shm(int node, std::uint64_t alloc_idx) const;
};

}  // namespace minimpi
