#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "minimpi/clock.h"
#include "minimpi/coll.h"
#include "minimpi/comm.h"
#include "minimpi/icoll_gate.h"

/// Nonblocking and persistent collectives on a virtual-time progress engine.
///
/// Each outstanding collective is advanced by a worker thread executing the
/// EXACT blocking implementation from coll.cc — under a cooperative gate
/// (IcollGate) that guarantees only one of {owner program, one task} runs at
/// any instant, so RankCtx needs no locking. While a task holds the turn the
/// context's cost-model hooks are swapped:
///
///   * ctx.cur_clock  -> the request's sub-clock (seeded with the clock at
///     post time; merged back with max() at completion). Communication time
///     accrues on the sub-clock CONCURRENTLY with caller compute on the main
///     clock, so wait() observes elapsed == max(compute, comm).
///   * ctx.cur_busy   -> a private snapshot of link_busy_until (max-merged
///     back per destination), so the real-time order in which outstanding
///     requests are driven cannot leak into virtual time.
///   * ctx.coll_ctx_override -> a private matching context derived from the
///     per-communicator posting order (identical on every member rank), so
///     in-flight traffic can never FIFO-cross-match another collective.
///
/// Under forced immediate wait (zero interleaved compute) the sub-clock
/// starts at the main clock's value and every charging site, message stamp
/// and counter is shared with the blocking path, so i-collectives are byte-,
/// counter- and virtual-time-identical to their blocking counterparts.
///
/// The robust (resilience) frame paths stay on the main clock by design —
/// nonblocking collectives are not available under robust mode.
namespace minimpi {

namespace detail {

/// Shared state of one engine-backed nonblocking or persistent collective.
struct IcollState {
    RankCtx* ctx = nullptr;
    /// Communicator the collective was posted on — lets Comm::free detect
    /// an in-flight operation on the comm being freed (CommBusyError).
    const CommState* comm_state = nullptr;
    const char* kind = "icoll";     ///< static label for traces/errors
    std::function<void()> body;     ///< the blocking algorithm (task side)
    std::function<void()> on_wait;  ///< owner-side finish hook (may block)

    VClock sub;  ///< the request's communication sub-clock
    std::unordered_map<int, VTime> busy;  ///< private link-occupancy snapshot
    IcollGate gate;
    std::thread worker;

    bool registered = false;    ///< listed in ctx->active_icolls
    bool merged = false;        ///< sub clock / busy merged back into the rank
    bool waited = false;        ///< on_wait has run (or is forfeited by error)
    bool cycle_active = false;  ///< persistent: started and not yet waited

    IcollState() = default;
    IcollState(const IcollState&) = delete;
    IcollState& operator=(const IcollState&) = delete;
    /// Tears the worker down (cancelling a still-running body so its stack
    /// unwinds and releases posted receives) and deregisters the request.
    ~IcollState();
};

/// Create a request state for @p comm: warms the hierarchy cache (so the
/// task never builds communicators under the gate), derives the private
/// matching context from the per-comm posting order, and launches the
/// worker. Does NOT arm the body — post_icoll/PersistentColl::start do.
///
/// @p match_seq overrides the per-comm posting counter (which is neither
/// consulted nor consumed) with a caller-supplied sequence number, placed
/// in a separate namespace so it can never collide with counter-derived
/// contexts. For NON-collective posting patterns — e.g. a neighbor
/// exchange where only some ranks carry traffic — where the counter would
/// desynchronize across ranks; the caller guarantees communicating peers
/// pass the same value (typically its own epoch counter).
std::shared_ptr<IcollState> create_icoll(
    const Comm& comm, const char* kind, std::function<void()> body,
    std::function<void()> on_wait = {},
    std::optional<std::uint64_t> match_seq = std::nullopt);

/// Arm (or re-arm) the body: seed the sub-clock with the current clock,
/// snapshot link occupancy, reset completion state and register the request
/// with the rank's progress list.
void arm_icoll(IcollState& st);

/// Hand the turn to the task until it yields or completes; returns whether
/// the body has run to completion (or died with an error). Never blocks on
/// another rank and never advances the main clock.
bool drive_icoll(IcollState& st);

/// Fold a completed body back into the rank: clock.sync_to(sub), per-
/// destination max-merge of link occupancy, deregistration. Rethrows the
/// body's exception, if any.
void merge_icoll(IcollState& st);

/// Drive @p st to completion, round-robining every other outstanding
/// request between attempts (the MPI progress rule) with real-time backoff.
void wait_icoll_done(IcollState& st);

/// create + arm + one initial drive (flushes the body's first sends so
/// peers can match them while this rank computes).
std::shared_ptr<IcollState> post_icoll(
    const Comm& comm, const char* kind, std::function<void()> body,
    std::function<void()> on_wait = {},
    std::optional<std::uint64_t> match_seq = std::nullopt);

/// An already-complete request carrying only an owner-side finish hook
/// (used by the hybrid layer for ranks with no bridge role: their split-
/// phase work is entirely in the wait-side on-node copy).
std::shared_ptr<IcollState> make_complete_icoll(const Comm& comm,
                                                const char* kind,
                                                std::function<void()> on_wait);

}  // namespace detail

/// Handle for a nonblocking collective (MPI_Request for i-collectives).
/// Move-only. wait() completes the operation and consumes the handle;
/// double-wait and wait-after-successful-test are no-ops. Destroying a
/// handle whose operation is still in flight throws RequestError (unless
/// already unwinding an exception or the job is aborting).
class CollRequest {
public:
    CollRequest() = default;
    explicit CollRequest(std::shared_ptr<detail::IcollState> st)
        : st_(std::move(st)) {}
    CollRequest(CollRequest&&) noexcept = default;
    CollRequest& operator=(CollRequest&& other);
    CollRequest(const CollRequest&) = delete;
    CollRequest& operator=(const CollRequest&) = delete;
    ~CollRequest() noexcept(false);

    bool valid() const { return st_ != nullptr; }

    /// Nonblocking completion check. Drives this request and every other
    /// outstanding one exactly once; charges NOTHING to the main clock, so
    /// polling loops cannot spin virtual time. Returns true once the
    /// communication has completed (the wait-side finish hook of split-
    /// phase hybrid operations still runs at wait()).
    bool test();

    /// Complete the operation: drive to completion, merge the sub-clock
    /// (elapsed becomes max(compute, comm)) and run the finish hook.
    /// Consumes the request; waiting again is a no-op.
    void wait();

private:
    void destroy();  ///< shared teardown of dtor / move-assign; may throw

    std::shared_ptr<detail::IcollState> st_;
};

/// Wait on every request in index order (deterministic virtual time).
void wait_all(std::span<CollRequest> reqs);

/// Nonblocking collectives (MPI_Ibarrier / MPI_Ibcast / MPI_Iallgather /
/// MPI_Iallgatherv / MPI_Iallreduce). Collective over @p comm: every member
/// must post the same operations in the same order (their relative Test/
/// Wait order is free). Argument errors surface at wait(), where the body's
/// exception is rethrown. Not available under robust mode.
CollRequest ibarrier(const Comm& comm);
CollRequest ibcast(const Comm& comm, void* buf, std::size_t count, Datatype dt,
                   int root);
CollRequest iallgather(const Comm& comm, const void* sendbuf,
                       std::size_t count, void* recvbuf, Datatype dt);
CollRequest iallgatherv(const Comm& comm, const void* sendbuf,
                        std::size_t sendcount, void* recvbuf,
                        std::span<const std::size_t> counts,
                        std::span<const std::size_t> displs, Datatype dt);
CollRequest iallreduce(const Comm& comm, const void* sendbuf, void* recvbuf,
                       std::size_t count, Datatype dt, Op op);

/// Persistent collective (MPI_Barrier_init / ... / MPI_Start): a reusable
/// descriptor for a fixed-argument collective. Initialization is collective
/// (same order on every member) and caches everything derivable once — the
/// node hierarchy, the private matching context and the worker thread — so
/// start() only re-arms the body. start() on an active request throws
/// RequestError; wait() on an inactive one is a no-op (MPI semantics);
/// test() of an inactive request reports true.
class PersistentColl {
public:
    PersistentColl() = default;
    PersistentColl(PersistentColl&&) noexcept = default;
    PersistentColl& operator=(PersistentColl&& other);
    PersistentColl(const PersistentColl&) = delete;
    PersistentColl& operator=(const PersistentColl&) = delete;
    ~PersistentColl() noexcept(false);

    static PersistentColl barrier_init(const Comm& comm);
    static PersistentColl bcast_init(const Comm& comm, void* buf,
                                     std::size_t count, Datatype dt, int root);
    static PersistentColl allgather_init(const Comm& comm, const void* sendbuf,
                                         std::size_t count, void* recvbuf,
                                         Datatype dt);
    static PersistentColl allgatherv_init(const Comm& comm,
                                          const void* sendbuf,
                                          std::size_t sendcount, void* recvbuf,
                                          std::span<const std::size_t> counts,
                                          std::span<const std::size_t> displs,
                                          Datatype dt);
    static PersistentColl allreduce_init(const Comm& comm, const void* sendbuf,
                                         void* recvbuf, std::size_t count,
                                         Datatype dt, Op op);

    /// Arm the operation (MPI_Start) and give it one initial drive.
    void start();
    /// Nonblocking completion check of the started operation.
    bool test();
    /// Complete the started operation; the request can be start()ed again.
    void wait();

    bool valid() const { return st_ != nullptr; }
    bool active() const { return st_ != nullptr && st_->cycle_active; }

    /// @internal used by the hybrid layer's persistent channels.
    explicit PersistentColl(std::shared_ptr<detail::IcollState> st)
        : st_(std::move(st)) {}

private:
    void destroy();  ///< shared teardown of dtor / move-assign; may throw

    std::shared_ptr<detail::IcollState> st_;
};

}  // namespace minimpi
