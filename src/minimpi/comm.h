#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/context.h"
#include "minimpi/icoll_gate.h"
#include "minimpi/types.h"

namespace minimpi {

class Runtime;
struct CommState;

/// Shared (across the member ranks) state of one communicator. Created by
/// the Runtime; lives until the job ends. Rank handles (`Comm`) point here.
struct CommState {
    Runtime* runtime = nullptr;
    std::uint64_t ctx_p2p = 0;   ///< matching context for user point-to-point
    std::uint64_t ctx_coll = 0;  ///< matching context for internal collectives
    /// Communicator this one was derived from (split/dup/create), or null
    /// for the world comm and for agree_shrink's recovery comm. Revocation
    /// cascades down this tree: the collectives internally split hierarchy
    /// sub-communicators the caller never sees, and revoking a comm must
    /// interrupt waits on those internal legs too. Stable for the run's
    /// lifetime (comms_ is only cleared between runs).
    CommState* parent = nullptr;

    std::vector<int> members;         ///< comm rank -> world rank
    std::vector<int> world_to_local;  ///< world rank -> comm rank (or -1)

    int size() const { return static_cast<int>(members.size()); }
    int to_world(int local) const { return members.at(static_cast<std::size_t>(local)); }
    int from_world(int world) const {
        return world_to_local.at(static_cast<std::size_t>(world));
    }

    // ---- collective-rendezvous machinery (split, dup, window allocation,
    // one-off operations that must agree across all member ranks). Each rank
    // increments its private epoch slot; ranks meeting at the same epoch are
    // executing the same collective call (MPI requires identical collective
    // call order on a communicator).
    struct OpSlot {
        int arrived = 0;
        int left = 0;
        bool done = false;
        VTime max_clock = 0.0;
        std::condition_variable cv;
        std::shared_ptr<void> data;  ///< operation-specific payload
    };
    std::mutex op_mu;
    std::map<std::uint64_t, std::shared_ptr<OpSlot>> ops;
    std::vector<std::uint64_t> member_epoch;  ///< per-member, owner-written

    /// ULFM revocation flag: set (once) by Comm::revoke from any member;
    /// every pending and future operation on the comm raises
    /// CommRevokedError. Never reset — recovery builds a NEW comm. Set at
    /// creation when the parent is already revoked (closes the race with a
    /// split finalizing concurrently with the parent's revocation).
    std::atomic<bool> revoked{false};

    /// Per-member call counters for agree_shrink, keying its fault-tolerant
    /// rendezvous in the kShrinkKeyBase namespace (disjoint from member
    /// epochs and gate keys).
    std::vector<std::uint64_t> member_shrink_epoch;

    /// Set (once, by Comm::free's finalizer) when the members collectively
    /// released the communicator. The registry slot itself lives until the
    /// run ends — stale handles stay dereferenceable so any operation on a
    /// freed comm raises a typed CommError instead of touching freed memory.
    std::atomic<bool> freed{false};
};

/// Base of the `ops` key namespace used by agree_shrink's fault-tolerant
/// rendezvous. Plain member-epoch keys are small counters and engine gate
/// keys have bit 63 set, so bit 62 is free.
inline constexpr std::uint64_t kShrinkKeyBase = 1ULL << 62;

/// Per-rank communicator handle — a (state, my-rank, my-context) triple.
/// Cheap to copy; must only be used from the owning rank's thread.
class Comm {
public:
    /// Null handle (MPI_COMM_NULL): what split returns for kUndefined color.
    Comm() = default;
    Comm(CommState* state, RankCtx* ctx, int rank)
        : state_(state), ctx_(ctx), rank_(rank) {}

    bool valid() const { return state_ != nullptr; }

    int rank() const { return rank_; }
    int size() const { return require().size(); }

    /// World rank of @p local (default: my own).
    int to_world(int local) const { return require().to_world(local); }
    int to_world() const { return to_world(rank_); }
    /// Comm rank of world rank @p world, or -1 if not a member.
    int from_world(int world) const { return require().from_world(world); }

    /// Simulated node hosting comm rank @p local.
    int node_of(int local) const {
        return ctx_->cluster->node_of(to_world(local));
    }

    /// NUMA socket (within its node) hosting comm rank @p local.
    int socket_of(int local) const {
        return ctx_->cluster->socket_of(to_world(local));
    }

    RankCtx& ctx() const { return *ctx_; }
    CommState& state() const { return require(); }

    /// MPI_Comm_split. Ranks passing kUndefined receive a null Comm.
    /// Members of each child are ordered by (key, parent rank).
    Comm split(int color, int key = 0) const;

    /// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one child communicator per
    /// simulated node.
    Comm split_shared() const { return split(node_of(rank_), rank_); }

    /// MPI_Comm_dup.
    Comm dup() const;

    /// MPI_Comm_create: a new communicator containing exactly the comm
    /// ranks in @p members (identical list everywhere, strictly
    /// increasing). Collective over THIS comm; non-members get a null
    /// Comm. New ranks follow the order of @p members.
    Comm create(std::span<const int> members) const;

    /// MPI_Comm_free: collectively release the communicator. After the
    /// members meet (clocks sync to max + one-off cost, like every other
    /// one-off coordination) the comm is marked freed, this rank's cached
    /// hierarchy/channel state keyed by it is dropped — the leak-freedom
    /// the churny multi-tenant service relies on — and any later operation
    /// on a stale handle raises CommError. Freeing while a nonblocking
    /// collective on this comm is still in flight throws CommBusyError
    /// (complete it with wait() first); double-free throws CommError. The
    /// world communicator cannot be freed.
    void free() const;

    /// ULFM MPI_Comm_revoke: interrupt every pending and future operation on
    /// this communicator with CommRevokedError, on every member. Called by
    /// any member that observed a ProcessFailedError so ALL survivors —
    /// including those blocked on live-but-erroring peers — reach the
    /// recovery path. Revocation cascades to every communicator derived
    /// from this one by split/dup/create: the library's collectives
    /// internally split hierarchy sub-communicators (see detail::hier), and
    /// a survivor blocked in such an internal leg — where every DIRECT peer
    /// is alive — would otherwise never observe the failure. The comm built
    /// by agree_shrink is NOT derived: recovery survives revocation of the
    /// broken comm. Idempotent; a revoke interrupt charges no virtual time
    /// (the interrupted rank keeps its wait-entry clock).
    void revoke() const;

    /// ULFM MPI_Comm_shrink: fault-tolerant agreement on the surviving
    /// member set followed by deterministic construction of a new
    /// communicator over exactly those survivors (old comm-rank order
    /// preserved). Collective over the SURVIVORS of this comm — unlike
    /// every other collective it completes even though dead members never
    /// arrive, and it works on a revoked comm. Survivors leave with clocks
    /// synchronized to max(survivor clocks) + one-off sync cost. The failed
    /// world ranks are reported through @p failed_world when non-null.
    /// Must not be called from inside a nonblocking-collective engine task.
    Comm agree_shrink(std::vector<int>* failed_world = nullptr) const;

private:
    CommState& require() const;

    CommState* state_ = nullptr;
    RankCtx* ctx_ = nullptr;
    int rank_ = -1;
};

namespace detail {

/// True when some rank has aborted the job (defined in comm.cc to avoid a
/// header cycle with Runtime).
bool job_poisoned(const CommState& st);
/// Throws JobAborted when the job is poisoned.
void throw_if_poisoned(const CommState& st);

/// True when a pending operation on @p st can never complete normally: the
/// comm was revoked or a member process died. One relaxed atomic load on
/// fault-free runs (defined in comm.cc to reach the transport).
bool comm_interrupted(const CommState& st);
/// Raise the typed error for an interrupted comm: ProcessFailedError for a
/// dead member (charging the observer death_vtime + watchdog_us — the
/// deterministic detection latency — and counting failures_detected),
/// CommRevokedError otherwise (no charge). Death wins over revocation so
/// the error a direct observer sees is a pure function of the program.
[[noreturn]] void throw_comm_interrupt(const CommState& st, RankCtx& ctx);

/// Generic collective rendezvous on a communicator: every member contributes
/// under the lock, the last to arrive finalizes, everyone leaves with their
/// clock synchronized to max(member clocks) + @p sync_cost (one-off
/// coordination is modelled as a flat synchronization, not a message-by-
/// message schedule — the paper excludes these one-offs from measurements).
///
/// @tparam Data        operation payload default-constructed on first arrival
/// @param contribute   void(Data&) — called under the lock
/// @param finalize     void(Data&) — called once, by the last arriver
/// @returns the shared payload (kept alive by shared_ptr past slot erasure)
template <typename Data, typename Contribute, typename Finalize>
std::shared_ptr<Data> rendezvous(CommState& st, RankCtx& ctx, int my_rank,
                                 VTime sync_cost, Contribute&& contribute,
                                 Finalize&& finalize) {
    check_alive(ctx);
    if (comm_interrupted(st)) throw_comm_interrupt(st, ctx);
    if (st.freed.load(std::memory_order_acquire)) {
        throw CommError("collective on a freed communicator");
    }
    std::unique_lock<std::mutex> lock(st.op_mu);
    // Under an engine gate the slot is keyed in the request's private
    // namespace instead of the member epoch: outstanding collectives may be
    // driven in any order relative to each other and to later blocking
    // collectives, so position in the epoch stream would not identify the
    // operation. Every member executes the op under a gate with the same
    // rdv_ctx/rdv_seq, so they still meet at one slot.
    const std::uint64_t key =
        ctx.gate != nullptr
            ? ctx.gate->next_rdv_key()
            : st.member_epoch.at(static_cast<std::size_t>(my_rank))++;
    auto& slot_ref = st.ops[key];
    if (!slot_ref) {
        slot_ref = std::make_shared<CommState::OpSlot>();
        slot_ref->data = std::make_shared<Data>();
    }
    std::shared_ptr<CommState::OpSlot> slot = slot_ref;
    auto data = std::static_pointer_cast<Data>(slot->data);

    contribute(*data);
    slot->max_clock = std::max(slot->max_clock, ctx.vck().now());
    if (++slot->arrived == st.size()) {
        finalize(*data);
        slot->done = true;
        slot->cv.notify_all();
    } else if (ctx.gate != nullptr) {
        // Task context: poll-and-yield instead of blocking the OS thread,
        // so the owner's Test() returns and its Wait() can drive the other
        // outstanding requests meanwhile.
        while (!slot->done && !job_poisoned(st) && !comm_interrupted(st)) {
            lock.unlock();
            ctx.gate->yield();
            lock.lock();
        }
        if (!slot->done) {
            lock.unlock();
            throw_if_poisoned(st);
            throw_comm_interrupt(st, ctx);
        }
    } else {
        slot->cv.wait(lock, [&] {
            return slot->done || job_poisoned(st) || comm_interrupted(st);
        });
        if (!slot->done) {
            lock.unlock();
            throw_if_poisoned(st);
            throw_comm_interrupt(st, ctx);
        }
    }

    ctx.vck().sync_to(slot->max_clock);
    ctx.vck().advance(sync_cost);

    if (++slot->left == st.size()) {
        st.ops.erase(key);
    }
    return data;
}

}  // namespace detail

}  // namespace minimpi
