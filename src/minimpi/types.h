#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "minimpi/error.h"

namespace minimpi {

/// Virtual time, in microseconds. All latency figures produced by the model
/// are in this unit to match the paper's plots.
using VTime = double;

/// Wildcards and sentinels, mirroring their MPI equivalents.
inline constexpr int kAnySource = -1;  ///< MPI_ANY_SOURCE
inline constexpr int kAnyTag = -2;     ///< MPI_ANY_TAG
inline constexpr int kProcNull = -3;   ///< MPI_PROC_NULL
inline constexpr int kUndefined = -32766;  ///< MPI_UNDEFINED (split color)

/// Highest tag value available to user point-to-point traffic. Tags above
/// this are reserved for the runtime's internal collective protocols
/// (a stand-in for MPI's separate collective context id).
inline constexpr int kTagUpperBound = 1 << 20;

/// Elementary datatypes. The runtime is untyped at the transport layer
/// (bytes move); datatypes carry the element size and select the arithmetic
/// used by reduction operators.
enum class Datatype : std::uint8_t {
    Byte,
    Char,
    Int32,
    Int64,
    UInt64,
    Float,
    Double,
};

/// Size in bytes of one element of @p dt.
constexpr std::size_t datatype_size(Datatype dt) {
    switch (dt) {
        case Datatype::Byte:
        case Datatype::Char:
            return 1;
        case Datatype::Int32:
        case Datatype::Float:
            return 4;
        case Datatype::Int64:
        case Datatype::UInt64:
        case Datatype::Double:
            return 8;
    }
    return 0;  // unreachable
}

/// Map a C++ arithmetic type onto the corresponding Datatype tag.
template <typename T>
constexpr Datatype datatype_of() {
    if constexpr (std::is_same_v<T, std::byte> ||
                  std::is_same_v<T, unsigned char>) {
        return Datatype::Byte;
    } else if constexpr (std::is_same_v<T, char>) {
        return Datatype::Char;
    } else if constexpr (std::is_same_v<T, std::int32_t>) {
        return Datatype::Int32;
    } else if constexpr (std::is_same_v<T, std::int64_t>) {
        return Datatype::Int64;
    } else if constexpr (std::is_same_v<T, std::uint64_t>) {
        return Datatype::UInt64;
    } else if constexpr (std::is_same_v<T, float>) {
        return Datatype::Float;
    } else if constexpr (std::is_same_v<T, double>) {
        return Datatype::Double;
    } else {
        static_assert(sizeof(T) == 0, "unsupported datatype");
    }
}

/// Reduction operators (subset of the MPI predefined ops that the paper's
/// applications and our extensions need).
enum class Op : std::uint8_t {
    Sum,
    Prod,
    Max,
    Min,
    LogicalAnd,
    LogicalOr,
    BitAnd,
    BitOr,
};

/// Completion status of a receive, as in MPI_Status.
struct Status {
    int source = kProcNull;  ///< rank of the sender within the communicator
    int tag = kAnyTag;       ///< tag of the matched message
    std::size_t bytes = 0;   ///< payload size actually received
};

/// Whether message payloads are materialized. SizeOnly keeps the full
/// control path (matching, ordering, virtual-time accounting) but skips the
/// memcpy, enabling cluster-scale benchmarks (64 nodes x 24 ranks) whose
/// aggregate buffers would not fit in host memory. See DESIGN.md section 2.
enum class PayloadMode : std::uint8_t {
    Real,
    SizeOnly,
};

}  // namespace minimpi
