#pragma once

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/netmodel.h"
#include "minimpi/types.h"

namespace minimpi {

/// A message in flight (or sitting in the unexpected queue). Payload is an
/// owned eager copy; it is absent in SizeOnly mode or for zero-byte messages.
/// `arrival` and `recv_overhead` carry the modelled timing computed by the
/// sender, which knows the link class.
struct InMsg {
    std::uint64_t ctx = 0;  ///< communicator context id
    int src_global = -1;    ///< sender's WORLD rank (translated by the p2p layer)
    int tag = 0;
    std::size_t bytes = 0;
    std::unique_ptr<std::byte[]> payload;
    VTime arrival = 0.0;        ///< modelled time the message reaches the dest
    VTime recv_overhead = 0.0;  ///< CPU overhead the receiver pays on match

    /// Synchronous-send support: when >= 0, matching this message emits a
    /// zero-byte acknowledgement to world rank `ack_to` on the reserved ack
    /// context, stamped max(arrival, recv-post time) + ack_alpha. This is
    /// how MPI_Ssend learns its receive has started.
    int ack_to = -1;
    int ack_tag = 0;
    VTime ack_alpha = 0.0;

    /// Index of this message within the sender's stream to this destination,
    /// stamped by the sending rank (program order, hence deterministic).
    /// Keys the FaultPlan's per-message perturbations.
    std::uint64_t fault_seq = 0;

    /// The message was dropped in transit (FaultPlan::drop_every): only the
    /// envelope arrives — payload cleared — so receivers wake and detect
    /// the loss instead of hanging.
    bool dropped = false;

    /// Framed transfer of the resilience layer (src/robust): the only
    /// traffic payload faults may hit under FaultScope::RobustFrames.
    bool robust_frame = false;
};

/// Context id reserved for synchronous-send acknowledgements (never handed
/// to a communicator).
inline constexpr std::uint64_t kAckCtx = 0;

/// Context id reserved for the resilience layer's ACK/NACK control frames
/// (src/robust). Like kAckCtx it is exempt from fault injection: a lost
/// acknowledgement would reintroduce the two-generals problem the bounded
/// retry protocol is built to avoid, so control frames model a reliable
/// side channel while DATA frames ride the faulty transport.
inline constexpr std::uint64_t kRobustCtrlCtx = 1;

/// First context id Runtime::alloc_ctx hands to communicators.
inline constexpr std::uint64_t kFirstUserCtx = 2;

/// A receive posted by the destination rank, owned by a Request (or stack
/// frame for blocking receives). The mailbox keeps only a raw pointer while
/// the receive is pending.
struct PostedRecv {
    std::uint64_t ctx = 0;
    int src_global = kAnySource;  ///< WORLD rank or kAnySource
    int tag = kAnyTag;
    void* buf = nullptr;
    std::size_t capacity = 0;

    bool completed = false;
    bool truncated = false;   ///< matched message exceeded `capacity`
    bool dropped = false;     ///< matched a tombstone (message lost in transit)
    std::size_t msg_bytes = 0;  ///< actual size of the matched message
    int matched_src = -1;       ///< WORLD rank of the matched sender
    int matched_tag = 0;
    VTime arrival = 0.0;
    VTime recv_overhead = 0.0;
    VTime post_vtime = 0.0;  ///< receiver's clock when the recv was posted
};

/// Point-to-point matching engine: one mailbox per world rank, with MPI
/// semantics — (context, source, tag) matching, wildcards, per-sender FIFO
/// (non-overtaking), an unexpected-message queue and a posted-receive queue.
///
/// All sends are eager and buffered: the sender copies the payload (Real
/// mode), delivers, and returns; there is no rendezvous. This preserves the
/// standard's buffered-send semantics and cannot deadlock on send.
class Transport {
public:
    Transport(int nranks, PayloadMode mode);

    Transport(const Transport&) = delete;
    Transport& operator=(const Transport&) = delete;

    PayloadMode payload_mode() const { return mode_; }

    /// Attach a deterministic fault plan (non-owning; may be null). Applied
    /// to every subsequent deliver() except synchronous-send acks. Set
    /// before rank threads start; the Runtime wires this per run().
    void set_fault_plan(const FaultPlan* plan) { faults_ = plan; }

    /// Deliver a message to @p dst_global: either complete a matching posted
    /// receive (copying the payload on the sender's thread) or enqueue it as
    /// unexpected. `msg.payload` must already be an owned copy.
    void deliver(int dst_global, InMsg msg);

    /// Convenience for the sending side: build the owned payload copy
    /// according to the payload mode. `src` may be null in SizeOnly mode.
    std::unique_ptr<std::byte[]> make_payload(const void* src,
                                              std::size_t bytes) const;

    /// Register @p r in @p me's mailbox; if an unexpected message already
    /// matches, complete immediately.
    void post_recv(int me, PostedRecv* r);

    /// Block the calling (receiver) thread until @p r completes.
    void wait_recv(int me, PostedRecv* r);

    /// Like wait_recv, but additionally unblocks when @p interrupt()
    /// becomes true: the receive is deregistered and the call returns
    /// false, leaving the caller to raise its own typed error. Used for
    /// waits the per-receive interrupt rules cannot cover — the resilience
    /// layer's control-frame receives ride the reliable side channel
    /// (kRobustCtrlCtx, never revoked) from a live peer, yet must abandon
    /// the ARQ when that peer leaves for recovery; the predicate is the
    /// owning comm's interrupt state. Evaluated under the mailbox lock on
    /// every wake — mark_dead and revoke_ctx notify every mailbox, so a
    /// flip is observed promptly. Completion always wins (returns true);
    /// a poisoned job or per-receive interrupt still throws as wait_recv
    /// would. With the predicate constantly false the behavior is exactly
    /// wait_recv's. Returns true when @p r completed.
    bool wait_recv_intr(int me, PostedRecv* r,
                        const std::function<bool()>& interrupt);

    /// Block until ANY of the given pending receives (all owned by @p me)
    /// completes; returns the first completed index in scan order.
    std::size_t wait_any_recv(int me, std::span<PostedRecv* const> rs);

    /// wait_any_recv with the external-interrupt predicate of
    /// wait_recv_intr: returns the first completed index, or SIZE_MAX with
    /// every pending receive deregistered when @p interrupt() fires first.
    std::size_t wait_any_recv_intr(int me, std::span<PostedRecv* const> rs,
                                   const std::function<bool()>& interrupt);

    /// Non-blocking completion check.
    bool test_recv(int me, PostedRecv* r);

    /// Remove a still-pending posted receive (used by Request teardown on
    /// abnormal paths). Returns false if it had already completed.
    bool cancel_recv(int me, PostedRecv* r);

    /// MPI_Iprobe: report whether a matching message is pending without
    /// receiving it. Fills @p out with the envelope when found.
    bool iprobe(int me, std::uint64_t ctx, int src_global, int tag,
                Status* out);

    /// Blocking MPI_Probe.
    void probe(int me, std::uint64_t ctx, int src_global, int tag,
               Status* out);

    /// Number of messages currently sitting unexpected in @p me's mailbox
    /// (diagnostics/tests).
    std::size_t unexpected_count(int me);

    /// Mark the job as aborted by @p by_rank and wake every blocked waiter;
    /// subsequent/pending blocking calls throw JobAborted.
    void poison(int by_rank);

    bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

    /// Throw JobAborted if the job has been poisoned.
    void check_poison() const;

    // ---- process-failure model (ULFM-style) --------------------------------
    //
    // All of it is gated on two atomic counters (dead_count_, revoke_count_)
    // that stay zero on fault-free runs, so the fast paths pay one relaxed
    // load and no virtual-time cost — existing baselines are unaffected.

    /// Record the death of @p world_rank at virtual time @p at and wake every
    /// blocked waiter so receives depending on the dead rank can raise
    /// ProcessFailedError. Called from the dying rank's own thread, after its
    /// last send — so everything it sent before dying is already delivered.
    void mark_dead(int world_rank, VTime at);

    bool any_dead() const {
        return dead_count_.load(std::memory_order_acquire) > 0;
    }
    bool is_dead(int world_rank) const {
        return boxes_.at(static_cast<std::size_t>(world_rank))
            ->dead.load(std::memory_order_acquire);
    }
    /// Virtual time of @p world_rank's death; only meaningful when is_dead().
    VTime death_vtime(int world_rank) const {
        return boxes_.at(static_cast<std::size_t>(world_rank))->death_vtime;
    }

    /// Revoke a communicator context: every pending and future wait on it
    /// raises CommRevokedError (except completed receives, which are always
    /// consumed first — a message delivered before the revoke is never lost).
    void revoke_ctx(std::uint64_t ctx);

    bool any_revoked() const {
        return revoke_count_.load(std::memory_order_acquire) > 0;
    }
    bool ctx_revoked(std::uint64_t ctx) const;

    /// Raise the typed failure for @p r (a pending receive owned by world
    /// rank @p me) if its source died or its context was revoked, after
    /// deregistering it. Cheap no-op while no kill/revoke is active. Used by
    /// polling receive paths that never block in wait_recv.
    void check_recv_interrupt(int me, PostedRecv* r);

private:
    std::atomic<bool> poisoned_{false};
    std::atomic<int> poison_rank_{-1};
    std::atomic<int> dead_count_{0};
    std::atomic<int> revoke_count_{0};

    mutable std::mutex revoked_mu_;
    std::vector<std::uint64_t> revoked_;  ///< revoked context ids (unsorted)

    struct Mailbox {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<InMsg> unexpected;
        std::list<PostedRecv*> posted;
        /// Process-failure state of the mailbox OWNER (the world rank).
        std::atomic<bool> dead{false};
        VTime death_vtime = 0.0;  ///< written before `dead` is released
    };

    static bool matches(const PostedRecv& r, const InMsg& m) {
        return r.ctx == m.ctx &&
               (r.src_global == kAnySource || r.src_global == m.src_global) &&
               (r.tag == kAnyTag || r.tag == m.tag);
    }

    /// Pending synchronous-send acknowledgement produced by a match.
    struct AckOut {
        int to = -1;
        int tag = 0;
        int from = -1;
        VTime arrival = 0.0;
    };

    /// Fill completion fields of @p r from @p m and copy the payload.
    /// @p receiver is the mailbox owner's world rank (the ack's source).
    /// Caller holds the mailbox lock. Returns the ack to emit (to < 0 if
    /// none); the caller sends it AFTER releasing the lock (lock-order
    /// safety for mutually synchronous traffic).
    AckOut complete(PostedRecv* r, InMsg& m, int receiver);

    /// Emit a synchronous-send acknowledgement (no-op when ack.to < 0).
    /// Must be called WITHOUT holding any mailbox lock.
    void send_ack(const AckOut& ack);

    /// Post-fault delivery: match against posted receives or enqueue as
    /// unexpected. Split from deliver() so an injected duplicate is not
    /// re-perturbed by the fault plan.
    void deliver_matched(int dst_global, InMsg msg);

    /// Whether a pending receive can never complete: its source died or its
    /// context was revoked. Never true for completed receives.
    bool interrupted(const PostedRecv& r) const;

    /// Throw the typed error for an interrupted receive (source death wins
    /// over revocation so detection stays deterministic). Must be called
    /// without holding the mailbox lock.
    [[noreturn]] void throw_interrupt(const PostedRecv& r) const;

    Mailbox& box(int rank) { return *boxes_.at(static_cast<std::size_t>(rank)); }

    PayloadMode mode_;
    const FaultPlan* faults_ = nullptr;
    std::vector<std::unique_ptr<Mailbox>> boxes_;
};

}  // namespace minimpi
