#include "minimpi/cluster.h"

#include <numeric>

#include "minimpi/error.h"

namespace minimpi {

ClusterSpec ClusterSpec::regular(int nodes, int ppn, Placement placement,
                                 int sockets_per_node) {
    if (nodes <= 0 || ppn <= 0) {
        throw ArgumentError("cluster must have positive nodes and ppn");
    }
    return ClusterSpec(std::vector<int>(static_cast<std::size_t>(nodes), ppn),
                       placement, sockets_per_node);
}

ClusterSpec ClusterSpec::irregular(std::vector<int> procs_per_node,
                                   Placement placement, int sockets_per_node) {
    if (procs_per_node.empty()) {
        throw ArgumentError("cluster must have at least one node");
    }
    for (int p : procs_per_node) {
        if (p <= 0) {
            throw ArgumentError("every node must host at least one process");
        }
    }
    return ClusterSpec(std::move(procs_per_node), placement, sockets_per_node);
}

ClusterSpec::ClusterSpec(std::vector<int> procs_per_node, Placement placement,
                         int sockets_per_node)
    : procs_per_node_(std::move(procs_per_node)),
      placement_(placement),
      sockets_per_node_(sockets_per_node) {
    if (sockets_per_node_ < 1) {
        throw ArgumentError("sockets_per_node must be >= 1");
    }
    total_ = std::accumulate(procs_per_node_.begin(), procs_per_node_.end(), 0);
    node_of_.resize(static_cast<std::size_t>(total_));
    rank_on_node_.resize(static_cast<std::size_t>(total_));
    ranks_of_node_.resize(procs_per_node_.size());

    const int nnodes = num_nodes();
    if (placement_ == Placement::Smp) {
        int rank = 0;
        for (int n = 0; n < nnodes; ++n) {
            for (int i = 0; i < procs_per_node_[static_cast<std::size_t>(n)];
                 ++i, ++rank) {
                node_of_[static_cast<std::size_t>(rank)] = n;
            }
        }
    } else {
        // Round-robin deal: repeatedly sweep the nodes, skipping nodes that
        // are already full. With irregular populations this fills small
        // nodes first and keeps dealing to the larger ones.
        std::vector<int> filled(procs_per_node_.size(), 0);
        int rank = 0;
        while (rank < total_) {
            for (int n = 0; n < nnodes && rank < total_; ++n) {
                if (filled[static_cast<std::size_t>(n)] <
                    procs_per_node_[static_cast<std::size_t>(n)]) {
                    node_of_[static_cast<std::size_t>(rank)] = n;
                    ++filled[static_cast<std::size_t>(n)];
                    ++rank;
                }
            }
        }
    }

    for (int r = 0; r < total_; ++r) {
        const int n = node_of_[static_cast<std::size_t>(r)];
        auto& members = ranks_of_node_[static_cast<std::size_t>(n)];
        rank_on_node_[static_cast<std::size_t>(r)] =
            static_cast<int>(members.size());
        members.push_back(r);
    }

    // Sockets: each node's member list is cut into S contiguous slices
    // [P*s/S, P*(s+1)/S) — the same flooring partition leader_slice uses —
    // so irregular populations spread across sockets with sizes differing
    // by at most one, possibly leaving high sockets empty when S > P.
    socket_of_.resize(static_cast<std::size_t>(total_), 0);
    if (sockets_per_node_ > 1) {
        const int S = sockets_per_node_;
        for (const auto& members : ranks_of_node_) {
            const int P = static_cast<int>(members.size());
            for (int s = 0; s < S; ++s) {
                const int lo = P * s / S;
                const int hi = P * (s + 1) / S;
                for (int p = lo; p < hi; ++p) {
                    socket_of_[static_cast<std::size_t>(
                        members[static_cast<std::size_t>(p)])] = s;
                }
            }
        }
    }

    node_sorted_ranks_.reserve(static_cast<std::size_t>(total_));
    for (const auto& members : ranks_of_node_) {
        node_sorted_ranks_.insert(node_sorted_ranks_.end(), members.begin(),
                                  members.end());
    }
}

}  // namespace minimpi
