#pragma once

#include <cstddef>
#include <cstdint>

#include "minimpi/context.h"
#include "trace/recorder.h"

/// RAII bridge between rank code and the hytrace recorder. All recording
/// sites in minimpi/hybrid/robust go through this header so that
/// -DHYMPI_TRACING=OFF compiles every one of them out; with tracing
/// compiled in but off at runtime, each site costs one null-pointer test.
namespace minimpi {

#if HYMPI_TRACE_ENABLED

/// Opens a span on construction (at the rank's current virtual time) and
/// closes it on destruction. Scope it exactly around the interval being
/// measured; annotate with the setters while open.
class TraceSpan {
public:
    TraceSpan(RankCtx& ctx, hytrace::Phase phase, const char* name)
        : ctx_(&ctx), rec_(ctx.spans) {
        if (rec_ != nullptr) idx_ = rec_->begin(phase, name, ctx.vck().now());
    }
    ~TraceSpan() {
        if (rec_ != nullptr) rec_->end(idx_, ctx_->vck().now());
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    bool active() const { return rec_ != nullptr; }

    void set_coll(const char* coll) {
        if (rec_ != nullptr) rec_->span(idx_).coll = coll;
    }
    void set_algo(const char* algo) {
        if (rec_ != nullptr) rec_->span(idx_).algo = algo;
    }
    void set_bytes(std::uint64_t bytes) {
        if (rec_ != nullptr) rec_->span(idx_).bytes = bytes;
    }
    void add_bytes(std::uint64_t bytes) {
        if (rec_ != nullptr) rec_->span(idx_).bytes += bytes;
    }
    void set_peer(int world_rank) {
        if (rec_ != nullptr) rec_->span(idx_).peer = world_rank;
    }
    void set_chunks(std::uint64_t chunks) {
        if (rec_ != nullptr) rec_->span(idx_).chunks = chunks;
    }
    /// Identify the communicator by shape, not context id (ids come from a
    /// wall-clock-ordered atomic and would break trace determinism).
    void set_comm(int comm_size, int comm_rank) {
        if (rec_ != nullptr) {
            hytrace::Span& s = rec_->span(idx_);
            s.comm_size = comm_size;
            s.comm_rank = comm_rank;
        }
    }

private:
    RankCtx* ctx_;
    hytrace::Recorder* rec_;
    std::size_t idx_ = 0;
};

/// True when per-message p2p spans should be recorded for @p ctx. Opt-in
/// (HYMPI_TRACE_P2P / RunOptions::span_p2p): they dominate trace volume.
inline bool trace_p2p(const RankCtx& ctx) {
    return ctx.spans != nullptr && ctx.spans->p2p();
}

/// Record a complete leaf span [t0, now] after the fact (used where the
/// interval is only known once it has elapsed, e.g. a recv wait).
inline hytrace::Span* trace_complete(RankCtx& ctx, hytrace::Phase phase,
                                     const char* name, VTime t0) {
    if (ctx.spans == nullptr) return nullptr;
    return &ctx.spans->complete(phase, name, t0, ctx.vck().now());
}

/// Record a zero-duration event (retransmit, degradation) at now.
inline hytrace::Span* trace_instant(RankCtx& ctx, hytrace::Phase phase,
                                    const char* name) {
    if (ctx.spans == nullptr) return nullptr;
    return &ctx.spans->instant(phase, name, ctx.vck().now());
}

/// Bump a per-rank counter field, e.g.
/// HYTRACE_COUNTER(ctx, retransmits, 1). Placed at the exact code site
/// performing the counted action so counters stay truthful by construction.
#define HYTRACE_COUNTER(ctx, field, delta)                          \
    do {                                                            \
        if ((ctx).spans != nullptr) {                               \
            (ctx).spans->counters().field +=                        \
                static_cast<decltype((ctx).spans->counters().field)>(delta); \
        }                                                           \
    } while (0)

#else  // !HYMPI_TRACE_ENABLED — every site compiles to nothing.

class TraceSpan {
public:
    TraceSpan(RankCtx&, hytrace::Phase, const char*) {}
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;
    bool active() const { return false; }
    void set_coll(const char*) {}
    void set_algo(const char*) {}
    void set_bytes(std::uint64_t) {}
    void add_bytes(std::uint64_t) {}
    void set_peer(int) {}
    void set_chunks(std::uint64_t) {}
    void set_comm(int, int) {}
};

inline bool trace_p2p(const RankCtx&) { return false; }
inline hytrace::Span* trace_complete(RankCtx&, hytrace::Phase, const char*,
                                     VTime) {
    return nullptr;
}
inline hytrace::Span* trace_instant(RankCtx&, hytrace::Phase, const char*) {
    return nullptr;
}

#define HYTRACE_COUNTER(ctx, field, delta) \
    do {                                   \
        (void)sizeof(ctx);                 \
    } while (0)

#endif  // HYMPI_TRACE_ENABLED

}  // namespace minimpi
