#include "minimpi/coll.h"

#include <cmath>

#include "minimpi/coll_internal.h"
#include "minimpi/error.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"

namespace minimpi {

namespace detail {

namespace {

template <typename T>
void apply_arith(Op op, void* inout, const void* in, std::size_t count) {
    T* a = static_cast<T*>(inout);
    const T* b = static_cast<const T*>(in);
    switch (op) {
        case Op::Sum:
            for (std::size_t i = 0; i < count; ++i) a[i] = a[i] + b[i];
            return;
        case Op::Prod:
            for (std::size_t i = 0; i < count; ++i) a[i] = a[i] * b[i];
            return;
        case Op::Max:
            for (std::size_t i = 0; i < count; ++i) a[i] = std::max(a[i], b[i]);
            return;
        case Op::Min:
            for (std::size_t i = 0; i < count; ++i) a[i] = std::min(a[i], b[i]);
            return;
        default:
            break;
    }
    if constexpr (std::is_integral_v<T>) {
        switch (op) {
            case Op::LogicalAnd:
                for (std::size_t i = 0; i < count; ++i) a[i] = (a[i] && b[i]);
                return;
            case Op::LogicalOr:
                for (std::size_t i = 0; i < count; ++i) a[i] = (a[i] || b[i]);
                return;
            case Op::BitAnd:
                for (std::size_t i = 0; i < count; ++i) a[i] = a[i] & b[i];
                return;
            case Op::BitOr:
                for (std::size_t i = 0; i < count; ++i) a[i] = a[i] | b[i];
                return;
            default:
                break;
        }
    }
    throw ArgumentError("reduction op not defined for this datatype");
}

}  // namespace

void apply_op(RankCtx& ctx, Op op, Datatype dt, void* inout, const void* in,
              std::size_t count) {
    if (count == 0) return;
    ctx.charge_flops(static_cast<double>(count));
    if (ctx.payload_mode != PayloadMode::Real || inout == nullptr ||
        in == nullptr) {
        return;
    }
    switch (dt) {
        case Datatype::Byte:
            apply_arith<unsigned char>(op, inout, in, count);
            return;
        case Datatype::Char:
            apply_arith<char>(op, inout, in, count);
            return;
        case Datatype::Int32:
            apply_arith<std::int32_t>(op, inout, in, count);
            return;
        case Datatype::Int64:
            apply_arith<std::int64_t>(op, inout, in, count);
            return;
        case Datatype::UInt64:
            apply_arith<std::uint64_t>(op, inout, in, count);
            return;
        case Datatype::Float: {
            if (op == Op::LogicalAnd || op == Op::LogicalOr ||
                op == Op::BitAnd || op == Op::BitOr) {
                throw ArgumentError("bit/logical op on floating-point data");
            }
            apply_arith<float>(op, inout, in, count);
            return;
        }
        case Datatype::Double: {
            if (op == Op::LogicalAnd || op == Op::LogicalOr ||
                op == Op::BitAnd || op == Op::BitOr) {
                throw ArgumentError("bit/logical op on floating-point data");
            }
            apply_arith<double>(op, inout, in, count);
            return;
        }
    }
}

void barrier_dissemination(const Comm& comm) {
    const int p = comm.size();
    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
        const int dst = (comm.rank() + mask) % p;
        const int src = (comm.rank() - mask % p + p) % p;
        Request rr =
            irecv_bytes(comm, nullptr, 0, src, kTagBarrier + round, true);
        send_bytes(comm, nullptr, 0, dst, kTagBarrier + round, true);
        rr.wait();
    }
}

void barrier_shm_tuned(const Comm& comm) {
    const int p = comm.size();
    RankCtx& ctx = comm.ctx();
    TraceSpan span(ctx, hytrace::Phase::Sync, "barrier");
    span.set_coll("Barrier");
    span.set_algo("shm_counter");
    span.set_comm(p, comm.rank());
    if (p == 1) {
        ctx.vck().advance(ctx.model->shm_barrier_base_us);
        return;
    }
    const VTime cost =
        ctx.model->shm_barrier_base_us +
        ctx.model->shm_barrier_hop_us * std::log2(static_cast<double>(p));
    // A counter barrier is a clock-max rendezvous plus the flag round cost.
    const VTime t0 = ctx.vck().now();
    struct Empty {};
    rendezvous<Empty>(comm.state(), ctx, comm.rank(), cost, [](Empty&) {},
                      [](Empty&) {});
    if (ctx.tracer) {
        ctx.tracer->record(TraceEvent::Kind::Sync, t0, ctx.vck().now());
    }
}

void bcast_binomial(const Comm& comm, void* buf, std::size_t bytes, int root) {
    const int p = comm.size();
    if (p == 1) return;
    const int vrank = (comm.rank() - root + p) % p;

    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            const int src = (vrank - mask + root) % p;
            recv_bytes(comm, buf, bytes, src, kTagBcast, true);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < p) {
            const int dst = (vrank + mask + root) % p;
            send_bytes(comm, buf, bytes, dst, kTagBcast, true);
        }
        mask >>= 1;
    }
}

void bcast_pipelined_chain(const Comm& comm, void* buf, std::size_t bytes,
                           int root, std::size_t segment_bytes) {
    // Default: 8 KiB segments, but never more than 64 of them: past that
    // depth the pipeline is saturated and extra segments only add
    // per-message cost. A tuned segment size still honors the depth cap.
    constexpr std::size_t kSegmentMin = 8 * 1024;
    constexpr std::size_t kMaxSegments = 64;
    const std::size_t depth_floor = (bytes + kMaxSegments - 1) / kMaxSegments;
    const std::size_t kSegment =
        segment_bytes > 0 ? std::max(segment_bytes, depth_floor)
                          : std::max(kSegmentMin, depth_floor);
    const int p = comm.size();
    if (p == 1) return;
    const int vrank = (comm.rank() - root + p) % p;
    const int prev = (vrank == 0) ? kProcNull : (vrank - 1 + root) % p;
    const int next = (vrank == p - 1) ? kProcNull : (vrank + 1 + root) % p;

    const std::size_t nseg = (bytes + kSegment - 1) / kSegment;
    for (std::size_t s = 0; s < std::max<std::size_t>(nseg, 1); ++s) {
        const std::size_t off = s * kSegment;
        const std::size_t len = std::min(kSegment, bytes - off);
        if (prev != kProcNull) {
            recv_bytes(comm, at(buf, off), len, prev, kTagBcast, true);
        }
        if (next != kProcNull) {
            send_bytes(comm, at(buf, off), len, next, kTagBcast, true);
        }
    }
}

void gather_binomial(const Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bb, int root) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();

    if (p == 1) {
        if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, sendbuf, bb);
        return;
    }
    const int vrank = (r - root + p) % p;

    // Span (in blocks) of the subtree this rank aggregates before sending
    // (the whole communicator for the root).
    int send_mask = 1;
    while (send_mask < p && !(vrank & send_mask)) send_mask <<= 1;
    const int span = (vrank == 0)
                         ? p
                         : std::min(send_mask, p - vrank);

    // Aggregation buffer: vrank-major blocks [vrank, vrank+span).
    // Root 0 aggregates straight into recvbuf (vrank order == rank order).
    Scratch scratch(ctx, (vrank == 0 && root == 0) || span == 1
                             ? 0
                             : static_cast<std::size_t>(span) * bb);
    std::byte* agg = nullptr;
    if (vrank == 0 && root == 0) {
        agg = static_cast<std::byte*>(recvbuf);
    } else if (span > 1) {
        agg = scratch.data();
    }

    const void* own =
        resolve_in_place(sendbuf, at(recvbuf, static_cast<std::size_t>(r) * bb));
    if (agg != nullptr || ctx.payload_mode == PayloadMode::SizeOnly) {
        if (span > 1 || vrank == 0) {
            // Place own block at the front of the aggregation buffer.
            std::byte* own_dst = at(agg, (vrank == 0 && root == 0)
                                             ? static_cast<std::size_t>(r) * bb
                                             : 0);
            if (!(vrank == 0 && root == 0 && sendbuf == kInPlace)) {
                ctx.copy_bytes(own_dst, own, bb);
            }
        }
    }

    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            const int dst = (vrank - mask + root) % p;
            const void* src_ptr = (span == 1) ? own : agg;
            send_bytes(comm, src_ptr, static_cast<std::size_t>(span) * bb, dst,
                       kTagGather, true);
            break;
        }
        const int src_v = vrank + mask;
        if (src_v < p) {
            const int cnt = std::min(mask, p - src_v);
            std::size_t off = static_cast<std::size_t>(src_v - vrank) * bb;
            if (vrank == 0 && root == 0) {
                off = static_cast<std::size_t>(src_v) * bb;  // == rank offset
            }
            const int src = (src_v + root) % p;
            recv_bytes(comm, at(agg, off), static_cast<std::size_t>(cnt) * bb,
                       src, kTagGather, true);
        }
        mask <<= 1;
    }

    if (vrank == 0 && root != 0) {
        // Un-rotate vrank-major blocks into rank order: two contiguous chunks.
        const std::size_t head = static_cast<std::size_t>(p - root) * bb;
        ctx.copy_bytes(at(recvbuf, static_cast<std::size_t>(root) * bb), agg,
                       head);
        ctx.copy_bytes(recvbuf, at(agg, head),
                       static_cast<std::size_t>(root) * bb);
    }
}

void scatter_binomial(const Comm& comm, const void* sendbuf, void* recvbuf,
                      std::size_t bb, int root) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();

    if (p == 1) {
        ctx.copy_bytes(recvbuf, sendbuf, bb);
        return;
    }
    const int vrank = (r - root + p) % p;

    int span;          // blocks this rank handles (own + descendants)
    int mask;          // first mask of the send loop
    std::byte* buf;    // vrank-major staging buffer, own block at offset 0
    Scratch scratch(ctx, 0);

    if (vrank == 0) {
        span = p;
        mask = 1;
        while (mask < p) mask <<= 1;
        mask >>= 1;
        if (root == 0) {
            // vrank order == rank order: stage directly from sendbuf.
            buf = const_cast<std::byte*>(static_cast<const std::byte*>(sendbuf));
        } else {
            scratch = Scratch(ctx, static_cast<std::size_t>(p) * bb);
            buf = scratch.data();
            // Rotate rank-major sendbuf into vrank order (two chunks).
            const std::size_t head = static_cast<std::size_t>(p - root) * bb;
            ctx.copy_bytes(buf, at(sendbuf, static_cast<std::size_t>(root) * bb),
                           head);
            ctx.copy_bytes(at(buf, head), sendbuf,
                           static_cast<std::size_t>(root) * bb);
        }
    } else {
        int lowbit = 1;
        while (!(vrank & lowbit)) lowbit <<= 1;
        span = std::min(lowbit, p - vrank);
        const int parent = (vrank - lowbit + root) % p;
        if (span == 1) {
            buf = static_cast<std::byte*>(recvbuf);
        } else {
            scratch = Scratch(ctx, static_cast<std::size_t>(span) * bb);
            buf = scratch.data();
        }
        recv_bytes(comm, buf, static_cast<std::size_t>(span) * bb, parent,
                   kTagScatter, true);
        mask = lowbit >> 1;
    }

    while (mask > 0) {
        const int child_v = vrank + mask;
        if (child_v < p) {
            const int cnt = std::min(mask, p - child_v);
            send_bytes(comm, at(buf, static_cast<std::size_t>(mask) * bb),
                       static_cast<std::size_t>(cnt) * bb,
                       (child_v + root) % p, kTagScatter, true);
        }
        mask >>= 1;
    }

    if (span > 1 || vrank == 0) {
        const std::size_t own_off =
            (vrank == 0 && root == 0) ? static_cast<std::size_t>(r) * bb : 0;
        ctx.copy_bytes(recvbuf, at(buf, own_off), bb);
    }
}

}  // namespace detail

namespace {

/// True when every member of @p comm lives on one node.
bool single_node_comm(const Comm& comm) {
    const int node0 = comm.node_of(0);
    for (int r = 1; r < comm.size(); ++r) {
        if (comm.node_of(r) != node0) return false;
    }
    return true;
}

}  // namespace

void barrier(const Comm& comm) {
    RankCtx& ctx = comm.ctx();
    if (ctx.model->smp_aware && single_node_comm(comm)) {
        detail::barrier_shm_tuned(comm);
        return;
    }
    if (!(ctx.model->smp_aware && detail::smp_hier_applicable(comm))) {
        detail::barrier_auto(comm);
        return;
    }
    const detail::HierHandles* h = &detail::hier(comm);
    // On-node check-in, leaders synchronize across nodes, on-node release.
    detail::barrier_shm_tuned(h->shm);
    if (h->is_leader) detail::barrier_auto(h->bridge);
    detail::barrier_shm_tuned(h->shm);
}

void gather(const Comm& comm, const void* sendbuf, std::size_t count,
            void* recvbuf, Datatype dt, int root) {
    if (root < 0 || root >= comm.size()) {
        throw ArgumentError("gather root out of range");
    }
    detail::gather_binomial(comm, sendbuf, recvbuf, count * datatype_size(dt),
                            root);
}

void scatter(const Comm& comm, const void* sendbuf, std::size_t count,
             void* recvbuf, Datatype dt, int root) {
    if (root < 0 || root >= comm.size()) {
        throw ArgumentError("scatter root out of range");
    }
    detail::scatter_binomial(comm, sendbuf, recvbuf, count * datatype_size(dt),
                             root);
}

void gatherv(const Comm& comm, const void* sendbuf, std::size_t sendcount,
             void* recvbuf, std::span<const std::size_t> counts,
             std::span<const std::size_t> displs, Datatype dt, int root) {
    const int p = comm.size();
    if (root < 0 || root >= p) throw ArgumentError("gatherv root out of range");
    if (counts.size() != static_cast<std::size_t>(p) ||
        displs.size() != static_cast<std::size_t>(p)) {
        throw ArgumentError("gatherv counts/displs must have comm-size entries");
    }
    RankCtx& ctx = comm.ctx();
    const std::size_t ds = datatype_size(dt);

    if (comm.rank() == root) {
        std::vector<Request> reqs;
        reqs.reserve(static_cast<std::size_t>(p) - 1);
        for (int i = 0; i < p; ++i) {
            if (i == root) continue;
            reqs.push_back(detail::irecv_bytes(
                comm, detail::at(recvbuf, displs[static_cast<std::size_t>(i)] * ds),
                counts[static_cast<std::size_t>(i)] * ds, i, detail::kTagGatherv,
                true));
        }
        if (sendbuf != kInPlace) {
            ctx.copy_bytes(
                detail::at(recvbuf, displs[static_cast<std::size_t>(root)] * ds),
                sendbuf, sendcount * ds);
        }
        wait_all(reqs);
    } else {
        detail::send_bytes(comm, sendbuf, sendcount * ds, root,
                           detail::kTagGatherv, true);
    }
}

void scatterv(const Comm& comm, const void* sendbuf,
              std::span<const std::size_t> counts,
              std::span<const std::size_t> displs, void* recvbuf,
              std::size_t recvcount, Datatype dt, int root) {
    const int p = comm.size();
    if (root < 0 || root >= p) throw ArgumentError("scatterv root out of range");
    RankCtx& ctx = comm.ctx();
    const std::size_t ds = datatype_size(dt);
    if (comm.rank() == root) {
        if (counts.size() != static_cast<std::size_t>(p) ||
            displs.size() != static_cast<std::size_t>(p)) {
            throw ArgumentError(
                "scatterv counts/displs must have comm-size entries");
        }
        for (int i = 0; i < p; ++i) {
            if (i == root) continue;
            detail::send_bytes(
                comm, detail::at(sendbuf, displs[static_cast<std::size_t>(i)] * ds),
                counts[static_cast<std::size_t>(i)] * ds, i, detail::kTagScatter,
                true);
        }
        if (recvbuf != nullptr || ctx.payload_mode == PayloadMode::SizeOnly) {
            ctx.copy_bytes(
                recvbuf,
                detail::at(sendbuf, displs[static_cast<std::size_t>(root)] * ds),
                counts[static_cast<std::size_t>(root)] * ds);
        }
    } else {
        detail::recv_bytes(comm, recvbuf, recvcount * ds, root,
                           detail::kTagScatter, true);
    }
}

void bcast(const Comm& comm, void* buf, std::size_t count, Datatype dt,
           int root) {
    const int p = comm.size();
    if (root < 0 || root >= p) throw ArgumentError("bcast root out of range");
    const std::size_t bytes = count * datatype_size(dt);
    RankCtx& ctx = comm.ctx();

    const detail::HierHandles* h = nullptr;
    if (ctx.model->smp_aware && detail::smp_hier_applicable(comm)) {
        h = &detail::hier(comm);
    }

    if (h == nullptr) {
        detail::bcast_auto(comm, buf, bytes, root);
        return;
    }

    // SMP-aware: root hands off to its node leader, leaders broadcast over
    // the bridge, each leader broadcasts within its node.
    const int root_node = h->node_index_of[static_cast<std::size_t>(root)];
    const int root_leader = h->node_leader[static_cast<std::size_t>(root_node)];
    if (root != root_leader) {
        if (comm.rank() == root) {
            detail::send_bytes(comm, buf, bytes, root_leader,
                               detail::kTagHier, true);
        } else if (comm.rank() == root_leader) {
            detail::recv_bytes(comm, buf, bytes, root, detail::kTagHier, true);
        }
    }
    if (h->is_leader) {
        detail::bcast_auto(h->bridge, buf, bytes, root_node);
    }
    detail::bcast_auto(h->shm, buf, bytes, 0);
}

}  // namespace minimpi
