#include "minimpi/coll.h"
#include "minimpi/coll_internal.h"
#include "minimpi/error.h"
#include "minimpi/runtime.h"

namespace minimpi {

namespace detail {

void reduce_binomial(const Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t count, Datatype dt, Op op, int root) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bytes = count * datatype_size(dt);

    const void* contrib = resolve_in_place(sendbuf, recvbuf);
    if (p == 1) {
        if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, contrib, bytes);
        return;
    }
    const int vrank = (r - root + p) % p;

    // Accumulator: the root reduces into recvbuf, everyone else into scratch.
    Scratch acc_s(ctx, (r == root) ? 0 : bytes);
    std::byte* acc =
        (r == root) ? static_cast<std::byte*>(recvbuf) : acc_s.data();
    if (!(r == root && sendbuf == kInPlace)) {
        ctx.copy_bytes(acc, contrib, bytes);
    }
    Scratch tmp_s(ctx, bytes);
    std::byte* tmp = tmp_s.data();

    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            const int dst = (vrank - mask + root) % p;
            send_bytes(comm, acc, bytes, dst, kTagReduce, true);
            break;
        }
        const int src_v = vrank + mask;
        if (src_v < p) {
            recv_bytes(comm, tmp, bytes, (src_v + root) % p, kTagReduce, true);
            apply_op(ctx, op, dt, acc, tmp, count);
        }
        mask <<= 1;
    }
}

void allreduce_recursive_doubling(const Comm& comm, const void* sendbuf,
                                  void* recvbuf, std::size_t count,
                                  Datatype dt, Op op) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bytes = count * datatype_size(dt);

    if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, sendbuf, bytes);
    if (p == 1) return;

    Scratch tmp_s(ctx, bytes);
    std::byte* tmp = tmp_s.data();

    // MPICH-style non-power-of-two handling: the first 2*rem ranks pair up,
    // evens fold into odds and sit out the doubling phase.
    int pof2 = 1;
    while (pof2 * 2 <= p) pof2 *= 2;
    const int rem = p - pof2;

    int newrank;
    if (r < 2 * rem) {
        if (r % 2 == 0) {
            send_bytes(comm, recvbuf, bytes, r + 1, kTagAllreduce, true);
            newrank = -1;
        } else {
            recv_bytes(comm, tmp, bytes, r - 1, kTagAllreduce, true);
            apply_op(ctx, op, dt, recvbuf, tmp, count);
            newrank = r / 2;
        }
    } else {
        newrank = r - rem;
    }

    if (newrank != -1) {
        auto to_real = [&](int nr) {
            return (nr < rem) ? nr * 2 + 1 : nr + rem;
        };
        int round = 1;
        for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
            const int partner = to_real(newrank ^ mask);
            Request rr = irecv_bytes(comm, tmp, bytes, partner,
                                     kTagAllreduce + round, true);
            send_bytes(comm, recvbuf, bytes, partner, kTagAllreduce + round,
                       true);
            rr.wait();
            apply_op(ctx, op, dt, recvbuf, tmp, count);
        }
    }

    if (r < 2 * rem) {
        if (r % 2 == 1) {
            send_bytes(comm, recvbuf, bytes, r - 1, kTagAllreduce, true);
        } else {
            recv_bytes(comm, recvbuf, bytes, r + 1, kTagAllreduce, true);
        }
    }
}

void allreduce_ring(const Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t count, Datatype dt, Op op) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t ds = datatype_size(dt);

    if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, sendbuf, count * ds);
    if (p == 1) return;

    // Element ranges of the p chunks.
    auto chunk_begin = [&](int i) {
        return (count * static_cast<std::size_t>(i)) / static_cast<std::size_t>(p);
    };
    auto chunk_len = [&](int i) { return chunk_begin(i + 1) - chunk_begin(i); };

    std::size_t max_chunk = 0;
    for (int i = 0; i < p; ++i) max_chunk = std::max(max_chunk, chunk_len(i));
    Scratch tmp_s(ctx, max_chunk * ds);
    std::byte* tmp = tmp_s.data();

    const int left = (r - 1 + p) % p;
    const int right = (r + 1) % p;

    // Phase 1: reduce-scatter. After p-1 steps rank r owns the fully
    // reduced chunk (r+1) mod p.
    for (int k = 0; k < p - 1; ++k) {
        const int send_idx = (r - k + p) % p;
        const int recv_idx = (r - k - 1 + p) % p;
        Request rr = irecv_bytes(comm, tmp, chunk_len(recv_idx) * ds, left,
                                 kTagAllreduce, true);
        send_bytes(comm, at(recvbuf, chunk_begin(send_idx) * ds),
                   chunk_len(send_idx) * ds, right, kTagAllreduce, true);
        rr.wait();
        apply_op(ctx, op, dt, at(recvbuf, chunk_begin(recv_idx) * ds), tmp,
                 chunk_len(recv_idx));
    }

    // Phase 2: ring allgather of the reduced chunks.
    for (int k = 0; k < p - 1; ++k) {
        const int send_idx = (r + 1 - k + p) % p;
        const int recv_idx = (r - k + p) % p;
        Request rr = irecv_bytes(comm, at(recvbuf, chunk_begin(recv_idx) * ds),
                                 chunk_len(recv_idx) * ds, left,
                                 kTagAllreduce, true);
        send_bytes(comm, at(recvbuf, chunk_begin(send_idx) * ds),
                   chunk_len(send_idx) * ds, right, kTagAllreduce, true);
        rr.wait();
    }
}

namespace {

void allreduce_flat(const Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t count, Datatype dt, Op op) {
    RankCtx& ctx = comm.ctx();
    const std::size_t bytes = count * datatype_size(dt);
    // Ring reduce-scatter+allgather needs at least one element per rank to
    // pay off; recursive doubling handles the rest.
    bool ring = bytes > ctx.model->allreduce_long_threshold;
    if (auto c = tuned_choice(comm, tuning::Op::Allreduce, bytes)) {
        ring = (c->algo == tuning::algo::kArRing);
    }
    if (ring && count >= static_cast<std::size_t>(comm.size())) {
        allreduce_ring(comm, sendbuf, recvbuf, count, dt, op);
    } else {
        allreduce_recursive_doubling(comm, sendbuf, recvbuf, count, dt, op);
    }
}

}  // namespace

}  // namespace detail

void reduce(const Comm& comm, const void* sendbuf, void* recvbuf,
            std::size_t count, Datatype dt, Op op, int root) {
    if (root < 0 || root >= comm.size()) {
        throw ArgumentError("reduce root out of range");
    }
    RankCtx& ctx = comm.ctx();
    if (!(ctx.model->smp_aware && detail::smp_hier_applicable(comm))) {
        detail::reduce_binomial(comm, sendbuf, recvbuf, count, dt, op, root);
        return;
    }
    // SMP-aware: reduce within each node to its leader (cheap shm links),
    // reduce across leaders to the root's node, hand off to the root.
    const detail::HierHandles& h = detail::hier(comm);
    const int root_node = h.node_index_of[static_cast<std::size_t>(root)];
    const int root_leader = h.node_leader[static_cast<std::size_t>(root_node)];
    const std::size_t bytes = count * datatype_size(dt);

    // Node-level partial: lands in a scratch at the leader (or directly in
    // recvbuf when the leader IS the root).
    detail::Scratch part_s(ctx, (h.is_leader && comm.rank() != root) ? bytes : 0);
    std::byte* partial = (comm.rank() == root)
                             ? static_cast<std::byte*>(recvbuf)
                             : part_s.data();
    const void* contrib = detail::resolve_in_place(sendbuf, recvbuf);
    // Within the node the leader is shm rank 0; root!=leader still reduces
    // through the leader (the extra hop below covers delivery).
    detail::reduce_binomial(h.shm, contrib, partial, count, dt, op, 0);

    if (h.is_leader) {
        if (comm.rank() == root_leader) {
            detail::reduce_binomial(h.bridge, kInPlace, partial, count, dt,
                                    op, root_node);
        } else {
            detail::reduce_binomial(h.bridge, partial, nullptr, count, dt, op,
                                    root_node);
        }
    }
    if (root != root_leader) {
        if (comm.rank() == root_leader) {
            detail::send_bytes(comm, partial, bytes, root, detail::kTagHier + 1,
                               true);
        } else if (comm.rank() == root) {
            detail::recv_bytes(comm, recvbuf, bytes, root_leader,
                               detail::kTagHier + 1, true);
        }
    }
}

void allreduce(const Comm& comm, const void* sendbuf, void* recvbuf,
               std::size_t count, Datatype dt, Op op) {
    RankCtx& ctx = comm.ctx();
    if (!(ctx.model->smp_aware && detail::smp_hier_applicable(comm))) {
        detail::allreduce_flat(comm, sendbuf, recvbuf, count, dt, op);
        return;
    }
    // SMP-aware: reduce to the node leader, allreduce across leaders,
    // broadcast the result within each node.
    const detail::HierHandles& h = detail::hier(comm);
    if (h.is_leader) {
        detail::reduce_binomial(h.shm, sendbuf, recvbuf, count, dt, op, 0);
        detail::allreduce_flat(h.bridge, kInPlace, recvbuf, count, dt, op);
    } else {
        detail::reduce_binomial(h.shm, sendbuf, recvbuf, count, dt, op, 0);
    }
    const std::size_t bytes = count * datatype_size(dt);
    detail::bcast_auto(h.shm, recvbuf, bytes, 0);
}

void alltoall(const Comm& comm, const void* sendbuf, std::size_t count,
              void* recvbuf, Datatype dt) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bb = count * datatype_size(dt);

    // Own block always moves locally.
    ctx.copy_bytes(detail::at(recvbuf, static_cast<std::size_t>(r) * bb),
                   detail::at(sendbuf, static_cast<std::size_t>(r) * bb), bb);
    if (p == 1) return;

    if (bb <= ctx.model->alltoall_small_threshold) {
        // Nonblocking flood: post all receives, then all sends.
        std::vector<Request> reqs;
        reqs.reserve(2 * (static_cast<std::size_t>(p) - 1));
        for (int i = 1; i < p; ++i) {
            const int src = (r - i + p) % p;
            reqs.push_back(detail::irecv_bytes(
                comm, detail::at(recvbuf, static_cast<std::size_t>(src) * bb),
                bb, src, detail::kTagAlltoall, true));
        }
        for (int i = 1; i < p; ++i) {
            const int dst = (r + i) % p;
            detail::send_bytes(
                comm, detail::at(sendbuf, static_cast<std::size_t>(dst) * bb),
                bb, dst, detail::kTagAlltoall, true);
        }
        wait_all(reqs);
    } else {
        // Pairwise exchange: p-1 rounds of sendrecv with distinct partners.
        const bool pow2 = (p & (p - 1)) == 0;
        for (int k = 1; k < p; ++k) {
            const int sendto = pow2 ? (r ^ k) : (r + k) % p;
            const int recvfrom = pow2 ? (r ^ k) : (r - k + p) % p;
            Request rr = detail::irecv_bytes(
                comm,
                detail::at(recvbuf, static_cast<std::size_t>(recvfrom) * bb),
                bb, recvfrom, detail::kTagAlltoall + k, true);
            detail::send_bytes(
                comm,
                detail::at(sendbuf, static_cast<std::size_t>(sendto) * bb), bb,
                sendto, detail::kTagAlltoall + k, true);
            rr.wait();
        }
    }
}

}  // namespace minimpi
