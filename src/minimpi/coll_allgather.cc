#include "minimpi/coll.h"
#include "minimpi/coll_internal.h"
#include "minimpi/error.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"

namespace minimpi {

namespace detail {

namespace {
bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }
}  // namespace

void allgather_recursive_doubling(const Comm& comm, const void* sendbuf,
                                  void* recvbuf, std::size_t bb) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    if (!is_pow2(p)) {
        throw ArgumentError("recursive doubling requires power-of-two ranks");
    }

    if (sendbuf != kInPlace) {
        ctx.copy_bytes(at(recvbuf, static_cast<std::size_t>(r) * bb), sendbuf,
                       bb);
    }
    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
        const int partner = r ^ mask;
        const int my_start = r & ~(mask - 1);
        const int partner_start = my_start ^ mask;
        Request rr = irecv_bytes(
            comm, at(recvbuf, static_cast<std::size_t>(partner_start) * bb),
            static_cast<std::size_t>(mask) * bb, partner,
            kTagAllgather + round, true);
        send_bytes(comm, at(recvbuf, static_cast<std::size_t>(my_start) * bb),
                   static_cast<std::size_t>(mask) * bb, partner,
                   kTagAllgather + round, true);
        rr.wait();
    }
}

void allgather_bruck(const Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t bb) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();

    // Working buffer holds blocks in "rotated" order: block (r+i) mod p at
    // position i. Start with our own block at position 0.
    Scratch tmp_s(ctx, static_cast<std::size_t>(p) * bb);
    std::byte* tmp = tmp_s.data();
    const void* own =
        resolve_in_place(sendbuf, at(recvbuf, static_cast<std::size_t>(r) * bb));
    ctx.copy_bytes(tmp, own, bb);

    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
        const int cnt = std::min(mask, p - mask);
        const int dst = (r - mask + p) % p;
        const int src = (r + mask) % p;
        Request rr = irecv_bytes(
            comm, at(tmp, static_cast<std::size_t>(mask) * bb),
            static_cast<std::size_t>(cnt) * bb, src, kTagAllgather + round,
            true);
        send_bytes(comm, tmp, static_cast<std::size_t>(cnt) * bb, dst,
                   kTagAllgather + round, true);
        rr.wait();
    }

    // Un-rotate into rank order: tmp[i] is block (r+i) mod p.
    const std::size_t head = static_cast<std::size_t>(p - r) * bb;
    ctx.copy_bytes(at(recvbuf, static_cast<std::size_t>(r) * bb), tmp, head);
    ctx.copy_bytes(recvbuf, at(tmp, head), static_cast<std::size_t>(r) * bb);
}

void allgather_ring(const Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bb) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();

    if (sendbuf != kInPlace) {
        ctx.copy_bytes(at(recvbuf, static_cast<std::size_t>(r) * bb), sendbuf,
                       bb);
    }
    const int left = (r - 1 + p) % p;
    const int right = (r + 1) % p;
    for (int k = 0; k < p - 1; ++k) {
        const int send_idx = (r - k + p) % p;
        const int recv_idx = (r - k - 1 + p) % p;
        Request rr = irecv_bytes(
            comm, at(recvbuf, static_cast<std::size_t>(recv_idx) * bb), bb,
            left, kTagAllgather, true);
        send_bytes(comm, at(recvbuf, static_cast<std::size_t>(send_idx) * bb),
                   bb, right, kTagAllgather, true);
        rr.wait();
    }
}

void allgatherv_ring(const Comm& comm, const void* sendbuf,
                     std::size_t send_bytes_n, void* recvbuf,
                     std::span<const std::size_t> counts_bytes,
                     std::span<const std::size_t> displs_bytes) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();

    if (send_bytes_n != counts_bytes[static_cast<std::size_t>(r)]) {
        throw ArgumentError("allgatherv send size disagrees with counts[rank]");
    }
    if (sendbuf != kInPlace) {
        ctx.copy_bytes(at(recvbuf, displs_bytes[static_cast<std::size_t>(r)]),
                       sendbuf, send_bytes_n);
    }
    const int left = (r - 1 + p) % p;
    const int right = (r + 1) % p;
    const LinkParams& l = ctx.link_to(comm.to_world(right));
    // Production MPI_Allgatherv implementations are consistently less tuned
    // than MPI_Allgather (Traeff '09; paper Sect. 5.1.1 observes the gap in
    // Fig. 8). Model that as extra per-round software overhead.
    const VTime vec_penalty =
        (ctx.model->vector_coll_alpha_factor - 1.0) * l.alpha_us;

    for (int k = 0; k < p - 1; ++k) {
        const int send_idx = (r - k + p) % p;
        const int recv_idx = (r - k - 1 + p) % p;
        ctx.vck().advance(vec_penalty);
        Request rr = irecv_bytes(
            comm, at(recvbuf, displs_bytes[static_cast<std::size_t>(recv_idx)]),
            counts_bytes[static_cast<std::size_t>(recv_idx)], left,
            kTagAllgatherv, true);
        send_bytes(comm,
                   at(recvbuf, displs_bytes[static_cast<std::size_t>(send_idx)]),
                   counts_bytes[static_cast<std::size_t>(send_idx)], right,
                   kTagAllgatherv, true);
        rr.wait();
    }
}

void allgatherv_bruck(const Comm& comm, const void* sendbuf,
                      std::size_t send_bytes_n, void* recvbuf,
                      std::span<const std::size_t> counts_bytes,
                      std::span<const std::size_t> displs_bytes) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();

    if (send_bytes_n != counts_bytes[static_cast<std::size_t>(r)]) {
        throw ArgumentError("allgatherv send size disagrees with counts[rank]");
    }

    // Rotated slot layout: slot i holds rank (r+i) mod p's block. All
    // counts are known at every rank (MPI requires it), so the slot
    // offsets are locally computable.
    std::vector<std::size_t> slot_off(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i) {
        slot_off[static_cast<std::size_t>(i) + 1] =
            slot_off[static_cast<std::size_t>(i)] +
            counts_bytes[static_cast<std::size_t>((r + i) % p)];
    }
    const std::size_t total = slot_off[static_cast<std::size_t>(p)];

    Scratch tmp_s(ctx, total);
    std::byte* tmp = tmp_s.data();
    const void* own = resolve_in_place(
        sendbuf, at(recvbuf, displs_bytes[static_cast<std::size_t>(r)]));
    ctx.copy_bytes(tmp, own, send_bytes_n);

    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
        const int cnt = std::min(mask, p - mask);
        const int dst = (r - mask + p) % p;
        const int src = (r + mask) % p;
        // The vector-collective tuning penalty, once per round.
        const VTime vec_penalty =
            (ctx.model->vector_coll_alpha_factor - 1.0) *
            ctx.link_to(comm.to_world(dst)).alpha_us;
        // I send my first `cnt` slots; the receiver appends them after its
        // first `mask` slots (its slot m+i is my slot i shifted by mask).
        const std::size_t send_len = slot_off[static_cast<std::size_t>(cnt)];
        const std::size_t recv_off = slot_off[static_cast<std::size_t>(mask)];
        const std::size_t recv_len =
            slot_off[static_cast<std::size_t>(std::min(mask + cnt, p))] -
            recv_off;
        ctx.vck().advance(vec_penalty);
        Request rr = irecv_bytes(comm, at(tmp, recv_off), recv_len, src,
                                 kTagAllgatherv + round, true);
        send_bytes(comm, tmp, send_len, dst, kTagAllgatherv + round, true);
        rr.wait();
    }

    // Un-rotate: slot i -> recvbuf + displs[(r+i) mod p].
    for (int i = 0; i < p; ++i) {
        const int owner = (r + i) % p;
        ctx.copy_bytes(
            at(recvbuf, displs_bytes[static_cast<std::size_t>(owner)]),
            at(tmp, slot_off[static_cast<std::size_t>(i)]),
            counts_bytes[static_cast<std::size_t>(owner)]);
    }
}

void allgatherv_auto(const Comm& comm, const void* sendbuf,
                     std::size_t send_bytes_n, void* recvbuf,
                     std::span<const std::size_t> counts_bytes,
                     std::span<const std::size_t> displs_bytes) {
    std::size_t total = 0;
    for (std::size_t c : counts_bytes) total += c;
    // Same selection path as allgather: the profile's decision table keyed
    // by total volume, falling back to the allgather threshold.
    bool ring = total > comm.ctx().model->allgather_long_threshold;
    if (auto c = tuned_choice(comm, tuning::Op::Allgatherv, total)) {
        ring = (c->algo == tuning::algo::kAgvRing);
    }
    TraceSpan span(comm.ctx(), hytrace::Phase::Coll, "allgatherv");
    span.set_coll("Allgatherv");
    span.set_algo(ring ? "ring" : "bruck");
    span.set_bytes(total);
    span.set_comm(comm.size(), comm.rank());
    if (ring) {
        allgatherv_ring(comm, sendbuf, send_bytes_n, recvbuf, counts_bytes,
                        displs_bytes);
    } else {
        allgatherv_bruck(comm, sendbuf, send_bytes_n, recvbuf, counts_bytes,
                         displs_bytes);
    }
}

namespace {

/// Flat allgather with the vendor profile's algorithm selection (decision
/// table, else the allgather_long_threshold).
void allgather_flat(const Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t bb) {
    const int p = comm.size();
    RankCtx& ctx = comm.ctx();
    const std::size_t total = static_cast<std::size_t>(p) * bb;
    TraceSpan span(ctx, hytrace::Phase::Coll, "allgather_flat");
    span.set_coll("Allgather");
    span.set_bytes(total);
    span.set_comm(comm.size(), comm.rank());
    if (auto c = tuned_choice(comm, tuning::Op::Allgather, total)) {
        switch (c->algo) {
            case tuning::algo::kAgRing:
                span.set_algo("ring");
                allgather_ring(comm, sendbuf, recvbuf, bb);
                return;
            case tuning::algo::kAgBruck:
                span.set_algo("bruck");
                allgather_bruck(comm, sendbuf, recvbuf, bb);
                return;
            case tuning::algo::kAgRecDoubling:
            default:
                // Tables are swept at power-of-two and non-power-of-two
                // sizes, but lookup clamps between grid points: guard the
                // pow2-only algorithm with its nearest equivalent.
                if (is_pow2(p)) {
                    span.set_algo("recursive_doubling");
                    allgather_recursive_doubling(comm, sendbuf, recvbuf, bb);
                } else {
                    span.set_algo("bruck");
                    allgather_bruck(comm, sendbuf, recvbuf, bb);
                }
                return;
        }
    }
    if (total <= ctx.model->allgather_long_threshold) {
        if (is_pow2(p)) {
            span.set_algo("recursive_doubling");
            allgather_recursive_doubling(comm, sendbuf, recvbuf, bb);
        } else {
            span.set_algo("bruck");
            allgather_bruck(comm, sendbuf, recvbuf, bb);
        }
    } else {
        span.set_algo("ring");
        allgather_ring(comm, sendbuf, recvbuf, bb);
    }
}

}  // namespace

}  // namespace detail

void allgather(const Comm& comm, const void* sendbuf, std::size_t count,
               void* recvbuf, Datatype dt) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bb = count * datatype_size(dt);

    if (p == 1) {
        if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, sendbuf, bb);
        return;
    }

    if (!(ctx.model->smp_aware && detail::smp_hier_applicable(comm))) {
        detail::allgather_flat(comm, sendbuf, recvbuf, bb);
        return;
    }

    // SMP-aware hierarchical allgather (paper Fig. 3a): aggregate each
    // node's blocks at its leader, exchange node blocks between leaders,
    // broadcast the full vector within each node. Node-major block order
    // equals comm-rank order only for "node-contiguous" communicators; the
    // general case ends with a local permutation pass (the datatype
    // pack/unpack cost of paper Sect. 6).
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "allgather");
    root_span.set_coll("Allgather");
    root_span.set_algo("smp_hierarchical");
    root_span.set_bytes(static_cast<std::uint64_t>(p) * bb);
    root_span.set_comm(p, r);
    const detail::HierHandles& h = detail::hier(comm);

    detail::Scratch full_s(
        ctx, h.identity_perm ? 0 : static_cast<std::size_t>(p) * bb);
    std::byte* full = h.identity_perm ? static_cast<std::byte*>(recvbuf)
                                      : full_s.data();

    const std::size_t node_off =
        static_cast<std::size_t>(
            h.node_offsets[static_cast<std::size_t>(h.my_node_index)]) *
        bb;

    // Phase 1: gather this node's blocks at the leader.
    const void* contrib = sendbuf;
    if (sendbuf == kInPlace) {
        contrib = detail::at(recvbuf, static_cast<std::size_t>(r) * bb);
    }
    {
        TraceSpan s(ctx, hytrace::Phase::Coll, "node_gather");
        // The gather lands node-local blocks at full + node_off (leader only).
        if (h.is_leader) {
            // In-place trick: our own block must end up at shm-rank offset
            // within the node block.
            detail::gather_binomial(h.shm, contrib, detail::at(full, node_off),
                                    bb, 0);
        } else {
            detail::gather_binomial(h.shm, contrib, nullptr, bb, 0);
        }
    }

    // Phase 2: leaders exchange node blocks (irregular: nodes may host
    // different member counts).
    if (h.is_leader) {
        TraceSpan s(ctx, hytrace::Phase::Bridge, "bridge_exchange");
        const int nnodes = static_cast<int>(h.node_sizes.size());
        std::vector<std::size_t> counts_b(static_cast<std::size_t>(nnodes));
        std::vector<std::size_t> displs_b(static_cast<std::size_t>(nnodes));
        for (int i = 0; i < nnodes; ++i) {
            counts_b[static_cast<std::size_t>(i)] =
                static_cast<std::size_t>(h.node_sizes[static_cast<std::size_t>(i)]) * bb;
            displs_b[static_cast<std::size_t>(i)] =
                static_cast<std::size_t>(h.node_offsets[static_cast<std::size_t>(i)]) * bb;
        }
        detail::allgatherv_auto(h.bridge, kInPlace,
                                counts_b[static_cast<std::size_t>(h.my_node_index)],
                                full, counts_b, displs_b);
    }

    // Phase 3: leader broadcasts the complete vector within the node.
    const std::size_t total = static_cast<std::size_t>(p) * bb;
    detail::bcast_auto(h.shm, full, total, 0);

    // Phase 4: permute node-major blocks into rank order if needed.
    if (!h.identity_perm) {
        TraceSpan s(ctx, hytrace::Phase::Copy, "repack_rank_order");
        s.set_bytes(static_cast<std::uint64_t>(p) * bb);
        for (int i = 0; i < p; ++i) {
            ctx.copy_bytes(
                detail::at(recvbuf,
                           static_cast<std::size_t>(h.perm[static_cast<std::size_t>(i)]) * bb),
                detail::at(full, static_cast<std::size_t>(i) * bb), bb);
        }
    }
}

void allgatherv(const Comm& comm, const void* sendbuf, std::size_t sendcount,
                void* recvbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, Datatype dt) {
    const int p = comm.size();
    if (counts.size() != static_cast<std::size_t>(p) ||
        displs.size() != static_cast<std::size_t>(p)) {
        throw ArgumentError(
            "allgatherv counts/displs must have comm-size entries");
    }
    RankCtx& ctx = comm.ctx();
    const std::size_t ds = datatype_size(dt);
    if (p == 1) {
        if (sendbuf != kInPlace) {
            ctx.copy_bytes(detail::at(recvbuf, displs[0] * ds), sendbuf,
                           sendcount * ds);
        }
        return;
    }
    std::vector<std::size_t> counts_b(counts.size());
    std::vector<std::size_t> displs_b(displs.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        counts_b[i] = counts[i] * ds;
        displs_b[i] = displs[i] * ds;
    }

    if (!(ctx.model->smp_aware && detail::smp_hier_applicable(comm))) {
        // Flat allgatherv (Bruck for small totals, ring for large), less
        // tuned than allgather (vector penalty) — the weakness the paper's
        // hybrid approach sidesteps by only running it over the (small)
        // bridge communicator.
        detail::allgatherv_auto(comm, sendbuf, sendcount * ds, recvbuf,
                                counts_b, displs_b);
        return;
    }

    // SMP-aware hierarchical allgatherv (gatherv at the node leader, bridge
    // allgatherv of node blocks, on-node broadcast), still paying the
    // vector penalty on the bridge exchange.
    TraceSpan root_span(ctx, hytrace::Phase::Coll, "allgatherv");
    root_span.set_coll("Allgatherv");
    root_span.set_algo("smp_hierarchical");
    root_span.set_comm(p, comm.rank());
    const detail::HierHandles& h = detail::hier(comm);
    const int nnodes = static_cast<int>(h.node_sizes.size());

    // Node-major slot layout.
    std::vector<std::size_t> slot_off(static_cast<std::size_t>(p) + 1, 0);
    for (int s = 0; s < p; ++s) {
        slot_off[static_cast<std::size_t>(s) + 1] =
            slot_off[static_cast<std::size_t>(s)] +
            counts_b[static_cast<std::size_t>(h.perm[static_cast<std::size_t>(s)])];
    }
    const std::size_t total = slot_off[static_cast<std::size_t>(p)];
    root_span.set_bytes(total);

    // Fast path: the user's displacements already equal the node-major
    // layout (the common prefix-sum displs under SMP placement).
    bool direct = h.identity_perm;
    if (direct) {
        for (int i = 0; i < p; ++i) {
            if (displs_b[static_cast<std::size_t>(i)] !=
                slot_off[static_cast<std::size_t>(i)]) {
                direct = false;
                break;
            }
        }
    }
    detail::Scratch full_s(ctx, direct ? 0 : total);
    std::byte* full =
        direct ? static_cast<std::byte*>(recvbuf) : full_s.data();

    const int r = comm.rank();
    const void* contrib = sendbuf;
    if (sendbuf == kInPlace) {
        contrib =
            detail::at(recvbuf, displs_b[static_cast<std::size_t>(r)]);
    }

    // Phase 1: gatherv this node's blocks at its leader.
    {
        const int shm_p = h.shm.size();
        const std::size_t node_base = slot_off[static_cast<std::size_t>(
            h.node_offsets[static_cast<std::size_t>(h.my_node_index)])];
        std::vector<std::size_t> c_shm(static_cast<std::size_t>(shm_p));
        std::vector<std::size_t> d_shm(static_cast<std::size_t>(shm_p));
        for (int i = 0; i < shm_p; ++i) {
            const int slot =
                h.node_offsets[static_cast<std::size_t>(h.my_node_index)] + i;
            c_shm[static_cast<std::size_t>(i)] =
                counts_b[static_cast<std::size_t>(
                    h.perm[static_cast<std::size_t>(slot)])];
            d_shm[static_cast<std::size_t>(i)] =
                slot_off[static_cast<std::size_t>(slot)] - node_base;
        }
        gatherv(h.shm, contrib, counts_b[static_cast<std::size_t>(r)],
                h.is_leader ? detail::at(full, node_base) : nullptr, c_shm,
                d_shm, Datatype::Byte, 0);
    }

    // Phase 2: leaders exchange node blocks (with the vector penalty).
    if (h.is_leader) {
        std::vector<std::size_t> c_node(static_cast<std::size_t>(nnodes));
        std::vector<std::size_t> d_node(static_cast<std::size_t>(nnodes));
        for (int n = 0; n < nnodes; ++n) {
            const std::size_t b0 = slot_off[static_cast<std::size_t>(
                h.node_offsets[static_cast<std::size_t>(n)])];
            const std::size_t b1 = slot_off[static_cast<std::size_t>(
                h.node_offsets[static_cast<std::size_t>(n)] +
                h.node_sizes[static_cast<std::size_t>(n)])];
            c_node[static_cast<std::size_t>(n)] = b1 - b0;
            d_node[static_cast<std::size_t>(n)] = b0;
        }
        detail::allgatherv_auto(
            h.bridge, kInPlace,
            c_node[static_cast<std::size_t>(h.my_node_index)], full, c_node,
            d_node);
    }

    // Phase 3: leader broadcasts the complete vector within the node.
    detail::bcast_auto(h.shm, full, total, 0);

    // Phase 4: place blocks at the user's displacements if they differ.
    if (!direct) {
        for (int s = 0; s < p; ++s) {
            const int owner = h.perm[static_cast<std::size_t>(s)];
            ctx.copy_bytes(
                detail::at(recvbuf, displs_b[static_cast<std::size_t>(owner)]),
                detail::at(full, slot_off[static_cast<std::size_t>(s)]),
                counts_b[static_cast<std::size_t>(owner)]);
        }
    }
}

}  // namespace minimpi
