#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "minimpi/clock.h"
#include "minimpi/cluster.h"
#include "minimpi/netmodel.h"
#include "minimpi/trace.h"
#include "minimpi/types.h"
#include "robust/config.h"
#include "robust/stats.h"

namespace tuning {
class DecisionTable;
}

namespace hytrace {
class Recorder;
}

namespace minimpi {

class Runtime;
class Transport;

namespace detail {
struct IcollGate;
struct IcollState;
}  // namespace detail

/// Per-rank communication counters, maintained by the transport and cost
/// layers. The paper's central argument is about message/copy COUNTS
/// (one shared copy per node instead of per process); these counters let
/// tests and benches check that mechanism directly rather than only its
/// modelled time.
struct CommStats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t intra_node_msgs = 0;  ///< sends whose peer shares the node
    std::uint64_t inter_node_msgs = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t memcpy_bytes = 0;  ///< local copies charged to the clock
    /// Bytes moved across a NUMA socket boundary (messages whose endpoints
    /// share a node but not a socket, plus copies charged with the
    /// cross-socket premium). Always 0 on 1-socket clusters.
    std::uint64_t xsocket_bytes = 0;
    double flops = 0.0;

    CommStats& operator+=(const CommStats& o) {
        msgs_sent += o.msgs_sent;
        bytes_sent += o.bytes_sent;
        intra_node_msgs += o.intra_node_msgs;
        inter_node_msgs += o.inter_node_msgs;
        msgs_received += o.msgs_received;
        bytes_received += o.bytes_received;
        memcpy_bytes += o.memcpy_bytes;
        xsocket_bytes += o.xsocket_bytes;
        flops += o.flops;
        return *this;
    }
};

/// Bridge-link arbitration policy for multi-tenant runs (see TenantState).
enum class QosPolicy : std::uint8_t {
    /// Strict arrival order on each outgoing link — the single-tenant
    /// behaviour, byte-identical to runs with no tenant state installed.
    Fifo,
    /// Weighted fair shares: a send that finds the link backlogged by a
    /// DIFFERENT tenant only waits for the fraction of the backlog that the
    /// owner retains once this tenant's weighted share of the link is
    /// granted (wait * (1 - weight/total_weight)). Backlog owned by the
    /// sending tenant itself is never discounted — a tenant cannot preempt
    /// its own queue. Monotone: a larger weight never increases the wait.
    WeightedShares,
};

/// Multi-tenant arbitration + attribution state, installed on a rank by the
/// collective-service driver (src/service) and null everywhere else — the
/// default keeps every single-tenant code path and baseline byte-identical.
/// Owned and written only by the rank's own thread.
struct TenantState {
    QosPolicy policy = QosPolicy::Fifo;
    int tenant = -1;       ///< tenant whose job this rank is currently running
    double weight = 1.0;   ///< arbitration weight of the active tenant
    double total_weight = 1.0;  ///< sum of every tenant's weight
    /// Occupancy of this rank's single NIC injection port: under a tenant
    /// run, inter-node sends serialize through the port as a whole rather
    /// than per destination. The coarser granularity is what makes tenants
    /// contend — backlog left by one tenant's burst is still draining when
    /// the rank picks up the next tenant's job, so the arbiter has a real
    /// queue to arbitrate. (Per-destination maps drain between jobs because
    /// successive jobs rarely reuse a (sender, dst) pair quickly enough.)
    VTime nic_busy = 0.0;
    /// Tenant that owns the most recent backlog on the injection port
    /// (-2: nobody yet).
    int nic_owner = -2;
    /// Per-tenant attribution of this rank's inter-node (bridge) traffic,
    /// indexed by tenant id.
    std::vector<std::uint64_t> bridge_bytes;
    std::vector<std::uint64_t> bridge_msgs;
};

/// Per-rank execution context: identity plus the rank's virtual clock.
/// Exactly one thread (the rank's own) touches the clock; the struct is
/// created by Runtime::run and outlives the rank main.
struct RankCtx {
    int world_rank = -1;
    Runtime* runtime = nullptr;

    VClock clock;

    const ClusterSpec* cluster = nullptr;
    const ModelParams* model = nullptr;
    PayloadMode payload_mode = PayloadMode::Real;

    /// Tuned collective-selection table for the vendor profile, resolved
    /// once per Runtime::run from ModelParams::name (null when the profile
    /// has none — e.g. "test" — which keeps the legacy threshold
    /// selection). Collectives consult it through detail::tuned_choice.
    const tuning::DecisionTable* tuned = nullptr;

    int node() const { return cluster->node_of(world_rank); }

    /// Link parameters for traffic between this rank and global rank @p peer.
    /// Three-way: same socket → shm, same node but different socket → the
    /// cross-socket (QPI/UPI) link, different node → net. On 1-socket
    /// clusters every on-node pair shares socket 0, so shm is always chosen
    /// and the pre-socket cost model is reproduced exactly.
    const LinkParams& link_to(int peer_global) const {
        if (!cluster->same_node(world_rank, peer_global)) return model->net;
        return cluster->same_socket(world_rank, peer_global)
                   ? model->shm
                   : model->shm_xsocket;
    }

    /// Charge a local copy of @p bytes to this rank's clock and, when
    /// payloads are real and both pointers non-null, actually perform it.
    void copy_bytes(void* dst, const void* src, std::size_t bytes);

    /// Like copy_bytes, but one side of the copy lives on a remote NUMA
    /// domain: charges the cross-socket per-byte premium on top of the
    /// normal memcpy cost and attributes the bytes to xsocket counters.
    void copy_bytes_xsocket(void* dst, const void* src, std::size_t bytes);

    /// Charge only the cross-socket premium for @p bytes read through the
    /// QPI/UPI hop (used when a rank on a remote socket consumes data homed
    /// on the leader's socket in place, without a modelled local copy).
    /// @p concurrency scales the per-byte cost: simultaneous readers on one
    /// socket share the inter-socket link, so each is slowed by the others.
    void charge_xsocket_read(std::size_t bytes, int concurrency = 1);

    /// Charge application compute (used by reductions and the apps layer).
    void charge_flops(double flops) {
        const VTime t0 = vck().now();
        vck().charge_flops(*model, flops);
        stats.flops += flops;
        if (tracer && flops > 0.0) {
            tracer->record(TraceEvent::Kind::Compute, t0, vck().now());
        }
    }
    void charge_memcpy(std::size_t bytes) {
        const VTime t0 = vck().now();
        vck().charge_memcpy(*model, bytes);
        stats.memcpy_bytes += bytes;
        if (tracer && bytes > 0) {
            tracer->record(TraceEvent::Kind::Copy, t0, vck().now(), -1, bytes);
        }
    }

    CommStats stats;

    /// Event recorder; null unless RunOptions::trace was set.
    Tracer* tracer = nullptr;

    /// Virtual-time span/counter recorder (src/trace); null unless span
    /// tracing is on for this run (HYMPI_TRACE or RunOptions::spans).
    /// Recording sites go through minimpi/trace_span.h, never directly.
    hytrace::Recorder* spans = nullptr;

    /// Rank-private caches keyed by communicator state (hierarchy handles,
    /// hybrid channels). Only the owning rank thread touches this map.
    std::unordered_map<const void*, std::shared_ptr<void>> comm_caches;

    /// Monotone sequence for synchronous-send acknowledgement tags.
    std::uint64_t ssend_seq = 0;

    /// Per-destination link occupancy (store-and-forward bandwidth
    /// serialization): the time until which the outgoing link to each world
    /// rank is busy. Written only by this rank's thread — back-to-back
    /// sends to the same destination queue behind each other's wire time
    /// instead of overlapping for free.
    std::unordered_map<int, VTime> link_busy_until;

    /// Multi-tenant arbitration/attribution hook consulted by inter-node
    /// sends; null (the default) outside the collective-service driver.
    TenantState* tenant = nullptr;

    /// Per-destination message indices stamped onto outgoing messages
    /// (InMsg::fault_seq). Program order on the owning thread, so the
    /// FaultPlan's perturbations replay deterministically.
    std::unordered_map<int, std::uint64_t> fault_seq;

    /// Resilience configuration resolved once per Runtime::run (never null
    /// while a rank main executes). Checked only on recovery paths — when
    /// !robust_cfg->enabled the fault-free fast path is byte-identical to
    /// the legacy behaviour.
    const hympi::RobustConfig* robust_cfg = nullptr;

    /// Rank-wide aggregate of every robust channel's recovery counters,
    /// collected by Runtime::run into last_robust_stats().
    hympi::RobustStats robust_stats;

    /// Program-order uid source for robust channels (hympi collectives).
    /// Collective channel construction assigns matching uids on every
    /// member rank, making generation stamps run-to-run deterministic.
    std::uint64_t robust_chan_seq = 0;

    // ---- nonblocking-collective progress engine (icoll.h) --------------

    /// The clock cost-model code charges against. Normally the rank's own
    /// clock; while the progress engine advances an outstanding collective,
    /// it points at that request's sub-clock so comm time accrues there and
    /// is merged back with max() at completion (the ARQ sub-clock
    /// discipline). All modelling code must charge through vck(), never
    /// `clock` directly.
    VClock* cur_clock = &clock;
    VClock& vck() { return *cur_clock; }
    const VClock& vck() const { return *cur_clock; }

    /// Link-occupancy map sends consult. Points at link_busy_until except
    /// while an engine task runs, when it points at the request's private
    /// snapshot (merged back per destination with max() at completion) so
    /// the wall-clock order in which outstanding collectives are driven
    /// cannot leak into virtual time.
    std::unordered_map<int, VTime>* cur_busy = &link_busy_until;

    /// When non-zero, collective-context traffic (send/recv with
    /// coll_ctx == true) is stamped with this matching context instead of
    /// the communicator's ctx_coll. Each outstanding nonblocking collective
    /// owns a private context derived from its posting order, so its
    /// in-flight messages can never FIFO-cross-match a later (blocking or
    /// nonblocking) collective on the same communicator.
    std::uint64_t coll_ctx_override = 0;

    /// Cooperative-scheduling gate of the engine task currently holding
    /// this rank's turn; null while the rank's own program runs. Blocking
    /// points (transport waits, collective rendezvous) yield through it
    /// instead of blocking the OS thread.
    detail::IcollGate* gate = nullptr;

    /// Outstanding engine-backed requests of this rank, in posting order.
    /// wait() drives all of them (the MPI progress rule: a blocked wait
    /// must still progress every other pending operation).
    std::vector<detail::IcollState*> active_icolls;

    /// Per-communicator posting counters for nonblocking collectives,
    /// keyed by CommState address. MPI requires every member to post the
    /// same collectives in the same order, so the counter agrees across
    /// ranks and seeds the request's private matching context.
    std::unordered_map<const void*, std::uint64_t> icoll_seq;

    /// Scheduled process-failure time (FaultPlan::Kill), resolved once per
    /// Runtime::run; negative = immortal (the fault-free default). The rank
    /// dies at the first communication checkpoint at or after this virtual
    /// time — see detail::check_alive.
    VTime kill_at = -1.0;
};

namespace detail {

/// Thrown (by value) when a rank crosses its scheduled kill time. NOT an
/// MpiError — deliberately outside the std::exception hierarchy so no user
/// or library catch block between the checkpoint and rank_thread_entry can
/// swallow a death. Runtime::rank_thread_entry catches it, records the
/// death in the transport, and lets the thread exit silently: a dead rank
/// is not an error, survivors observe it as ProcessFailedError.
struct RankKilled {
    int world_rank = -1;
    VTime at = 0.0;
};

/// Process-failure checkpoint: placed at the entry of every communication
/// primitive (send, recv post, collective rendezvous, flag signal/wait).
/// One double compare on fault-free runs; never touches virtual time.
inline void check_alive(RankCtx& ctx) {
    if (ctx.kill_at >= 0.0 && ctx.clock.now() >= ctx.kill_at) {
        // The rank's own (real) clock decides, not an engine sub-clock:
        // death is a property of the rank's program position.
        throw RankKilled{ctx.world_rank, ctx.clock.now()};
    }
}

/// QoS arbiter for one inter-node send (defined in p2p.cc): returns the
/// injection start time, updates the link-owner bookkeeping and attributes
/// the bytes to the active tenant. Pure in (ts, now, busy, bytes) — exposed
/// so the service tests can pin the weight-monotonicity property directly.
/// Under QosPolicy::Fifo the result is exactly max(now, busy).
VTime tenant_bridge_start(TenantState& ts, VTime now, std::size_t bytes);

/// Drive every outstanding nonblocking collective of @p ctx once, without
/// blocking (defined in icoll.cc). Blocking waits in owner context call
/// this in their poll loop — the MPI progress rule: a rank blocked in any
/// MPI call must keep its outstanding nonblocking operations advancing, or
/// two ranks blocking on operations the other's engine still has in flight
/// would deadlock. No-op when nothing is outstanding or inside the engine.
void icoll_progress(RankCtx& ctx);

/// Real-time backoff between progress sweeps: cheap CPU yields first, then
/// short sleeps, so a genuinely stalled peer does not burn a core. Never
/// touches virtual time.
void icoll_backoff(int spins);

}  // namespace detail

}  // namespace minimpi
