#pragma once

#include <memory>
#include <unordered_map>

#include "minimpi/clock.h"
#include "minimpi/cluster.h"
#include "minimpi/netmodel.h"
#include "minimpi/trace.h"
#include "minimpi/types.h"
#include "robust/config.h"
#include "robust/stats.h"

namespace tuning {
class DecisionTable;
}

namespace hytrace {
class Recorder;
}

namespace minimpi {

class Runtime;
class Transport;

/// Per-rank communication counters, maintained by the transport and cost
/// layers. The paper's central argument is about message/copy COUNTS
/// (one shared copy per node instead of per process); these counters let
/// tests and benches check that mechanism directly rather than only its
/// modelled time.
struct CommStats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t intra_node_msgs = 0;  ///< sends whose peer shares the node
    std::uint64_t inter_node_msgs = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t memcpy_bytes = 0;  ///< local copies charged to the clock
    /// Bytes moved across a NUMA socket boundary (messages whose endpoints
    /// share a node but not a socket, plus copies charged with the
    /// cross-socket premium). Always 0 on 1-socket clusters.
    std::uint64_t xsocket_bytes = 0;
    double flops = 0.0;

    CommStats& operator+=(const CommStats& o) {
        msgs_sent += o.msgs_sent;
        bytes_sent += o.bytes_sent;
        intra_node_msgs += o.intra_node_msgs;
        inter_node_msgs += o.inter_node_msgs;
        msgs_received += o.msgs_received;
        bytes_received += o.bytes_received;
        memcpy_bytes += o.memcpy_bytes;
        xsocket_bytes += o.xsocket_bytes;
        flops += o.flops;
        return *this;
    }
};

/// Per-rank execution context: identity plus the rank's virtual clock.
/// Exactly one thread (the rank's own) touches the clock; the struct is
/// created by Runtime::run and outlives the rank main.
struct RankCtx {
    int world_rank = -1;
    Runtime* runtime = nullptr;

    VClock clock;

    const ClusterSpec* cluster = nullptr;
    const ModelParams* model = nullptr;
    PayloadMode payload_mode = PayloadMode::Real;

    /// Tuned collective-selection table for the vendor profile, resolved
    /// once per Runtime::run from ModelParams::name (null when the profile
    /// has none — e.g. "test" — which keeps the legacy threshold
    /// selection). Collectives consult it through detail::tuned_choice.
    const tuning::DecisionTable* tuned = nullptr;

    int node() const { return cluster->node_of(world_rank); }

    /// Link parameters for traffic between this rank and global rank @p peer.
    /// Three-way: same socket → shm, same node but different socket → the
    /// cross-socket (QPI/UPI) link, different node → net. On 1-socket
    /// clusters every on-node pair shares socket 0, so shm is always chosen
    /// and the pre-socket cost model is reproduced exactly.
    const LinkParams& link_to(int peer_global) const {
        if (!cluster->same_node(world_rank, peer_global)) return model->net;
        return cluster->same_socket(world_rank, peer_global)
                   ? model->shm
                   : model->shm_xsocket;
    }

    /// Charge a local copy of @p bytes to this rank's clock and, when
    /// payloads are real and both pointers non-null, actually perform it.
    void copy_bytes(void* dst, const void* src, std::size_t bytes);

    /// Like copy_bytes, but one side of the copy lives on a remote NUMA
    /// domain: charges the cross-socket per-byte premium on top of the
    /// normal memcpy cost and attributes the bytes to xsocket counters.
    void copy_bytes_xsocket(void* dst, const void* src, std::size_t bytes);

    /// Charge only the cross-socket premium for @p bytes read through the
    /// QPI/UPI hop (used when a rank on a remote socket consumes data homed
    /// on the leader's socket in place, without a modelled local copy).
    /// @p concurrency scales the per-byte cost: simultaneous readers on one
    /// socket share the inter-socket link, so each is slowed by the others.
    void charge_xsocket_read(std::size_t bytes, int concurrency = 1);

    /// Charge application compute (used by reductions and the apps layer).
    void charge_flops(double flops) {
        const VTime t0 = clock.now();
        clock.charge_flops(*model, flops);
        stats.flops += flops;
        if (tracer && flops > 0.0) {
            tracer->record(TraceEvent::Kind::Compute, t0, clock.now());
        }
    }
    void charge_memcpy(std::size_t bytes) {
        const VTime t0 = clock.now();
        clock.charge_memcpy(*model, bytes);
        stats.memcpy_bytes += bytes;
        if (tracer && bytes > 0) {
            tracer->record(TraceEvent::Kind::Copy, t0, clock.now(), -1, bytes);
        }
    }

    CommStats stats;

    /// Event recorder; null unless RunOptions::trace was set.
    Tracer* tracer = nullptr;

    /// Virtual-time span/counter recorder (src/trace); null unless span
    /// tracing is on for this run (HYMPI_TRACE or RunOptions::spans).
    /// Recording sites go through minimpi/trace_span.h, never directly.
    hytrace::Recorder* spans = nullptr;

    /// Rank-private caches keyed by communicator state (hierarchy handles,
    /// hybrid channels). Only the owning rank thread touches this map.
    std::unordered_map<const void*, std::shared_ptr<void>> comm_caches;

    /// Monotone sequence for synchronous-send acknowledgement tags.
    std::uint64_t ssend_seq = 0;

    /// Per-destination link occupancy (store-and-forward bandwidth
    /// serialization): the time until which the outgoing link to each world
    /// rank is busy. Written only by this rank's thread — back-to-back
    /// sends to the same destination queue behind each other's wire time
    /// instead of overlapping for free.
    std::unordered_map<int, VTime> link_busy_until;

    /// Per-destination message indices stamped onto outgoing messages
    /// (InMsg::fault_seq). Program order on the owning thread, so the
    /// FaultPlan's perturbations replay deterministically.
    std::unordered_map<int, std::uint64_t> fault_seq;

    /// Resilience configuration resolved once per Runtime::run (never null
    /// while a rank main executes). Checked only on recovery paths — when
    /// !robust_cfg->enabled the fault-free fast path is byte-identical to
    /// the legacy behaviour.
    const hympi::RobustConfig* robust_cfg = nullptr;

    /// Rank-wide aggregate of every robust channel's recovery counters,
    /// collected by Runtime::run into last_robust_stats().
    hympi::RobustStats robust_stats;

    /// Program-order uid source for robust channels (hympi collectives).
    /// Collective channel construction assigns matching uids on every
    /// member rank, making generation stamps run-to-run deterministic.
    std::uint64_t robust_chan_seq = 0;
};

}  // namespace minimpi
