#include "minimpi/coll.h"
#include "minimpi/coll_internal.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"

/// Profile-driven algorithm selection: the bridge between the collectives
/// and the tuned decision tables (src/tuning). Every selection helper
/// falls back to the legacy hardcoded thresholds when the profile has no
/// table, so profiles like "test" behave exactly as before tuning.
namespace minimpi::detail {

tuning::Shape comm_shape(const Comm& comm) {
    const int node0 = comm.node_of(0);
    for (int r = 1; r < comm.size(); ++r) {
        if (comm.node_of(r) != node0) return tuning::Shape::Net;
    }
    return tuning::Shape::Shm;
}

std::optional<tuning::Choice> tuned_choice(const Comm& comm, tuning::Op op,
                                           std::uint64_t bytes) {
    const tuning::DecisionTable* table = comm.ctx().tuned;
    if (table == nullptr) return std::nullopt;
    return table->lookup(op, comm_shape(comm), comm.size(), bytes);
}

void bcast_auto(const Comm& comm, void* buf, std::size_t bytes, int root) {
    if (comm.size() == 1) return;
    TraceSpan span(comm.ctx(), hytrace::Phase::Coll, "bcast");
    span.set_coll("Bcast");
    span.set_bytes(bytes);
    span.set_comm(comm.size(), comm.rank());
    if (auto c = tuned_choice(comm, tuning::Op::Bcast, bytes)) {
        if (c->algo == tuning::algo::kBcPipelined) {
            span.set_algo("pipelined_chain");
            bcast_pipelined_chain(comm, buf, bytes, root, c->segment_bytes);
        } else {
            span.set_algo("binomial");
            bcast_binomial(comm, buf, bytes, root);
        }
        return;
    }
    if (bytes <= comm.ctx().model->bcast_long_threshold) {
        span.set_algo("binomial");
        bcast_binomial(comm, buf, bytes, root);
    } else {
        span.set_algo("pipelined_chain");
        bcast_pipelined_chain(comm, buf, bytes, root);
    }
}

void barrier_tree(const Comm& comm) {
    const int p = comm.size();
    const int r = comm.rank();
    // Check-in: binomial gather of zero-byte tokens towards rank 0.
    int mask = 1;
    while (mask < p) {
        if (r & mask) {
            send_bytes(comm, nullptr, 0, r - mask, kTagBarrier + 0x100, true);
            break;
        }
        if (r + mask < p) {
            recv_bytes(comm, nullptr, 0, r + mask, kTagBarrier + 0x100, true);
        }
        mask <<= 1;
    }
    // Release: binomial broadcast of zero-byte tokens from rank 0.
    if (r != 0) {
        while (!(r & mask)) mask <<= 1;  // resume at the parent link
        recv_bytes(comm, nullptr, 0, r - mask, kTagBarrier + 0x101, true);
    }
    mask >>= 1;
    while (mask > 0) {
        if (r + mask < p && !(r & mask)) {
            send_bytes(comm, nullptr, 0, r + mask, kTagBarrier + 0x101, true);
        }
        mask >>= 1;
    }
}

void barrier_auto(const Comm& comm) {
    TraceSpan span(comm.ctx(), hytrace::Phase::Sync, "barrier");
    span.set_coll("Barrier");
    span.set_comm(comm.size(), comm.rank());
    if (auto c = tuned_choice(comm, tuning::Op::Barrier, 0)) {
        if (c->algo == tuning::algo::kBarTree) {
            span.set_algo("tree");
            barrier_tree(comm);
            return;
        }
    }
    span.set_algo("dissemination");
    barrier_dissemination(comm);
}

}  // namespace minimpi::detail
