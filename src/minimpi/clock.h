#pragma once

#include "minimpi/netmodel.h"
#include "minimpi/types.h"

namespace minimpi {

/// Per-rank virtual clock. Only the owning rank thread advances its own
/// clock; other ranks influence it exclusively through message timestamps
/// (receive completion takes the max of the local clock and the message's
/// modelled arrival time), which keeps the simulation deterministic
/// regardless of host scheduling.
class VClock {
public:
    VTime now() const { return now_us_; }

    /// Unconditionally advance by @p dt (dt >= 0).
    void advance(VTime dt) { now_us_ += dt; }

    /// Jump forward to @p t if it is in the future (message arrival, flag
    /// signal propagation); never moves backwards.
    void sync_to(VTime t) {
        if (t > now_us_) now_us_ = t;
    }

    /// Charge a local memory copy of @p bytes against this rank.
    void charge_memcpy(const ModelParams& m, std::size_t bytes) {
        if (bytes == 0) return;
        now_us_ += m.memcpy_alpha_us +
                   static_cast<VTime>(bytes) * m.memcpy_beta_us_per_byte;
    }

    /// Charge @p flops floating-point operations of application compute.
    void charge_flops(const ModelParams& m, double flops) {
        if (flops <= 0.0) return;
        now_us_ += flops / m.flops_per_us;
    }

    /// Simulation-internal: overwrite the clock, possibly moving it
    /// BACKWARDS. Used by the robust full-duplex loop to track its two
    /// transfer directions on independent sub-clocks (merged with max() at
    /// the end) so the physical service order cannot leak into virtual
    /// time. Not for modelling code — use advance()/sync_to() there.
    void set(VTime t) { now_us_ = t; }

    void reset() { now_us_ = 0.0; }

private:
    VTime now_us_ = 0.0;
};

}  // namespace minimpi
