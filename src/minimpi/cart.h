#pragma once

#include <vector>

#include "minimpi/comm.h"

namespace minimpi {

/// Balanced factorization of @p nranks into @p ndims dimensions
/// (MPI_Dims_create): dims are as close to each other as possible, in
/// non-increasing order.
std::vector<int> dims_create(int nranks, int ndims);

/// N-dimensional Cartesian process topology (MPI_Cart_create and friends)
/// in row-major coordinate order, with optional per-dimension periodicity.
/// Construction is collective over @p comm when sub-communicators are
/// requested lazily (cart_sub / axis_comm call split collectively).
class CartComm {
public:
    /// @p dims must multiply to comm.size() exactly (no reordering).
    CartComm(const Comm& comm, std::vector<int> dims,
             std::vector<bool> periodic = {});

    const Comm& comm() const { return comm_; }
    int ndims() const { return static_cast<int>(dims_.size()); }
    const std::vector<int>& dims() const { return dims_; }

    /// My coordinates.
    const std::vector<int>& coords() const { return my_coords_; }
    int coord(int dim) const { return my_coords_.at(static_cast<std::size_t>(dim)); }

    /// MPI_Cart_coords / MPI_Cart_rank.
    std::vector<int> coords_of(int rank) const;
    int rank_of(const std::vector<int>& coords) const;

    /// MPI_Cart_shift: the comm ranks at displacement -disp and +disp along
    /// @p dim from me; kProcNull past a non-periodic boundary.
    std::pair<int, int> shift(int dim, int disp = 1) const;

    /// MPI_Cart_sub keeping only @p dim varying: the communicator of all
    /// ranks sharing my other coordinates (e.g. my row / my column).
    /// Collective over comm(); results are cached per dimension.
    const Comm& axis_comm(int dim);

private:
    Comm comm_;
    std::vector<int> dims_;
    std::vector<bool> periodic_;
    std::vector<int> strides_;
    std::vector<int> my_coords_;
    std::vector<Comm> axis_comms_;
    std::vector<bool> axis_built_;
};

}  // namespace minimpi
