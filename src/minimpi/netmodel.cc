#include "minimpi/netmodel.h"

namespace minimpi {

// Constants are order-of-magnitude realistic for the two 2015-era systems
// the paper used (24-core Haswell nodes; Cray Aries dragonfly vs. FDR
// InfiniBand). They are deliberately NOT fitted to the paper's absolute
// numbers — DESIGN.md section 5 explains why shapes, crossovers and ratios
// are the reproduction target.

ModelParams ModelParams::cray() {
    ModelParams p;
    p.name = "cray";
    // Aries: low injection latency, high bandwidth, well-tuned collectives.
    // The shm per-message cost reflects a real two-copy CMA/shm-queue
    // transfer (~1.0us/hop) — several times the cost of one tuned-barrier
    // flag round, which is the asymmetry the hybrid collectives exploit.
    p.shm = LinkParams{0.90, 1.0 / 6000.0, 0.55};
    p.net = LinkParams{1.40, 1.0 / 9000.0, 0.50};
    p.allgather_long_threshold = 80 * 1024;
    p.bcast_long_threshold = 12 * 1024;
    p.vector_coll_alpha_factor = 1.30;
    return p;
}

ModelParams ModelParams::openmpi() {
    ModelParams p;
    p.name = "openmpi";
    // FDR InfiniBand through the Open MPI ob1/openib stack: higher start-up
    // cost, somewhat lower bandwidth, and a larger allgatherv penalty.
    p.shm = LinkParams{1.10, 1.0 / 5000.0, 0.65};
    p.net = LinkParams{1.90, 1.0 / 5500.0, 0.65};
    p.allgather_long_threshold = 64 * 1024;
    p.bcast_long_threshold = 8 * 1024;
    p.vector_coll_alpha_factor = 1.45;
    return p;
}

ModelParams ModelParams::test() {
    ModelParams p;
    p.name = "test";
    p.shm = LinkParams{0.10, 1.0 / 10000.0, 0.05};
    p.net = LinkParams{0.50, 1.0 / 10000.0, 0.10};
    return p;
}

}  // namespace minimpi
