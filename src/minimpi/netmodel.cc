#include "minimpi/netmodel.h"

namespace minimpi {

// Constants are order-of-magnitude realistic for the two 2015-era systems
// the paper used (24-core Haswell nodes; Cray Aries dragonfly vs. FDR
// InfiniBand). They are deliberately NOT fitted to the paper's absolute
// numbers — DESIGN.md section 5 explains why shapes, crossovers and ratios
// are the reproduction target.

ModelParams ModelParams::cray() {
    ModelParams p;
    p.name = "cray";
    // Aries: low injection latency, high bandwidth, well-tuned collectives.
    // The shm per-message cost reflects a real two-copy CMA/shm-queue
    // transfer (~1.0us/hop) — several times the cost of one tuned-barrier
    // flag round, which is the asymmetry the hybrid collectives exploit.
    p.shm = LinkParams{0.90, 1.0 / 6000.0, 0.55};
    p.net = LinkParams{1.40, 1.0 / 9000.0, 0.50};
    // QPI hop between the two Haswell sockets: ~+30% latency and roughly
    // 60% of the local shm bandwidth, plus dearer remote-line flags/copies.
    p.shm_xsocket = LinkParams{1.15, 1.0 / 3600.0, 0.60};
    p.memcpy_xsocket_beta_us_per_byte = 1.0 / 16000.0;
    p.xsocket_flag_penalty_us = 0.05;
    p.allgather_long_threshold = 80 * 1024;
    p.bcast_long_threshold = 12 * 1024;
    p.vector_coll_alpha_factor = 1.30;
    return p;
}

ModelParams ModelParams::openmpi() {
    ModelParams p;
    p.name = "openmpi";
    // FDR InfiniBand through the Open MPI ob1/openib stack: higher start-up
    // cost, somewhat lower bandwidth, and a larger allgatherv penalty.
    p.shm = LinkParams{1.10, 1.0 / 5000.0, 0.65};
    p.net = LinkParams{1.90, 1.0 / 5500.0, 0.65};
    // The NEC cluster's UPI-equivalent hop through a less NUMA-tuned stack.
    p.shm_xsocket = LinkParams{1.50, 1.0 / 3000.0, 0.72};
    p.memcpy_xsocket_beta_us_per_byte = 1.0 / 12000.0;
    p.xsocket_flag_penalty_us = 0.07;
    p.allgather_long_threshold = 64 * 1024;
    p.bcast_long_threshold = 8 * 1024;
    p.vector_coll_alpha_factor = 1.45;
    return p;
}

ModelParams ModelParams::test() {
    ModelParams p;
    p.name = "test";
    p.shm = LinkParams{0.10, 1.0 / 10000.0, 0.05};
    p.net = LinkParams{0.50, 1.0 / 10000.0, 0.10};
    p.shm_xsocket = LinkParams{0.15, 1.0 / 8000.0, 0.06};
    p.memcpy_xsocket_beta_us_per_byte = 1.0 / 20000.0;
    p.xsocket_flag_penalty_us = 0.02;
    return p;
}

namespace {

// splitmix64: the stream behind every fault decision. Self-contained so
// plans replay identically across platforms and standard libraries.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t fault_hash(std::uint64_t seed, int src, int dst,
                         std::uint64_t seq) {
    std::uint64_t h = mix64(seed ^ 0xFA01D5EEDULL);
    h = mix64(h ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                    << 32) |
                   static_cast<std::uint32_t>(dst)));
    return mix64(h ^ seq);
}

}  // namespace

VTime FaultPlan::kill_time(int world_rank) const {
    VTime best = -1.0;
    for (const Kill& k : kills) {
        if (k.world_rank != world_rank) continue;
        if (best < 0.0 || k.at_us < best) best = k.at_us;
    }
    return best;
}

bool FaultPlan::delays(int world_rank) const {
    for (int r : delayed_ranks) {
        if (r == world_rank) return true;
    }
    return false;
}

VTime FaultPlan::jitter_us(int src, int dst, std::uint64_t seq) const {
    if (max_jitter_us <= 0.0) return 0.0;
    const double u =
        static_cast<double>(fault_hash(seed, src, dst, seq) >> 11) * 0x1.0p-53;
    return u * max_jitter_us;
}

bool FaultPlan::should_corrupt(int src, int dst, std::uint64_t seq) const {
    if (corrupt_every == 0) return false;
    return fault_hash(seed ^ 0xC0DEULL, src, dst, seq) % corrupt_every == 0;
}

std::size_t FaultPlan::corrupt_byte(int src, int dst, std::uint64_t seq,
                                    std::size_t bytes) const {
    return static_cast<std::size_t>(
        fault_hash(seed ^ 0xB17EULL, src, dst, seq) % bytes);
}

bool FaultPlan::should_drop(int src, int dst, std::uint64_t seq) const {
    if (drop_every == 0) return false;
    return fault_hash(seed ^ 0xD20BULL, src, dst, seq) % drop_every == 0;
}

bool FaultPlan::should_dup(int src, int dst, std::uint64_t seq) const {
    if (dup_every == 0) return false;
    return fault_hash(seed ^ 0xD0B1EULL, src, dst, seq) % dup_every == 0;
}

bool FaultPlan::should_fail_shm(int node, std::uint64_t alloc_idx) const {
    if (shm_fail_every == 0) return false;
    return fault_hash(seed ^ 0x54F41ULL, node, node, alloc_idx) %
               shm_fail_every ==
           0;
}

}  // namespace minimpi
