#pragma once

#include <span>

#include "minimpi/comm.h"

namespace minimpi {

/// Sentinel for MPI_IN_PLACE. Accepted as the send buffer of allgather,
/// allgatherv, allreduce and (at the root) gather/reduce: the contribution
/// is taken from its final position in the receive buffer.
inline const void* kInPlace = reinterpret_cast<const void*>(~std::uintptr_t{0});

/// The collectives below implement the "naive pure MPI" side of the paper:
/// what a production MPI library does. Algorithm selection follows the
/// communicator's vendor profile (ModelParams): flat algorithms (binomial,
/// recursive doubling, Bruck, ring, pairwise) plus SMP-aware hierarchical
/// dispatch when the communicator spans several nodes with multi-rank nodes
/// (leader gather -> bridge exchange -> leader broadcast; Fig. 3a).
///
/// All of them are collective over @p comm and must be called by every
/// member in the same order.

void barrier(const Comm& comm);

void bcast(const Comm& comm, void* buf, std::size_t count, Datatype dt,
           int root);

/// Gather equal-size blocks to @p root. @p recvbuf is only significant at
/// the root (size = count * comm.size() elements). Root may pass kInPlace
/// as @p sendbuf if its block already sits at recvbuf + rank*count.
void gather(const Comm& comm, const void* sendbuf, std::size_t count,
            void* recvbuf, Datatype dt, int root);

/// Scatter equal-size blocks from @p root; @p sendbuf significant at root.
void scatter(const Comm& comm, const void* sendbuf, std::size_t count,
             void* recvbuf, Datatype dt, int root);

void allgather(const Comm& comm, const void* sendbuf, std::size_t count,
               void* recvbuf, Datatype dt);

/// Irregular allgather. @p counts/@p displs are in elements, indexed by comm
/// rank; every rank must pass identical vectors (as in MPI).
void allgatherv(const Comm& comm, const void* sendbuf, std::size_t sendcount,
                void* recvbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, Datatype dt);

/// Gather variable-size blocks to @p root (linear algorithm; used by the
/// hybrid library's bridge phase and by application codes).
void gatherv(const Comm& comm, const void* sendbuf, std::size_t sendcount,
             void* recvbuf, std::span<const std::size_t> counts,
             std::span<const std::size_t> displs, Datatype dt, int root);

/// Scatter variable-size blocks from @p root (linear algorithm; the
/// counterpart of gatherv).
void scatterv(const Comm& comm, const void* sendbuf,
              std::span<const std::size_t> counts,
              std::span<const std::size_t> displs, void* recvbuf,
              std::size_t recvcount, Datatype dt, int root);

void reduce(const Comm& comm, const void* sendbuf, void* recvbuf,
            std::size_t count, Datatype dt, Op op, int root);

void allreduce(const Comm& comm, const void* sendbuf, void* recvbuf,
               std::size_t count, Datatype dt, Op op);

/// Regular all-to-all personalized exchange; @p count elements per pair.
void alltoall(const Comm& comm, const void* sendbuf, std::size_t count,
              void* recvbuf, Datatype dt);

/// Inclusive prefix reduction (MPI_Scan): rank r receives
/// op(rank 0, ..., rank r).
void scan(const Comm& comm, const void* sendbuf, void* recvbuf,
          std::size_t count, Datatype dt, Op op);

/// Exclusive prefix reduction (MPI_Exscan): rank r receives
/// op(rank 0, ..., rank r-1); rank 0's recvbuf is left untouched.
void exscan(const Comm& comm, const void* sendbuf, void* recvbuf,
            std::size_t count, Datatype dt, Op op);

/// MPI_Reduce_scatter_block: elementwise reduction of p equal blocks, block
/// r delivered to rank r.
void reduce_scatter_block(const Comm& comm, const void* sendbuf, void* recvbuf,
                          std::size_t count_per_rank, Datatype dt, Op op);

namespace detail {

/// Apply @p op elementwise: inout[i] = op(inout[i], in[i]). Charges one flop
/// per element to the rank's clock; computes only with real payloads.
void apply_op(RankCtx& ctx, Op op, Datatype dt, void* inout, const void* in,
              std::size_t count);

/// Flat (single-level) algorithm entry points, exposed for tests and for
/// ablation benchmarks that want to bypass the SMP-aware dispatch.
void barrier_dissemination(const Comm& comm);
/// Tree barrier (binomial zero-byte gather + binomial release): a second
/// candidate for the decision tables. Half the messages of dissemination
/// at twice the depth — the tuner decides whether that ever pays off.
void barrier_tree(const Comm& comm);
/// Message-passing barrier with profile-driven selection (decision table,
/// else dissemination).
void barrier_auto(const Comm& comm);
/// Tuned single-node barrier (shared counters, no messages) — what vendor
/// MPI libraries actually run for on-node communicators.
void barrier_shm_tuned(const Comm& comm);
void bcast_binomial(const Comm& comm, void* buf, std::size_t bytes, int root);
/// @p segment_bytes == 0 applies the built-in heuristic (8 KiB segments,
/// at most 64 of them); a tuned table supplies an explicit segment size.
void bcast_pipelined_chain(const Comm& comm, void* buf, std::size_t bytes,
                           int root, std::size_t segment_bytes = 0);
/// Bcast with profile-driven algorithm selection (decision table, else the
/// bcast_long_threshold) — the single selection point used by the flat
/// path and by every hierarchical phase that broadcasts.
void bcast_auto(const Comm& comm, void* buf, std::size_t bytes, int root);
void allgather_recursive_doubling(const Comm& comm, const void* sendbuf,
                                  void* recvbuf, std::size_t block_bytes);
void allgather_bruck(const Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t block_bytes);
void allgather_ring(const Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t block_bytes);
void allgatherv_ring(const Comm& comm, const void* sendbuf,
                     std::size_t send_bytes, void* recvbuf,
                     std::span<const std::size_t> counts_bytes,
                     std::span<const std::size_t> displs_bytes);
void allgatherv_bruck(const Comm& comm, const void* sendbuf,
                      std::size_t send_bytes, void* recvbuf,
                      std::span<const std::size_t> counts_bytes,
                      std::span<const std::size_t> displs_bytes);
/// Profile-driven selection (Bruck below the allgather threshold, ring
/// above), with the vector-collective tuning penalty applied.
void allgatherv_auto(const Comm& comm, const void* sendbuf,
                     std::size_t send_bytes, void* recvbuf,
                     std::span<const std::size_t> counts_bytes,
                     std::span<const std::size_t> displs_bytes);
void gather_binomial(const Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t block_bytes, int root);
void scatter_binomial(const Comm& comm, const void* sendbuf, void* recvbuf,
                      std::size_t block_bytes, int root);
void reduce_binomial(const Comm& comm, const void* sendbuf, void* recvbuf,
                     std::size_t count, Datatype dt, Op op, int root);
void allreduce_recursive_doubling(const Comm& comm, const void* sendbuf,
                                  void* recvbuf, std::size_t count,
                                  Datatype dt, Op op);
void allreduce_ring(const Comm& comm, const void* sendbuf, void* recvbuf,
                    std::size_t count, Datatype dt, Op op);

/// Per-rank cached view of a communicator's node hierarchy: the intra-node
/// (shared-memory) sub-communicator, the bridge communicator of per-node
/// leaders, and the node-major block layout. Built collectively on first
/// use; cached in the RankCtx.
struct HierHandles {
    Comm shm;     ///< my node's sub-communicator (ordered by comm rank)
    Comm bridge;  ///< leaders only; null for children
    bool is_leader = false;
    bool multi_node = false;       ///< comm spans more than one node
    bool single_rank_nodes = true; ///< every node hosts exactly one member
    int my_node_index = -1;        ///< index into node-major ordering
    std::vector<int> node_sizes;   ///< members per node, node-major order
    std::vector<int> node_offsets; ///< prefix sums of node_sizes (blocks)
    std::vector<int> node_leader;  ///< comm rank of each node's leader
    std::vector<int> node_index_of;///< per comm rank: its node-major index
    std::vector<int> perm;         ///< node-major position -> comm rank
    bool identity_perm = true;     ///< node-major order == comm-rank order
};

/// Get (building collectively if needed) the hierarchy of @p comm.
const HierHandles& hier(const Comm& comm);

/// Cheap, communication-free check for whether the SMP-aware hierarchical
/// path applies (multi-node communicator with at least one multi-rank
/// node). Safe to call without triggering the collective hierarchy build.
bool smp_hier_applicable(const Comm& comm);

}  // namespace detail

}  // namespace minimpi
