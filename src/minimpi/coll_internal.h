#pragma once

#include <memory>

#include "minimpi/coll.h"
#include "minimpi/p2p.h"
#include "tuning/decision.h"

namespace minimpi::detail {

/// Tag bases for the internal collective protocols (collective matching
/// context, so they never collide with user point-to-point traffic).
/// Successive instances of the same collective reuse the same tags; the
/// transport's per-(source, tag) FIFO keeps the pairing correct.
enum CollTag : int {
    kTagBarrier = 0x1000,     // + round
    kTagBcast = 0x2000,       // + segment (pipelined variant)
    kTagGather = 0x3000,
    kTagScatter = 0x4000,
    kTagAllgather = 0x5000,
    kTagAllgatherv = 0x6000,
    kTagReduce = 0x7000,
    kTagAllreduce = 0x8000,
    kTagAlltoall = 0x9000,    // + source rank
    kTagGatherv = 0xA000,
    kTagHier = 0xB000,
};

/// Temporary buffer honoring the payload mode: materializes only when
/// payloads are real, so cluster-scale SizeOnly benchmarks never allocate.
class Scratch {
public:
    Scratch(RankCtx& ctx, std::size_t bytes) {
        if (ctx.payload_mode == PayloadMode::Real && bytes > 0) {
            buf_ = std::make_unique<std::byte[]>(bytes);
        }
    }
    std::byte* data() { return buf_.get(); }

private:
    std::unique_ptr<std::byte[]> buf_;
};

/// Offset a possibly-null buffer pointer.
inline std::byte* at(void* p, std::size_t off) {
    return p ? static_cast<std::byte*>(p) + off : nullptr;
}
inline const std::byte* at(const void* p, std::size_t off) {
    return p ? static_cast<const std::byte*>(p) + off : nullptr;
}

/// Resolve an MPI_IN_PLACE send buffer against its in-place location.
inline const void* resolve_in_place(const void* sendbuf, const void* in_place_loc) {
    return sendbuf == kInPlace ? in_place_loc : sendbuf;
}

/// Link class of @p comm for decision-table lookup: Shm when every member
/// shares a node, Net otherwise. Collective call sites are link-pure (the
/// SMP-aware dispatch routes mixed communicators through hierarchical
/// sub-operations), so this is the table's whole topology axis.
tuning::Shape comm_shape(const Comm& comm);

/// Tuned choice for @p op at this communicator's size/shape and @p bytes
/// (per-op key semantics documented on tuning::Op), or nullopt when the
/// profile has no table — callers then apply the legacy thresholds.
std::optional<tuning::Choice> tuned_choice(const Comm& comm, tuning::Op op,
                                           std::uint64_t bytes);

}  // namespace minimpi::detail
