#include "minimpi/runtime.h"

#include <pthread.h>

#include <cmath>
#include <cstdio>
#include <exception>

#include "minimpi/error.h"
#include "trace/recorder.h"
#include "trace/sink.h"
#include "tuning/decision.h"

namespace minimpi {

Runtime::Runtime(ClusterSpec cluster, ModelParams model, PayloadMode payload,
                 RunOptions opts)
    : cluster_(std::move(cluster)),
      model_(std::move(model)),
      payload_(payload),
      opts_(opts) {}

CommState* Runtime::create_comm(std::vector<int> members_world,
                                CommState* parent) {
    auto st = std::make_unique<CommState>();
    st->runtime = this;
    st->ctx_p2p = alloc_ctx();
    st->ctx_coll = alloc_ctx();
    st->parent = parent;
    st->members = std::move(members_world);
    st->world_to_local.assign(
        static_cast<std::size_t>(cluster_.total_ranks()), -1);
    for (std::size_t i = 0; i < st->members.size(); ++i) {
        st->world_to_local.at(static_cast<std::size_t>(st->members[i])) =
            static_cast<int>(i);
    }
    st->member_epoch.assign(st->members.size(), 0);
    st->member_shrink_epoch.assign(st->members.size(), 0);
    CommState* raw = st.get();
    bool born_revoked = false;
    {
        std::lock_guard<std::mutex> lock(registry_mu_);
        comms_.push_back(std::move(st));
        // Registration and the inherited-revocation check are one critical
        // section against revoke_comm's cascade scan: either this comm is
        // registered before the scan snapshot (the cascade revokes it), or
        // the scan's lock ordering makes the parent's revoked flag visible
        // here and the child is born revoked. No third interleaving.
        if (parent != nullptr &&
            parent->revoked.load(std::memory_order_acquire)) {
            raw->revoked.store(true, std::memory_order_release);
            born_revoked = true;
        }
    }
    if (born_revoked) {
        // Fresh contexts — no waiter can exist yet, so no notify needed.
        transport_->revoke_ctx(raw->ctx_p2p);
        transport_->revoke_ctx(raw->ctx_coll);
    }
    return raw;
}

void Runtime::keep_alive(std::shared_ptr<void> resource) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    resources_.push_back(std::move(resource));
}

void Runtime::poison_from(int world_rank) {
    transport_->poison(world_rank);
    // Snapshot the registry first: rendezvous callbacks take a comm's op_mu
    // and then registry_mu_ (create_comm, keep_alive), so notifying under
    // registry_mu_ would invert that order. The raw pointers stay valid —
    // comms_ is only cleared between runs, after every rank thread joined.
    std::vector<CommState*> comms;
    {
        std::lock_guard<std::mutex> lock(registry_mu_);
        comms.reserve(comms_.size());
        for (auto& comm : comms_) comms.push_back(comm.get());
    }
    for (CommState* comm : comms) {
        std::lock_guard<std::mutex> op_lock(comm->op_mu);
        for (auto& [epoch, slot] : comm->ops) {
            slot->cv.notify_all();
        }
    }
}

void Runtime::on_rank_death(int world_rank, VTime at) {
    transport_->mark_dead(world_rank, at);
    // Wake rendezvous waiters the same way poison_from does: collectives on
    // a communicator containing the dead rank must observe the death and
    // raise ProcessFailedError rather than wait forever for its arrival.
    std::vector<CommState*> comms;
    {
        std::lock_guard<std::mutex> lock(registry_mu_);
        comms.reserve(comms_.size());
        for (auto& comm : comms_) comms.push_back(comm.get());
    }
    for (CommState* comm : comms) {
        std::lock_guard<std::mutex> op_lock(comm->op_mu);
        for (auto& [epoch, slot] : comm->ops) {
            slot->cv.notify_all();
        }
    }
}

void Runtime::revoke_comm(CommState& st) {
    if (st.revoked.exchange(true, std::memory_order_acq_rel)) return;
    transport_->revoke_ctx(st.ctx_p2p);
    transport_->revoke_ctx(st.ctx_coll);
    {
        std::lock_guard<std::mutex> op_lock(st.op_mu);
        for (auto& [epoch, slot] : st.ops) {
            slot->cv.notify_all();
        }
    }
    // Cascade to derived comms (see CommState::parent): a survivor blocked
    // in an internal hierarchy leg whose direct peers are all alive can only
    // be interrupted through its sub-communicator. Snapshot outside op
    // locks — same ordering discipline as poison_from — then recurse; the
    // exchange above makes re-entry through overlapping subtrees a no-op.
    std::vector<CommState*> derived;
    {
        std::lock_guard<std::mutex> lock(registry_mu_);
        for (const auto& comm : comms_) {
            for (const CommState* a = comm->parent; a != nullptr;
                 a = a->parent) {
                if (a == &st) {
                    derived.push_back(comm.get());
                    break;
                }
            }
        }
    }
    for (CommState* child : derived) revoke_comm(*child);
}

VTime Runtime::one_off_sync_cost(int nranks) const {
    if (nranks <= 1) return model_.shm.overhead_us;
    const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
    return rounds * (model_.net.alpha_us + 2.0 * model_.net.overhead_us);
}

namespace {

struct RankThreadArgs {
    Runtime* runtime;
    RankCtx* ctx;
    CommState* world_state;
    const std::function<void(Comm&)>* rank_main;
    std::exception_ptr* error_out;
};

void* rank_thread_entry(void* raw) {
    auto* args = static_cast<RankThreadArgs*>(raw);
    try {
        Comm world(args->world_state, args->ctx, args->ctx->world_rank);
        (*args->rank_main)(world);
    } catch (const detail::RankKilled& k) {
        // Scheduled process failure (FaultPlan kill), not an error: the
        // thread exits silently and the job keeps running. Survivors observe
        // the death as ProcessFailedError and run detect–agree–shrink.
        args->runtime->on_rank_death(k.world_rank, k.at);
    } catch (...) {
        *args->error_out = std::current_exception();
        args->runtime->poison_from(args->ctx->world_rank);
    }
    return nullptr;
}

}  // namespace

std::vector<VTime> Runtime::run(const std::function<void(Comm&)>& rank_main) {
    const int n = cluster_.total_ranks();

    // Fresh state for this run: a rank thread stuck from a previous failed
    // run cannot exist (we always join), so replacing the registries is safe.
    {
        std::lock_guard<std::mutex> lock(registry_mu_);
        comms_.clear();
        resources_.clear();
        shm_alloc_seq_.assign(static_cast<std::size_t>(cluster_.num_nodes()),
                              0);
    }
    transport_ = std::make_unique<Transport>(n, payload_);
    transport_->set_fault_plan(fault_plan_.active() ? &fault_plan_ : nullptr);
    next_ctx_.store(kFirstUserCtx);

    std::vector<int> world_members(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) world_members[static_cast<std::size_t>(i)] = i;
    CommState* world_state = create_comm(std::move(world_members));

    std::vector<RankCtx> ctxs(static_cast<std::size_t>(n));
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
    std::vector<RankThreadArgs> args(static_cast<std::size_t>(n));
    std::vector<pthread_t> threads(static_cast<std::size_t>(n));
    std::vector<Tracer> tracers(
        opts_.trace ? static_cast<std::size_t>(n) : 0);

    // Span recording is on when the caller asked (RunOptions::spans) or
    // process-wide via HYMPI_TRACE; the sink only receives runs in the
    // latter case. With HYMPI_TRACING=OFF every recording site is compiled
    // out, so recorders would stay empty — skip them entirely.
    hytrace::TraceSink& sink = hytrace::TraceSink::instance();
    const bool span_trace =
        HYMPI_TRACE_ENABLED && (opts_.spans || sink.enabled());
    const bool span_p2p = opts_.span_p2p || sink.p2p();
    std::vector<hytrace::Recorder> recorders;
    if (span_trace) {
        recorders.assign(static_cast<std::size_t>(n),
                         hytrace::Recorder(span_p2p));
    }

    // Tuned algorithm selection for this vendor profile (null when the
    // profile has no table). Resolved once, before the rank threads spawn.
    const tuning::DecisionTable* tuned = tuning::find_table(model_.name);

    for (int i = 0; i < n; ++i) {
        auto& ctx = ctxs[static_cast<std::size_t>(i)];
        ctx.world_rank = i;
        ctx.runtime = this;
        ctx.cluster = &cluster_;
        ctx.model = &model_;
        ctx.payload_mode = payload_;
        ctx.tuned = tuned;
        ctx.robust_cfg = &robust_cfg_;
        if (fault_plan_.kill_active()) {
            ctx.kill_at = fault_plan_.kill_time(i);
        }
        if (opts_.trace) ctx.tracer = &tracers[static_cast<std::size_t>(i)];
        if (span_trace) ctx.spans = &recorders[static_cast<std::size_t>(i)];
        args[static_cast<std::size_t>(i)] =
            RankThreadArgs{this, &ctx, world_state, &rank_main,
                           &errors[static_cast<std::size_t>(i)]};
    }

    pthread_attr_t attr;
    pthread_attr_init(&attr);
    pthread_attr_setstacksize(
        &attr, std::max<std::size_t>(opts_.stack_bytes, 128 * 1024));

    for (int i = 0; i < n; ++i) {
        const int rc =
            pthread_create(&threads[static_cast<std::size_t>(i)], &attr,
                           rank_thread_entry, &args[static_cast<std::size_t>(i)]);
        if (rc != 0) {
            // Join what we started before reporting; without all ranks the
            // job cannot progress, but started ranks may deadlock waiting
            // for peers — so this is a hard configuration error we surface
            // immediately rather than hang. Detach is unsafe; abort.
            pthread_attr_destroy(&attr);
            std::terminate();
        }
    }
    pthread_attr_destroy(&attr);

    for (int i = 0; i < n; ++i) {
        pthread_join(threads[static_cast<std::size_t>(i)], nullptr);
    }

    // Prefer the originating error over the JobAborted exceptions raised in
    // ranks that were merely unblocked by the poison.
    std::exception_ptr first_abort;
    for (int i = 0; i < n; ++i) {
        auto& err = errors[static_cast<std::size_t>(i)];
        if (!err) continue;
        try {
            std::rethrow_exception(err);
        } catch (const JobAborted&) {
            if (!first_abort) first_abort = err;
        } catch (...) {
            std::rethrow_exception(err);
        }
    }
    if (first_abort) std::rethrow_exception(first_abort);

    std::vector<VTime> clocks(static_cast<std::size_t>(n));
    last_stats_.resize(static_cast<std::size_t>(n));
    last_robust_stats_.resize(static_cast<std::size_t>(n));
    last_traces_.clear();
    for (int i = 0; i < n; ++i) {
        clocks[static_cast<std::size_t>(i)] =
            ctxs[static_cast<std::size_t>(i)].clock.now();
        last_stats_[static_cast<std::size_t>(i)] =
            ctxs[static_cast<std::size_t>(i)].stats;
        last_robust_stats_[static_cast<std::size_t>(i)] =
            ctxs[static_cast<std::size_t>(i)].robust_stats;
    }
    if (opts_.trace) {
        last_traces_.reserve(tracers.size());
        for (auto& t : tracers) last_traces_.push_back(t.events());
    }
    last_span_traces_.clear();
    if (span_trace) {
        last_span_traces_.reserve(recorders.size());
        for (int i = 0; i < n; ++i) {
            auto& rec = recorders[static_cast<std::size_t>(i)];
            hytrace::RankTrace rt;
            rt.node = cluster_.node_of(i);
            rt.spans = rec.spans();
            rt.counters = rec.counters();
            last_span_traces_.push_back(std::move(rt));
        }
        if (sink.enabled()) {
            hytrace::RunTrace run_trace;
            run_trace.ranks = last_span_traces_;
            sink.add_run(std::move(run_trace));
        }
    }
    if (robust_cfg_.dump_at_finalize) {
        const hympi::RobustStats total = total_robust_stats();
        if (total.any()) {
            std::fprintf(
                stderr,
                "[hympi robust] retries=%llu timeouts=%llu checksum_failures="
                "%llu stale_discards=%llu recoveries=%llu sync_trips=%llu "
                "sync_downgrades=%llu flat_downgrades=%llu alloc_failures="
                "%llu failures_detected=%llu shrinks=%llu\n",
                static_cast<unsigned long long>(total.retries),
                static_cast<unsigned long long>(total.timeouts),
                static_cast<unsigned long long>(total.checksum_failures),
                static_cast<unsigned long long>(total.stale_discards),
                static_cast<unsigned long long>(total.recoveries),
                static_cast<unsigned long long>(total.sync_trips),
                static_cast<unsigned long long>(total.sync_downgrades),
                static_cast<unsigned long long>(total.flat_downgrades),
                static_cast<unsigned long long>(total.alloc_failures),
                static_cast<unsigned long long>(total.failures_detected),
                static_cast<unsigned long long>(total.shrinks));
        }
    }
    return clocks;
}

CommStats Runtime::total_stats() const {
    CommStats total;
    for (const auto& s : last_stats_) total += s;
    return total;
}

hympi::RobustStats Runtime::total_robust_stats() const {
    hympi::RobustStats total;
    for (const auto& s : last_robust_stats_) total += s;
    return total;
}

hytrace::Counters Runtime::total_span_counters() const {
    hytrace::Counters total;
    for (const auto& rt : last_span_traces_) total += rt.counters;
    return total;
}

std::uint64_t Runtime::next_shm_alloc_idx(int node) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto& seq = shm_alloc_seq_.at(static_cast<std::size_t>(node));
    return seq++;
}

}  // namespace minimpi
