#pragma once

#include <vector>

#include "minimpi/types.h"

namespace minimpi {

/// How global ranks are laid out over the simulated nodes.
///
/// Smp: consecutive ranks fill node 0, then node 1, ... — the "SMP-style
/// rank placement" the paper assumes in Section 4.
/// RoundRobin: rank r lands on node (r mod nnodes) — the alternative
/// placement Section 6 discusses; the hybrid library handles it with a
/// node-sorted global rank array.
enum class Placement : std::uint8_t {
    Smp,
    RoundRobin,
};

/// Describes the simulated cluster: how many processes run on each node and
/// how global ranks map onto nodes. Supports irregular population (paper
/// Sect. 5.1.3: 42 nodes x 24 processes plus one node with 16).
class ClusterSpec {
public:
    /// Regular cluster: @p nodes nodes with @p ppn processes each.
    /// @p sockets_per_node models the NUMA domains inside each node
    /// (default 1 = flat node, the pre-socket behaviour).
    static ClusterSpec regular(int nodes, int ppn,
                               Placement placement = Placement::Smp,
                               int sockets_per_node = 1);

    /// Irregular cluster: one entry per node giving its process count.
    static ClusterSpec irregular(std::vector<int> procs_per_node,
                                 Placement placement = Placement::Smp,
                                 int sockets_per_node = 1);

    int num_nodes() const { return static_cast<int>(procs_per_node_.size()); }
    int total_ranks() const { return total_; }
    int procs_on_node(int node) const { return procs_per_node_.at(node); }
    Placement placement() const { return placement_; }

    /// Node hosting global rank @p rank.
    int node_of(int rank) const { return node_of_.at(rank); }

    /// Position of @p rank among the ranks of its own node (0 = leader-eligible
    /// lowest rank under SMP placement ordering).
    int rank_on_node(int rank) const { return rank_on_node_.at(rank); }

    /// Global ranks hosted on @p node, in increasing global-rank order.
    const std::vector<int>& ranks_of_node(int node) const {
        return ranks_of_node_.at(node);
    }

    /// All global ranks sorted by (node, global rank): the "node-sorted
    /// global rank array" of paper Section 6, used by the hybrid library to
    /// lay out shared buffers node-contiguously under any placement.
    const std::vector<int>& node_sorted_ranks() const {
        return node_sorted_ranks_;
    }

    /// True when both endpoints live on the same node (chooses the shm link
    /// class in the network model).
    bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

    /// NUMA domains per node (>= 1; 1 = flat node).
    int sockets_per_node() const { return sockets_per_node_; }

    /// Socket (NUMA domain) index of @p rank *within its node*: the node's
    /// member list is cut into sockets_per_node() contiguous slices
    /// [P*s/S, P*(s+1)/S), mirroring how cores are numbered on real
    /// dual-socket nodes. With one socket this is always 0.
    int socket_of(int rank) const { return socket_of_.at(rank); }

    /// True when both endpoints share a node AND a socket (chooses the
    /// intra-socket shm link class; same-node-different-socket transfers
    /// pay the cross-socket link instead).
    bool same_socket(int a, int b) const {
        return same_node(a, b) && socket_of(a) == socket_of(b);
    }

private:
    ClusterSpec(std::vector<int> procs_per_node, Placement placement,
                int sockets_per_node);

    std::vector<int> procs_per_node_;
    Placement placement_;
    int sockets_per_node_ = 1;
    int total_ = 0;
    std::vector<int> node_of_;
    std::vector<int> rank_on_node_;
    std::vector<int> socket_of_;
    std::vector<std::vector<int>> ranks_of_node_;
    std::vector<int> node_sorted_ranks_;
};

}  // namespace minimpi
