#include "minimpi/comm.h"

#include <map>
#include <tuple>

#include "minimpi/error.h"
#include "minimpi/icoll.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"

namespace minimpi {

namespace detail {

bool job_poisoned(const CommState& st) {
    return st.runtime->transport().poisoned();
}

void throw_if_poisoned(const CommState& st) {
    st.runtime->transport().check_poison();
}

bool comm_interrupted(const CommState& st) {
    if (st.revoked.load(std::memory_order_acquire)) return true;
    Transport& tp = st.runtime->transport();
    if (tp.any_dead()) {
        for (int w : st.members) {
            if (tp.is_dead(w)) return true;
        }
    }
    return false;
}

void throw_comm_interrupt(const CommState& st, RankCtx& ctx) {
    Transport& tp = st.runtime->transport();
    if (tp.any_dead()) {
        for (int w : st.members) {
            if (!tp.is_dead(w)) continue;
            // Deterministic detection latency: the dead member fell silent
            // at its (program-determined) death vtime; the watchdog that
            // was due watchdog_us later is what notices.
            const VTime death = tp.death_vtime(w);
            const VTime t0 = ctx.vck().now();
            ctx.vck().sync_to(death + ctx.robust_cfg->watchdog_us);
            ctx.robust_stats.failures_detected += 1;
            HYTRACE_COUNTER(ctx, failures_detected, 1);
            if (hytrace::Span* s = trace_complete(
                    ctx, hytrace::Phase::Robust, "detect", t0)) {
                s->peer = w;
            }
            throw ProcessFailedError(w, death);
        }
    }
    throw CommRevokedError();
}

}  // namespace detail

CommState& Comm::require() const {
    if (state_ == nullptr) {
        throw CommError("operation on a null communicator");
    }
    return *state_;
}

namespace {

/// Rendezvous payload for Comm::split.
struct SplitData {
    /// (color, key, parent rank) per contributor.
    std::vector<std::tuple<int, int, int>> contribs;
    /// color -> child communicator, built by the finalizer.
    std::map<int, CommState*> children;
};

}  // namespace

Comm Comm::split(int color, int key) const {
    CommState& st = require();
    Runtime* rt = st.runtime;
    const VTime cost = rt->one_off_sync_cost(st.size());

    auto data = detail::rendezvous<SplitData>(
        st, *ctx_, rank_, cost,
        [&](SplitData& d) { d.contribs.emplace_back(color, key, rank_); },
        [&](SplitData& d) {
            // Group by color (kUndefined opts out), order each child's
            // members by (key, parent rank) as MPI_Comm_split specifies.
            std::map<int, std::vector<std::tuple<int, int, int>>> by_color;
            for (const auto& c : d.contribs) {
                if (std::get<0>(c) != kUndefined) {
                    by_color[std::get<0>(c)].push_back(c);
                }
            }
            for (auto& [child_color, members] : by_color) {
                std::sort(members.begin(), members.end(),
                          [](const auto& a, const auto& b) {
                              return std::make_pair(std::get<1>(a), std::get<2>(a)) <
                                     std::make_pair(std::get<1>(b), std::get<2>(b));
                          });
                std::vector<int> world_members;
                world_members.reserve(members.size());
                for (const auto& m : members) {
                    world_members.push_back(st.to_world(std::get<2>(m)));
                }
                d.children[child_color] =
                    rt->create_comm(std::move(world_members), &st);
            }
        });

    if (color == kUndefined) return Comm();
    CommState* child = data->children.at(color);
    return Comm(child, ctx_, child->from_world(to_world()));
}

Comm Comm::create(std::span<const int> members) const {
    CommState& st = require();
    int my_pos = -1;
    int prev = -1;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const int m = members[i];
        if (m <= prev || m >= st.size()) {
            throw ArgumentError(
                "comm create needs a strictly increasing in-range rank list");
        }
        prev = m;
        if (m == rank_) my_pos = static_cast<int>(i);
    }
    return split(my_pos >= 0 ? 0 : kUndefined, my_pos);
}

void Comm::revoke() const {
    CommState& st = require();
    st.runtime->revoke_comm(st);
}

void Comm::free() const {
    CommState& st = require();
    RankCtx& ctx = *ctx_;
    detail::check_alive(ctx);
    if (st.parent == nullptr) {
        // Roots — the world comm and agree_shrink's recovery comm — are
        // job-lifetime, like MPI_COMM_WORLD.
        throw CommError("free on a root communicator");
    }
    // Freeing under an in-flight nonblocking collective on this comm is
    // erroneous (MPI_Comm_free during active communication): surface the
    // typed error instead of letting the engine task race freed state.
    for (const detail::IcollState* ic : ctx.active_icolls) {
        if (ic->comm_state == &st) {
            throw CommBusyError(
                std::string(ic->kind) +
                " still in flight on the communicator being freed"
                " — complete it with wait() first");
        }
    }
    if (st.freed.load(std::memory_order_acquire)) {
        throw CommError("double free of a communicator");
    }
    Runtime* rt = st.runtime;
    const VTime cost = rt->one_off_sync_cost(st.size());
    struct FreeData {};
    detail::rendezvous<FreeData>(
        st, ctx, rank_, cost, [](FreeData&) {},
        [&](FreeData&) { st.freed.store(true, std::memory_order_release); });
    // Drop this rank's cached hierarchy/channel handles keyed by the comm —
    // the leak-freedom bound for churny (service) workloads. The CommState
    // itself stays registered until the run tears down, so stale handles
    // fail typed instead of dangling.
    ctx.comm_caches.erase(&st);
}

Comm Comm::agree_shrink(std::vector<int>* failed_world) const {
    CommState& st = require();
    RankCtx& ctx = *ctx_;
    detail::check_alive(ctx);
    Runtime* rt = st.runtime;
    Transport& tp = rt->transport();

    struct ShrinkData {
        CommState* child = nullptr;
        std::vector<int> failed;
    };

    std::unique_lock<std::mutex> lock(st.op_mu);
    const std::uint64_t key =
        kShrinkKeyBase +
        st.member_shrink_epoch.at(static_cast<std::size_t>(rank_))++;
    auto& slot_ref = st.ops[key];
    if (!slot_ref) {
        slot_ref = std::make_shared<CommState::OpSlot>();
        slot_ref->data = std::make_shared<ShrinkData>();
    }
    std::shared_ptr<CommState::OpSlot> slot = slot_ref;
    auto data = std::static_pointer_cast<ShrinkData>(slot->data);
    slot->max_clock = std::max(slot->max_clock, ctx.vck().now());
    ++slot->arrived;

    // Completion rule of the fault-tolerant rendezvous: every member is
    // either here or dead. Which killed members count as dead is program
    // order, hence deterministic: a killed rank either reaches this call
    // before crossing its kill time (arrives, survives this round) or dies
    // at an earlier checkpoint (never arrives). Re-evaluated on every death
    // notification (Runtime::on_rank_death wakes all op slots).
    auto complete = [&] {
        int ndead = 0;
        for (int w : st.members) {
            if (tp.is_dead(w)) ++ndead;
        }
        return slot->arrived + ndead >= st.size();
    };

    while (!slot->done) {
        if (detail::job_poisoned(st)) {
            lock.unlock();
            detail::throw_if_poisoned(st);
        }
        if (complete()) {
            // First member to observe completion finalizes (under op_mu):
            // survivors keep their old comm-rank order, so the shrunken
            // comm is identical on every survivor with no extra exchange.
            ShrinkData& d = *data;
            std::vector<int> survivors;
            for (int w : st.members) {
                if (tp.is_dead(w)) {
                    d.failed.push_back(w);
                } else {
                    survivors.push_back(w);
                }
            }
            // Deliberately parentless: the recovery comm must survive
            // (re-)revocation of the broken comm it descends from.
            d.child = rt->create_comm(std::move(survivors));
            slot->done = true;
            slot->cv.notify_all();
            break;
        }
        slot->cv.wait(lock);
    }

    CommState* child = data->child;
    const std::vector<int> failed = data->failed;
    const VTime max_clock = slot->max_clock;
    if (++slot->left == child->size()) {
        st.ops.erase(key);
    }
    lock.unlock();

    ctx.vck().sync_to(max_clock);
    ctx.vck().advance(rt->one_off_sync_cost(child->size()));

    if (failed_world != nullptr) *failed_world = failed;
    return Comm(child, ctx_, child->from_world(st.to_world(rank_)));
}

Comm Comm::dup() const {
    CommState& st = require();
    Runtime* rt = st.runtime;
    const VTime cost = rt->one_off_sync_cost(st.size());

    struct DupData {
        CommState* child = nullptr;
    };
    auto data = detail::rendezvous<DupData>(
        st, *ctx_, rank_, cost, [](DupData&) {},
        [&](DupData& d) { d.child = rt->create_comm(st.members, &st); });
    return Comm(data->child, ctx_, rank_);
}

}  // namespace minimpi
