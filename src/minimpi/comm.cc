#include "minimpi/comm.h"

#include <map>
#include <tuple>

#include "minimpi/error.h"
#include "minimpi/runtime.h"

namespace minimpi {

namespace detail {

bool job_poisoned(const CommState& st) {
    return st.runtime->transport().poisoned();
}

void throw_if_poisoned(const CommState& st) {
    st.runtime->transport().check_poison();
}

}  // namespace detail

CommState& Comm::require() const {
    if (state_ == nullptr) {
        throw CommError("operation on a null communicator");
    }
    return *state_;
}

namespace {

/// Rendezvous payload for Comm::split.
struct SplitData {
    /// (color, key, parent rank) per contributor.
    std::vector<std::tuple<int, int, int>> contribs;
    /// color -> child communicator, built by the finalizer.
    std::map<int, CommState*> children;
};

}  // namespace

Comm Comm::split(int color, int key) const {
    CommState& st = require();
    Runtime* rt = st.runtime;
    const VTime cost = rt->one_off_sync_cost(st.size());

    auto data = detail::rendezvous<SplitData>(
        st, *ctx_, rank_, cost,
        [&](SplitData& d) { d.contribs.emplace_back(color, key, rank_); },
        [&](SplitData& d) {
            // Group by color (kUndefined opts out), order each child's
            // members by (key, parent rank) as MPI_Comm_split specifies.
            std::map<int, std::vector<std::tuple<int, int, int>>> by_color;
            for (const auto& c : d.contribs) {
                if (std::get<0>(c) != kUndefined) {
                    by_color[std::get<0>(c)].push_back(c);
                }
            }
            for (auto& [child_color, members] : by_color) {
                std::sort(members.begin(), members.end(),
                          [](const auto& a, const auto& b) {
                              return std::make_pair(std::get<1>(a), std::get<2>(a)) <
                                     std::make_pair(std::get<1>(b), std::get<2>(b));
                          });
                std::vector<int> world_members;
                world_members.reserve(members.size());
                for (const auto& m : members) {
                    world_members.push_back(st.to_world(std::get<2>(m)));
                }
                d.children[child_color] = rt->create_comm(std::move(world_members));
            }
        });

    if (color == kUndefined) return Comm();
    CommState* child = data->children.at(color);
    return Comm(child, ctx_, child->from_world(to_world()));
}

Comm Comm::create(std::span<const int> members) const {
    CommState& st = require();
    int my_pos = -1;
    int prev = -1;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const int m = members[i];
        if (m <= prev || m >= st.size()) {
            throw ArgumentError(
                "comm create needs a strictly increasing in-range rank list");
        }
        prev = m;
        if (m == rank_) my_pos = static_cast<int>(i);
    }
    return split(my_pos >= 0 ? 0 : kUndefined, my_pos);
}

Comm Comm::dup() const {
    CommState& st = require();
    Runtime* rt = st.runtime;
    const VTime cost = rt->one_off_sync_cost(st.size());

    struct DupData {
        CommState* child = nullptr;
    };
    auto data = detail::rendezvous<DupData>(
        st, *ctx_, rank_, cost, [](DupData&) {},
        [&](DupData& d) { d.child = rt->create_comm(st.members); });
    return Comm(data->child, ctx_, rank_);
}

}  // namespace minimpi
