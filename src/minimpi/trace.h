#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/types.h"

namespace minimpi {

/// One interval on a rank's virtual timeline.
struct TraceEvent {
    enum class Kind : std::uint8_t {
        Send,     ///< CPU overhead of injecting a message
        Recv,     ///< completion of a receive (arrival .. +overhead)
        Copy,     ///< local memory copy
        Compute,  ///< application flops
        Sync,     ///< barrier / flag synchronization interval
    };
    Kind kind;
    VTime t_start = 0.0;
    VTime t_end = 0.0;
    int peer = -1;          ///< world rank for Send/Recv, -1 otherwise
    std::size_t bytes = 0;  ///< payload/copy size, 0 for Compute/Sync
};

/// Per-rank event recorder. Off by default (RunOptions::trace enables it);
/// when off, the record calls are a branch on a null pointer.
class Tracer {
public:
    void record(TraceEvent::Kind kind, VTime t_start, VTime t_end,
                int peer = -1, std::size_t bytes = 0) {
        events_.push_back({kind, t_start, t_end, peer, bytes});
    }

    const std::vector<TraceEvent>& events() const { return events_; }
    void clear() { events_.clear(); }

private:
    std::vector<TraceEvent> events_;
};

/// Per-kind time totals of one rank's trace (busy-time profile).
struct TraceSummary {
    VTime send_us = 0.0;
    VTime recv_us = 0.0;  ///< includes time blocked waiting for arrivals
    VTime copy_us = 0.0;
    VTime compute_us = 0.0;
    VTime sync_us = 0.0;

    VTime communication_us() const { return send_us + recv_us + sync_us; }
};

/// Aggregate @p events into per-kind totals.
TraceSummary summarize(const std::vector<TraceEvent>& events);

/// Render per-rank timelines as an ASCII Gantt chart: one row per rank,
/// @p columns characters spanning [0, horizon] where horizon is the latest
/// event end. Send='s', Recv='r', Copy='c', Compute='#', Sync='|',
/// idle='.'. Later events overwrite earlier ones within a cell.
std::string render_timeline(const std::vector<std::vector<TraceEvent>>& ranks,
                            int columns = 72);

}  // namespace minimpi
