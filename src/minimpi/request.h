#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/transport.h"

namespace minimpi {

/// Handle for a nonblocking operation (MPI_Request). Sends complete
/// immediately (the transport is eager/buffered); receives complete when a
/// matching message arrives. Move-only; a pending receive that is destroyed
/// without wait()/test() is deregistered from the mailbox.
class Request {
public:
    Request() = default;
    Request(Request&& other) noexcept
        : ctx_(other.ctx_),
          state_(other.state_),
          recv_(std::move(other.recv_)),
          done_(other.done_),
          done_status_(other.done_status_) {
        other.ctx_ = nullptr;
        other.state_ = nullptr;
        other.done_ = false;
    }
    Request& operator=(Request&&) noexcept;
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;
    ~Request();

    bool valid() const { return ctx_ != nullptr; }

    /// Block until the operation completes; returns the receive status
    /// (sends return a default Status). Consumes the request. Waiting
    /// again on a consumed request — double-wait, or wait after a
    /// successful test() — is a no-op returning the cached status.
    Status wait();

    /// Nonblocking completion check; on true fills @p out (if given) and
    /// consumes the request. Testing a consumed request returns true and
    /// reports the cached status.
    bool test(Status* out = nullptr);

    /// @internal factories used by the p2p layer.
    static Request make_send(const Comm& comm);
    static Request make_recv(const Comm& comm, std::unique_ptr<PostedRecv> r);

    /// @internal wait_any support: the posted receive if this is a pending
    /// receive request, null otherwise.
    PostedRecv* pending_recv() const {
        return (valid() && recv_) ? recv_.get() : nullptr;
    }
    RankCtx& owner_ctx() const { return *ctx_; }

private:
    /// Charge the receive completion to the clock and build the Status.
    Status finish_recv();
    void release();

    RankCtx* ctx_ = nullptr;
    CommState* state_ = nullptr;
    std::unique_ptr<PostedRecv> recv_;  ///< null for send requests
    bool done_ = false;   ///< completed at least once (status cached)
    Status done_status_;  ///< status of the completed operation
};

/// Wait on every request, in index order (deterministic virtual time).
void wait_all(std::span<Request> reqs);

/// MPI_Waitany: block until some request completes; returns its index and
/// fills @p out. Invalid (already consumed) entries are skipped; returns -1
/// if every entry is invalid. Completion is scanned in index order, so the
/// choice among simultaneously-complete requests is deterministic.
int wait_any(std::span<Request> reqs, Status* out = nullptr);

/// MPI_Testsome-flavoured helper: consume every currently-completed
/// request, appending (index, status) pairs; returns how many completed.
int test_some(std::span<Request> reqs,
              std::vector<std::pair<int, Status>>* done);

/// Persistent communication request (MPI_Send_init / MPI_Recv_init /
/// MPI_Start): a reusable descriptor for a fixed (buffer, peer, tag)
/// operation, re-armed with start() and completed with wait(). Useful for
/// iterative halo-style traffic where the envelope never changes.
class PersistentRequest {
public:
    PersistentRequest() = default;

    static PersistentRequest send_init(const Comm& comm, const void* buf,
                                       std::size_t count, Datatype dt,
                                       int dest, int tag);
    static PersistentRequest recv_init(const Comm& comm, void* buf,
                                       std::size_t count, Datatype dt,
                                       int source, int tag);

    /// Arm the operation (MPI_Start). Must not already be active.
    void start();
    /// Complete the active operation; the request can be start()ed again.
    Status wait();

    bool active() const { return inner_.valid(); }
    bool valid() const { return comm_.valid(); }

private:
    enum class Kind { Send, Recv };
    Kind kind_ = Kind::Send;
    Comm comm_;
    void* buf_ = nullptr;
    std::size_t count_ = 0;
    Datatype dt_ = Datatype::Byte;
    int peer_ = kProcNull;
    int tag_ = 0;
    Request inner_;
};

}  // namespace minimpi
