#include "minimpi/icoll.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "minimpi/error.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"

namespace minimpi {

namespace detail {

namespace {

/// Worker loop of one request. Sleeps until the owner arms a body and hands
/// over the turn, runs it (the body yields the turn back at every would-
/// block point), publishes completion, and parks again — persistent
/// requests re-arm the same worker. Exits on shutdown; a shutdown arriving
/// mid-body surfaces as IcollCancelled inside yield() and unwinds the
/// body's stack first.
void worker_main(IcollState* st) {
    IcollGate& g = st->gate;
    std::unique_lock<std::mutex> lk(g.mu);
    for (;;) {
        g.cv.wait(lk, [&] { return (g.armed && g.task_turn) || g.shutdown; });
        if (g.shutdown) return;
        lk.unlock();
        try {
            st->body();
        } catch (const IcollCancelled&) {
            // Teardown mid-flight: the stack has unwound; just exit below.
        } catch (...) {
            g.err = std::current_exception();
        }
        lk.lock();
        g.armed = false;
        g.done = true;
        g.task_turn = false;
        g.cv.notify_all();
        if (g.shutdown) return;
    }
}

void deregister(IcollState& st) {
    if (!st.registered || st.ctx == nullptr) return;
    auto& v = st.ctx->active_icolls;
    v.erase(std::remove(v.begin(), v.end(), &st), v.end());
    st.registered = false;
}

}  // namespace

IcollState::~IcollState() {
    if (worker.joinable()) {
        {
            std::lock_guard<std::mutex> lk(gate.mu);
            gate.shutdown = true;
        }
        gate.cv.notify_all();
        worker.join();
    }
    deregister(*this);
}

void icoll_backoff(int spins) {
    if (spins < 256) {
        std::this_thread::yield();
    } else if (spins < 4096) {
        std::this_thread::sleep_for(std::chrono::microseconds(2));
    } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

void icoll_progress(RankCtx& ctx) {
    if (ctx.gate != nullptr) return;  // task context: the engine is us
    // Snapshot: drive_icoll never mutates the list (only post/merge on this
    // same thread do, and neither runs inside a drive).
    for (IcollState* st : ctx.active_icolls) drive_icoll(*st);
}

bool drive_icoll(IcollState& st) {
    IcollGate& g = st.gate;
    {
        std::lock_guard<std::mutex> lk(g.mu);
        if (g.done || g.err != nullptr) return true;
    }
    RankCtx& ctx = *st.ctx;
    // Swap the cost-model hooks for the task's turn. The owner thread is
    // about to sleep and the gate guarantees the task is the only code
    // touching ctx until the turn comes back.
    ctx.cur_clock = &st.sub;
    ctx.cur_busy = &st.busy;
    ctx.coll_ctx_override = g.rdv_ctx;
    ctx.gate = &g;
    bool done_now;
    {
        std::unique_lock<std::mutex> lk(g.mu);
        g.task_turn = true;
        g.cv.notify_all();
        g.cv.wait(lk, [&] { return !g.task_turn; });
        done_now = g.done || g.err != nullptr;
    }
    ctx.cur_clock = &ctx.clock;
    ctx.cur_busy = &ctx.link_busy_until;
    ctx.coll_ctx_override = 0;
    ctx.gate = nullptr;
    return done_now;
}

void merge_icoll(IcollState& st) {
    RankCtx& ctx = *st.ctx;
    st.merged = true;
    deregister(st);
    ctx.clock.sync_to(st.sub.now());
    for (const auto& [dst, t] : st.busy) {
        VTime& cur = ctx.link_busy_until[dst];
        if (t > cur) cur = t;
    }
    trace_instant(ctx, hytrace::Phase::Engine, "icoll_complete");
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(st.gate.mu);
        err = st.gate.err;
        st.gate.err = nullptr;
    }
    if (err != nullptr) {
        // A failed body forfeits its finish hook and its persistent cycle.
        st.waited = true;
        st.cycle_active = false;
        std::rethrow_exception(err);
    }
}

void wait_icoll_done(IcollState& target) {
    RankCtx& ctx = *target.ctx;
    int spins = 0;
    while (!drive_icoll(target)) {
        // The MPI progress rule: while blocked here, every other
        // outstanding request keeps advancing — two ranks waiting on
        // different operations in opposite orders must not deadlock.
        for (IcollState* other : ctx.active_icolls) {
            if (other != &target) drive_icoll(*other);
        }
        icoll_backoff(spins++);
    }
}

void arm_icoll(IcollState& st) {
    RankCtx& ctx = *st.ctx;
    // The sub-clock starts where the program is now: with zero interleaved
    // compute the request's charging replays the blocking call exactly.
    st.sub.set(ctx.clock.now());
    st.busy = ctx.link_busy_until;
    st.merged = false;
    st.waited = false;
    st.cycle_active = true;
    {
        std::lock_guard<std::mutex> lk(st.gate.mu);
        st.gate.done = false;
        st.gate.err = nullptr;
        // rdv_seq is NOT reset: a member of round N+1 may reach a rendezvous
        // while a round-N straggler is still parked in the old slot (arrived
        // but not yet left), so reusing round-N keys could join a stale slot.
        // Every member performs the same rendezvous count per round, so the
        // monotonic counter still agrees across ranks.
        st.gate.armed = true;
    }
    if (!st.registered) {
        ctx.active_icolls.push_back(&st);
        st.registered = true;
    }
    trace_instant(ctx, hytrace::Phase::Engine, "icoll_post");
}

std::shared_ptr<IcollState> create_icoll(const Comm& comm, const char* kind,
                                         std::function<void()> body,
                                         std::function<void()> on_wait,
                                         std::optional<std::uint64_t> match_seq) {
    if (!comm.valid()) {
        throw CommError("nonblocking collective on a null communicator");
    }
    if (comm.state().freed.load(std::memory_order_acquire)) {
        throw CommError("nonblocking collective on a freed communicator");
    }
    RankCtx& ctx = comm.ctx();
    if (ctx.gate != nullptr) {
        throw ArgumentError(
            "nonblocking collectives cannot be posted from inside the "
            "progress engine");
    }
    // Warm the hierarchy cache now — a collective build over epoch-keyed
    // rendezvous — so the task never constructs communicators under the
    // gate. Charged to the main clock exactly like a first blocking call.
    // Skipped for explicit-sequence requests: those mark NON-collective
    // posting patterns (not every rank posts), so a collective build here
    // would hang the ranks that did post against the ones that never call
    // create_icoll. Such bodies do raw p2p and never need the hierarchy.
    if (!match_seq && smp_hier_applicable(comm)) hier(comm);

    auto st = std::make_shared<IcollState>();
    st->ctx = &ctx;
    st->comm_state = &comm.state();
    st->kind = kind;
    st->body = std::move(body);
    st->on_wait = std::move(on_wait);
    // Private matching context: bit 63 namespaces it away from real context
    // ids; ctx_coll identifies the communicator; the per-comm posting
    // counter identifies the operation (MPI requires identical posting
    // order, so every member derives the same value). Explicit sequences
    // live under bit 62 so non-collective posters (see the header) can
    // never cross-match a counter-derived context.
    const std::uint64_t seq =
        match_seq ? *match_seq : ctx.icoll_seq[&comm.state()]++;
    st->gate.rdv_ctx = (std::uint64_t{1} << 63) |
                       (match_seq ? (std::uint64_t{1} << 62) : 0) |
                       (comm.state().ctx_coll << 20) | (seq & 0xFFFFFu);
    st->worker = std::thread(worker_main, st.get());
    return st;
}

std::shared_ptr<IcollState> post_icoll(const Comm& comm, const char* kind,
                                       std::function<void()> body,
                                       std::function<void()> on_wait,
                                       std::optional<std::uint64_t> match_seq) {
    auto st = create_icoll(comm, kind, std::move(body), std::move(on_wait),
                           match_seq);
    arm_icoll(*st);
    // One initial drive flushes the body's first sends (eager transport),
    // so peers can match them while this rank computes.
    drive_icoll(*st);
    return st;
}

std::shared_ptr<IcollState> make_complete_icoll(const Comm& comm,
                                                const char* kind,
                                                std::function<void()> on_wait) {
    auto st = std::make_shared<IcollState>();
    st->ctx = &comm.ctx();
    st->kind = kind;
    st->on_wait = std::move(on_wait);
    st->gate.done = true;
    st->merged = true;  // nothing was in flight; only the hook remains
    return st;
}

}  // namespace detail

// ---- CollRequest ----

CollRequest& CollRequest::operator=(CollRequest&& other) {
    if (this != &other) {
        destroy();
        st_ = std::move(other.st_);
    }
    return *this;
}

CollRequest::~CollRequest() noexcept(false) { destroy(); }

void CollRequest::destroy() {
    if (!st_) return;
    auto st = std::move(st_);
    const bool quiet = std::uncaught_exceptions() > 0 ||
                       st->ctx->runtime->transport().poisoned();
    if (!st->merged) {
        bool body_done;
        {
            std::lock_guard<std::mutex> lk(st->gate.mu);
            body_done = st->gate.done;
        }
        if (!body_done) {
            // In flight: tear the worker down (unwinding its stack cancels
            // the posted receives) and surface the misuse — unless we are
            // already unwinding another exception or the job is aborting.
            st.reset();
            if (!quiet) {
                throw RequestError(
                    "nonblocking collective request destroyed while still "
                    "in flight; complete it with wait()");
            }
            return;
        }
        if (quiet) return;        // aborting: drop without touching clocks
        detail::merge_icoll(*st);  // implicit wait; rethrows a body error
    }
    if (!st->waited) {
        st->waited = true;
        st->cycle_active = false;  // channel-cached states become restartable
        if (st->on_wait && std::uncaught_exceptions() == 0) st->on_wait();
    }
}

bool CollRequest::test() {
    if (!st_) return true;
    detail::IcollState& st = *st_;
    if (st.ctx->gate != nullptr) {
        throw ArgumentError("CollRequest::test from inside the progress engine");
    }
    if (!st.merged) {
        const bool done = detail::drive_icoll(st);
        // A test is a progress call for every outstanding operation.
        detail::icoll_progress(*st.ctx);
        if (!done) return false;
        detail::merge_icoll(st);
    }
    return true;
}

void CollRequest::wait() {
    if (!st_) return;  // double-wait / wait-after-test: no-op
    auto st = st_;
    if (st->ctx->gate != nullptr) {
        throw ArgumentError("CollRequest::wait from inside the progress engine");
    }
    if (!st->merged) {
        detail::wait_icoll_done(*st);
        detail::merge_icoll(*st);
    }
    if (!st->waited) {
        st->waited = true;
        st->cycle_active = false;
        if (st->on_wait) st->on_wait();
    }
    st_.reset();
}

void wait_all(std::span<CollRequest> reqs) {
    for (CollRequest& r : reqs) r.wait();
}

// ---- nonblocking collectives ----

CollRequest ibarrier(const Comm& comm) {
    return CollRequest(
        detail::post_icoll(comm, "ibarrier", [comm] { barrier(comm); }));
}

CollRequest ibcast(const Comm& comm, void* buf, std::size_t count, Datatype dt,
                   int root) {
    return CollRequest(detail::post_icoll(
        comm, "ibcast",
        [comm, buf, count, dt, root] { bcast(comm, buf, count, dt, root); }));
}

CollRequest iallgather(const Comm& comm, const void* sendbuf,
                       std::size_t count, void* recvbuf, Datatype dt) {
    return CollRequest(
        detail::post_icoll(comm, "iallgather", [comm, sendbuf, count, recvbuf,
                                                dt] {
            allgather(comm, sendbuf, count, recvbuf, dt);
        }));
}

CollRequest iallgatherv(const Comm& comm, const void* sendbuf,
                        std::size_t sendcount, void* recvbuf,
                        std::span<const std::size_t> counts,
                        std::span<const std::size_t> displs, Datatype dt) {
    // The spans die with the caller's statement: the body owns copies.
    std::vector<std::size_t> c(counts.begin(), counts.end());
    std::vector<std::size_t> d(displs.begin(), displs.end());
    return CollRequest(detail::post_icoll(
        comm, "iallgatherv",
        [comm, sendbuf, sendcount, recvbuf, c = std::move(c), d = std::move(d),
         dt] { allgatherv(comm, sendbuf, sendcount, recvbuf, c, d, dt); }));
}

CollRequest iallreduce(const Comm& comm, const void* sendbuf, void* recvbuf,
                       std::size_t count, Datatype dt, Op op) {
    return CollRequest(detail::post_icoll(
        comm, "iallreduce", [comm, sendbuf, recvbuf, count, dt, op] {
            allreduce(comm, sendbuf, recvbuf, count, dt, op);
        }));
}

// ---- PersistentColl ----

PersistentColl& PersistentColl::operator=(PersistentColl&& other) {
    if (this != &other) {
        destroy();
        st_ = std::move(other.st_);
    }
    return *this;
}

PersistentColl::~PersistentColl() noexcept(false) { destroy(); }

void PersistentColl::destroy() {
    if (!st_) return;
    auto st = std::move(st_);
    const bool quiet = std::uncaught_exceptions() > 0 ||
                       st->ctx == nullptr ||
                       st->ctx->runtime->transport().poisoned();
    if (st->cycle_active && !st->merged) {
        bool body_done;
        {
            std::lock_guard<std::mutex> lk(st->gate.mu);
            body_done = st->gate.done;
        }
        if (!body_done) {
            st.reset();
            if (!quiet) {
                throw RequestError(
                    "persistent collective destroyed while a started "
                    "operation is still in flight; complete it with wait()");
            }
            return;
        }
        if (quiet) return;
        detail::merge_icoll(*st);  // implicit wait; rethrows a body error
    }
    if (st->cycle_active && !st->waited) {
        st->waited = true;
        if (st->on_wait && std::uncaught_exceptions() == 0) st->on_wait();
    }
}

void PersistentColl::start() {
    if (!valid()) {
        throw ArgumentError("start on an uninitialized persistent collective");
    }
    if (st_->cycle_active) {
        throw RequestError("start on an already-active persistent collective");
    }
    if (st_->ctx->gate != nullptr) {
        throw ArgumentError(
            "PersistentColl::start from inside the progress engine");
    }
    detail::arm_icoll(*st_);
    detail::drive_icoll(*st_);
}

bool PersistentColl::test() {
    if (!valid()) {
        throw ArgumentError("test on an uninitialized persistent collective");
    }
    detail::IcollState& st = *st_;
    if (!st.cycle_active) return true;  // inactive request: MPI reports true
    if (st.ctx->gate != nullptr) {
        throw ArgumentError(
            "PersistentColl::test from inside the progress engine");
    }
    if (!st.merged) {
        const bool done = detail::drive_icoll(st);
        detail::icoll_progress(*st.ctx);
        if (!done) return false;
        detail::merge_icoll(st);
    }
    if (!st.on_wait) {
        // No wait-side finish work: a successful test completes the cycle
        // (MPI semantics — the request becomes inactive and restartable).
        st.waited = true;
        st.cycle_active = false;
    }
    return true;
}

void PersistentColl::wait() {
    if (!valid()) {
        throw ArgumentError("wait on an uninitialized persistent collective");
    }
    detail::IcollState& st = *st_;
    if (!st.cycle_active) return;  // inactive: MPI wait is a no-op
    if (st.ctx->gate != nullptr) {
        throw ArgumentError(
            "PersistentColl::wait from inside the progress engine");
    }
    if (!st.merged) {
        detail::wait_icoll_done(st);
        detail::merge_icoll(st);
    }
    st.cycle_active = false;
    if (!st.waited) {
        st.waited = true;
        if (st.on_wait) st.on_wait();
    }
}

PersistentColl PersistentColl::barrier_init(const Comm& comm) {
    return PersistentColl(
        detail::create_icoll(comm, "barrier_init", [comm] { barrier(comm); }));
}

PersistentColl PersistentColl::bcast_init(const Comm& comm, void* buf,
                                          std::size_t count, Datatype dt,
                                          int root) {
    return PersistentColl(detail::create_icoll(
        comm, "bcast_init",
        [comm, buf, count, dt, root] { bcast(comm, buf, count, dt, root); }));
}

PersistentColl PersistentColl::allgather_init(const Comm& comm,
                                              const void* sendbuf,
                                              std::size_t count, void* recvbuf,
                                              Datatype dt) {
    return PersistentColl(detail::create_icoll(
        comm, "allgather_init", [comm, sendbuf, count, recvbuf, dt] {
            allgather(comm, sendbuf, count, recvbuf, dt);
        }));
}

PersistentColl PersistentColl::allgatherv_init(
    const Comm& comm, const void* sendbuf, std::size_t sendcount,
    void* recvbuf, std::span<const std::size_t> counts,
    std::span<const std::size_t> displs, Datatype dt) {
    std::vector<std::size_t> c(counts.begin(), counts.end());
    std::vector<std::size_t> d(displs.begin(), displs.end());
    return PersistentColl(detail::create_icoll(
        comm, "allgatherv_init",
        [comm, sendbuf, sendcount, recvbuf, c = std::move(c), d = std::move(d),
         dt] { allgatherv(comm, sendbuf, sendcount, recvbuf, c, d, dt); }));
}

PersistentColl PersistentColl::allreduce_init(const Comm& comm,
                                              const void* sendbuf,
                                              void* recvbuf, std::size_t count,
                                              Datatype dt, Op op) {
    return PersistentColl(detail::create_icoll(
        comm, "allreduce_init", [comm, sendbuf, recvbuf, count, dt, op] {
            allreduce(comm, sendbuf, recvbuf, count, dt, op);
        }));
}

}  // namespace minimpi
