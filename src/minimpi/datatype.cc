#include "minimpi/datatype.h"

#include <algorithm>

#include "minimpi/coll_internal.h"
#include "minimpi/error.h"

namespace minimpi {

Layout Layout::contiguous(std::size_t bytes) {
    Layout l;
    if (bytes > 0) l.extents_.emplace_back(0, bytes);
    l.size_ = bytes;
    l.extent_ = bytes;
    return l;
}

Layout Layout::vector(std::size_t count, std::size_t block_bytes,
                      std::size_t stride_bytes) {
    if (count > 0 && stride_bytes < block_bytes) {
        throw ArgumentError("vector layout stride smaller than block");
    }
    Layout l;
    for (std::size_t i = 0; i < count; ++i) {
        if (block_bytes > 0) {
            l.extents_.emplace_back(i * stride_bytes, block_bytes);
        }
    }
    l.size_ = count * block_bytes;
    l.extent_ = count == 0 ? 0 : (count - 1) * stride_bytes + block_bytes;
    return l;
}

Layout Layout::indexed(
    std::vector<std::pair<std::size_t, std::size_t>> extents) {
    Layout l;
    for (const auto& [off, len] : extents) {
        if (len == 0) continue;
        l.extents_.emplace_back(off, len);
        l.size_ += len;
        l.extent_ = std::max(l.extent_, off + len);
    }
    return l;
}

std::size_t Layout::pack(RankCtx& ctx, const void* base, void* out) const {
    std::size_t pos = 0;
    for (const auto& [off, len] : extents_) {
        ctx.copy_bytes(detail::at(out, pos), detail::at(base, off), len);
        pos += len;
    }
    return pos;
}

std::size_t Layout::unpack(RankCtx& ctx, const void* packed, void* base) const {
    std::size_t pos = 0;
    for (const auto& [off, len] : extents_) {
        ctx.copy_bytes(detail::at(base, off), detail::at(packed, pos), len);
        pos += len;
    }
    return pos;
}

}  // namespace minimpi
