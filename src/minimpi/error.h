#pragma once

#include <stdexcept>
#include <string>

namespace minimpi {

// Same alias as in types.h (which includes this header — redeclaring the
// alias here avoids the include cycle; the compiler rejects any divergence).
using VTime = double;

/// Base class for all errors raised by the runtime. Mirrors the MPI error
/// classes we actually need; the runtime follows the MPI_ERRORS_ARE_FATAL
/// spirit by throwing (a rank thread that throws aborts the whole job, and
/// Runtime::run rethrows the first error to the caller).
class MpiError : public std::runtime_error {
public:
    explicit MpiError(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument: bad rank, negative count, null buffer in Real payload
/// mode, invalid tag, mismatched datatype sizes, ...
class ArgumentError : public MpiError {
public:
    explicit ArgumentError(const std::string& what)
        : MpiError("invalid argument: " + what) {}
};

/// A receive buffer was too small for the matched message (MPI_ERR_TRUNCATE).
class TruncationError : public MpiError {
public:
    TruncationError(std::size_t msg_bytes, std::size_t buf_bytes)
        : MpiError("message truncated: incoming " + std::to_string(msg_bytes) +
                   " bytes exceeds receive buffer of " +
                   std::to_string(buf_bytes) + " bytes") {}
};

/// A receive matched a message that was lost in transit (FaultPlan drop
/// tombstone): the watchdog semantics of the simulated network — instead of
/// hanging forever, the receiver observes a typed timeout. Robust receives
/// (src/robust) catch the loss at the frame level and retry instead.
class TimeoutError : public MpiError {
public:
    TimeoutError(int src, int tag)
        : MpiError("watchdog timeout: message from world rank " +
                   std::to_string(src) + " (tag " + std::to_string(tag) +
                   ") lost in transit (dropped)") {}
};

/// Misuse of a communicator: wrong group, rank not a member, operation on
/// MPI_COMM_NULL, ...
class CommError : public MpiError {
public:
    explicit CommError(const std::string& what)
        : MpiError("communicator error: " + what) {}
};

/// Raised in ranks blocked on communication when another rank aborted the
/// job with an exception; the original exception is what Runtime::run
/// rethrows, JobAborted is only how the remaining ranks get unblocked.
class JobAborted : public MpiError {
public:
    explicit JobAborted(int by_rank)
        : MpiError("job aborted by world rank " + std::to_string(by_rank)) {}
};

/// A peer process died (FaultPlan kill): the ULFM MPI_ERR_PROC_FAILED
/// equivalent. Raised in a rank whose pending communication can never
/// complete because the peer it depends on stopped progressing — waiting on
/// a message, flag or rendezvous contribution owned by the dead rank.
/// Detection is deterministic: the death vtime is a pure function of the
/// killed rank's program, and the detector charges the observer
/// death_vtime + watchdog_us of virtual time (the watchdog that noticed the
/// silence). Recovery: revoke() the communicator, then agree_shrink().
class ProcessFailedError : public MpiError {
public:
    ProcessFailedError(int world_rank, VTime death_vtime)
        : MpiError("process failed: world rank " + std::to_string(world_rank) +
                   " died at vtime " + std::to_string(death_vtime) + "us"),
          world_rank_(world_rank),
          death_vtime_(death_vtime) {}

    int world_rank() const { return world_rank_; }
    VTime death_vtime() const { return death_vtime_; }

private:
    int world_rank_;
    VTime death_vtime_;
};

/// The communicator was revoked (ULFM MPI_ERR_REVOKED): some member observed
/// a process failure and called Comm::revoke() to interrupt every pending
/// and future operation on the communicator so all survivors reach the
/// recovery path. Unlike ProcessFailedError, a revoke interrupt charges NO
/// virtual time — the interrupted rank keeps its wait-entry clock — so
/// revocation never injects wall-clock scheduling into virtual time.
class CommRevokedError : public MpiError {
public:
    CommRevokedError() : MpiError("communicator revoked") {}
};

/// Comm::free on a communicator that still has operations in flight (an
/// outstanding nonblocking collective, or a member already gone through
/// free). MPI_Comm_free during active communication is erroneous; the
/// simulated runtime surfaces the misuse as a typed error instead of
/// undefined behaviour so churny multi-tenant streams fail loudly.
class CommBusyError : public CommError {
public:
    explicit CommBusyError(const std::string& what)
        : CommError("busy: " + what) {}
};

/// Misuse of a nonblocking-collective request handle: destroying a request
/// whose operation is still in flight (complete it with wait() — silently
/// cancelling would leak half-executed protocol state into the transport),
/// or starting an already-active persistent collective.
class RequestError : public MpiError {
public:
    explicit RequestError(const std::string& what)
        : MpiError("request error: " + what) {}
};

/// Misuse of a shared-memory window (e.g. querying a rank on another node).
class WinError : public MpiError {
public:
    explicit WinError(const std::string& what)
        : MpiError("window error: " + what) {}
};

}  // namespace minimpi
