#pragma once

/// Umbrella header for the minimpi runtime: a from-scratch, thread-per-rank
/// MPI-like library with a simulated multi-node cluster and a deterministic
/// virtual-time (Hockney/LogGP) performance model. See DESIGN.md.

#include "minimpi/cart.h"
#include "minimpi/cluster.h"
#include "minimpi/coll.h"
#include "minimpi/comm.h"
#include "minimpi/context.h"
#include "minimpi/datatype.h"
#include "minimpi/error.h"
#include "minimpi/icoll.h"
#include "minimpi/netmodel.h"
#include "minimpi/p2p.h"
#include "minimpi/request.h"
#include "minimpi/runtime.h"
#include "minimpi/trace.h"
#include "minimpi/types.h"
#include "minimpi/win.h"
