#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "minimpi/cluster.h"
#include "minimpi/comm.h"
#include "minimpi/context.h"
#include "minimpi/netmodel.h"
#include "minimpi/transport.h"
#include "minimpi/types.h"
#include "trace/span.h"

namespace minimpi {

/// Options controlling rank-thread execution.
struct RunOptions {
    /// Stack size per rank thread. Large jobs (64 nodes x 24 ranks = 1536
    /// threads) need small stacks; application code keeps big data on the
    /// heap.
    std::size_t stack_bytes = 1 << 20;

    /// Record per-rank event timelines (see trace.h); retrieve with
    /// Runtime::last_traces after run().
    bool trace = false;

    /// Record virtual-time spans and counters (see src/trace); retrieve
    /// with Runtime::last_span_traces after run(). Span recording is also
    /// switched on process-wide by HYMPI_TRACE=<path> (the Chrome export
    /// path), independent of this flag.
    bool spans = false;

    /// Additionally record per-message p2p spans (HYMPI_TRACE_P2P does the
    /// same process-wide). Off by default: they dominate trace volume and
    /// the per-phase breakdown does not need them.
    bool span_p2p = false;
};

/// The simulated MPI job: spawns one thread per rank of the ClusterSpec,
/// hands each a world communicator, and collects per-rank virtual clocks.
///
/// A Runtime can execute several `run` calls sequentially; each run starts
/// from fresh clocks, transport and communicator state.
class Runtime {
public:
    Runtime(ClusterSpec cluster, ModelParams model,
            PayloadMode payload = PayloadMode::Real, RunOptions opts = {});

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    /// Execute @p rank_main on every rank (as `rank_main(world)`), join all
    /// threads, and return the final virtual clock of each rank. The first
    /// exception thrown by any rank (lowest world rank wins) is rethrown
    /// after all threads have been joined or released.
    std::vector<VTime> run(const std::function<void(Comm&)>& rank_main);

    /// Per-rank communication counters of the most recent run().
    const std::vector<CommStats>& last_stats() const { return last_stats_; }

    /// Sum of last_stats() over ranks.
    CommStats total_stats() const;

    /// Per-rank resilience counters of the most recent run() (all zero
    /// unless robustness was enabled and faults were recovered).
    const std::vector<hympi::RobustStats>& last_robust_stats() const {
        return last_robust_stats_;
    }

    /// Sum of last_robust_stats() over ranks.
    hympi::RobustStats total_robust_stats() const;

    /// Per-rank event timelines of the most recent run() (empty unless
    /// RunOptions::trace was set).
    const std::vector<std::vector<TraceEvent>>& last_traces() const {
        return last_traces_;
    }

    /// Per-rank span traces/counters of the most recent run() (empty
    /// unless span tracing was on — RunOptions::spans or HYMPI_TRACE).
    const std::vector<hytrace::RankTrace>& last_span_traces() const {
        return last_span_traces_;
    }

    /// Sum of last_span_traces() counters over ranks.
    hytrace::Counters total_span_counters() const;

    const ClusterSpec& cluster() const { return cluster_; }
    const ModelParams& model() const { return model_; }
    PayloadMode payload_mode() const { return payload_; }

    /// Fresh matching-context pair for a new communicator.
    std::uint64_t alloc_ctx() { return next_ctx_.fetch_add(1); }

    /// Create and register a communicator over the given world ranks
    /// (ordered: index = comm rank). @p parent links the derivation tree
    /// revocation cascades down (null for roots: the world comm and
    /// agree_shrink's recovery comm). A child whose parent is already
    /// revoked is born revoked.
    CommState* create_comm(std::vector<int> members_world,
                           CommState* parent = nullptr);

    /// Register an arbitrary job-lifetime resource (shared windows, caches)
    /// so it is released when the current run's state is torn down.
    void keep_alive(std::shared_ptr<void> resource);

    Transport& transport() { return *transport_; }

    /// Deterministic fault/jitter plan applied to every subsequent run()
    /// (see FaultPlan). Pass {} to disable. Not thread-safe against a run
    /// in progress.
    void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
    const FaultPlan& fault_plan() const { return fault_plan_; }

    /// Resilience configuration for subsequent run()s. Defaults to
    /// RobustConfig::from_env() (HYMPI_ROBUST & friends); tests pin an
    /// explicit config for environment independence. Not thread-safe
    /// against a run in progress.
    void set_robust_config(hympi::RobustConfig cfg) { robust_cfg_ = cfg; }
    const hympi::RobustConfig& robust_config() const { return robust_cfg_; }

    /// Next shared-window allocation index on @p node (keys the fault
    /// plan's deterministic SHM allocation failures). Called from the
    /// window-allocation rendezvous finalizer.
    std::uint64_t next_shm_alloc_idx(int node);

    /// Abort the job on behalf of @p world_rank: poisons the transport and
    /// wakes every rank blocked in a collective rendezvous.
    void poison_from(int world_rank);

    /// Record the death of @p world_rank (FaultPlan kill) at virtual time
    /// @p at: marks it dead in the transport and wakes every rank blocked in
    /// a collective rendezvous so waits that depend on the dead rank raise
    /// ProcessFailedError. Unlike poison_from, the job keeps running — the
    /// survivors are expected to revoke + agree_shrink and continue.
    void on_rank_death(int world_rank, VTime at);

    /// Revoke both matching contexts of @p st in the transport, wake the
    /// comm's rendezvous waiters, and cascade to every registered comm
    /// derived from @p st (backs Comm::revoke).
    void revoke_comm(CommState& st);

    /// Modelled cost of a one-off collective coordination over @p nranks
    /// ranks (communicator creation, window allocation).
    VTime one_off_sync_cost(int nranks) const;

private:
    ClusterSpec cluster_;
    ModelParams model_;
    PayloadMode payload_;
    RunOptions opts_;

    std::unique_ptr<Transport> transport_;
    FaultPlan fault_plan_;
    hympi::RobustConfig robust_cfg_ = hympi::RobustConfig::from_env();
    std::atomic<std::uint64_t> next_ctx_{kFirstUserCtx};

    std::mutex registry_mu_;
    std::vector<std::unique_ptr<CommState>> comms_;
    std::vector<std::shared_ptr<void>> resources_;
    std::vector<CommStats> last_stats_;
    std::vector<hympi::RobustStats> last_robust_stats_;
    std::vector<std::vector<TraceEvent>> last_traces_;
    std::vector<hytrace::RankTrace> last_span_traces_;
    std::vector<std::uint64_t> shm_alloc_seq_;  ///< per-node, guarded by registry_mu_
};

}  // namespace minimpi
