#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "minimpi/comm.h"

namespace minimpi {

/// MPI-3 shared-memory window (MPI_Win_allocate_shared +
/// MPI_Win_shared_query). All ranks of the communicator must live on the
/// same simulated node (i.e. the communicator came from split_shared()),
/// matching the MPI requirement that the group be able to share memory.
///
/// The window is one contiguous block; rank i's segment starts where rank
/// i-1's ends (cache-line aligned), as with alloc_shared_noncontig=false.
/// In SizeOnly payload mode no memory is materialized and base pointers are
/// null — the control flow and the modelled costs are unchanged.
class Win {
public:
    Win() = default;

    bool valid() const { return state_ != nullptr; }

    /// Base pointer of the calling rank's own segment.
    std::byte* my_base() const;
    std::size_t my_size() const;

    /// MPI_Win_shared_query: base pointer and size of @p rank's segment
    /// (comm-local rank). Charges nothing — it is a local pointer lookup.
    std::pair<std::byte*, std::size_t> shared_query(int rank) const;

    /// Total bytes in the window (sum over ranks).
    std::size_t total_size() const;

    /// Whether the backing allocation failed (deterministically injected
    /// via FaultPlan::shm_fail_every). A failed window is still valid() —
    /// the collective completed and every rank agrees on the failure — but
    /// all segment base pointers are null.
    bool alloc_failed() const;

    /// The communicator the window was allocated on.
    const Comm& comm() const { return comm_; }

private:
    friend Win win_allocate_shared(const Comm&, std::size_t);

    struct WinState {
        std::vector<std::size_t> sizes;    ///< per comm rank
        std::vector<std::size_t> offsets;  ///< per comm rank, aligned
        std::size_t total = 0;
        std::unique_ptr<std::byte[]> block;  ///< null in SizeOnly mode
        std::byte* aligned = nullptr;  ///< cache-line-aligned base in block
        bool alloc_failed = false;     ///< injected allocation failure
    };

    std::shared_ptr<WinState> state_;
    Comm comm_;
    int rank_ = -1;
};

/// Collective: allocate a shared window with @p my_bytes local bytes
/// (different ranks may pass different sizes; the paper's hybrid allgather
/// has the leader ask for the whole node buffer and children ask for 0).
Win win_allocate_shared(const Comm& comm, std::size_t my_bytes);

}  // namespace minimpi
