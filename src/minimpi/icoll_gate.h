#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

namespace minimpi::detail {

/// Thrown out of IcollGate::yield when the request is torn down while its
/// body is still in flight: unwinds the worker's stack so RAII releases
/// posted receives and scratch buffers. Never escapes the worker loop.
struct IcollCancelled {};

/// Cooperative handoff between a rank's own thread (the "owner") and the
/// worker thread advancing one outstanding nonblocking collective (the
/// "task"). Exactly one of the two runs at any moment: the owner sleeps in
/// the engine's drive() while the task holds the turn, and the task sleeps
/// in yield() (or in its idle loop) otherwise — so RankCtx never sees
/// concurrent access even though two OS threads share it, and TSan agrees.
///
/// Tasks never block the OS thread inside the transport or a collective
/// rendezvous: every would-block point checks `ctx.gate` and yields the
/// turn instead, which is what lets Test() poll without spinning virtual
/// time and lets a Wait() on one request keep every other outstanding
/// request progressing (the MPI progress rule).
struct IcollGate {
    std::mutex mu;
    std::condition_variable cv;
    bool task_turn = false;  ///< task may run; owner sleeps meanwhile
    bool armed = false;      ///< a body is pending or executing
    bool done = false;       ///< body ran to completion (task-written)
    bool shutdown = false;   ///< worker thread must exit its loop
    std::exception_ptr err;  ///< first exception thrown by the body

    /// Private matching context of the request (bit 63 set; derived from
    /// the communicator's ctx_coll and the per-comm posting order, so it
    /// agrees on every member rank). Also namespaces gate-keyed rendezvous
    /// slots: epoch keys are small integers and can never collide with it.
    std::uint64_t rdv_ctx = 0;
    /// Op-local rendezvous counter. Every member runs the same blocking
    /// algorithm under the gate, so the per-call sequence agrees across
    /// ranks and keys all of them into the same slot.
    std::uint64_t rdv_seq = 0;

    std::uint64_t next_rdv_key() { return rdv_ctx + (rdv_seq++ << 40); }

    /// Called from TASK code at a would-block point: hand the turn back to
    /// the owner and sleep until the next drive(). Throws IcollCancelled
    /// when the request is being torn down mid-flight.
    void yield() {
        std::unique_lock<std::mutex> lk(mu);
        task_turn = false;
        cv.notify_all();
        cv.wait(lk, [&] { return task_turn || shutdown; });
        if (shutdown) throw IcollCancelled{};
    }
};

}  // namespace minimpi::detail
