#include "minimpi/coll.h"
#include "minimpi/coll_internal.h"
#include "minimpi/runtime.h"

namespace minimpi::detail {

bool smp_hier_applicable(const Comm& comm) {
    const int p = comm.size();
    if (p <= 1) return false;
    const int node0 = comm.node_of(0);
    bool multi_node = false;
    bool multi_rank_node = false;
    // A node hosts >1 member iff two comm ranks map to it; membership per
    // node is contiguous only under SMP placement, so count per node in one
    // general scan, stopping as soon as both conditions hold.
    std::vector<int> seen_count;
    for (int i = 0; i < p && !(multi_node && multi_rank_node); ++i) {
        const int n = comm.node_of(i);
        if (n != node0) multi_node = true;
        if (static_cast<std::size_t>(n) >= seen_count.size()) {
            seen_count.resize(static_cast<std::size_t>(n) + 1, 0);
        }
        if (++seen_count[static_cast<std::size_t>(n)] > 1) {
            multi_rank_node = true;
        }
    }
    return multi_node && multi_rank_node;
}

const HierHandles& hier(const Comm& comm) {
    RankCtx& ctx = comm.ctx();
    const void* key = &comm.state();
    auto it = ctx.comm_caches.find(key);
    if (it != ctx.comm_caches.end()) {
        return *std::static_pointer_cast<HierHandles>(it->second);
    }

    auto h = std::make_shared<HierHandles>();
    const int p = comm.size();

    // Node-major ordering: nodes appear in order of their lowest comm rank
    // (== the leader), members within a node in increasing comm rank.
    std::vector<int> node_of_index;   // node-major node list (cluster ids)
    std::vector<std::vector<int>> members_per_node;
    h->node_index_of.assign(static_cast<std::size_t>(p), -1);
    for (int i = 0; i < p; ++i) {
        const int n = comm.node_of(i);
        int idx = -1;
        for (std::size_t j = 0; j < node_of_index.size(); ++j) {
            if (node_of_index[j] == n) {
                idx = static_cast<int>(j);
                break;
            }
        }
        if (idx < 0) {
            idx = static_cast<int>(node_of_index.size());
            node_of_index.push_back(n);
            members_per_node.emplace_back();
        }
        h->node_index_of[static_cast<std::size_t>(i)] = idx;
        members_per_node[static_cast<std::size_t>(idx)].push_back(i);
    }

    const int nnodes = static_cast<int>(node_of_index.size());
    h->multi_node = nnodes > 1;
    h->node_sizes.resize(static_cast<std::size_t>(nnodes));
    h->node_offsets.resize(static_cast<std::size_t>(nnodes));
    h->node_leader.resize(static_cast<std::size_t>(nnodes));
    h->single_rank_nodes = true;
    int offset = 0;
    for (int i = 0; i < nnodes; ++i) {
        const auto& members = members_per_node[static_cast<std::size_t>(i)];
        h->node_sizes[static_cast<std::size_t>(i)] =
            static_cast<int>(members.size());
        h->node_offsets[static_cast<std::size_t>(i)] = offset;
        h->node_leader[static_cast<std::size_t>(i)] = members.front();
        offset += static_cast<int>(members.size());
        if (members.size() > 1) h->single_rank_nodes = false;
        h->perm.insert(h->perm.end(), members.begin(), members.end());
    }
    h->identity_perm = true;
    for (int i = 0; i < p; ++i) {
        if (h->perm[static_cast<std::size_t>(i)] != i) {
            h->identity_perm = false;
            break;
        }
    }

    h->my_node_index = h->node_index_of[static_cast<std::size_t>(comm.rank())];
    h->is_leader =
        (h->node_leader[static_cast<std::size_t>(h->my_node_index)] ==
         comm.rank());

    // The two collective splits. Every member reaches this code on its
    // first hierarchical collective on this communicator, so the calls
    // line up across ranks.
    h->shm = comm.split(h->my_node_index, comm.rank());
    h->bridge = comm.split(h->is_leader ? 0 : kUndefined, comm.rank());

    ctx.comm_caches.emplace(key, h);
    return *h;
}

}  // namespace minimpi::detail
