#include "minimpi/p2p.h"

#include <algorithm>

#include "minimpi/error.h"
#include "minimpi/runtime.h"
#include "minimpi/trace_span.h"

namespace minimpi {

namespace {

void validate_rank(const Comm& comm, int rank, bool allow_wildcards,
                   const char* what) {
    if (rank == kProcNull) return;
    if (allow_wildcards && rank == kAnySource) return;
    if (rank < 0 || rank >= comm.size()) {
        throw ArgumentError(std::string(what) + " rank " +
                            std::to_string(rank) + " out of range for size " +
                            std::to_string(comm.size()));
    }
}

void validate_tag(int tag, bool allow_any) {
    if (allow_any && tag == kAnyTag) return;
    if (tag < 0 || tag >= kTagUpperBound) {
        throw ArgumentError("tag " + std::to_string(tag) + " out of range");
    }
}

void validate_buffer(const Comm& comm, const void* buf, std::size_t bytes) {
    if (bytes > 0 && buf == nullptr &&
        comm.ctx().payload_mode == PayloadMode::Real) {
        throw ArgumentError("null buffer with nonzero count in Real payload mode");
    }
}

/// Transport wait that cooperates with the nonblocking-collective engine.
/// Inside an engine task (gate active) it polls and yields the turn instead
/// of blocking the OS thread — the owner's Wait() keeps driving every
/// outstanding request meanwhile. In owner context with requests
/// outstanding it polls and drives them (the MPI progress rule: a blocking
/// call must keep nonblocking operations advancing, or two ranks blocked on
/// traffic the other's engine still has in flight would deadlock). Only
/// with nothing outstanding does it block in the transport.
void wait_recv_yielding_inner(RankCtx& ctx, PostedRecv* pr) {
    Transport& tp = ctx.runtime->transport();
    if (ctx.gate != nullptr) {
        while (!tp.test_recv(ctx.world_rank, pr)) {
            tp.check_poison();
            tp.check_recv_interrupt(ctx.world_rank, pr);
            ctx.gate->yield();
        }
        return;
    }
    if (ctx.active_icolls.empty()) {
        tp.wait_recv(ctx.world_rank, pr);
        return;
    }
    int spins = 0;
    while (!tp.test_recv(ctx.world_rank, pr)) {
        tp.check_poison();
        tp.check_recv_interrupt(ctx.world_rank, pr);
        detail::icoll_progress(ctx);
        detail::icoll_backoff(spins++);
    }
}

/// The deterministic failure detector's accounting, applied where a blocked
/// receive observed a peer death: the observer's clock advances to
/// death_vtime + watchdog_us (the virtual-time watchdog that noticed the
/// silence — a pure function of the killed rank's program, never of host
/// scheduling), failures_detected counters bump, and a Robust "detect" span
/// covers the wait. Revocation interrupts charge nothing, on purpose.
void charge_failure_detection(RankCtx& ctx, const ProcessFailedError& e,
                              VTime t0) {
    ctx.vck().sync_to(e.death_vtime() + ctx.robust_cfg->watchdog_us);
    ctx.robust_stats.failures_detected += 1;
    HYTRACE_COUNTER(ctx, failures_detected, 1);
    if (hytrace::Span* s =
            trace_complete(ctx, hytrace::Phase::Robust, "detect", t0)) {
        s->peer = e.world_rank();
    }
}

void wait_recv_yielding(RankCtx& ctx, PostedRecv* pr) {
    const VTime t0 = ctx.vck().now();
    try {
        wait_recv_yielding_inner(ctx, pr);
    } catch (const ProcessFailedError& e) {
        charge_failure_detection(ctx, e, t0);
        throw;
    }
}

}  // namespace

namespace detail {

VTime tenant_bridge_start(TenantState& ts, VTime now, std::size_t bytes) {
    if (ts.tenant >= 0 &&
        static_cast<std::size_t>(ts.tenant) < ts.bridge_bytes.size()) {
        ts.bridge_bytes[static_cast<std::size_t>(ts.tenant)] += bytes;
        ts.bridge_msgs[static_cast<std::size_t>(ts.tenant)] += 1;
    }
    VTime wait = ts.nic_busy - now;
    if (wait <= 0.0) {
        // Idle port: nothing to arbitrate; this tenant becomes the backlog
        // owner for whoever queues behind this message.
        ts.nic_owner = ts.tenant;
        return now;
    }
    if (ts.policy == QosPolicy::WeightedShares && ts.nic_owner != ts.tenant &&
        ts.total_weight > 0.0) {
        // Weighted shares: grant this tenant its share of the port while
        // the other tenant's backlog drains, so only the remaining fraction
        // of the queueing delay is observed. Self-owned backlog keeps the
        // full FIFO wait — a tenant cannot preempt its own queue.
        wait *= 1.0 - ts.weight / ts.total_weight;
    }
    ts.nic_owner = ts.tenant;
    return now + wait;
}

void send_bytes(const Comm& comm, const void* buf, std::size_t bytes, int dest,
                int tag, bool coll_ctx) {
    if (dest == kProcNull) return;
    RankCtx& ctx = comm.ctx();
    // Kill checkpoint + ULFM entry check. Sending on a revoked comm fails
    // immediately; a dead MEMBER does not block point-to-point between live
    // peers (matching ULFM: only operations involving the failed process
    // raise an error). Both checks are single relaxed/acquire loads on
    // fault-free runs.
    check_alive(ctx);
    if (comm.state().revoked.load(std::memory_order_acquire)) {
        throw CommRevokedError();
    }
    if (comm.state().freed.load(std::memory_order_acquire)) {
        throw CommError("send on a freed communicator");
    }
    const int dst_world = comm.to_world(dest);
    const LinkParams& link = ctx.link_to(dst_world);

    const VTime t_send0 = ctx.vck().now();
    ctx.vck().advance(link.overhead_us);
    if (ctx.tracer) {
        ctx.tracer->record(TraceEvent::Kind::Send, t_send0, ctx.vck().now(),
                           dst_world, bytes);
    }
    if (trace_p2p(ctx)) {
        hytrace::Span* s =
            trace_complete(ctx, hytrace::Phase::P2P, "send", t_send0);
        s->peer = dst_world;
        s->bytes = bytes;
    }
    ctx.stats.msgs_sent += 1;
    ctx.stats.bytes_sent += bytes;
    if (ctx.cluster->same_node(ctx.world_rank, dst_world)) {
        ctx.stats.intra_node_msgs += 1;
        if (!ctx.cluster->same_socket(ctx.world_rank, dst_world)) {
            ctx.stats.xsocket_bytes += bytes;
            HYTRACE_COUNTER(ctx, xsocket_bytes, bytes);
        }
    } else {
        ctx.stats.inter_node_msgs += 1;
    }

    // Bandwidth serialization: this message's bytes occupy the link after
    // any still-draining earlier message to the same destination. Under a
    // multi-tenant run (ctx.tenant installed by src/service) inter-node
    // traffic instead serializes through the rank's single NIC injection
    // port via the QoS arbiter, which may discount queueing behind another
    // tenant's backlog and attributes the bytes per tenant.
    const VTime transfer = static_cast<VTime>(bytes) * link.beta_us_per_byte;
    VTime start;
    if (ctx.tenant != nullptr &&
        !ctx.cluster->same_node(ctx.world_rank, dst_world)) {
        start = tenant_bridge_start(*ctx.tenant, ctx.vck().now(), bytes);
        // max(): a weighted-QoS send may inject while the port still drains
        // another tenant's backlog, but it must never ERASE that backlog —
        // total occupancy always grows by the full transfer time.
        ctx.tenant->nic_busy = std::max(ctx.tenant->nic_busy, start) + transfer;
    } else {
        VTime& busy = (*ctx.cur_busy)[dst_world];
        start = std::max(ctx.vck().now(), busy);
        busy = start + transfer;
    }

    InMsg msg;
    msg.ctx = coll_ctx ? (ctx.coll_ctx_override != 0 ? ctx.coll_ctx_override
                                                     : comm.state().ctx_coll)
                       : comm.state().ctx_p2p;
    msg.src_global = ctx.world_rank;
    msg.tag = tag;
    msg.bytes = bytes;
    msg.payload = ctx.runtime->transport().make_payload(buf, bytes);
    msg.arrival = start + transfer + link.alpha_us;
    msg.recv_overhead = link.overhead_us;
    msg.fault_seq = ctx.fault_seq[dst_world]++;
    ctx.runtime->transport().deliver(dst_world, std::move(msg));
}

Request irecv_bytes(const Comm& comm, void* buf, std::size_t bytes, int source,
                    int tag, bool coll_ctx) {
    RankCtx& ctx = comm.ctx();
    check_alive(ctx);
    if (comm.state().revoked.load(std::memory_order_acquire)) {
        throw CommRevokedError();
    }
    if (comm.state().freed.load(std::memory_order_acquire)) {
        throw CommError("receive on a freed communicator");
    }
    auto posted = std::make_unique<PostedRecv>();
    posted->ctx = coll_ctx
                      ? (ctx.coll_ctx_override != 0 ? ctx.coll_ctx_override
                                                    : comm.state().ctx_coll)
                      : comm.state().ctx_p2p;
    posted->src_global =
        (source == kAnySource) ? kAnySource : comm.to_world(source);
    posted->tag = tag;
    posted->buf = buf;
    posted->capacity = bytes;
    posted->post_vtime = ctx.vck().now();
    ctx.runtime->transport().post_recv(ctx.world_rank, posted.get());
    return Request::make_recv(comm, std::move(posted));
}

Request irecv_bytes_ctx(const Comm& comm, void* buf, std::size_t bytes,
                        int source, int tag, std::uint64_t ctx_id) {
    RankCtx& ctx = comm.ctx();
    check_alive(ctx);
    auto posted = std::make_unique<PostedRecv>();
    posted->ctx = ctx_id;
    posted->src_global =
        (source == kAnySource) ? kAnySource : comm.to_world(source);
    posted->tag = tag;
    posted->buf = buf;
    posted->capacity = bytes;
    posted->post_vtime = ctx.vck().now();
    ctx.runtime->transport().post_recv(ctx.world_rank, posted.get());
    return Request::make_recv(comm, std::move(posted));
}

Status recv_bytes(const Comm& comm, void* buf, std::size_t bytes, int source,
                  int tag, bool coll_ctx) {
    if (source == kProcNull) return Status{kProcNull, tag, 0};
    return irecv_bytes(comm, buf, bytes, source, tag, coll_ctx).wait();
}

Request isend_bytes(const Comm& comm, const void* buf, std::size_t bytes,
                    int dest, int tag, bool coll_ctx) {
    send_bytes(comm, buf, bytes, dest, tag, coll_ctx);
    return Request::make_send(comm);
}

void send_frame(const Comm& comm, const void* buf, std::size_t bytes, int dest,
                int tag, std::uint64_t ctx_id, bool robust_frame) {
    if (dest == kProcNull) return;
    RankCtx& ctx = comm.ctx();
    // Kill checkpoint only — no revoked-comm check: frames carry the robust
    // ARQ, including the recovery confirmation leg, which must keep flowing
    // on comms adjacent to a revocation.
    check_alive(ctx);
    const int dst_world = comm.to_world(dest);
    const LinkParams& link = ctx.link_to(dst_world);

    const VTime t_send0 = ctx.clock.now();
    ctx.clock.advance(link.overhead_us);
    if (ctx.tracer) {
        ctx.tracer->record(TraceEvent::Kind::Send, t_send0, ctx.clock.now(),
                           dst_world, bytes);
    }
    if (trace_p2p(ctx)) {
        hytrace::Span* s =
            trace_complete(ctx, hytrace::Phase::P2P, "send_frame", t_send0);
        s->peer = dst_world;
        s->bytes = bytes;
    }
    ctx.stats.msgs_sent += 1;
    ctx.stats.bytes_sent += bytes;
    if (ctx.cluster->same_node(ctx.world_rank, dst_world)) {
        ctx.stats.intra_node_msgs += 1;
        if (!ctx.cluster->same_socket(ctx.world_rank, dst_world)) {
            ctx.stats.xsocket_bytes += bytes;
            HYTRACE_COUNTER(ctx, xsocket_bytes, bytes);
        }
    } else {
        ctx.stats.inter_node_msgs += 1;
    }

    const VTime transfer = static_cast<VTime>(bytes) * link.beta_us_per_byte;
    // Reserved contexts model a dedicated control side band: they neither
    // queue behind nor occupy the data link. Sharing link_busy_until with
    // data frames would couple the two directions of the robust serve loop
    // through a wall-clock-ordered max, breaking clock determinism when a
    // transfer's ctrl peer and data peer are the same rank.
    VTime start = ctx.clock.now();
    if (ctx_id >= kFirstUserCtx) {
        VTime& busy = ctx.link_busy_until[dst_world];
        start = std::max(start, busy);
        busy = start + transfer;
    }

    InMsg msg;
    msg.ctx = ctx_id;
    msg.src_global = ctx.world_rank;
    msg.tag = tag;
    msg.bytes = bytes;
    msg.payload = ctx.runtime->transport().make_payload(buf, bytes);
    msg.arrival = start + transfer + link.alpha_us;
    msg.recv_overhead = link.overhead_us;
    // Reserved contexts (the robust ctrl side band) are fault-exempt and
    // must not consume from the per-destination faultable stream either:
    // ctrl frames are emitted from the full-duplex serve loop, whose order
    // relative to data retransmissions to the SAME peer is a wall-clock
    // race. Letting them advance the counter would make the data frames'
    // fault_seq — and so the injected fault pattern — nondeterministic.
    msg.fault_seq =
        ctx_id >= kFirstUserCtx ? ctx.fault_seq[dst_world]++ : 0;
    msg.robust_frame = robust_frame;
    ctx.runtime->transport().deliver(dst_world, std::move(msg));
}

void post_frame_recv(const Comm& comm, PostedRecv* pr, void* buf,
                     std::size_t bytes, int source, int tag,
                     std::uint64_t ctx_id) {
    RankCtx& ctx = comm.ctx();
    check_alive(ctx);
    *pr = PostedRecv{};
    pr->ctx = ctx_id;
    pr->src_global =
        (source == kAnySource) ? kAnySource : comm.to_world(source);
    pr->tag = tag;
    pr->buf = buf;
    pr->capacity = bytes;
    pr->post_vtime = ctx.clock.now();
    ctx.runtime->transport().post_recv(ctx.world_rank, pr);
}

FrameRecvResult finish_frame_recv(const Comm& comm, PostedRecv& pr) {
    RankCtx& ctx = comm.ctx();
    const VTime t_recv0 = ctx.clock.now();
    ctx.clock.sync_to(pr.arrival);
    ctx.clock.advance(pr.recv_overhead);
    if (ctx.tracer) {
        ctx.tracer->record(TraceEvent::Kind::Recv, t_recv0, ctx.clock.now(),
                           pr.matched_src, pr.msg_bytes);
    }
    if (trace_p2p(ctx)) {
        hytrace::Span* s =
            trace_complete(ctx, hytrace::Phase::P2P, "recv_frame", t_recv0);
        s->peer = pr.matched_src;
        s->bytes = pr.msg_bytes;
    }
    ctx.stats.msgs_received += 1;
    ctx.stats.bytes_received += pr.msg_bytes;
    FrameRecvResult res;
    res.bytes = pr.msg_bytes;
    res.src = comm.from_world(pr.matched_src);
    res.tag = pr.matched_tag;
    res.dropped = pr.dropped;
    return res;
}

}  // namespace detail

void send(const Comm& comm, const void* buf, std::size_t count, Datatype dt,
          int dest, int tag) {
    validate_rank(comm, dest, false, "destination");
    validate_tag(tag, false);
    const std::size_t bytes = count * datatype_size(dt);
    validate_buffer(comm, buf, bytes);
    detail::send_bytes(comm, buf, bytes, dest, tag, false);
}

void ssend(const Comm& comm, const void* buf, std::size_t count, Datatype dt,
           int dest, int tag) {
    validate_rank(comm, dest, false, "destination");
    validate_tag(tag, false);
    const std::size_t bytes = count * datatype_size(dt);
    validate_buffer(comm, buf, bytes);
    if (dest == kProcNull) return;

    RankCtx& ctx = comm.ctx();
    detail::check_alive(ctx);
    if (comm.state().revoked.load(std::memory_order_acquire)) {
        throw CommRevokedError();
    }
    const int dst_world = comm.to_world(dest);
    const LinkParams& link = ctx.link_to(dst_world);

    const VTime t_ssend0 = ctx.vck().now();
    ctx.vck().advance(link.overhead_us);
    const VTime transfer = static_cast<VTime>(bytes) * link.beta_us_per_byte;
    VTime& busy = (*ctx.cur_busy)[dst_world];
    const VTime start = std::max(ctx.vck().now(), busy);
    busy = start + transfer;

    const int ack_tag = static_cast<int>(ctx.ssend_seq++);
    InMsg msg;
    msg.ctx = comm.state().ctx_p2p;
    msg.src_global = ctx.world_rank;
    msg.tag = tag;
    msg.bytes = bytes;
    msg.payload = ctx.runtime->transport().make_payload(buf, bytes);
    msg.arrival = start + transfer + link.alpha_us;
    msg.recv_overhead = link.overhead_us;
    msg.ack_to = ctx.world_rank;
    msg.ack_tag = ack_tag;
    msg.ack_alpha = link.alpha_us;
    msg.fault_seq = ctx.fault_seq[dst_world]++;
    ctx.runtime->transport().deliver(dst_world, std::move(msg));

    // MPI_Ssend completes only once the matching receive has started: wait
    // for the acknowledgement and adopt its modelled arrival.
    PostedRecv ack;
    ack.ctx = kAckCtx;
    ack.src_global = dst_world;
    ack.tag = ack_tag;
    ack.post_vtime = ctx.vck().now();
    ctx.runtime->transport().post_recv(ctx.world_rank, &ack);
    wait_recv_yielding(ctx, &ack);
    ctx.vck().sync_to(ack.arrival);
    if (trace_p2p(ctx)) {
        hytrace::Span* s =
            trace_complete(ctx, hytrace::Phase::P2P, "ssend", t_ssend0);
        s->peer = dst_world;
        s->bytes = bytes;
    }
}

Status recv(const Comm& comm, void* buf, std::size_t count, Datatype dt,
            int source, int tag) {
    validate_rank(comm, source, true, "source");
    validate_tag(tag, true);
    const std::size_t bytes = count * datatype_size(dt);
    validate_buffer(comm, buf, bytes);
    return detail::recv_bytes(comm, buf, bytes, source, tag, false);
}

Request isend(const Comm& comm, const void* buf, std::size_t count,
              Datatype dt, int dest, int tag) {
    validate_rank(comm, dest, false, "destination");
    validate_tag(tag, false);
    const std::size_t bytes = count * datatype_size(dt);
    validate_buffer(comm, buf, bytes);
    if (dest == kProcNull) return Request::make_send(comm);
    return detail::isend_bytes(comm, buf, bytes, dest, tag, false);
}

Request irecv(const Comm& comm, void* buf, std::size_t count, Datatype dt,
              int source, int tag) {
    validate_rank(comm, source, true, "source");
    validate_tag(tag, true);
    const std::size_t bytes = count * datatype_size(dt);
    validate_buffer(comm, buf, bytes);
    return detail::irecv_bytes(comm, buf, bytes, source, tag, false);
}

Status sendrecv(const Comm& comm, const void* sendbuf, std::size_t sendcount,
                int dest, int sendtag, void* recvbuf, std::size_t recvcount,
                int source, int recvtag, Datatype dt) {
    Request rr = irecv(comm, recvbuf, recvcount, dt, source, recvtag);
    send(comm, sendbuf, sendcount, dt, dest, sendtag);
    if (source == kProcNull) return Status{kProcNull, recvtag, 0};
    return rr.wait();
}

bool iprobe(const Comm& comm, int source, int tag, Status* out) {
    validate_rank(comm, source, true, "source");
    validate_tag(tag, true);
    RankCtx& ctx = comm.ctx();
    const int src_world =
        (source == kAnySource) ? kAnySource : comm.to_world(source);
    Status st;
    const bool found = ctx.runtime->transport().iprobe(
        ctx.world_rank, comm.state().ctx_p2p, src_world, tag, &st);
    if (found && out) {
        st.source = comm.from_world(st.source);
        *out = st;
    }
    return found;
}

void probe(const Comm& comm, int source, int tag, Status* out) {
    validate_rank(comm, source, true, "source");
    validate_tag(tag, true);
    RankCtx& ctx = comm.ctx();
    const int src_world =
        (source == kAnySource) ? kAnySource : comm.to_world(source);
    Status st;
    const VTime t0 = ctx.vck().now();
    try {
        ctx.runtime->transport().probe(ctx.world_rank, comm.state().ctx_p2p,
                                       src_world, tag, &st);
    } catch (const ProcessFailedError& e) {
        charge_failure_detection(ctx, e, t0);
        throw;
    }
    st.source = comm.from_world(st.source);
    if (out) *out = st;
}

// ---- Request ----

Request::~Request() { release(); }

Request& Request::operator=(Request&& other) noexcept {
    if (this != &other) {
        release();
        ctx_ = other.ctx_;
        state_ = other.state_;
        recv_ = std::move(other.recv_);
        done_ = other.done_;
        done_status_ = other.done_status_;
        other.ctx_ = nullptr;
        other.state_ = nullptr;
        other.done_ = false;
    }
    return *this;
}

void Request::release() {
    if (recv_ && ctx_ != nullptr && !recv_->completed) {
        ctx_->runtime->transport().cancel_recv(ctx_->world_rank, recv_.get());
    }
    recv_.reset();
    ctx_ = nullptr;
    state_ = nullptr;
}

Request Request::make_send(const Comm& comm) {
    Request r;
    r.ctx_ = &comm.ctx();
    r.state_ = &comm.state();
    return r;
}

Request Request::make_recv(const Comm& comm, std::unique_ptr<PostedRecv> pr) {
    Request r;
    r.ctx_ = &comm.ctx();
    r.state_ = &comm.state();
    r.recv_ = std::move(pr);
    return r;
}

Status Request::finish_recv() {
    PostedRecv& pr = *recv_;
    const VTime t_recv0 = ctx_->vck().now();
    ctx_->vck().sync_to(pr.arrival);
    ctx_->vck().advance(pr.recv_overhead);
    if (ctx_->tracer) {
        ctx_->tracer->record(TraceEvent::Kind::Recv, t_recv0,
                             ctx_->vck().now(), pr.matched_src, pr.msg_bytes);
    }
    if (trace_p2p(*ctx_)) {
        hytrace::Span* s =
            trace_complete(*ctx_, hytrace::Phase::P2P, "recv", t_recv0);
        s->peer = pr.matched_src;
        s->bytes = pr.msg_bytes;
    }
    ctx_->stats.msgs_received += 1;
    ctx_->stats.bytes_received += pr.msg_bytes;
    if (pr.truncated) {
        const auto msg_bytes = pr.msg_bytes;
        const auto cap = pr.capacity;
        release();
        throw TruncationError(msg_bytes, cap);
    }
    if (pr.dropped) {
        // The matched message was lost in transit (FaultPlan tombstone).
        // Plain receives surface the loss as a typed timeout; the robust
        // frame path (detail::finish_frame_recv) tolerates it and retries.
        const int src = state_->from_world(pr.matched_src);
        const int tag = pr.matched_tag;
        release();
        throw TimeoutError(src, tag);
    }
    Status st;
    st.source = state_->from_world(pr.matched_src);
    st.tag = pr.matched_tag;
    st.bytes = pr.msg_bytes;
    done_ = true;
    done_status_ = st;
    release();
    return st;
}

Status Request::wait() {
    if (!valid()) {
        // Double-wait / wait-after-test-success: no-op returning the
        // status cached at completion (default Status if never completed).
        return done_ ? done_status_ : Status{};
    }
    if (!recv_) {  // send requests are already complete
        Status st;
        done_ = true;
        done_status_ = st;
        release();
        return st;
    }
    wait_recv_yielding(*ctx_, recv_.get());
    return finish_recv();
}

bool Request::test(Status* out) {
    if (!valid()) {
        if (out != nullptr && done_) *out = done_status_;
        return true;
    }
    if (!recv_) {
        done_ = true;
        done_status_ = Status{};
        release();
        return true;
    }
    if (!ctx_->runtime->transport().test_recv(ctx_->world_rank, recv_.get())) {
        return false;
    }
    Status st = finish_recv();
    if (out) *out = st;
    return true;
}

void wait_all(std::span<Request> reqs) {
    for (Request& r : reqs) {
        r.wait();
    }
}

int wait_any(std::span<Request> reqs, Status* out) {
    // Completed sends and already-completed receives win immediately, in
    // index order (deterministic).
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!reqs[i].valid()) continue;
        Status st;
        if (reqs[i].test(&st)) {
            if (out) *out = st;
            return static_cast<int>(i);
        }
    }
    // Everything valid is a pending receive: block until one completes.
    std::vector<PostedRecv*> pending;
    std::vector<std::size_t> index_of;
    RankCtx* ctx = nullptr;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (PostedRecv* pr = reqs[i].pending_recv()) {
            pending.push_back(pr);
            index_of.push_back(i);
            ctx = &reqs[i].owner_ctx();
        }
    }
    if (pending.empty()) return -1;
    const VTime t0 = ctx->vck().now();
    try {
        if (ctx->gate == nullptr && !ctx->active_icolls.empty()) {
            // Owner context with nonblocking collectives outstanding: poll
            // and keep them progressing instead of blocking in the
            // transport.
            int spins = 0;
            for (;;) {
                for (std::size_t i = 0; i < pending.size(); ++i) {
                    if (ctx->runtime->transport().test_recv(ctx->world_rank,
                                                            pending[i])) {
                        const std::size_t idx2 = index_of[i];
                        Status st2;
                        reqs[idx2].test(&st2);
                        if (out) *out = st2;
                        return static_cast<int>(idx2);
                    }
                }
                ctx->runtime->transport().check_poison();
                for (PostedRecv* pr : pending) {
                    ctx->runtime->transport().check_recv_interrupt(
                        ctx->world_rank, pr);
                }
                detail::icoll_progress(*ctx);
                detail::icoll_backoff(spins++);
            }
        }
        if (ctx->gate != nullptr) {
            // Task context: poll in index order and yield between sweeps.
            for (;;) {
                for (std::size_t i = 0; i < pending.size(); ++i) {
                    if (ctx->runtime->transport().test_recv(ctx->world_rank,
                                                            pending[i])) {
                        const std::size_t idx2 = index_of[i];
                        Status st2;
                        reqs[idx2].test(&st2);
                        if (out) *out = st2;
                        return static_cast<int>(idx2);
                    }
                }
                ctx->runtime->transport().check_poison();
                for (PostedRecv* pr : pending) {
                    ctx->runtime->transport().check_recv_interrupt(
                        ctx->world_rank, pr);
                }
                ctx->gate->yield();
            }
        }
        const std::size_t hit =
            ctx->runtime->transport().wait_any_recv(ctx->world_rank, pending);
        const std::size_t idx = index_of[hit];
        Status st;
        reqs[idx].test(&st);  // completed: consumes and charges the clock
        if (out) *out = st;
        return static_cast<int>(idx);
    } catch (const ProcessFailedError& e) {
        charge_failure_detection(*ctx, e, t0);
        throw;
    }
}

PersistentRequest PersistentRequest::send_init(const Comm& comm,
                                               const void* buf,
                                               std::size_t count, Datatype dt,
                                               int dest, int tag) {
    validate_rank(comm, dest, false, "destination");
    validate_tag(tag, false);
    PersistentRequest p;
    p.kind_ = Kind::Send;
    p.comm_ = comm;
    p.buf_ = const_cast<void*>(buf);
    p.count_ = count;
    p.dt_ = dt;
    p.peer_ = dest;
    p.tag_ = tag;
    return p;
}

PersistentRequest PersistentRequest::recv_init(const Comm& comm, void* buf,
                                               std::size_t count, Datatype dt,
                                               int source, int tag) {
    validate_rank(comm, source, true, "source");
    validate_tag(tag, true);
    PersistentRequest p;
    p.kind_ = Kind::Recv;
    p.comm_ = comm;
    p.buf_ = buf;
    p.count_ = count;
    p.dt_ = dt;
    p.peer_ = source;
    p.tag_ = tag;
    return p;
}

void PersistentRequest::start() {
    if (!valid()) throw ArgumentError("start on an uninitialized request");
    if (active()) throw ArgumentError("start on an already-active request");
    if (kind_ == Kind::Send) {
        inner_ = isend(comm_, buf_, count_, dt_, peer_, tag_);
    } else {
        inner_ = irecv(comm_, buf_, count_, dt_, peer_, tag_);
    }
}

Status PersistentRequest::wait() {
    if (!active()) throw ArgumentError("wait on an inactive persistent request");
    return inner_.wait();
}

int test_some(std::span<Request> reqs,
              std::vector<std::pair<int, Status>>* done) {
    int n = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!reqs[i].valid()) continue;
        Status st;
        if (reqs[i].test(&st)) {
            if (done) done->emplace_back(static_cast<int>(i), st);
            ++n;
        }
    }
    return n;
}

}  // namespace minimpi
