// Prefix reductions and reduce-scatter — the remaining predefined
// collectives applications commonly need (MPI_Scan / MPI_Exscan /
// MPI_Reduce_scatter_block).

#include "minimpi/coll.h"
#include "minimpi/coll_internal.h"
#include "minimpi/error.h"
#include "minimpi/runtime.h"

namespace minimpi {

void scan(const Comm& comm, const void* sendbuf, void* recvbuf,
          std::size_t count, Datatype dt, Op op) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bytes = count * datatype_size(dt);

    // result = inclusive prefix; partial = reduction of a contiguous rank
    // range ending at me (recursive doubling, MPICH's algorithm).
    if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, sendbuf, bytes);
    if (p == 1) return;

    detail::Scratch partial_s(ctx, bytes);
    detail::Scratch tmp_s(ctx, bytes);
    std::byte* partial = partial_s.data();
    std::byte* tmp = tmp_s.data();
    ctx.copy_bytes(partial, recvbuf, bytes);

    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
        const int up = r + mask;
        const int down = r - mask;
        Request rr;
        if (down >= 0) {
            rr = detail::irecv_bytes(comm, tmp, bytes, down,
                                     detail::kTagReduce + 0x100 + round, true);
        }
        if (up < p) {
            detail::send_bytes(comm, partial, bytes, up,
                               detail::kTagReduce + 0x100 + round, true);
        }
        if (down >= 0) {
            rr.wait();
            // tmp covers ranks [down-mask+1 .. down]; it extends both the
            // running partial and the inclusive result.
            detail::apply_op(ctx, op, dt, partial, tmp, count);
            detail::apply_op(ctx, op, dt, recvbuf, tmp, count);
        }
    }
}

void exscan(const Comm& comm, const void* sendbuf, void* recvbuf,
            std::size_t count, Datatype dt, Op op) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bytes = count * datatype_size(dt);

    // Exclusive prefix via inclusive scan of the PREVIOUS rank's value:
    // compute inclusive scan into scratch, then shift by one rank.
    detail::Scratch incl_s(ctx, bytes);
    std::byte* incl = incl_s.data();
    const void* contrib = detail::resolve_in_place(sendbuf, recvbuf);
    ctx.copy_bytes(incl, contrib, bytes);
    scan(comm, kInPlace, incl, count, dt, op);

    constexpr int tag = detail::kTagReduce + 0x200;
    Request rr;
    if (r > 0) {
        rr = detail::irecv_bytes(comm, recvbuf, bytes, r - 1, tag, true);
    }
    if (r < p - 1) {
        detail::send_bytes(comm, incl, bytes, r + 1, tag, true);
    }
    if (r > 0) rr.wait();
    // Rank 0's exscan result is undefined (as in MPI); leave recvbuf as-is.
}

void reduce_scatter_block(const Comm& comm, const void* sendbuf, void* recvbuf,
                          std::size_t count_per_rank, Datatype dt, Op op) {
    const int p = comm.size();
    const int r = comm.rank();
    RankCtx& ctx = comm.ctx();
    const std::size_t bb = count_per_rank * datatype_size(dt);

    if (p == 1) {
        if (sendbuf != kInPlace) ctx.copy_bytes(recvbuf, sendbuf, bb);
        return;
    }

    // Ring reduce-scatter over a working copy (the input must stay intact),
    // then one extra hop: after p-1 accumulation steps rank r holds the
    // fully reduced block (r+1) mod p, which its owner is one hop away.
    detail::Scratch work_s(ctx, static_cast<std::size_t>(p) * bb);
    detail::Scratch tmp_s(ctx, bb);
    std::byte* work = work_s.data();
    std::byte* tmp = tmp_s.data();
    const void* src = detail::resolve_in_place(sendbuf, recvbuf);
    ctx.copy_bytes(work, src, static_cast<std::size_t>(p) * bb);

    const int left = (r - 1 + p) % p;
    const int right = (r + 1) % p;
    constexpr int tag = detail::kTagReduce + 0x300;
    for (int k = 0; k < p - 1; ++k) {
        const int send_idx = (r - k + p) % p;
        const int recv_idx = (r - k - 1 + p) % p;
        Request rr = detail::irecv_bytes(comm, tmp, bb, left, tag, true);
        detail::send_bytes(comm, detail::at(work, static_cast<std::size_t>(send_idx) * bb),
                           bb, right, tag, true);
        rr.wait();
        detail::apply_op(ctx, op, dt,
                         detail::at(work, static_cast<std::size_t>(recv_idx) * bb),
                         tmp, count_per_rank);
    }
    // Deliver block (r+1) to its owner (my right neighbor); receive mine.
    Request rr = detail::irecv_bytes(comm, recvbuf, bb, left, tag + 1, true);
    detail::send_bytes(comm,
                       detail::at(work, static_cast<std::size_t>(right) * bb),
                       bb, right, tag + 1, true);
    rr.wait();
}

}  // namespace minimpi
