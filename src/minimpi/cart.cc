#include "minimpi/cart.h"

#include <algorithm>

#include "minimpi/error.h"

namespace minimpi {

std::vector<int> dims_create(int nranks, int ndims) {
    if (nranks <= 0 || ndims <= 0) {
        throw ArgumentError("dims_create needs positive ranks and dims");
    }
    std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
    // Greedy: repeatedly peel the smallest prime factor and apply it to the
    // currently smallest dimension; then sort non-increasing.
    int rem = nranks;
    std::vector<int> factors;
    for (int f = 2; f * f <= rem; ++f) {
        while (rem % f == 0) {
            factors.push_back(f);
            rem /= f;
        }
    }
    if (rem > 1) factors.push_back(rem);
    // Largest factors first onto the smallest dimension keeps dims balanced.
    std::sort(factors.rbegin(), factors.rend());
    for (int f : factors) {
        auto it = std::min_element(dims.begin(), dims.end());
        *it *= f;
    }
    std::sort(dims.rbegin(), dims.rend());
    return dims;
}

CartComm::CartComm(const Comm& comm, std::vector<int> dims,
                   std::vector<bool> periodic)
    : comm_(comm), dims_(std::move(dims)), periodic_(std::move(periodic)) {
    if (dims_.empty()) throw ArgumentError("cartesian topology needs >= 1 dim");
    long long total = 1;
    for (int d : dims_) {
        if (d <= 0) throw ArgumentError("cartesian dims must be positive");
        total *= d;
    }
    if (total != comm.size()) {
        throw ArgumentError("cartesian dims do not multiply to comm size");
    }
    if (periodic_.empty()) {
        periodic_.assign(dims_.size(), false);
    } else if (periodic_.size() != dims_.size()) {
        throw ArgumentError("periodicity flags must match dims");
    }

    strides_.resize(dims_.size());
    int stride = 1;
    for (std::size_t d = dims_.size(); d-- > 0;) {
        strides_[d] = stride;
        stride *= dims_[d];
    }
    my_coords_ = coords_of(comm.rank());
    axis_comms_.resize(dims_.size());
    axis_built_.assign(dims_.size(), false);
}

std::vector<int> CartComm::coords_of(int rank) const {
    if (rank < 0 || rank >= comm_.size()) {
        throw ArgumentError("cartesian coords of out-of-range rank");
    }
    std::vector<int> c(dims_.size());
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        c[d] = (rank / strides_[d]) % dims_[d];
    }
    return c;
}

int CartComm::rank_of(const std::vector<int>& coords) const {
    if (coords.size() != dims_.size()) {
        throw ArgumentError("cartesian rank of wrong-arity coordinates");
    }
    int rank = 0;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        int c = coords[d];
        if (periodic_[d]) {
            c = ((c % dims_[d]) + dims_[d]) % dims_[d];
        } else if (c < 0 || c >= dims_[d]) {
            return kProcNull;
        }
        rank += c * strides_[d];
    }
    return rank;
}

std::pair<int, int> CartComm::shift(int dim, int disp) const {
    if (dim < 0 || dim >= ndims()) {
        throw ArgumentError("cartesian shift on invalid dimension");
    }
    std::vector<int> lo = my_coords_;
    std::vector<int> hi = my_coords_;
    lo[static_cast<std::size_t>(dim)] -= disp;
    hi[static_cast<std::size_t>(dim)] += disp;
    return {rank_of(lo), rank_of(hi)};
}

const Comm& CartComm::axis_comm(int dim) {
    if (dim < 0 || dim >= ndims()) {
        throw ArgumentError("cartesian axis_comm on invalid dimension");
    }
    const auto d = static_cast<std::size_t>(dim);
    if (!axis_built_[d]) {
        // Color = my rank with dimension `dim` zeroed out; key = coordinate
        // along `dim`, so axis rank == coordinate.
        const int color =
            comm_.rank() - my_coords_[d] * strides_[d];
        axis_comms_[d] = comm_.split(color, my_coords_[d]);
        axis_built_[d] = true;
    }
    return axis_comms_[d];
}

}  // namespace minimpi
