#include "minimpi/context.h"

#include <cstring>

#include "minimpi/trace_span.h"

namespace minimpi {

void RankCtx::copy_bytes(void* dst, const void* src, std::size_t bytes) {
    if (bytes == 0) return;
    const VTime t0 = vck().now();
    vck().charge_memcpy(*model, bytes);
    stats.memcpy_bytes += bytes;
    if (tracer) {
        tracer->record(TraceEvent::Kind::Copy, t0, vck().now(), -1, bytes);
    }
    if (payload_mode == PayloadMode::Real && dst != nullptr && src != nullptr &&
        dst != src) {
        std::memmove(dst, src, bytes);
    }
}

void RankCtx::copy_bytes_xsocket(void* dst, const void* src,
                                 std::size_t bytes) {
    if (bytes == 0) return;
    copy_bytes(dst, src, bytes);
    // Premium over the local copy already charged by copy_bytes.
    vck().advance(static_cast<VTime>(bytes) *
                  model->memcpy_xsocket_beta_us_per_byte);
    stats.xsocket_bytes += bytes;
    HYTRACE_COUNTER(*this, xsocket_bytes, bytes);
}

void RankCtx::charge_xsocket_read(std::size_t bytes, int concurrency) {
    if (bytes == 0) return;
    if (concurrency < 1) concurrency = 1;
    const VTime t0 = vck().now();
    vck().advance(static_cast<VTime>(bytes) *
                  model->memcpy_xsocket_beta_us_per_byte *
                  static_cast<VTime>(concurrency));
    stats.xsocket_bytes += bytes;
    HYTRACE_COUNTER(*this, xsocket_bytes, bytes);
    if (tracer) {
        tracer->record(TraceEvent::Kind::Copy, t0, vck().now(), -1, bytes);
    }
}

}  // namespace minimpi
