#include "minimpi/context.h"

#include <cstring>

namespace minimpi {

void RankCtx::copy_bytes(void* dst, const void* src, std::size_t bytes) {
    if (bytes == 0) return;
    const VTime t0 = clock.now();
    clock.charge_memcpy(*model, bytes);
    stats.memcpy_bytes += bytes;
    if (tracer) {
        tracer->record(TraceEvent::Kind::Copy, t0, clock.now(), -1, bytes);
    }
    if (payload_mode == PayloadMode::Real && dst != nullptr && src != nullptr &&
        dst != src) {
        std::memmove(dst, src, bytes);
    }
}

}  // namespace minimpi
