#include "minimpi/win.h"

#include <memory>

#include "minimpi/error.h"
#include "minimpi/runtime.h"

namespace minimpi {

namespace {
constexpr std::size_t kCacheLine = 64;

std::size_t align_up(std::size_t x) {
    return (x + kCacheLine - 1) & ~(kCacheLine - 1);
}
}  // namespace

std::byte* Win::my_base() const { return shared_query(rank_).first; }

std::size_t Win::my_size() const {
    return state_->sizes.at(static_cast<std::size_t>(rank_));
}

std::size_t Win::total_size() const { return state_->total; }

bool Win::alloc_failed() const { return valid() && state_->alloc_failed; }

std::pair<std::byte*, std::size_t> Win::shared_query(int rank) const {
    if (!valid()) throw WinError("query on an invalid window");
    if (rank < 0 || rank >= comm_.size()) {
        throw WinError("shared_query rank out of range");
    }
    const auto r = static_cast<std::size_t>(rank);
    std::byte* base =
        state_->aligned ? state_->aligned + state_->offsets[r] : nullptr;
    return {base, state_->sizes[r]};
}

Win win_allocate_shared(const Comm& comm, std::size_t my_bytes) {
    CommState& st = comm.state();
    RankCtx& ctx = comm.ctx();
    Runtime* rt = st.runtime;

    // MPI requirement: the group must be able to share memory.
    const int node0 = comm.node_of(0);
    for (int r = 1; r < comm.size(); ++r) {
        if (comm.node_of(r) != node0) {
            throw WinError(
                "win_allocate_shared on a communicator spanning several "
                "nodes; split with split_shared() first");
        }
    }

    struct AllocData {
        std::vector<std::pair<int, std::size_t>> contribs;  ///< (rank, bytes)
        std::shared_ptr<Win::WinState> state;
    };

    const VTime cost = rt->one_off_sync_cost(comm.size());
    auto data = detail::rendezvous<AllocData>(
        st, ctx, comm.rank(), cost,
        [&](AllocData& d) { d.contribs.emplace_back(comm.rank(), my_bytes); },
        [&](AllocData& d) {
            auto ws = std::make_shared<Win::WinState>();
            ws->sizes.assign(static_cast<std::size_t>(comm.size()), 0);
            for (const auto& [rank, bytes] : d.contribs) {
                ws->sizes.at(static_cast<std::size_t>(rank)) = bytes;
            }
            ws->offsets.resize(ws->sizes.size());
            std::size_t off = 0;
            for (std::size_t i = 0; i < ws->sizes.size(); ++i) {
                ws->offsets[i] = off;
                off += align_up(ws->sizes[i]);
            }
            ws->total = off;
            // Deterministic allocation-failure injection: the finalizer runs
            // once per window, so the per-node allocation index is collective
            // program order and every member observes the same verdict.
            const std::uint64_t alloc_idx = rt->next_shm_alloc_idx(node0);
            ws->alloc_failed =
                rt->fault_plan().should_fail_shm(node0, alloc_idx);
            if (!ws->alloc_failed &&
                rt->payload_mode() == PayloadMode::Real && off > 0) {
                // Over-allocate so every rank segment is cache-line aligned.
                ws->block = std::make_unique<std::byte[]>(off + kCacheLine);
                void* p = ws->block.get();
                std::size_t space = off + kCacheLine;
                ws->aligned = static_cast<std::byte*>(
                    std::align(kCacheLine, off, p, space));
            }
            rt->keep_alive(ws);
            d.state = ws;
        });

    Win w;
    w.state_ = data->state;
    w.comm_ = comm;
    w.rank_ = comm.rank();
    return w;
}

}  // namespace minimpi
