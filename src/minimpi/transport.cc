#include "minimpi/transport.h"

#include <algorithm>

#include "minimpi/error.h"

namespace minimpi {

Transport::Transport(int nranks, PayloadMode mode) : mode_(mode) {
    boxes_.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
        boxes_.push_back(std::make_unique<Mailbox>());
    }
}

std::unique_ptr<std::byte[]> Transport::make_payload(const void* src,
                                                     std::size_t bytes) const {
    if (mode_ == PayloadMode::SizeOnly || bytes == 0 || src == nullptr) {
        return nullptr;
    }
    auto copy = std::make_unique<std::byte[]>(bytes);
    std::memcpy(copy.get(), src, bytes);
    return copy;
}

Transport::AckOut Transport::complete(PostedRecv* r, InMsg& m, int receiver) {
    r->msg_bytes = m.bytes;
    r->matched_src = m.src_global;
    r->matched_tag = m.tag;
    r->arrival = m.arrival;
    r->recv_overhead = m.recv_overhead;
    r->dropped = m.dropped;
    if (m.bytes > r->capacity) {
        r->truncated = true;
    } else if (m.payload && r->buf) {
        std::memcpy(r->buf, m.payload.get(), m.bytes);
    }
    r->completed = true;

    AckOut ack;
    if (m.ack_to >= 0) {
        ack.to = m.ack_to;
        ack.tag = m.ack_tag;
        ack.from = receiver;
        ack.arrival = std::max(m.arrival, r->post_vtime) + m.ack_alpha;
    }
    return ack;
}

void Transport::send_ack(const AckOut& ack) {
    if (ack.to < 0) return;
    InMsg a;
    a.ctx = kAckCtx;
    a.src_global = ack.from;
    a.tag = ack.tag;
    a.bytes = 0;
    a.arrival = ack.arrival;
    a.recv_overhead = 0.0;
    deliver(ack.to, std::move(a));
}

void Transport::deliver(int dst_global, InMsg msg) {
    // Fault injection happens at the delivery boundary, before matching.
    // Reserved contexts are exempt: acks derive their arrival from an
    // already-perturbed message, and the robust control channel models a
    // reliable side band (see kRobustCtrlCtx).
    InMsg dup;
    bool have_dup = false;
    if (faults_ != nullptr && msg.ctx >= kFirstUserCtx) {
        msg.arrival +=
            faults_->jitter_us(msg.src_global, dst_global, msg.fault_seq);
        if (faults_->rank_delay_us > 0.0 && faults_->delays(msg.src_global)) {
            msg.arrival += faults_->rank_delay_us;
        }
        const bool payload_target =
            faults_->scope == FaultScope::AllTraffic || msg.robust_frame;
        if (payload_target) {
            if (faults_->should_drop(msg.src_global, dst_global,
                                     msg.fault_seq)) {
                // Tombstone: the envelope still arrives so a blocked
                // receiver wakes and observes the loss instead of hanging.
                msg.dropped = true;
                msg.payload.reset();
            } else {
                if (msg.payload && msg.bytes > 0 &&
                    faults_->should_corrupt(msg.src_global, dst_global,
                                            msg.fault_seq)) {
                    msg.payload[faults_->corrupt_byte(
                        msg.src_global, dst_global, msg.fault_seq,
                        msg.bytes)] ^= std::byte{0x40};
                }
                if (faults_->should_dup(msg.src_global, dst_global,
                                        msg.fault_seq)) {
                    dup.ctx = msg.ctx;
                    dup.src_global = msg.src_global;
                    dup.tag = msg.tag;
                    dup.bytes = msg.bytes;
                    if (msg.payload) {
                        dup.payload =
                            std::make_unique<std::byte[]>(msg.bytes);
                        std::memcpy(dup.payload.get(), msg.payload.get(),
                                    msg.bytes);
                    }
                    dup.arrival = msg.arrival + faults_->dup_delay_us;
                    dup.recv_overhead = msg.recv_overhead;
                    // Never re-ack: an ssend must see exactly one ack.
                    dup.ack_to = -1;
                    dup.fault_seq = msg.fault_seq;
                    dup.robust_frame = msg.robust_frame;
                    have_dup = true;
                }
            }
        }
    }
    deliver_matched(dst_global, std::move(msg));
    if (have_dup) deliver_matched(dst_global, std::move(dup));
}

void Transport::deliver_matched(int dst_global, InMsg msg) {
    Mailbox& mb = box(dst_global);
    // A dead destination's inbound traffic tombstones: nothing will ever
    // receive it, and keeping it alive would leak and (worse) let a later
    // shrunken communicator reusing the rank observe stale state.
    if (mb.dead.load(std::memory_order_acquire)) return;
    AckOut ack;
    {
        std::lock_guard<std::mutex> lock(mb.mu);
        bool matched = false;
        for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
            if (matches(**it, msg)) {
                ack = complete(*it, msg, dst_global);
                mb.posted.erase(it);
                mb.cv.notify_all();
                matched = true;
                break;
            }
        }
        if (!matched) {
            mb.unexpected.push_back(std::move(msg));
            // Probes may be waiting even with no posted receive.
            mb.cv.notify_all();
        }
    }
    send_ack(ack);
}

void Transport::post_recv(int me, PostedRecv* r) {
    Mailbox& mb = box(me);
    AckOut ack;
    {
        std::lock_guard<std::mutex> lock(mb.mu);
        bool matched = false;
        for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
            if (matches(*r, *it)) {
                ack = complete(r, *it, me);
                mb.unexpected.erase(it);
                matched = true;
                break;
            }
        }
        if (!matched) mb.posted.push_back(r);
    }
    // Outside the lock: send_ack may lock any mailbox, including this one
    // (self-ssend).
    send_ack(ack);
}

void Transport::wait_recv(int me, PostedRecv* r) {
    Mailbox& mb = box(me);
    std::unique_lock<std::mutex> lock(mb.mu);
    // Completion always wins: a message delivered before a poison/death/
    // revoke notification is consumed normally (the predicate checks
    // `completed` first), so interrupts can never lose data already sent.
    mb.cv.wait(lock, [r, this] {
        return r->completed || poisoned() || interrupted(*r);
    });
    if (!r->completed) {
        mb.posted.remove(r);
        lock.unlock();
        check_poison();
        throw_interrupt(*r);
    }
}

bool Transport::wait_recv_intr(int me, PostedRecv* r,
                               const std::function<bool()>& interrupt) {
    Mailbox& mb = box(me);
    std::unique_lock<std::mutex> lock(mb.mu);
    bool external = false;
    mb.cv.wait(lock, [&] {
        if (r->completed || poisoned() || interrupted(*r)) return true;
        external = interrupt();
        return external;
    });
    if (r->completed) return true;
    mb.posted.remove(r);
    lock.unlock();
    check_poison();
    if (!external) throw_interrupt(*r);
    return false;
}

std::size_t Transport::wait_any_recv(int me,
                                     std::span<PostedRecv* const> rs) {
    Mailbox& mb = box(me);
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
        for (std::size_t i = 0; i < rs.size(); ++i) {
            if (rs[i]->completed) return i;
        }
        if (poisoned()) {
            for (PostedRecv* r : rs) mb.posted.remove(r);
            lock.unlock();
            check_poison();
        }
        if (dead_count_.load(std::memory_order_acquire) > 0 ||
            revoke_count_.load(std::memory_order_acquire) > 0) {
            for (PostedRecv* r : rs) {
                if (!interrupted(*r)) continue;
                for (PostedRecv* q : rs) mb.posted.remove(q);
                lock.unlock();
                throw_interrupt(*r);
            }
        }
        mb.cv.wait(lock);
    }
}

std::size_t Transport::wait_any_recv_intr(
    int me, std::span<PostedRecv* const> rs,
    const std::function<bool()>& interrupt) {
    Mailbox& mb = box(me);
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
        for (std::size_t i = 0; i < rs.size(); ++i) {
            if (rs[i]->completed) return i;
        }
        if (poisoned()) {
            for (PostedRecv* r : rs) mb.posted.remove(r);
            lock.unlock();
            check_poison();
        }
        if (dead_count_.load(std::memory_order_acquire) > 0 ||
            revoke_count_.load(std::memory_order_acquire) > 0) {
            for (PostedRecv* r : rs) {
                if (!interrupted(*r)) continue;
                for (PostedRecv* q : rs) mb.posted.remove(q);
                lock.unlock();
                throw_interrupt(*r);
            }
        }
        if (interrupt()) {
            for (PostedRecv* r : rs) mb.posted.remove(r);
            return SIZE_MAX;
        }
        mb.cv.wait(lock);
    }
}

void Transport::poison(int by_rank) {
    poison_rank_.store(by_rank, std::memory_order_relaxed);
    poisoned_.store(true, std::memory_order_release);
    for (auto& mb : boxes_) {
        std::lock_guard<std::mutex> lock(mb->mu);
        mb->cv.notify_all();
    }
}

void Transport::check_poison() const {
    if (poisoned()) {
        throw JobAborted(poison_rank_.load(std::memory_order_relaxed));
    }
}

void Transport::mark_dead(int world_rank, VTime at) {
    Mailbox& mb = box(world_rank);
    {
        std::lock_guard<std::mutex> lock(mb.mu);
        if (mb.dead.load(std::memory_order_relaxed)) return;
        mb.death_vtime = at;
        mb.dead.store(true, std::memory_order_release);
        // The dying rank's thread has already unwound: its pending receives
        // point at dead stack frames and its unexpected queue will never be
        // drained — tombstone both sides.
        mb.posted.clear();
        mb.unexpected.clear();
    }
    dead_count_.fetch_add(1, std::memory_order_release);
    for (auto& b : boxes_) {
        std::lock_guard<std::mutex> lock(b->mu);
        b->cv.notify_all();
    }
}

void Transport::revoke_ctx(std::uint64_t ctx) {
    {
        std::lock_guard<std::mutex> lock(revoked_mu_);
        if (std::find(revoked_.begin(), revoked_.end(), ctx) !=
            revoked_.end()) {
            return;  // idempotent: concurrent revokes from several survivors
        }
        revoked_.push_back(ctx);
    }
    revoke_count_.fetch_add(1, std::memory_order_release);
    for (auto& b : boxes_) {
        std::lock_guard<std::mutex> lock(b->mu);
        b->cv.notify_all();
    }
}

bool Transport::ctx_revoked(std::uint64_t ctx) const {
    if (revoke_count_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(revoked_mu_);
    return std::find(revoked_.begin(), revoked_.end(), ctx) != revoked_.end();
}

bool Transport::interrupted(const PostedRecv& r) const {
    if (r.completed) return false;
    if (dead_count_.load(std::memory_order_acquire) > 0) {
        // ULFM semantics: a wildcard receive has a pending failure as soon
        // as ANY process died (the dead one might have been the sender).
        if (r.src_global == kAnySource) return true;
        if (r.src_global >= 0 && is_dead(r.src_global)) return true;
    }
    return ctx_revoked(r.ctx);
}

void Transport::throw_interrupt(const PostedRecv& r) const {
    if (dead_count_.load(std::memory_order_acquire) > 0) {
        if (r.src_global >= 0 && is_dead(r.src_global)) {
            throw ProcessFailedError(r.src_global, death_vtime(r.src_global));
        }
        if (r.src_global == kAnySource) {
            for (std::size_t i = 0; i < boxes_.size(); ++i) {
                if (boxes_[i]->dead.load(std::memory_order_acquire)) {
                    throw ProcessFailedError(static_cast<int>(i),
                                             boxes_[i]->death_vtime);
                }
            }
        }
    }
    throw CommRevokedError();
}

void Transport::check_recv_interrupt(int me, PostedRecv* r) {
    if (dead_count_.load(std::memory_order_acquire) == 0 &&
        revoke_count_.load(std::memory_order_acquire) == 0) {
        return;
    }
    Mailbox& mb = box(me);
    {
        std::lock_guard<std::mutex> lock(mb.mu);
        if (!interrupted(*r)) return;
        mb.posted.remove(r);
    }
    throw_interrupt(*r);
}

bool Transport::test_recv(int me, PostedRecv* r) {
    Mailbox& mb = box(me);
    std::lock_guard<std::mutex> lock(mb.mu);
    return r->completed;
}

bool Transport::cancel_recv(int me, PostedRecv* r) {
    Mailbox& mb = box(me);
    std::lock_guard<std::mutex> lock(mb.mu);
    if (r->completed) return false;
    mb.posted.remove(r);
    return true;
}

bool Transport::iprobe(int me, std::uint64_t ctx, int src_global, int tag,
                       Status* out) {
    Mailbox& mb = box(me);
    std::lock_guard<std::mutex> lock(mb.mu);
    PostedRecv probe_key;
    probe_key.ctx = ctx;
    probe_key.src_global = src_global;
    probe_key.tag = tag;
    for (const InMsg& m : mb.unexpected) {
        if (matches(probe_key, m)) {
            if (out) {
                out->source = m.src_global;  // translated by caller
                out->tag = m.tag;
                out->bytes = m.bytes;
            }
            return true;
        }
    }
    return false;
}

void Transport::probe(int me, std::uint64_t ctx, int src_global, int tag,
                      Status* out) {
    Mailbox& mb = box(me);
    std::unique_lock<std::mutex> lock(mb.mu);
    PostedRecv probe_key;
    probe_key.ctx = ctx;
    probe_key.src_global = src_global;
    probe_key.tag = tag;
    for (;;) {
        for (const InMsg& m : mb.unexpected) {
            if (matches(probe_key, m)) {
                if (out) {
                    out->source = m.src_global;
                    out->tag = m.tag;
                    out->bytes = m.bytes;
                }
                return;
            }
        }
        check_poison();
        if (interrupted(probe_key)) {
            lock.unlock();
            throw_interrupt(probe_key);
        }
        mb.cv.wait(lock);
    }
}

std::size_t Transport::unexpected_count(int me) {
    Mailbox& mb = box(me);
    std::lock_guard<std::mutex> lock(mb.mu);
    return mb.unexpected.size();
}

}  // namespace minimpi
