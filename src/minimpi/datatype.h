#pragma once

#include <cstddef>
#include <vector>

#include "minimpi/context.h"

namespace minimpi {

/// A miniature derived-datatype engine (MPI_Type_vector / MPI_Type_indexed
/// and pack/unpack), enough to express the paper's Sect. 6 alternative for
/// non-SMP rank placements: describe the scattered block layout as a
/// datatype and pack/unpack through it — at the documented cost of the
/// extra copies, which the node-sorted rank array avoids.
///
/// A layout is a flat list of (offset, length) byte extents relative to a
/// base pointer; packing serializes the extents in order.
class Layout {
public:
    Layout() = default;

    /// MPI_Type_contiguous: one extent of @p bytes.
    static Layout contiguous(std::size_t bytes);

    /// MPI_Type_vector: @p count blocks of @p block_bytes, consecutive
    /// block starts @p stride_bytes apart.
    static Layout vector(std::size_t count, std::size_t block_bytes,
                         std::size_t stride_bytes);

    /// MPI_Type_indexed: explicit (offset, length) extents.
    static Layout indexed(std::vector<std::pair<std::size_t, std::size_t>> extents);

    /// Total payload bytes (the "type size").
    std::size_t size() const { return size_; }
    /// One past the last byte touched (the "type extent").
    std::size_t extent() const { return extent_; }
    std::size_t num_extents() const { return extents_.size(); }

    /// Serialize base[layout] into @p out (packed, contiguous). Charges the
    /// copies against the rank's clock; with null/SizeOnly buffers only the
    /// charge happens. Returns bytes packed.
    std::size_t pack(RankCtx& ctx, const void* base, void* out) const;

    /// Inverse of pack. Returns bytes consumed.
    std::size_t unpack(RankCtx& ctx, const void* packed, void* base) const;

private:
    std::vector<std::pair<std::size_t, std::size_t>> extents_;
    std::size_t size_ = 0;
    std::size_t extent_ = 0;
};

}  // namespace minimpi
