#include "apps/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "linalg/rng.h"

namespace apps {

namespace {

std::uint64_t cell_key(int r, int c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) |
           static_cast<std::uint32_t>(c);
}

}  // namespace

SparseDataset SparseDataset::chembl_like(int rows, int cols, double density,
                                         std::uint64_t seed, int latent_rank,
                                         double noise,
                                         double holdout_fraction) {
    if (rows <= 0 || cols <= 0 || density <= 0.0 || density > 1.0) {
        throw std::invalid_argument("chembl_like: bad shape/density");
    }
    SparseDataset d;
    d.rows_ = rows;
    d.cols_ = cols;

    linalg::Rng rng(seed);

    // Low-rank ground truth, scaled so the signal (sd ~ 1.5) clearly
    // dominates the observation noise — a factorization model must be able
    // to demonstrably learn the data in the convergence tests.
    const auto k = static_cast<std::size_t>(latent_rank);
    const double scale = 1.25 / std::sqrt(std::sqrt(static_cast<double>(latent_rank)));
    std::vector<double> u(static_cast<std::size_t>(rows) * k);
    std::vector<double> v(static_cast<std::size_t>(cols) * k);
    for (auto& x : u) x = rng.normal() * scale;
    for (auto& x : v) x = rng.normal() * scale;

    const auto target =
        static_cast<std::size_t>(density * static_cast<double>(rows) *
                                 static_cast<double>(cols));
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(target * 2);
    std::vector<Rating> train;
    train.reserve(target);
    while (seen.size() < target) {
        const int r = static_cast<int>(rng.next_u64() %
                                       static_cast<std::uint64_t>(rows));
        const int c = static_cast<int>(rng.next_u64() %
                                       static_cast<std::uint64_t>(cols));
        if (!seen.insert(cell_key(r, c)).second) continue;
        double val = noise * rng.normal();
        for (std::size_t j = 0; j < k; ++j) {
            val += u[static_cast<std::size_t>(r) * k + j] *
                   v[static_cast<std::size_t>(c) * k + j];
        }
        if (rng.uniform() < holdout_fraction) {
            d.test_.push_back({r, c, val});
        } else {
            train.push_back({r, c, val});
        }
    }
    d.nnz_ = train.size();

    // Build CSR and CSC.
    d.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    d.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
    for (const auto& t : train) {
        ++d.row_ptr_[static_cast<std::size_t>(t.row) + 1];
        ++d.col_ptr_[static_cast<std::size_t>(t.col) + 1];
    }
    for (int r = 0; r < rows; ++r) {
        d.row_ptr_[static_cast<std::size_t>(r) + 1] +=
            d.row_ptr_[static_cast<std::size_t>(r)];
    }
    for (int c = 0; c < cols; ++c) {
        d.col_ptr_[static_cast<std::size_t>(c) + 1] +=
            d.col_ptr_[static_cast<std::size_t>(c)];
    }
    d.row_idx_.resize(train.size());
    d.row_val_.resize(train.size());
    d.col_idx_.resize(train.size());
    d.col_val_.resize(train.size());
    std::vector<int> rfill(d.row_ptr_.begin(), d.row_ptr_.end() - 1);
    std::vector<int> cfill(d.col_ptr_.begin(), d.col_ptr_.end() - 1);
    for (const auto& t : train) {
        const auto ri = static_cast<std::size_t>(
            rfill[static_cast<std::size_t>(t.row)]++);
        d.row_idx_[ri] = t.col;
        d.row_val_[ri] = t.value;
        const auto ci = static_cast<std::size_t>(
            cfill[static_cast<std::size_t>(t.col)]++);
        d.col_idx_[ci] = t.row;
        d.col_val_[ci] = t.value;
    }
    return d;
}

SparseDataset SparseDataset::structure_only(int rows, int cols, double density,
                                            std::uint64_t seed) {
    if (rows <= 0 || cols <= 0 || density <= 0.0 || density > 1.0) {
        throw std::invalid_argument("structure_only: bad shape/density");
    }
    SparseDataset d;
    d.rows_ = rows;
    d.cols_ = cols;
    d.structure_only_ = true;

    // Deterministic pseudo-Poisson nonzero counts per row/column: only the
    // counts drive the virtual-time compute charges, so index lists are
    // never stored (DESIGN.md sect. 2).
    const double row_avg = density * static_cast<double>(cols);
    const double col_avg = density * static_cast<double>(rows);
    linalg::Rng rrng(seed ^ 0x726F77ULL);
    linalg::Rng crng(seed ^ 0x636F6CULL);
    d.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    d.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
    std::size_t total = 0;
    for (int r = 0; r < rows; ++r) {
        const int n = 1 + static_cast<int>(rrng.uniform() * 2.0 * row_avg);
        total += static_cast<std::size_t>(n);
        d.row_ptr_[static_cast<std::size_t>(r) + 1] =
            d.row_ptr_[static_cast<std::size_t>(r)] + n;
    }
    for (int c = 0; c < cols; ++c) {
        const int n = 1 + static_cast<int>(crng.uniform() * 2.0 * col_avg);
        d.col_ptr_[static_cast<std::size_t>(c) + 1] =
            d.col_ptr_[static_cast<std::size_t>(c)] + n;
    }
    d.nnz_ = total;
    return d;
}

std::span<const int> SparseDataset::row_cols(int r) const {
    if (structure_only_) {
        throw std::logic_error("row_cols on structure-only dataset");
    }
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto e =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {row_idx_.data() + b, e - b};
}

std::span<const double> SparseDataset::row_vals(int r) const {
    if (structure_only_) {
        throw std::logic_error("row_vals on structure-only dataset");
    }
    const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto e =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {row_val_.data() + b, e - b};
}

std::span<const int> SparseDataset::col_rows(int c) const {
    if (structure_only_) {
        throw std::logic_error("col_rows on structure-only dataset");
    }
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(c)]);
    const auto e =
        static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(c) + 1]);
    return {col_idx_.data() + b, e - b};
}

std::span<const double> SparseDataset::col_vals(int c) const {
    if (structure_only_) {
        throw std::logic_error("col_vals on structure-only dataset");
    }
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(c)]);
    const auto e =
        static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(c) + 1]);
    return {col_val_.data() + b, e - b};
}

}  // namespace apps
