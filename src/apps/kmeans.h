#pragma once

#include <vector>

#include "apps/summa.h"  // Backend
#include "hybrid/hympi.h"

namespace apps {

/// Distributed Lloyd's k-means — a third application kernel in the hybrid
/// MPI+MPI style, exercising the ALLREDUCE extension the same way SUMMA
/// exercises broadcast and BPMF exercises allgather: every iteration each
/// rank assigns its local points to the nearest centroid and the per-
/// cluster sums/counts meet in an allreduce (plain MPI_Allreduce for Ori,
/// the node-shared AllreduceChannel for Hy — ONE copy of the centroid
/// statistics per node instead of one per process).
struct KmeansConfig {
    int clusters = 8;
    int dims = 4;
    int points_per_rank = 256;
    int iterations = 10;
    std::uint64_t seed = 1;
    Backend backend = Backend::PureMpi;
    hympi::SyncPolicy sync = hympi::SyncPolicy::Barrier;
};

class Kmeans {
public:
    /// Collective over @p world. Points are generated deterministically
    /// from (seed, world rank): a mixture of `clusters` well-separated
    /// Gaussians, so the algorithm has a meaningful optimum to find.
    Kmeans(const minimpi::Comm& world, const KmeansConfig& cfg);

    /// One Lloyd iteration: assign + allreduce + recenter. Returns the
    /// global sum of squared distances (the objective, identical on every
    /// rank; 0.0 in SizeOnly mode).
    double step();

    void run();

    /// Current centroids, row-major clusters x dims (identical everywhere).
    const std::vector<double>& centroids() const { return centroids_; }

    /// Cluster index of local point @p i after the last step.
    int assignment(int i) const {
        return assign_.at(static_cast<std::size_t>(i));
    }

    int iteration() const { return iter_; }

private:
    minimpi::Comm world_;
    KmeansConfig cfg_;
    int iter_ = 0;

    std::vector<double> points_;  ///< points_per_rank x dims
    std::vector<int> assign_;
    std::vector<double> centroids_;  ///< clusters x dims

    // Reduction payload: [sums (k*d) | counts (k) | sse (1)].
    std::size_t stat_len_ = 0;
    std::unique_ptr<hympi::HierComm> hier_;
    std::unique_ptr<hympi::AllreduceChannel> channel_;
};

}  // namespace apps
