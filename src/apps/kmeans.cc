#include "apps/kmeans.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "linalg/rng.h"

namespace apps {

using minimpi::PayloadMode;

Kmeans::Kmeans(const minimpi::Comm& world, const KmeansConfig& cfg)
    : world_(world), cfg_(cfg) {
    if (cfg.clusters < 1 || cfg.dims < 1 || cfg.points_per_rank < 1) {
        throw minimpi::ArgumentError("kmeans needs positive shape parameters");
    }
    const auto k = static_cast<std::size_t>(cfg.clusters);
    const auto d = static_cast<std::size_t>(cfg.dims);
    stat_len_ = k * d + k + 1;

    if (cfg.backend == Backend::Hybrid) {
        hier_ = std::make_unique<hympi::HierComm>(world);
        channel_ = std::make_unique<hympi::AllreduceChannel>(
            *hier_, stat_len_, minimpi::Datatype::Double);
    }

    const bool real = world.ctx().payload_mode == PayloadMode::Real;
    if (!real) return;

    // Ground truth: cluster centers on a scaled simplex; every rank draws
    // its own points from the mixture (deterministic by rank).
    centroids_.assign(k * d, 0.0);
    std::vector<double> truth(k * d);
    linalg::Rng crng(cfg.seed ^ 0xCE27);
    for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t j = 0; j < d; ++j) {
            truth[c * d + j] =
                10.0 * static_cast<double>(c == j % k) + crng.normal();
        }
    }
    points_.resize(static_cast<std::size_t>(cfg.points_per_rank) * d);
    assign_.assign(static_cast<std::size_t>(cfg.points_per_rank), -1);
    linalg::Rng prng =
        linalg::substream(cfg.seed, 0x604D, static_cast<std::uint64_t>(world.rank()), 0);
    for (int i = 0; i < cfg.points_per_rank; ++i) {
        const auto c = static_cast<std::size_t>(prng.next_u64() % k);
        for (std::size_t j = 0; j < d; ++j) {
            points_[static_cast<std::size_t>(i) * d + j] =
                truth[c * d + j] + 0.5 * prng.normal();
        }
    }
    // Initial centroids: the global ground truth perturbed identically on
    // every rank (keeps the test deterministic across backends).
    linalg::Rng irng(cfg.seed ^ 0x1417);
    for (std::size_t c = 0; c < k * d; ++c) {
        centroids_[c] = truth[c] + 2.0 * irng.normal();
    }
}

double Kmeans::step() {
    minimpi::RankCtx& ctx = world_.ctx();
    const auto k = static_cast<std::size_t>(cfg_.clusters);
    const auto d = static_cast<std::size_t>(cfg_.dims);
    const auto n = static_cast<std::size_t>(cfg_.points_per_rank);
    const bool real = ctx.payload_mode == PayloadMode::Real;

    // Assignment: n points x k centroids x d dims distance evaluations.
    ctx.charge_flops(3.0 * static_cast<double>(n * k * d));

    std::vector<double> stats;
    if (real) {
        stats.assign(stat_len_, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const double* p = &points_[i * d];
            double best = std::numeric_limits<double>::max();
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                double dist = 0.0;
                for (std::size_t j = 0; j < d; ++j) {
                    const double diff = p[j] - centroids_[c * d + j];
                    dist += diff * diff;
                }
                if (dist < best) {
                    best = dist;
                    best_c = c;
                }
            }
            assign_[i] = static_cast<int>(best_c);
            for (std::size_t j = 0; j < d; ++j) {
                stats[best_c * d + j] += p[j];
            }
            stats[k * d + best_c] += 1.0;
            stats[k * d + k] += best;
        }
    }

    // The statistics meet globally — the step the two backends implement
    // differently.
    if (channel_) {
        if (real) {
            std::memcpy(channel_->my_input(), stats.data(),
                        stat_len_ * sizeof(double));
        }
        channel_->run(minimpi::Op::Sum, cfg_.sync);
        if (real) {
            std::memcpy(stats.data(), channel_->result(),
                        stat_len_ * sizeof(double));
        }
    } else {
        minimpi::allreduce(world_, minimpi::kInPlace,
                           real ? stats.data() : nullptr, stat_len_,
                           minimpi::Datatype::Double, minimpi::Op::Sum);
    }

    // Recenter (identical everywhere).
    ctx.charge_flops(static_cast<double>(k * d));
    ++iter_;
    if (!real) return 0.0;
    for (std::size_t c = 0; c < k; ++c) {
        const double count = stats[k * d + c];
        if (count > 0.0) {
            for (std::size_t j = 0; j < d; ++j) {
                centroids_[c * d + j] = stats[c * d + j] / count;
            }
        }
    }
    return stats[k * d + k];
}

void Kmeans::run() {
    for (int i = 0; i < cfg_.iterations; ++i) step();
}

}  // namespace apps
