#pragma once

#include <functional>

#include "hybrid/hympi.h"
#include "linalg/matrix.h"

namespace apps {

using minimpi::Comm;
using minimpi::VTime;

/// Which collective implementation an application uses — the paper's two
/// contenders: Ori_* (naive pure MPI, every process holds a private copy of
/// broadcast/gathered data) vs Hy_* (hybrid MPI+MPI, one node-shared copy).
enum class Backend {
    PureMpi,
    Hybrid,
};

/// Configuration of the SUMMA dense matrix-multiplication kernel (van de
/// Geijn & Watts '97), as benchmarked in paper Sect. 5.2.1: square N x N
/// matrices with N = grid * block, decomposed in block x block tiles over a
/// grid x grid process mesh; each of the grid iterations broadcasts an A
/// tile along the process row and a B tile along the process column.
struct SummaConfig {
    int grid = 1;            ///< sqrt(P)
    std::size_t block = 8;   ///< per-core tile dimension (8, 64, 128, 256...)
    Backend backend = Backend::PureMpi;
    hympi::SyncPolicy sync = hympi::SyncPolicy::Barrier;
    /// Hybrid backend only: double-buffer the broadcast channels and post
    /// step k+1's broadcasts split-phase before the step-k GEMM, so the
    /// tile transfers overlap the compute in virtual time (the classic
    /// SUMMA lookahead).
    bool lookahead = false;
};

/// One rank's view of a SUMMA computation. Construction is collective over
/// @p world (it splits the row/column communicators and, for the hybrid
/// backend, allocates the node-shared broadcast channels — one-offs).
class Summa {
public:
    Summa(const Comm& world, const SummaConfig& cfg);

    int row() const { return row_; }
    int col() const { return col_; }

    /// Fill the local A and B tiles from global-index element functions
    /// (Real payload mode only; no-op otherwise).
    void init(const std::function<double(std::size_t, std::size_t)>& fa,
              const std::function<double(std::size_t, std::size_t)>& fb);

    /// One full C = A * B (grid iterations of two broadcasts + local GEMM).
    /// C accumulates; call reset_c() between repetitions.
    void multiply();

    void reset_c();

    /// Local C tile (Real mode).
    const linalg::Matrix& c_tile() const { return c_; }

    /// Gather the full N x N result on world rank 0 (collective; test use).
    linalg::Matrix gather_c() const;

    /// FLOPs one rank performs per multiply() (for the compute model).
    double local_flops() const;

private:
    const double* row_bcast(int k);  ///< returns the A tile to use this step
    const double* col_bcast(int k);  ///< returns the B tile to use this step

    /// Lookahead helpers: stage the root's tile and post the split-phase
    /// broadcast of step @p k on the parity-(k%2) channel pair.
    minimpi::CollRequest start_row(int k);
    minimpi::CollRequest start_col(int k);
    void multiply_lookahead();

    Comm world_;
    SummaConfig cfg_;
    minimpi::CartComm cart_;  ///< grid x grid process mesh
    int row_ = 0, col_ = 0;
    Comm row_comm_, col_comm_;

    linalg::Matrix a_, b_, c_;
    // Pure-MPI backend: private receive tiles (the per-process copies the
    // hybrid backend eliminates).
    linalg::Matrix a_recv_, b_recv_;
    // Hybrid backend: node-shared broadcast channels on the row/col comms.
    // Pair [1] exists only under lookahead: steps alternate channels so
    // step k+1's transfer can be in flight while step k's tile is read.
    std::unique_ptr<hympi::HierComm> row_hier_, col_hier_;
    std::unique_ptr<hympi::BcastChannel> row_ch_[2], col_ch_[2];
};

}  // namespace apps
