#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace apps {

/// One held-out observation for RMSE evaluation.
struct Rating {
    int row = 0;
    int col = 0;
    double value = 0.0;
};

/// Synthetic sparse compound-x-target activity matrix standing in for the
/// chembl_20 dataset the paper's BPMF experiment uses (DESIGN.md sect. 2).
/// Entries come from a low-rank ground truth plus Gaussian noise, so a
/// factorization model can genuinely fit them; a holdout slice supports
/// RMSE tracking.
///
/// A `structure_only` variant materializes just the per-row/per-column
/// nonzero counts (deterministically derived), which is all the virtual-
/// time cost model needs at cluster scale where storing index lists on
/// every rank would be wasteful.
class SparseDataset {
public:
    static SparseDataset chembl_like(int rows, int cols, double density,
                                     std::uint64_t seed, int latent_rank = 8,
                                     double noise = 0.1,
                                     double holdout_fraction = 0.1);

    static SparseDataset structure_only(int rows, int cols, double density,
                                        std::uint64_t seed);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t nnz() const { return nnz_; }
    bool is_structure_only() const { return structure_only_; }

    int row_nnz(int r) const {
        return row_ptr_[static_cast<std::size_t>(r) + 1] -
               row_ptr_[static_cast<std::size_t>(r)];
    }
    int col_nnz(int c) const {
        return col_ptr_[static_cast<std::size_t>(c) + 1] -
               col_ptr_[static_cast<std::size_t>(c)];
    }

    /// CSR by row: column indices / values of row @p r (Real data only).
    std::span<const int> row_cols(int r) const;
    std::span<const double> row_vals(int r) const;
    /// CSC by column: row indices / values of column @p c.
    std::span<const int> col_rows(int c) const;
    std::span<const double> col_vals(int c) const;

    std::span<const Rating> test_set() const { return test_; }

private:
    int rows_ = 0;
    int cols_ = 0;
    std::size_t nnz_ = 0;
    bool structure_only_ = false;

    // CSR/CSC; in structure_only mode only the ptr arrays are populated.
    std::vector<int> row_ptr_, row_idx_;
    std::vector<double> row_val_;
    std::vector<int> col_ptr_, col_idx_;
    std::vector<double> col_val_;
    std::vector<Rating> test_;
};

}  // namespace apps
