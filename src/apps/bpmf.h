#pragma once

#include <memory>
#include <span>

#include "apps/dataset.h"
#include "apps/summa.h"  // Backend
#include "hybrid/hympi.h"
#include "linalg/rng.h"

namespace apps {

/// Bayesian Probabilistic Matrix Factorization (Salakhutdinov & Mnih '08)
/// with the distributed Gibbs-sampling structure of Vander Aa et al. '16 —
/// the paper's application-level benchmark (Sect. 5.2.2): every iteration
/// samples the "movie" (compound) latent vectors, allgathers them, samples
/// the "user" (target) latent vectors, and allgathers those.
///
/// Ori_BPMF keeps a private copy of both latent matrices on every rank and
/// uses MPI_Allgatherv; Hy_BPMF keeps ONE copy per node in the hybrid
/// allgather channels.
///
/// Sampling uses per-(iteration, region, item) RNG substreams, so the
/// sampled chains are bit-identical across rank counts and backends — the
/// reproducibility tests rely on this.
struct BpmfConfig {
    int num_latent = 16;
    double alpha = 2.0;        ///< observation precision
    int iterations = 20;       ///< as in the paper's experiment
    std::uint64_t seed = 42;
    Backend backend = Backend::PureMpi;
    hympi::SyncPolicy sync = hympi::SyncPolicy::Barrier;

    /// Hyperparameter sufficient statistics: false (default, like the
    /// reference BPMF and this repo's bit-identity tests) = every rank
    /// recomputes them redundantly from the gathered matrix; true = each
    /// rank sums over its own items and the partials meet in an allreduce
    /// (plain MPI_Allreduce for Ori, the hybrid AllreduceChannel for Hy).
    /// The two modes sample statistically identical chains but differ in
    /// floating-point summation order.
    bool distributed_hyper = false;
};

class Bpmf {
public:
    /// Collective over @p world. The dataset must be identical on all ranks.
    Bpmf(const minimpi::Comm& world, const SparseDataset& data,
         const BpmfConfig& cfg);
    ~Bpmf();

    /// Run one Gibbs iteration (movies region + users region).
    void step();

    /// Run cfg.iterations steps.
    void run();

    /// RMSE over the dataset's holdout ratings (Real payload mode only;
    /// identical on every rank).
    double test_rmse() const;

    /// Latent vector of movie @p m / user @p n after the last allgather
    /// (points into the shared channel for the hybrid backend).
    const double* movie_vec(int m) const;
    const double* user_vec(int n) const;

    int iteration() const { return iter_; }

private:
    struct Region;  // one side of the factorization (movies or users)

    void sample_region(Region& reg, const Region& other);
    void sample_hyper(Region& reg);
    void sample_hyper_distributed(Region& reg);
    void sample_hyper_posterior(Region& reg, std::span<const double> mean,
                                const linalg::Matrix& s);
    void sample_item(Region& reg, const Region& other, int item);

    minimpi::Comm world_;
    const SparseDataset* data_;
    BpmfConfig cfg_;
    int iter_ = 0;

    std::unique_ptr<hympi::HierComm> hier_;  // hybrid backend only
    std::unique_ptr<Region> movies_, users_;
};

}  // namespace apps
