#include "apps/bpmf.h"

#include <cmath>
#include <cstring>

namespace apps {

using linalg::Matrix;
using linalg::Rng;
using minimpi::Datatype;
using minimpi::PayloadMode;

/// One side of the factorization: the latent matrix for movies (rows) or
/// users (columns), its distribution over ranks, its gather machinery and
/// its Gaussian-Wishart hyperparameters.
struct Bpmf::Region {
    int id = 0;      ///< 0 = movies (rows), 1 = users (columns)
    int count = 0;   ///< number of items
    int first = 0, last = 0;  ///< my contiguous item range
    std::vector<int> firsts;  ///< per rank, +sentinel

    std::size_t k = 0;  ///< latent dimension

    // Ori backend: the per-process private copy of the whole latent matrix.
    std::vector<double> full;
    std::vector<std::size_t> counts, displs;  // elements, for allgatherv

    // Hy backend: one node-shared copy.
    std::unique_ptr<hympi::AllgatherChannel> channel;

    // Hyperparameters (sampled redundantly and identically on every rank).
    std::vector<double> hyper_mu;
    Matrix hyper_lambda;
    std::vector<double> hyper_b;  ///< Lambda * mu, reused by every item

    // distributed_hyper: channel carrying the K + K*K partial sums
    // (hybrid backend only; Ori uses a plain allreduce).
    std::unique_ptr<hympi::AllreduceChannel> stat_channel;

    int owner(int item) const {
        // firsts is the monotone boundary array: firsts[r] <= item < firsts[r+1].
        int lo = 0, hi = static_cast<int>(firsts.size()) - 2;
        while (lo < hi) {
            const int mid = (lo + hi + 1) / 2;
            if (firsts[static_cast<std::size_t>(mid)] <= item) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        return lo;
    }

    const double* vec(int item) const {
        if (channel) {
            const int o = owner(item);
            const std::byte* base = channel->block_of(o);
            if (base == nullptr) return nullptr;
            return reinterpret_cast<const double*>(base) +
                   static_cast<std::size_t>(item -
                                            firsts[static_cast<std::size_t>(o)]) *
                       k;
        }
        if (full.empty()) return nullptr;
        return full.data() + static_cast<std::size_t>(item) * k;
    }

    double* my_vec(int item) {
        return const_cast<double*>(vec(item));
    }
};

Bpmf::Bpmf(const minimpi::Comm& world, const SparseDataset& data,
           const BpmfConfig& cfg)
    : world_(world), data_(&data), cfg_(cfg) {
    const int p = world.size();
    const auto k = static_cast<std::size_t>(cfg.num_latent);
    const bool real = world.ctx().payload_mode == PayloadMode::Real;

    if (cfg.backend == Backend::Hybrid) {
        hier_ = std::make_unique<hympi::HierComm>(world);
    }

    auto make_region = [&](int id, int count) {
        auto reg = std::make_unique<Region>();
        reg->id = id;
        reg->count = count;
        reg->k = k;
        reg->firsts.resize(static_cast<std::size_t>(p) + 1);
        for (int r = 0; r <= p; ++r) {
            reg->firsts[static_cast<std::size_t>(r)] =
                static_cast<int>(static_cast<std::int64_t>(count) * r / p);
        }
        reg->first = reg->firsts[static_cast<std::size_t>(world.rank())];
        reg->last = reg->firsts[static_cast<std::size_t>(world.rank()) + 1];

        if (cfg.backend == Backend::Hybrid) {
            std::vector<std::size_t> bytes(static_cast<std::size_t>(p));
            for (int r = 0; r < p; ++r) {
                bytes[static_cast<std::size_t>(r)] =
                    static_cast<std::size_t>(
                        reg->firsts[static_cast<std::size_t>(r) + 1] -
                        reg->firsts[static_cast<std::size_t>(r)]) *
                    k * sizeof(double);
            }
            reg->channel =
                std::make_unique<hympi::AllgatherChannel>(*hier_, bytes);
        } else {
            if (real) {
                reg->full.resize(static_cast<std::size_t>(count) * k);
            }
            reg->counts.resize(static_cast<std::size_t>(p));
            reg->displs.resize(static_cast<std::size_t>(p));
            for (int r = 0; r < p; ++r) {
                reg->counts[static_cast<std::size_t>(r)] =
                    static_cast<std::size_t>(
                        reg->firsts[static_cast<std::size_t>(r) + 1] -
                        reg->firsts[static_cast<std::size_t>(r)]) *
                    k;
                reg->displs[static_cast<std::size_t>(r)] =
                    static_cast<std::size_t>(
                        reg->firsts[static_cast<std::size_t>(r)]) *
                    k;
            }
        }

        reg->hyper_mu.assign(k, 0.0);
        reg->hyper_lambda = Matrix::identity(k);
        reg->hyper_b.assign(k, 0.0);
        if (cfg.distributed_hyper && cfg.backend == Backend::Hybrid) {
            reg->stat_channel = std::make_unique<hympi::AllreduceChannel>(
                *hier_, k + k * k, minimpi::Datatype::Double);
        }

        // Initialize my items and make them globally visible (one-off).
        if (real) {
            for (int item = reg->first; item < reg->last; ++item) {
                Rng rng = linalg::substream(cfg.seed, 0xF00D,
                                            static_cast<std::uint64_t>(id),
                                            static_cast<std::uint64_t>(item));
                double* v = reg->my_vec(item);
                if (v != nullptr) {
                    for (std::size_t j = 0; j < k; ++j) {
                        v[j] = 0.3 * rng.normal();
                    }
                }
            }
        }
        if (reg->channel) {
            reg->channel->run(cfg.sync);
        } else {
            minimpi::allgatherv(
                world_, minimpi::kInPlace,
                reg->counts[static_cast<std::size_t>(world.rank())],
                reg->full.data(), reg->counts, reg->displs, Datatype::Double);
        }
        return reg;
    };

    movies_ = make_region(0, data.rows());
    users_ = make_region(1, data.cols());
}

void Bpmf::sample_hyper(Region& reg) {
    if (cfg_.distributed_hyper) {
        sample_hyper_distributed(reg);
        return;
    }
    minimpi::RankCtx& ctx = world_.ctx();
    const auto k = static_cast<std::size_t>(cfg_.num_latent);
    const double n = static_cast<double>(reg.count);

    // Every rank computes the sufficient statistics from the gathered
    // matrix and draws the same sample (shared substream) — exactly what
    // the reference BPMF code does, trading redundant compute for zero
    // communication.
    ctx.charge_flops(n * static_cast<double>(k * k + k) +
                     static_cast<double>(k * k * k));

    if (world_.ctx().payload_mode != PayloadMode::Real) return;

    std::vector<double> mean(k, 0.0);
    for (int i = 0; i < reg.count; ++i) {
        const double* v = reg.vec(i);
        for (std::size_t j = 0; j < k; ++j) mean[j] += v[j];
    }
    for (auto& m : mean) m /= n;

    Matrix s(k, k);
    for (int i = 0; i < reg.count; ++i) {
        const double* v = reg.vec(i);
        for (std::size_t a = 0; a < k; ++a) {
            for (std::size_t b = 0; b < k; ++b) {
                s(a, b) += (v[a] - mean[a]) * (v[b] - mean[b]);
            }
        }
    }
    sample_hyper_posterior(reg, mean, s);
}

void Bpmf::sample_hyper_distributed(Region& reg) {
    minimpi::RankCtx& ctx = world_.ctx();
    const auto k = static_cast<std::size_t>(cfg_.num_latent);
    const double n = static_cast<double>(reg.count);
    const std::size_t stat_len = k + k * k;
    const bool real = ctx.payload_mode == PayloadMode::Real;

    // Partial sums over MY items only: [sum u | sum u u^T].
    ctx.charge_flops(static_cast<double>(reg.last - reg.first) *
                     static_cast<double>(k * k + k));
    std::vector<double> stats;
    if (real) {
        stats.assign(stat_len, 0.0);
        for (int i = reg.first; i < reg.last; ++i) {
            const double* v = reg.vec(i);
            for (std::size_t a = 0; a < k; ++a) {
                stats[a] += v[a];
                for (std::size_t b = 0; b < k; ++b) {
                    stats[k + a * k + b] += v[a] * v[b];
                }
            }
        }
    }

    if (reg.stat_channel) {
        if (real) {
            std::memcpy(reg.stat_channel->my_input(), stats.data(),
                        stat_len * sizeof(double));
        }
        reg.stat_channel->run(minimpi::Op::Sum, cfg_.sync);
        if (real) {
            std::memcpy(stats.data(), reg.stat_channel->result(),
                        stat_len * sizeof(double));
        }
    } else {
        minimpi::allreduce(world_, minimpi::kInPlace,
                           real ? stats.data() : nullptr, stat_len,
                           minimpi::Datatype::Double, minimpi::Op::Sum);
    }

    ctx.charge_flops(static_cast<double>(k * k * k));
    if (!real) return;

    // mean = S1/n; scatter S = S2 - n * mean mean^T.
    std::vector<double> mean(k);
    for (std::size_t a = 0; a < k; ++a) mean[a] = stats[a] / n;
    Matrix s(k, k);
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) {
            s(a, b) = stats[k + a * k + b] - n * mean[a] * mean[b];
        }
    }
    sample_hyper_posterior(reg, mean, s);
}

void Bpmf::sample_hyper_posterior(Region& reg, std::span<const double> mean,
                                  const Matrix& s) {
    const auto k = static_cast<std::size_t>(cfg_.num_latent);
    const double n = static_cast<double>(reg.count);

    // Gaussian-Wishart posterior with priors mu0 = 0, beta0 = 2, nu0 = k,
    // W0 = I (Salakhutdinov & Mnih '08, Sect. 3.3).
    const double beta0 = 2.0;
    const double nu0 = static_cast<double>(k);
    const double beta_star = beta0 + n;
    const double nu_star = nu0 + n;
    Matrix w_inv = Matrix::identity(k);
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) {
            w_inv(a, b) += s(a, b) + (beta0 * n / beta_star) * mean[a] * mean[b];
        }
    }
    // W* = (W_inv)^{-1}; its Cholesky factor via the identity
    // chol(W*) = (chol(W_inv))^{-T} reordered — we instead sample with the
    // precision-side Bartlett trick: Wishart(nu*, W*) = L_w A A^T L_w^T
    // where L_w = chol(W*). Compute chol(W*) by inverting L = chol(W_inv):
    // W* = L^{-T} L^{-1}, whose Cholesky factor is the lower-triangular
    // matrix obtained from the reverse factorization; for our purposes a
    // dense inverse is fine at k <= 32.
    const Matrix l_inv = linalg::cholesky(w_inv);
    // Columns of W* = solve(W_inv, e_i).
    Matrix w_star(k, k);
    std::vector<double> e(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        e.assign(k, 0.0);
        e[i] = 1.0;
        const auto col = linalg::solve_lower_transposed(
            l_inv, linalg::solve_lower(l_inv, e));
        for (std::size_t j = 0; j < k; ++j) w_star(j, i) = col[j];
    }
    // Symmetrize against round-off before factorizing.
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = a + 1; b < k; ++b) {
            const double avg = 0.5 * (w_star(a, b) + w_star(b, a));
            w_star(a, b) = avg;
            w_star(b, a) = avg;
        }
    }
    const Matrix ls = linalg::cholesky(w_star);

    Rng rng = linalg::substream(cfg_.seed, 0xBEEF,
                                static_cast<std::uint64_t>(iter_),
                                static_cast<std::uint64_t>(reg.id));
    reg.hyper_lambda = linalg::wishart(rng, nu_star, ls);

    // mu ~ N(mu*, (beta* Lambda)^{-1}).
    std::vector<double> mu_star(k);
    for (std::size_t j = 0; j < k; ++j) mu_star[j] = n * mean[j] / beta_star;
    Matrix prec = reg.hyper_lambda;
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) prec(a, b) *= beta_star;
    }
    reg.hyper_mu =
        linalg::mvnormal_from_precision_chol(rng, mu_star, linalg::cholesky(prec));

    reg.hyper_b = linalg::gemv(reg.hyper_lambda, reg.hyper_mu);
}

void Bpmf::sample_item(Region& reg, const Region& other, int item) {
    minimpi::RankCtx& ctx = world_.ctx();
    const auto k = static_cast<std::size_t>(cfg_.num_latent);
    const double kd = static_cast<double>(k);
    const int nnz =
        (reg.id == 0) ? data_->row_nnz(item) : data_->col_nnz(item);

    // Precision accumulation + Cholesky + solves + sampling.
    ctx.charge_flops(static_cast<double>(nnz) * (kd * kd + 2.0 * kd) +
                     kd * kd * kd / 3.0 + 4.0 * kd * kd);

    if (ctx.payload_mode != PayloadMode::Real) return;

    Matrix prec = reg.hyper_lambda;
    std::vector<double> b = reg.hyper_b;

    const auto idx = (reg.id == 0) ? data_->row_cols(item) : data_->col_rows(item);
    const auto val = (reg.id == 0) ? data_->row_vals(item) : data_->col_vals(item);
    for (std::size_t t = 0; t < idx.size(); ++t) {
        const double* v = other.vec(idx[t]);
        linalg::syr_acc(prec, {v, k}, cfg_.alpha);
        linalg::axpy(cfg_.alpha * val[t], {v, k}, b);
    }

    const Matrix l = linalg::cholesky(prec);
    const auto mu =
        linalg::solve_lower_transposed(l, linalg::solve_lower(l, b));

    Rng rng = linalg::substream(
        cfg_.seed,
        static_cast<std::uint64_t>(iter_) * 2 + static_cast<std::uint64_t>(reg.id),
        0x5A11, static_cast<std::uint64_t>(item));
    const auto sample = linalg::mvnormal_from_precision_chol(rng, mu, l);
    std::memcpy(reg.my_vec(item), sample.data(), k * sizeof(double));
}

void Bpmf::sample_region(Region& reg, const Region& other) {
    sample_hyper(reg);
    // Hybrid backend: hyperparameter sampling READ every on-node rank's
    // partition of the shared matrix; the item sampling below REWRITES our
    // own partition. An on-node quiesce separates the two phases (the
    // pure-MPI version reads/writes private copies and needs nothing).
    if (reg.channel) reg.channel->quiesce(cfg_.sync);
    for (int item = reg.first; item < reg.last; ++item) {
        sample_item(reg, other, item);
    }
    // The region "ends with the all-to-all gather communication routines"
    // (paper Sect. 5.2.2).
    if (reg.channel) {
        reg.channel->run(cfg_.sync);
    } else {
        minimpi::allgatherv(world_, minimpi::kInPlace,
                            reg.counts[static_cast<std::size_t>(world_.rank())],
                            reg.full.data(), reg.counts, reg.displs,
                            Datatype::Double);
    }
}

void Bpmf::step() {
    sample_region(*movies_, *users_);
    sample_region(*users_, *movies_);
    ++iter_;
}

void Bpmf::run() {
    for (int i = 0; i < cfg_.iterations; ++i) step();
}

const double* Bpmf::movie_vec(int m) const { return movies_->vec(m); }
const double* Bpmf::user_vec(int n) const { return users_->vec(n); }

double Bpmf::test_rmse() const {
    const auto k = static_cast<std::size_t>(cfg_.num_latent);
    double se = 0.0;
    const auto test = data_->test_set();
    for (const auto& t : test) {
        const double* u = movies_->vec(t.row);
        const double* v = users_->vec(t.col);
        double pred = 0.0;
        for (std::size_t j = 0; j < k; ++j) pred += u[j] * v[j];
        const double d = pred - t.value;
        se += d * d;
    }
    return std::sqrt(se / static_cast<double>(test.size()));
}

Bpmf::~Bpmf() = default;

}  // namespace apps
