#include "apps/summa.h"

#include <cstring>

namespace apps {

using minimpi::Datatype;
using minimpi::PayloadMode;

Summa::Summa(const Comm& world, const SummaConfig& cfg)
    : world_(world),
      cfg_(cfg),
      // Throws ArgumentError unless grid*grid == world.size().
      cart_(world, {cfg.grid, cfg.grid}) {
    row_ = cart_.coord(0);
    col_ = cart_.coord(1);
    row_comm_ = cart_.axis_comm(1);  // dimension 1 varies -> my row
    col_comm_ = cart_.axis_comm(0);

    const std::size_t b = cfg.block;
    if (world.ctx().payload_mode == PayloadMode::Real) {
        a_ = linalg::Matrix(b, b);
        b_ = linalg::Matrix(b, b);
        c_ = linalg::Matrix(b, b);
        if (cfg.backend == Backend::PureMpi) {
            a_recv_ = linalg::Matrix(b, b);
            b_recv_ = linalg::Matrix(b, b);
        }
    }
    if (cfg.backend == Backend::Hybrid) {
        const std::size_t tile_bytes = b * b * sizeof(double);
        row_hier_ = std::make_unique<hympi::HierComm>(row_comm_);
        col_hier_ = std::make_unique<hympi::HierComm>(col_comm_);
        row_ch_[0] =
            std::make_unique<hympi::BcastChannel>(*row_hier_, tile_bytes);
        col_ch_[0] =
            std::make_unique<hympi::BcastChannel>(*col_hier_, tile_bytes);
        if (cfg.lookahead) {
            row_ch_[1] =
                std::make_unique<hympi::BcastChannel>(*row_hier_, tile_bytes);
            col_ch_[1] =
                std::make_unique<hympi::BcastChannel>(*col_hier_, tile_bytes);
        }
    }
}

void Summa::init(const std::function<double(std::size_t, std::size_t)>& fa,
                 const std::function<double(std::size_t, std::size_t)>& fb) {
    if (world_.ctx().payload_mode != PayloadMode::Real) return;
    const std::size_t b = cfg_.block;
    const std::size_t r0 = static_cast<std::size_t>(row_) * b;
    const std::size_t c0 = static_cast<std::size_t>(col_) * b;
    for (std::size_t i = 0; i < b; ++i) {
        for (std::size_t j = 0; j < b; ++j) {
            a_(i, j) = fa(r0 + i, c0 + j);
            b_(i, j) = fb(r0 + i, c0 + j);
        }
    }
    c_.fill(0.0);
}

void Summa::reset_c() {
    if (world_.ctx().payload_mode == PayloadMode::Real) c_.fill(0.0);
}

double Summa::local_flops() const {
    const double b = static_cast<double>(cfg_.block);
    return 2.0 * b * b * b;  // one tile GEMM per iteration
}

const double* Summa::row_bcast(int k) {
    const std::size_t b = cfg_.block;
    const std::size_t tile_bytes = b * b * sizeof(double);
    minimpi::RankCtx& ctx = world_.ctx();

    if (cfg_.backend == Backend::PureMpi) {
        // Iteration k: the owner of A's k-th column of tiles broadcasts
        // along the process row; every receiver keeps a private copy.
        double* buf = (col_ == k) ? a_.data() : a_recv_.data();
        minimpi::bcast(row_comm_, buf, b * b, Datatype::Double, k);
        return buf;
    }
    // Hybrid: the root stores its tile once into the node-shared channel
    // buffer; no per-process copies exist anywhere on the node.
    if (col_ == k) {
        ctx.copy_bytes(row_ch_[0]->write_buffer(), a_.data(), tile_bytes);
    }
    row_ch_[0]->run(k, cfg_.sync);
    return reinterpret_cast<const double*>(row_ch_[0]->read_buffer());
}

const double* Summa::col_bcast(int k) {
    const std::size_t b = cfg_.block;
    const std::size_t tile_bytes = b * b * sizeof(double);
    minimpi::RankCtx& ctx = world_.ctx();

    if (cfg_.backend == Backend::PureMpi) {
        double* buf = (row_ == k) ? b_.data() : b_recv_.data();
        minimpi::bcast(col_comm_, buf, b * b, Datatype::Double, k);
        return buf;
    }
    if (row_ == k) {
        ctx.copy_bytes(col_ch_[0]->write_buffer(), b_.data(), tile_bytes);
    }
    col_ch_[0]->run(k, cfg_.sync);
    return reinterpret_cast<const double*>(col_ch_[0]->read_buffer());
}

minimpi::CollRequest Summa::start_row(int k) {
    // Engine-side fill: the root's tile copy rides the request's sub-clock
    // and overlaps the GEMM below instead of serializing before the post.
    const void* src = (col_ == k) ? static_cast<const void*>(a_.data())
                                  : nullptr;
    return row_ch_[k % 2]->start(k, cfg_.sync, src);
}

minimpi::CollRequest Summa::start_col(int k) {
    const void* src = (row_ == k) ? static_cast<const void*>(b_.data())
                                  : nullptr;
    return col_ch_[k % 2]->start(k, cfg_.sync, src);
}

void Summa::multiply_lookahead() {
    minimpi::RankCtx& ctx = world_.ctx();
    const std::size_t b = cfg_.block;
    minimpi::CollRequest ra = start_row(0);
    minimpi::CollRequest rb = start_col(0);
    for (int k = 0; k < cfg_.grid; ++k) {
        ra.wait();
        rb.wait();
        const double* a_use =
            reinterpret_cast<const double*>(row_ch_[k % 2]->read_buffer());
        const double* b_use =
            reinterpret_cast<const double*>(col_ch_[k % 2]->read_buffer());
        if (k + 1 < cfg_.grid) {
            // Post step k+1 on the other channel pair BEFORE the GEMM: the
            // leaders' bridge transfers overlap the compute below. Writing
            // the k+1 tile into the idle pair is safe — round k+1's wait-
            // side sync is what separates it from round k-1's last readers.
            ra = start_row(k + 1);
            rb = start_col(k + 1);
        }
        ctx.charge_flops(local_flops());
        if (ctx.payload_mode == PayloadMode::Real && a_use != nullptr &&
            b_use != nullptr) {
            linalg::gemm_raw(a_use, b_use, c_.data(), b, b, b);
        }
    }
}

void Summa::multiply() {
    if (cfg_.backend == Backend::Hybrid && cfg_.lookahead) {
        multiply_lookahead();
        return;
    }
    minimpi::RankCtx& ctx = world_.ctx();
    const std::size_t b = cfg_.block;
    for (int k = 0; k < cfg_.grid; ++k) {
        const double* a_use = row_bcast(k);
        const double* b_use = col_bcast(k);
        ctx.charge_flops(local_flops());
        if (ctx.payload_mode == PayloadMode::Real && a_use != nullptr &&
            b_use != nullptr) {
            linalg::gemm_raw(a_use, b_use, c_.data(), b, b, b);
        }
    }
}

linalg::Matrix Summa::gather_c() const {
    const std::size_t b = cfg_.block;
    const int p = world_.size();
    std::vector<double> all(static_cast<std::size_t>(p) * b * b);
    minimpi::gather(world_, c_.data(), b * b,
                    world_.rank() == 0 ? all.data() : nullptr,
                    Datatype::Double, 0);
    linalg::Matrix full(static_cast<std::size_t>(cfg_.grid) * b,
                        static_cast<std::size_t>(cfg_.grid) * b);
    if (world_.rank() == 0) {
        for (int r = 0; r < p; ++r) {
            const std::size_t pr = static_cast<std::size_t>(r / cfg_.grid) * b;
            const std::size_t pc = static_cast<std::size_t>(r % cfg_.grid) * b;
            const double* tile = all.data() + static_cast<std::size_t>(r) * b * b;
            for (std::size_t i = 0; i < b; ++i) {
                std::memcpy(&full(pr + i, pc), tile + i * b, b * sizeof(double));
            }
        }
    }
    return full;
}

}  // namespace apps
