#include "trace/chrome.h"

#include <cstdio>

namespace hytrace {

const char* phase_name(Phase p) {
    switch (p) {
        case Phase::P2P: return "p2p";
        case Phase::Coll: return "coll";
        case Phase::Bridge: return "bridge";
        case Phase::Copy: return "copy";
        case Phase::Sync: return "sync";
        case Phase::Robust: return "robust";
        case Phase::Compute: return "compute";
        case Phase::Engine: return "engine";
    }
    return "?";
}

namespace {

/// Span names are static literals under our control (no quotes/control
/// chars), but escape defensively so the file stays valid JSON regardless.
void write_escaped(std::ostream& os, const char* s) {
    os << '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os << buf;
        } else {
            os << c;
        }
    }
    os << '"';
}

void write_us(std::ostream& os, VTime t) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f", t);
    os << buf;
}

}  // namespace

void write_chrome_json(std::ostream& os, const std::vector<RunTrace>& runs) {
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first) os << ",\n";
        first = false;
    };
    for (std::size_t run = 0; run < runs.size(); ++run) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": " << run
           << ", \"name\": \"process_name\", \"args\": {\"name\": \"run "
           << run << "\"}}";
        const RunTrace& rt = runs[run];
        for (std::size_t r = 0; r < rt.ranks.size(); ++r) {
            sep();
            os << "{\"ph\": \"M\", \"pid\": " << run << ", \"tid\": " << r
               << ", \"name\": \"thread_name\", \"args\": {\"name\": \"rank "
               << r << " (node " << rt.ranks[r].node << ")\"}}";
        }
        for (std::size_t r = 0; r < rt.ranks.size(); ++r) {
            for (const Span& s : rt.ranks[r].spans) {
                sep();
                os << "{\"ph\": \"X\", \"pid\": " << run
                   << ", \"tid\": " << r << ", \"ts\": ";
                write_us(os, s.t_start);
                os << ", \"dur\": ";
                write_us(os, s.t_end - s.t_start);
                os << ", \"name\": ";
                write_escaped(os, s.name);
                os << ", \"cat\": \"" << phase_name(s.phase) << '"';
                os << ", \"args\": {\"phase\": \"" << phase_name(s.phase)
                   << "\", \"depth\": " << s.depth;
                if (s.coll != nullptr) {
                    os << ", \"coll\": ";
                    write_escaped(os, s.coll);
                }
                if (s.algo != nullptr) {
                    os << ", \"algo\": ";
                    write_escaped(os, s.algo);
                }
                if (s.bytes > 0) os << ", \"bytes\": " << s.bytes;
                if (s.chunks > 0) os << ", \"chunks\": " << s.chunks;
                if (s.peer >= 0) os << ", \"peer\": " << s.peer;
                if (s.comm_size > 0) {
                    os << ", \"comm_size\": " << s.comm_size
                       << ", \"comm_rank\": " << s.comm_rank;
                }
                os << "}}";
            }
        }
    }
    os << "\n],\n\"otherData\": {\"counters\": [\n";
    bool cfirst = true;
    Counters totals;
    for (std::size_t run = 0; run < runs.size(); ++run) {
        const RunTrace& rt = runs[run];
        for (std::size_t r = 0; r < rt.ranks.size(); ++r) {
            const Counters& c = rt.ranks[r].counters;
            totals += c;
            if (!cfirst) os << ",\n";
            cfirst = false;
            os << "{\"pid\": " << run << ", \"tid\": " << r
               << ", \"bridge_bytes\": " << c.bridge_bytes
               << ", \"shm_bytes\": " << c.shm_bytes
               << ", \"xsocket_bytes\": " << c.xsocket_bytes
               << ", \"sync_wait_us\": ";
            write_us(os, c.sync_wait_us);
            os << ", \"retransmits\": " << c.retransmits
               << ", \"degradations\": " << c.degradations
               << ", \"chunks\": " << c.chunks
               << ", \"failures_detected\": " << c.failures_detected
               << ", \"shrinks\": " << c.shrinks
               << ", \"tenant_jobs\": " << c.tenant_jobs << "}";
        }
    }
    os << "\n], \"totals\": {\"bridge_bytes\": " << totals.bridge_bytes
       << ", \"shm_bytes\": " << totals.shm_bytes
       << ", \"xsocket_bytes\": " << totals.xsocket_bytes
       << ", \"sync_wait_us\": ";
    write_us(os, totals.sync_wait_us);
    os << ", \"retransmits\": " << totals.retransmits
       << ", \"degradations\": " << totals.degradations
       << ", \"chunks\": " << totals.chunks
       << ", \"failures_detected\": " << totals.failures_detected
       << ", \"shrinks\": " << totals.shrinks
       << ", \"tenant_jobs\": " << totals.tenant_jobs << "}}\n}\n";
}

}  // namespace hytrace
