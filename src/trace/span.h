#pragma once

#include <cstdint>
#include <vector>

/// Virtual-time tracing primitives (see DESIGN.md "Observability").
///
/// The span subsystem answers the paper's central question — WHERE does a
/// collective's time go (bridge exchange vs. on-node copy vs. barrier/flag
/// synchronization, Figs. 7-12) — instead of only reporting end-to-end
/// latencies. Every timestamp is virtual time, so a trace is a pure
/// function of (cluster, model, fault plan, program): identical runs
/// produce bit-identical traces, and CI can diff them at 0% tolerance.
///
/// This library sits BELOW minimpi in the dependency graph (like tuning):
/// minimpi, hybrid and robust all record into it, so it must not include
/// any of their headers.
namespace hytrace {

/// Virtual time in microseconds (mirrors minimpi::VTime, which this
/// library cannot include).
using VTime = double;

/// Broad cost category of a span. The per-phase breakdown in trace_report
/// partitions each collective's interval among its direct children by
/// phase — the decomposition the paper's figures argue from.
enum class Phase : std::uint8_t {
    P2P,      ///< point-to-point send/recv (recv includes the arrival wait)
    Coll,     ///< a collective operation (root span carrying coll/algo)
    Bridge,   ///< inter-node bridge exchange of a hybrid collective
    Copy,     ///< local / node-shared memory copy phase
    Sync,     ///< barrier or flag synchronization interval
    Robust,   ///< retransmit / backoff / degradation event
    Compute,  ///< application flops
    Engine,   ///< nonblocking-collective engine event (post/progress/complete)
};

/// Stable lowercase label of @p p (used in the Chrome JSON "cat"/"args").
const char* phase_name(Phase p);

/// One interval on a rank's virtual timeline. Name/coll/algo are static
/// string literals (never owned): recording a span is a vector push_back.
///
/// The communicator is identified by (comm_size, comm_rank) rather than
/// the runtime's internal context ids — context ids are allocated by a
/// wall-clock-ordered atomic, which would break trace determinism.
struct Span {
    const char* name = "";      ///< e.g. "bridge_exchange", "flag_wait"
    const char* coll = nullptr; ///< collective this span IS (roots only)
    const char* algo = nullptr; ///< algorithm chosen, when one was selected
    Phase phase = Phase::Coll;
    std::uint16_t depth = 0;    ///< nesting depth at begin (roots: 0)
    int peer = -1;              ///< world rank for p2p spans, -1 otherwise
    int comm_size = 0;
    int comm_rank = -1;
    std::uint64_t bytes = 0;    ///< payload volume attributed to the span
    std::uint64_t chunks = 0;   ///< pipeline chunks this span moved (0 = unchunked)
    VTime t_start = 0.0;
    VTime t_end = 0.0;
};

/// Per-rank counters, aggregated by Runtime::run at finalize. Each is
/// maintained exactly at the code site that performs the counted action,
/// so e.g. `retransmits` matches RobustStats::retries by construction.
struct Counters {
    std::uint64_t bridge_bytes = 0;  ///< bytes sent inside bridge-exchange spans
    std::uint64_t shm_bytes = 0;     ///< bytes moved through node-shared memory
    std::uint64_t xsocket_bytes = 0; ///< bytes crossing a NUMA socket boundary
    VTime sync_wait_us = 0.0;        ///< vtime spent in barrier/flag sync waits
    std::uint64_t retransmits = 0;   ///< robust DATA frames retransmitted
    std::uint64_t degradations = 0;  ///< ladder downgrades (Flags->Barrier, ->flat)
    std::uint64_t chunks = 0;        ///< pipeline chunks processed by this rank
    std::uint64_t failures_detected = 0;  ///< peer process deaths observed
    std::uint64_t shrinks = 0;       ///< agree+shrink recoveries completed
    std::uint64_t tenant_jobs = 0;   ///< service jobs completed on this rank

    Counters& operator+=(const Counters& o) {
        bridge_bytes += o.bridge_bytes;
        shm_bytes += o.shm_bytes;
        xsocket_bytes += o.xsocket_bytes;
        sync_wait_us += o.sync_wait_us;
        retransmits += o.retransmits;
        degradations += o.degradations;
        chunks += o.chunks;
        failures_detected += o.failures_detected;
        shrinks += o.shrinks;
        tenant_jobs += o.tenant_jobs;
        return *this;
    }

    bool operator==(const Counters&) const = default;
};

/// One rank's recorded trace of one Runtime::run.
struct RankTrace {
    int node = 0;
    std::vector<Span> spans;
    Counters counters;
};

/// One Runtime::run's traces, all ranks in world order.
struct RunTrace {
    std::vector<RankTrace> ranks;
};

}  // namespace hytrace
