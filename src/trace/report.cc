#include "trace/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

namespace hytrace::report {

namespace {

/// One complete ("X") event, reduced to what the breakdown needs.
struct Ev {
    double ts = 0.0;
    double dur = 0.0;
    double chunks = 0.0;  // pipeline chunk count (0 = unchunked span)
    int depth = 0;
    std::string phase;
    std::string coll;  // empty unless this is a collective root span
};

std::string fmt_us(double us) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", us);
    return buf;
}

std::string fmt_pct(double frac) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%5.1f%%", frac * 100.0);
    return buf;
}

std::string x_to_string(const json::Value& x) {
    if (x.is_string()) return x.str;
    if (x.is_number()) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.10g", x.number);
        return buf;
    }
    return "?";
}

}  // namespace

std::vector<CollBreakdown> collect_breakdowns(const json::Value& trace) {
    if (!trace.is_object()) {
        throw std::runtime_error("trace: top-level value is not an object");
    }
    const json::Value* events = trace.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
        throw std::runtime_error("trace: missing traceEvents array");
    }

    // Bucket events per (pid, tid) lane. chrome.cc writes each lane's spans
    // contiguously in begin order, so file order within a lane IS begin
    // order — no re-sorting, which keeps ties (same ts, parent first)
    // resolved the way the recorder emitted them.
    std::map<std::pair<long, long>, std::vector<Ev>> lanes;
    for (const json::Value& e : events->arr) {
        if (!e.is_object() || e.get_string("ph") != "X") continue;
        const json::Value* args = e.find("args");
        Ev ev;
        ev.ts = e.get_number("ts");
        ev.dur = e.get_number("dur");
        if (args != nullptr && args->is_object()) {
            ev.depth = static_cast<int>(args->get_number("depth"));
            ev.phase = args->get_string("phase", "?");
            ev.coll = args->get_string("coll");
            ev.chunks = args->get_number("chunks");
        }
        const auto key = std::make_pair(
            static_cast<long>(e.get_number("pid")),
            static_cast<long>(e.get_number("tid")));
        lanes[key].push_back(std::move(ev));
    }

    std::map<std::string, CollBreakdown> by_coll;
    constexpr double kEps = 1e-6;  // %.3f formatting noise
    for (const auto& [key, evs] : lanes) {
        (void)key;
        // child_us[i] = per-phase time of i's *direct* children;
        // child_chunks[i] = their per-phase pipeline chunk counts.
        std::vector<std::map<std::string, double>> child_us(evs.size());
        std::vector<std::map<std::string, double>> child_chunks(evs.size());
        // Index of the most recent span seen at each depth; since the lane
        // is in begin order, that span is the open ancestor candidate.
        std::vector<std::size_t> last_at_depth;
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const Ev& ev = evs[i];
            const auto d = static_cast<std::size_t>(ev.depth);
            if (d > 0 && d <= last_at_depth.size()) {
                const std::size_t p = last_at_depth[d - 1];
                const Ev& parent = evs[p];
                if (ev.ts >= parent.ts - kEps &&
                    ev.ts + ev.dur <= parent.ts + parent.dur + kEps) {
                    child_us[p][ev.phase] += ev.dur;
                    if (ev.chunks > 0.0) {
                        child_chunks[p][ev.phase] += ev.chunks;
                    }
                }
            }
            if (d < last_at_depth.size()) {
                last_at_depth.resize(d);
            }
            last_at_depth.push_back(i);
        }
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const Ev& ev = evs[i];
            if (ev.coll.empty()) continue;
            CollBreakdown& row = by_coll[ev.coll];
            row.coll = ev.coll;
            row.total_us += ev.dur;
            row.root_spans += 1;
            double covered = 0.0;
            for (const auto& [phase, us] : child_us[i]) {
                row.phase_us[phase] += us;
                covered += us;
            }
            for (const auto& [phase, n] : child_chunks[i]) {
                row.phase_chunks[phase] += n;
            }
            const double self = ev.dur - covered;
            if (self > kEps) row.phase_us["self"] += self;
        }
    }

    std::vector<CollBreakdown> rows;
    rows.reserve(by_coll.size());
    for (auto& [name, row] : by_coll) {
        (void)name;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const CollBreakdown& a, const CollBreakdown& b) {
                  return a.total_us > b.total_us;
              });
    return rows;
}

void print_breakdowns(std::ostream& os,
                      const std::vector<CollBreakdown>& rows) {
    if (rows.empty()) {
        os << "no collective root spans found (was HYMPI_TRACE set while "
              "the workload ran?)\n";
        return;
    }
    for (const CollBreakdown& row : rows) {
        os << "== " << row.coll << "  (" << row.root_spans
           << " spans, " << fmt_us(row.total_us) << " us total)\n";
        std::vector<std::pair<std::string, double>> phases(
            row.phase_us.begin(), row.phase_us.end());
        std::sort(phases.begin(), phases.end(),
                  [](const auto& a, const auto& b) {
                      return a.second > b.second;
                  });
        char line[160];
        std::snprintf(line, sizeof line, "   %-10s %14s %8s %8s\n", "phase",
                      "time_us", "share", "chunks");
        os << line;
        for (const auto& [phase, us] : phases) {
            const double share = row.total_us > 0.0 ? us / row.total_us : 0.0;
            const auto ci = row.phase_chunks.find(phase);
            char chunks[32];
            if (ci != row.phase_chunks.end() && ci->second > 0.0) {
                std::snprintf(chunks, sizeof chunks, "%.0f", ci->second);
            } else {
                std::snprintf(chunks, sizeof chunks, "-");
            }
            std::snprintf(line, sizeof line, "   %-10s %14s %8s %8s\n",
                          phase.c_str(), fmt_us(us).c_str(),
                          fmt_pct(share).c_str(), chunks);
            os << line;
        }
        os << '\n';
    }
}

void print_counters(std::ostream& os, const json::Value& trace) {
    const json::Value* other = trace.find("otherData");
    const json::Value* totals =
        other != nullptr ? other->find("totals") : nullptr;
    if (totals == nullptr || !totals->is_object()) return;
    os << "counters (all ranks, all runs):\n";
    for (const auto& [key, v] : totals->obj) {
        char line[128];
        if (v.is_number()) {
            std::snprintf(line, sizeof line, "   %-14s %18.3f\n", key.c_str(),
                          v.number);
            os << line;
        }
    }
}

bool print_service(std::ostream& os, const json::Value& doc) {
    const json::Value* svc = doc.find("service");
    if (svc == nullptr || !svc->is_object()) return false;
    char line[256];
    os << "collective service (" << svc->get_string("profile", "?")
       << " profile, qos=" << svc->get_string("qos", "?") << ", seed "
       << static_cast<long long>(svc->get_number("seed")) << ")\n";
    if (const json::Value* cl = svc->find("cluster"); cl != nullptr) {
        std::snprintf(line, sizeof line, "  cluster: %d nodes x %d ranks\n",
                      static_cast<int>(cl->get_number("nodes")),
                      static_cast<int>(cl->get_number("ppn")));
        os << line;
    }
    if (const json::Value* t = svc->find("total"); t != nullptr) {
        std::snprintf(line, sizeof line,
                      "  total: %d jobs, %d ops, makespan %.3f us\n",
                      static_cast<int>(t->get_number("jobs")),
                      static_cast<int>(t->get_number("ops")),
                      t->get_number("makespan_us"));
        os << line;
        std::snprintf(line, sizeof line,
                      "  throughput %.1f ops/s, completion p50 %.3f us, "
                      "p99 %.3f us\n",
                      t->get_number("ops_per_sec"), t->get_number("p50_us"),
                      t->get_number("p99_us"));
        os << line;
    }
    const json::Value* tenants = svc->find("tenants");
    if (tenants == nullptr || !tenants->is_array()) return true;
    std::snprintf(line, sizeof line, "  %6s %7s %5s %5s %12s %12s %12s %14s %8s\n",
                  "tenant", "weight", "jobs", "ops", "mean(us)", "p50(us)",
                  "p99(us)", "bridge_bytes", "msgs");
    os << line;
    for (const json::Value& t : tenants->arr) {
        std::snprintf(
            line, sizeof line,
            "  %6d %7.3g %5d %5d %12.3f %12.3f %12.3f %14llu %8llu\n",
            static_cast<int>(t.get_number("tenant")),
            t.get_number("weight"), static_cast<int>(t.get_number("jobs")),
            static_cast<int>(t.get_number("ops")), t.get_number("mean_us"),
            t.get_number("p50_us"), t.get_number("p99_us"),
            static_cast<unsigned long long>(t.get_number("bridge_bytes")),
            static_cast<unsigned long long>(t.get_number("bridge_msgs")));
        os << line;
    }
    return true;
}

DiffResult diff_bench_json(const json::Value& base, const json::Value& cand,
                           double rel_tol) {
    DiffResult out;
    const json::Value* bseries = base.find("series");
    const json::Value* cseries = cand.find("series");
    const json::Value* brows = base.find("rows");
    const json::Value* crows = cand.find("rows");
    if (bseries == nullptr || !bseries->is_array() || brows == nullptr ||
        !brows->is_array()) {
        out.mismatches.push_back("baseline: not a BENCH table (missing "
                                 "series/rows)");
        return out;
    }
    if (cseries == nullptr || !cseries->is_array() || crows == nullptr ||
        !crows->is_array()) {
        out.mismatches.push_back("candidate: not a BENCH table (missing "
                                 "series/rows)");
        return out;
    }
    if (bseries->arr.size() != cseries->arr.size()) {
        out.mismatches.push_back(
            "series count differs: baseline " +
            std::to_string(bseries->arr.size()) + " vs candidate " +
            std::to_string(cseries->arr.size()));
        return out;
    }
    for (std::size_t s = 0; s < bseries->arr.size(); ++s) {
        if (bseries->arr[s].str != cseries->arr[s].str) {
            out.mismatches.push_back("series " + std::to_string(s) +
                                     " differs: \"" + bseries->arr[s].str +
                                     "\" vs \"" + cseries->arr[s].str + '"');
        }
    }
    if (brows->arr.size() != crows->arr.size()) {
        out.mismatches.push_back("row count differs: baseline " +
                                 std::to_string(brows->arr.size()) +
                                 " vs candidate " +
                                 std::to_string(crows->arr.size()));
    }
    if (!out.mismatches.empty()) return out;

    const std::size_t nrows = brows->arr.size();
    for (std::size_t r = 0; r < nrows; ++r) {
        const json::Value& brow = brows->arr[r];
        const json::Value& crow = crows->arr[r];
        const json::Value* bx = brow.find("x");
        const json::Value* cx = crow.find("x");
        const std::string xs = bx != nullptr ? x_to_string(*bx) : "?";
        if (bx != nullptr && cx != nullptr &&
            x_to_string(*bx) != x_to_string(*cx)) {
            out.mismatches.push_back("row " + std::to_string(r) +
                                     ": x differs: " + x_to_string(*bx) +
                                     " vs " + x_to_string(*cx));
            continue;
        }
        const json::Value* bvals = brow.find("values");
        const json::Value* cvals = crow.find("values");
        if (bvals == nullptr || cvals == nullptr || !bvals->is_array() ||
            !cvals->is_array() ||
            bvals->arr.size() != cvals->arr.size() ||
            bvals->arr.size() != bseries->arr.size()) {
            out.mismatches.push_back("row " + std::to_string(r) + " (x=" +
                                     xs + "): values shape differs");
            continue;
        }
        for (std::size_t s = 0; s < bvals->arr.size(); ++s) {
            const json::Value& bv = bvals->arr[s];
            const json::Value& cv = cvals->arr[s];
            // Structural cases first: a null cell (no measurement) on one
            // side only, or a legitimate 0-valued baseline, must never feed
            // the relative comparison — dividing by 0 would yield inf/NaN
            // and a null read as number 0.0 would silently pass.
            if (bv.is_null() != cv.is_null()) {
                out.mismatches.push_back(
                    "row " + std::to_string(r) + " (x=" + xs + ") series \"" +
                    bseries->arr[s].str + "\": " +
                    (bv.is_null() ? "baseline has no value but candidate does"
                                  : "candidate has no value but baseline "
                                    "does"));
                continue;
            }
            if (bv.is_null()) continue;  // both absent: nothing to compare
            DiffEntry e;
            e.series = bseries->arr[s].str;
            e.x = xs;
            e.base = bv.number;
            e.cand = cv.number;
            if (e.base == 0.0) {
                // A zero-latency baseline cell cannot anchor a relative
                // tolerance; any nonzero candidate is a structural change.
                if (e.cand != 0.0) {
                    out.mismatches.push_back(
                        "row " + std::to_string(r) + " (x=" + xs +
                        ") series \"" + e.series +
                        "\": baseline is 0 but candidate is " +
                        std::to_string(e.cand) +
                        " (relative comparison undefined)");
                }
                continue;
            }
            e.rel = (e.cand - e.base) / e.base;
            // Values are latencies: only slower-than-baseline is a
            // regression. The absolute guard keeps --rel-tol 0 usable for
            // bit-identical runs without tripping on representation noise.
            e.regression = e.cand > e.base * (1.0 + rel_tol) &&
                           e.cand - e.base > 1e-9;
            if (e.regression) out.regressions += 1;
            out.entries.push_back(std::move(e));
        }
        // Optional per-series "chunks" arrays: compared only when BOTH
        // rows carry them, so baselines written before the pipeline
        // engine existed stay comparable. A differing count means the
        // engine retuned its chunk geometry; the latency cells above are
        // the verdict, so this is INFO, never a mismatch.
        const json::Value* bch = brow.find("chunks");
        const json::Value* cch = crow.find("chunks");
        if (bch != nullptr && cch != nullptr && bch->is_array() &&
            cch->is_array() && bch->arr.size() == cch->arr.size() &&
            bch->arr.size() == bseries->arr.size()) {
            for (std::size_t s = 0; s < bch->arr.size(); ++s) {
                const json::Value& bc = bch->arr[s];
                const json::Value& cc = cch->arr[s];
                if (!bc.is_number() || !cc.is_number()) continue;
                if (bc.number != cc.number) {
                    char buf[256];
                    std::snprintf(buf, sizeof buf,
                                  "%s @ x=%s: chunk count %.0f -> %.0f",
                                  bseries->arr[s].str.c_str(), xs.c_str(),
                                  bc.number, cc.number);
                    out.infos.emplace_back(buf);
                }
            }
        }
    }
    return out;
}

void print_diff(std::ostream& os, const DiffResult& diff, double rel_tol) {
    for (const std::string& m : diff.mismatches) {
        os << "MISMATCH: " << m << '\n';
    }
    double worst = 0.0;
    for (const DiffEntry& e : diff.entries) {
        if (e.regression) {
            char line[256];
            std::snprintf(line, sizeof line,
                          "REGRESSION: %s @ x=%s: %.6g -> %.6g (%+.2f%%)\n",
                          e.series.c_str(), e.x.c_str(), e.base, e.cand,
                          e.rel * 100.0);
            os << line;
        }
        worst = std::max(worst, e.rel);
    }
    for (const std::string& i : diff.infos) {
        os << "INFO: " << i << '\n';
    }
    char tail[160];
    std::snprintf(tail, sizeof tail,
                  "%zu points compared, %d regression(s), %zu info(s), "
                  "worst delta %+.2f%% (rel-tol %.2f%%)\n",
                  diff.entries.size(), diff.regressions, diff.infos.size(),
                  worst * 100.0, rel_tol * 100.0);
    os << tail;
}

}  // namespace hytrace::report
