#pragma once

#include <cstddef>

#include "trace/span.h"

/// Compile-out switch: -DHYMPI_TRACE_ENABLED=0 (CMake -DHYMPI_TRACING=OFF)
/// removes every recording site from the binary; the default leaves them in
/// as a single null-pointer branch when tracing is off at runtime.
#ifndef HYMPI_TRACE_ENABLED
#define HYMPI_TRACE_ENABLED 1
#endif

namespace hytrace {

/// Per-rank span/counter recorder. Exactly one thread (the owning rank's)
/// touches a recorder during a run; the runtime collects them afterwards.
///
/// Spans are stored in BEGIN order with their nesting depth, which is all
/// the exporter and report need to rebuild the hierarchy: a span's children
/// are the following spans with greater depth, up to the next span with
/// depth <= its own.
class Recorder {
public:
    explicit Recorder(bool p2p = false) : p2p_(p2p) {}

    /// Whether per-message p2p spans are wanted. They dominate trace volume
    /// (every send/recv of every rank), so they are opt-in; the per-phase
    /// breakdown only needs the coarse phase spans.
    bool p2p() const { return p2p_; }

    /// Open a span at @p t0; returns its index for end()/span().
    std::size_t begin(Phase phase, const char* name, VTime t0) {
        const std::size_t idx = spans_.size();
        Span s;
        s.phase = phase;
        s.name = name;
        s.depth = depth_;
        s.t_start = t0;
        s.t_end = t0;
        spans_.push_back(s);
        ++depth_;
        return idx;
    }

    /// Close the span opened as @p idx at @p t1.
    void end(std::size_t idx, VTime t1) {
        spans_[idx].t_end = t1;
        --depth_;
    }

    /// Mutable access to an open span (set coll/algo/bytes/peer).
    Span& span(std::size_t idx) { return spans_[idx]; }

    /// Record a complete leaf span [t0, t1] at the current depth.
    Span& complete(Phase phase, const char* name, VTime t0, VTime t1) {
        Span s;
        s.phase = phase;
        s.name = name;
        s.depth = depth_;
        s.t_start = t0;
        s.t_end = t1;
        spans_.push_back(s);
        return spans_.back();
    }

    /// Record a zero-duration event at @p t (retransmits, degradations).
    Span& instant(Phase phase, const char* name, VTime t) {
        return complete(phase, name, t, t);
    }

    Counters& counters() { return counters_; }
    const Counters& counters() const { return counters_; }
    const std::vector<Span>& spans() const { return spans_; }

    /// Number of currently open (unbalanced) spans; 0 after a clean run.
    int open_depth() const { return depth_; }

private:
    std::vector<Span> spans_;
    Counters counters_;
    std::uint16_t depth_ = 0;
    bool p2p_ = false;
};

}  // namespace hytrace
