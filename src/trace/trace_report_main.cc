// trace_report: offline analysis of the virtual-time traces and BENCH
// tables this repo emits.
//
//   trace_report <trace.json>
//       Per-collective per-phase breakdown (plus counters) of a Chrome
//       trace-event file written via HYMPI_TRACE=<path>.
//
//   trace_report --diff <baseline.json> <candidate.json> [--rel-tol F]
//       Compare two BENCH_*.json tables; exits 1 when any point is more
//       than F (default 0.05 = 5%) slower than the baseline, or when the
//       tables are structurally different. Metadata ("meta", "title") is
//       ignored, so old baselines stay comparable.
//
//   trace_report --service <service.json>
//       Aggregate dashboard of a multi-tenant collective-service run
//       (SERVICE_*.json from bench/service_throughput or
//       service::ServiceResult::write_json): run totals, throughput,
//       completion-latency percentiles and the per-tenant bridge-byte
//       attribution.
//
// Exit codes: 0 ok, 1 regression or mismatch, 2 usage / IO / parse error.

#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "trace/json.h"
#include "trace/report.h"

namespace {

int usage() {
    std::cerr << "usage:\n"
              << "  trace_report <trace.json>\n"
              << "  trace_report --diff <baseline.json> <candidate.json>"
                 " [--rel-tol F]\n"
              << "  trace_report --service <service.json>\n";
    return 2;
}

int run_breakdown(const std::string& path) {
    const hytrace::json::Value trace = hytrace::json::parse_file(path);
    const auto rows = hytrace::report::collect_breakdowns(trace);
    hytrace::report::print_breakdowns(std::cout, rows);
    hytrace::report::print_counters(std::cout, trace);
    return 0;
}

int run_service(const std::string& path) {
    const hytrace::json::Value doc = hytrace::json::parse_file(path);
    if (!hytrace::report::print_service(std::cout, doc)) {
        std::cerr << "trace_report: " << path
                  << " has no \"service\" object (not a SERVICE_*.json?)\n";
        return 2;
    }
    return 0;
}

int run_diff(const std::string& base_path, const std::string& cand_path,
             double rel_tol) {
    const hytrace::json::Value base = hytrace::json::parse_file(base_path);
    const hytrace::json::Value cand = hytrace::json::parse_file(cand_path);
    const auto diff = hytrace::report::diff_bench_json(base, cand, rel_tol);
    hytrace::report::print_diff(std::cout, diff, rel_tol);
    return diff.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0) {
            if (argc < 4) return usage();
            double rel_tol = 0.05;
            for (int i = 4; i < argc; ++i) {
                if (std::strcmp(argv[i], "--rel-tol") == 0 && i + 1 < argc) {
                    rel_tol = std::atof(argv[++i]);
                } else {
                    return usage();
                }
            }
            return run_diff(argv[2], argv[3], rel_tol);
        }
        if (argc == 3 && std::strcmp(argv[1], "--service") == 0) {
            return run_service(argv[2]);
        }
        if (argc == 2) return run_breakdown(argv[1]);
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "trace_report: " << e.what() << '\n';
        return 2;
    }
}
