#pragma once

#include <ostream>
#include <vector>

#include "trace/span.h"

namespace hytrace {

/// Serialize @p runs in the Chrome trace-event JSON format (the object
/// form: {"traceEvents": [...], ...}), loadable in chrome://tracing and
/// Perfetto. Mapping: pid = run index, tid = rank, ts/dur = virtual
/// microseconds. Per-rank counters ride along under "otherData" so
/// trace_report can print them without re-deriving.
///
/// Output is a deterministic function of @p runs: fixed field order,
/// fixed "%.3f" time formatting, no wall-clock or environment content.
void write_chrome_json(std::ostream& os, const std::vector<RunTrace>& runs);

}  // namespace hytrace
