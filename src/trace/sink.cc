#include "trace/sink.h"

#include <cstdlib>
#include <fstream>

#include "trace/chrome.h"

namespace hytrace {

TraceSink& TraceSink::instance() {
    static TraceSink sink;
    return sink;
}

TraceSink::TraceSink() {
    const char* path = std::getenv("HYMPI_TRACE");
    if (path != nullptr && path[0] != '\0') path_ = path;
    const char* p2p = std::getenv("HYMPI_TRACE_P2P");
    p2p_ = p2p != nullptr && p2p[0] != '\0' && p2p[0] != '0';
}

void TraceSink::configure(std::string path, bool p2p) {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = std::move(path);
    p2p_ = p2p;
    runs_.clear();
}

void TraceSink::add_run(RunTrace run) {
    std::lock_guard<std::mutex> lock(mu_);
    runs_.push_back(std::move(run));
    if (!atexit_registered_) {
        atexit_registered_ = true;
        std::atexit([] { TraceSink::instance().flush(); });
    }
}

void TraceSink::flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty() || runs_.empty()) return;
    std::ofstream os(path_, std::ios::trunc);
    if (!os) return;
    write_chrome_json(os, runs_);
}

}  // namespace hytrace
