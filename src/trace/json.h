#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Minimal JSON reader for trace_report: parses the files this repo itself
/// emits (BENCH_*.json tables, Chrome trace-event traces). Full JSON value
/// grammar, no external dependency, strict (trailing garbage is an error).
namespace hytrace::json {

struct Value {
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;  // insertion order kept

    bool is_null() const { return type == Type::Null; }
    bool is_number() const { return type == Type::Number; }
    bool is_string() const { return type == Type::String; }
    bool is_array() const { return type == Type::Array; }
    bool is_object() const { return type == Type::Object; }

    /// First member named @p key, or nullptr (objects only).
    const Value* find(std::string_view key) const;

    /// find(key)->str when present and a string, else @p fallback.
    std::string get_string(std::string_view key,
                           const std::string& fallback = "") const;
    /// find(key)->number when present and a number, else @p fallback.
    double get_number(std::string_view key, double fallback = 0.0) const;
};

/// Parse @p text; throws std::runtime_error with position info on error.
Value parse(std::string_view text);

/// Parse the contents of @p path; throws std::runtime_error when the file
/// cannot be read or does not parse.
Value parse_file(const std::string& path);

}  // namespace hytrace::json
