#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "trace/json.h"

/// Offline analysis for trace_report: per-phase breakdowns of Chrome
/// trace-event files written by this repo, and tolerance-based diffs of
/// BENCH_*.json tables (bench_util::Table::write_json output).
namespace hytrace::report {

/// Aggregated per-phase virtual time for one collective, summed over every
/// rank and run in the trace.
struct CollBreakdown {
    std::string coll;                       ///< e.g. "Hy_Allgather"
    std::map<std::string, double> phase_us; ///< phase name -> total us
    /// phase name -> total pipeline chunk count (0 for unchunked phases;
    /// the "self" pseudo-phase never carries chunks).
    std::map<std::string, double> phase_chunks;
    double total_us = 0.0;                  ///< sum of root span durations
    int root_spans = 0;                     ///< number of root spans seen
};

/// Build per-collective breakdowns from a parsed Chrome trace.
///
/// A *root* span is one whose args carry a "coll" label. Its interval is
/// partitioned among its direct children (spans on the same pid/tid whose
/// depth is exactly root.depth + 1 and which lie inside the root interval)
/// by their "phase" label; whatever the children do not cover is charged to
/// the pseudo-phase "self". Direct children — not leaves — because leaf
/// recv spans include arrival waits, and charging those to "p2p" would hide
/// exactly the sync time the hybrid collectives are designed to expose.
///
/// Throws std::runtime_error when @p trace is not a trace-event object.
std::vector<CollBreakdown> collect_breakdowns(const json::Value& trace);

/// Print @p rows as a fixed-width per-phase table, one block per
/// collective, phases sorted by descending time share.
void print_breakdowns(std::ostream& os, const std::vector<CollBreakdown>& rows);

/// Print the "otherData" counter block of @p trace, when present.
void print_counters(std::ostream& os, const json::Value& trace);

/// Print the aggregate dashboard of a SERVICE_*.json file written by
/// service::ServiceResult::write_json — run totals (jobs, ops/sec, p50/p99
/// completion latency) followed by a per-tenant table with the bridge-byte
/// attribution. Returns false (printing nothing) when @p doc has no
/// "service" object.
bool print_service(std::ostream& os, const json::Value& doc);

/// One data-point comparison from a BENCH table diff.
struct DiffEntry {
    std::string series;
    std::string x;
    double base = 0.0;
    double cand = 0.0;
    double rel = 0.0;      ///< (cand - base) / base; 0 when base == 0
    bool regression = false;
};

struct DiffResult {
    std::vector<DiffEntry> entries;      ///< every compared point
    std::vector<std::string> mismatches; ///< structural problems (fatal)
    /// Non-fatal observations: a chunk-count change whose latency stays
    /// within tolerance is a retuned pipeline, not a broken bench.
    std::vector<std::string> infos;
    int regressions = 0;

    bool ok() const { return regressions == 0 && mismatches.empty(); }
};

/// Compare two BENCH_*.json tables point by point. A point regresses when
/// cand > base * (1 + rel_tol) — values are latencies, lower is better.
/// Metadata keys ("meta", "title", "x_label") never affect the verdict, so
/// baselines recorded before the meta header existed stay comparable.
/// Missing/extra series or rows are structural mismatches and also fail.
/// Per-row "chunks" arrays are compared only when BOTH sides carry them
/// (old baselines stay comparable); a differing chunk count is reported
/// as INFO, never a mismatch — the latency cell is the verdict.
DiffResult diff_bench_json(const json::Value& base, const json::Value& cand,
                           double rel_tol);

/// Print a human-readable diff report; lists regressions first.
void print_diff(std::ostream& os, const DiffResult& diff, double rel_tol);

}  // namespace hytrace::report
