#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "trace/span.h"

namespace hytrace {

/// Process-wide trace collector behind the HYMPI_TRACE=<path> environment
/// switch. Each Runtime::run appends one RunTrace; the Chrome trace-event
/// file is written once at process exit (and on explicit flush()), so a
/// bench with many runs pays one serialization, not one per run.
///
/// Determinism: runs are appended in execution order (Runtime::run calls
/// are serial), ranks are stored in world order, and all content is
/// virtual-time data — two identical processes write byte-identical files.
class TraceSink {
public:
    static TraceSink& instance();

    /// True when HYMPI_TRACE names an output path (resolved once).
    bool enabled() const { return !path_.empty(); }
    /// True when HYMPI_TRACE_P2P additionally asks for per-message spans.
    bool p2p() const { return p2p_; }
    const std::string& path() const { return path_; }

    void add_run(RunTrace run);

    /// Write the Chrome trace-event JSON to path(). Safe to call multiple
    /// times (rewrites); registered with atexit on the first add_run.
    void flush();

    /// Test hook: override the environment-resolved configuration.
    void configure(std::string path, bool p2p);

private:
    TraceSink();

    std::mutex mu_;
    std::string path_;
    bool p2p_ = false;
    bool atexit_registered_ = false;
    std::vector<RunTrace> runs_;
};

}  // namespace hytrace
