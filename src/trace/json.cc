#include "trace/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hytrace::json {

const Value* Value::find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
        if (k == key) return &v;
    }
    return nullptr;
}

std::string Value::get_string(std::string_view key,
                              const std::string& fallback) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_string()) ? v->str : fallback;
}

double Value::get_number(std::string_view key, double fallback) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_number()) ? v->number : fallback;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value run() {
        Value v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return v;
    }

private:
    [[noreturn]] void fail(const char* what) const {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail("unexpected character");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Value value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': {
                Value v;
                v.type = Value::Type::String;
                v.str = string();
                return v;
            }
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return make_bool(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return make_bool(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Value{};
            default: return number();
        }
    }

    static Value make_bool(bool b) {
        Value v;
        v.type = Value::Type::Bool;
        v.boolean = b;
        return v;
    }

    Value object() {
        expect('{');
        Value v;
        v.type = Value::Type::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value array() {
        expect('[');
        Value v;
        v.type = Value::Type::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // UTF-8 encode the BMP code point (our own emitters only
                    // escape control characters, so this is ample).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    Value number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        const std::string tok(text_.substr(start, pos_ - start));
        char* endp = nullptr;
        const double d = std::strtod(tok.c_str(), &endp);
        if (endp == nullptr || *endp != '\0') fail("malformed number");
        Value v;
        v.type = Value::Type::Number;
        v.number = d;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

Value parse_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return parse(ss.str());
}

}  // namespace hytrace::json
