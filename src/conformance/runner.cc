#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <sstream>

#include "conformance/conformance.h"
#include "minimpi/coll.h"
#include "minimpi/context.h"

namespace conformance {

namespace {

using hympi::AllgatherChannel;
using hympi::AllreduceChannel;
using hympi::AlltoallChannel;
using hympi::BcastChannel;
using hympi::GatherChannel;
using hympi::HierComm;
using hympi::ReduceChannel;
using hympi::ScatterChannel;
using minimpi::Comm;
using minimpi::Datatype;
using minimpi::PersistentColl;
using minimpi::RankCtx;
using minimpi::VTime;
using detail::mix64;
using detail::pattern_byte;

/// Per-rank findings. Each rank thread writes only its own entry, so the
/// vector needs no locking; after the join the lowest failing rank wins
/// (deterministic pick regardless of which thread hit its mismatch first).
struct RankLog {
    std::string err;
    VTime last_checkpoint = 0.0;
};

void fail(RankLog& log, std::string msg) {
    if (log.err.empty()) log.err = std::move(msg);
}

/// Virtual clocks must never run backwards across a rank's own program
/// order — sample at every iteration boundary.
void checkpoint(RankLog& log, RankCtx& ctx, const char* where) {
    const VTime now = ctx.clock.now();
    if (now < log.last_checkpoint) {
        std::ostringstream os;
        os << "clock regressed at " << where << ": " << now << " < "
           << log.last_checkpoint;
        fail(log, os.str());
    }
    log.last_checkpoint = now;
}

/// Complete one hybrid split-phase round issued via start(). Persistent
/// additionally spins on the zero-cost test() poll first, exercising the
/// progress path; the poll must not move any virtual clock.
void drive_split(const CaseSpec& spec, minimpi::CollRequest rq) {
    if (spec.exec == ExecMode::Persistent) {
        while (!rq.test()) {
        }
    }
    rq.wait();
}

std::uint64_t salt_of(int iter, int a, int b = 0) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iter))
            << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 20) |
           static_cast<std::uint32_t>(b);
}

void fill_pattern(std::byte* dst, std::size_t n, std::uint64_t seed,
                  std::uint64_t salt) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = pattern_byte(seed, salt, i);
}

/// Deterministic reduction inputs. Magnitudes stay small enough that Sum
/// over any supported rank count cannot overflow (overflow would be UB for
/// the signed types and would void the byte-identity claim).
void fill_red(std::byte* dst, std::size_t count, Datatype dt,
              std::uint64_t seed, std::uint64_t salt) {
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t h = mix64(seed ^ (salt * 0xA24BAED4963EE407ULL) ^ i);
        switch (dt) {
            case Datatype::Int32: {
                const std::int32_t v =
                    static_cast<std::int32_t>(h & 0xFFFF) - 0x8000;
                std::memcpy(dst + i * 4, &v, 4);
                break;
            }
            case Datatype::Int64: {
                const std::int64_t v =
                    static_cast<std::int64_t>(h & 0xFFFFF) - 0x80000;
                std::memcpy(dst + i * 8, &v, 8);
                break;
            }
            default: {  // UInt64
                const std::uint64_t v = h & 0xFFFFF;
                std::memcpy(dst + i * 8, &v, 8);
                break;
            }
        }
    }
}

/// Elementwise reference reduction computed locally (used where the flat
/// result is not addressable on this rank, e.g. non-root ranks of the
/// root's node).
template <typename T>
void apply_red(minimpi::Op op, T* inout, const T* in, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
        switch (op) {
            case minimpi::Op::Sum: inout[i] = inout[i] + in[i]; break;
            case minimpi::Op::Min: inout[i] = std::min(inout[i], in[i]); break;
            case minimpi::Op::Max: inout[i] = std::max(inout[i], in[i]); break;
            case minimpi::Op::BitAnd: inout[i] = inout[i] & in[i]; break;
            default: inout[i] = inout[i] | in[i]; break;  // BitOr
        }
    }
}

std::vector<std::byte> expected_reduction(const CaseSpec& spec,
                                          std::size_t count, int nranks) {
    const std::size_t ds = datatype_size(spec.dt);
    std::vector<std::byte> acc(count * ds), in(count * ds);
    if (count == 0) return acc;
    fill_red(acc.data(), count, spec.dt, spec.seed, salt_of(0, 0));
    for (int r = 1; r < nranks; ++r) {
        fill_red(in.data(), count, spec.dt, spec.seed, salt_of(0, r));
        switch (spec.dt) {
            case Datatype::Int32:
                apply_red(spec.red_op,
                          reinterpret_cast<std::int32_t*>(acc.data()),
                          reinterpret_cast<const std::int32_t*>(in.data()),
                          count);
                break;
            case Datatype::Int64:
                apply_red(spec.red_op,
                          reinterpret_cast<std::int64_t*>(acc.data()),
                          reinterpret_cast<const std::int64_t*>(in.data()),
                          count);
                break;
            default:
                apply_red(spec.red_op,
                          reinterpret_cast<std::uint64_t*>(acc.data()),
                          reinterpret_cast<const std::uint64_t*>(in.data()),
                          count);
                break;
        }
    }
    return acc;
}

void expect_eq(RankLog& log, const std::byte* got, const std::byte* want,
               std::size_t n, const char* what, int iter, int block) {
    if (n == 0 || !log.err.empty()) return;
    if (got == nullptr || want == nullptr) {
        std::ostringstream os;
        os << what << " iter " << iter << " block " << block
           << ": null buffer with " << n << " bytes expected";
        fail(log, os.str());
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (got[i] != want[i]) {
            std::ostringstream os;
            os << what << " iter " << iter << " block " << block << " byte "
               << i << ": hybrid=0x" << std::hex
               << static_cast<int>(got[i]) << " flat=0x"
               << static_cast<int>(want[i]);
            fail(log, os.str());
            return;
        }
    }
}

// ---- per-op differential bodies ----------------------------------------

void diff_allgather(const CaseSpec& spec, Comm& active, HierComm& hc,
                    RankLog& log) {
    const int n = active.size();
    const int me = active.rank();
    const std::size_t bb = spec.block_bytes;
    AllgatherChannel ch(hc, bb);
    ch.set_socket_staging(spec.staging);
    ch.set_chunk_bytes(spec.chunk_bytes);
    std::vector<std::byte> mine(bb);
    std::vector<std::byte> ref(bb * static_cast<std::size_t>(n));
    PersistentColl pc;
    if (spec.exec == ExecMode::Persistent) {
        pc = PersistentColl::allgather_init(active, mine.data(), bb,
                                            ref.data(), Datatype::Byte);
    }
    for (int it = 0; it < spec.iterations; ++it) {
        fill_pattern(mine.data(), bb, spec.seed, salt_of(it, me));
        if (bb > 0) std::memcpy(ch.my_block(), mine.data(), bb);
        if (spec.exec == ExecMode::Blocking) {
            ch.run(spec.sync, spec.bridge);
            minimpi::allgather(active, mine.data(), bb, ref.data(),
                               Datatype::Byte);
        } else {
            drive_split(spec, ch.start(spec.sync, spec.bridge));
            if (spec.exec == ExecMode::Nonblocking) {
                minimpi::iallgather(active, mine.data(), bb, ref.data(),
                                    Datatype::Byte)
                    .wait();
            } else {
                pc.start();
                pc.wait();
            }
        }
        for (int r = 0; r < n; ++r) {
            expect_eq(log, ch.block_of(r),
                      ref.data() + static_cast<std::size_t>(r) * bb, bb,
                      "allgather", it, r);
        }
        checkpoint(log, active.ctx(), "allgather");
        ch.quiesce(spec.sync);
    }
}

void diff_allgatherv(const CaseSpec& spec, Comm& active, HierComm& hc,
                     RankLog& log) {
    const int n = active.size();
    const int me = active.rank();
    const auto counts = spec.derive_v_bytes(n);
    std::vector<std::size_t> displs(static_cast<std::size_t>(n));
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
        displs[static_cast<std::size_t>(r)] = total;
        total += counts[static_cast<std::size_t>(r)];
    }
    AllgatherChannel ch(hc, counts);
    ch.set_socket_staging(spec.staging);
    ch.set_chunk_bytes(spec.chunk_bytes);
    const std::size_t mb = counts[static_cast<std::size_t>(me)];
    std::vector<std::byte> mine(mb);
    std::vector<std::byte> ref(total);
    PersistentColl pc;
    if (spec.exec == ExecMode::Persistent) {
        pc = PersistentColl::allgatherv_init(active, mine.data(), mb,
                                             ref.data(), counts, displs,
                                             Datatype::Byte);
    }
    for (int it = 0; it < spec.iterations; ++it) {
        fill_pattern(mine.data(), mb, spec.seed, salt_of(it, me));
        if (mb > 0) std::memcpy(ch.my_block(), mine.data(), mb);
        if (spec.exec == ExecMode::Blocking) {
            ch.run(spec.sync, spec.bridge);
            minimpi::allgatherv(active, mine.data(), mb, ref.data(), counts,
                                displs, Datatype::Byte);
        } else {
            drive_split(spec, ch.start(spec.sync, spec.bridge));
            if (spec.exec == ExecMode::Nonblocking) {
                minimpi::iallgatherv(active, mine.data(), mb, ref.data(),
                                     counts, displs, Datatype::Byte)
                    .wait();
            } else {
                pc.start();
                pc.wait();
            }
        }
        for (int r = 0; r < n; ++r) {
            expect_eq(log, ch.block_of(r),
                      ref.data() + displs[static_cast<std::size_t>(r)],
                      counts[static_cast<std::size_t>(r)], "allgatherv", it,
                      r);
        }
        checkpoint(log, active.ctx(), "allgatherv");
        ch.quiesce(spec.sync);
    }
}

void diff_bcast(const CaseSpec& spec, Comm& active, HierComm& hc,
                RankLog& log) {
    const int n = active.size();
    const int me = active.rank();
    const std::size_t bb = spec.block_bytes;
    BcastChannel ch(hc, bb);
    ch.set_socket_staging(spec.staging);
    ch.set_chunk_bytes(spec.chunk_bytes);
    std::vector<std::byte> flat(bb);
    for (int it = 0; it < spec.iterations; ++it) {
        const int root = (spec.derive_root(n) + it) % n;  // rotate roots
        if (me == root) {
            fill_pattern(flat.data(), bb, spec.seed, salt_of(it, root, 1));
            if (bb > 0) std::memcpy(ch.write_buffer(), flat.data(), bb);
        }
        if (spec.exec == ExecMode::Blocking) {
            ch.run(root, spec.sync);
            minimpi::bcast(active, flat.data(), bb, Datatype::Byte, root);
        } else {
            drive_split(spec, ch.start(root, spec.sync));
            if (spec.exec == ExecMode::Nonblocking) {
                minimpi::ibcast(active, flat.data(), bb, Datatype::Byte, root)
                    .wait();
            } else {
                // The root rotates per iteration, so the persistent request
                // is re-initialized each round (init/start/wait/destroy is
                // itself a lifecycle worth fuzzing).
                PersistentColl pc = PersistentColl::bcast_init(
                    active, flat.data(), bb, Datatype::Byte, root);
                pc.start();
                pc.wait();
            }
        }
        expect_eq(log, ch.read_buffer(), flat.data(), bb, "bcast", it, root);
        checkpoint(log, active.ctx(), "bcast");
    }
}

void diff_allreduce(const CaseSpec& spec, Comm& active, HierComm& hc,
                    RankLog& log) {
    const int me = active.rank();
    const std::size_t ds = datatype_size(spec.dt);
    const std::size_t count = spec.block_bytes / ds;
    AllreduceChannel ch(hc, count, spec.dt);
    ch.set_socket_staging(spec.staging);
    ch.set_chunk_bytes(spec.chunk_bytes);
    std::vector<std::byte> mine(count * ds);
    std::vector<std::byte> ref(count * ds);
    PersistentColl pc;
    if (spec.exec == ExecMode::Persistent) {
        pc = PersistentColl::allreduce_init(active, mine.data(), ref.data(),
                                            count, spec.dt, spec.red_op);
    }
    for (int it = 0; it < spec.iterations; ++it) {
        // Inputs are iteration-independent (salt iter 0) so the locally
        // computed expected_reduction can double-check every iteration.
        fill_red(mine.data(), count, spec.dt, spec.seed, salt_of(0, me));
        if (count > 0) std::memcpy(ch.my_input(), mine.data(), count * ds);
        if (spec.exec == ExecMode::Blocking) {
            ch.run(spec.red_op, spec.sync);
            minimpi::allreduce(active, mine.data(), ref.data(), count,
                               spec.dt, spec.red_op);
        } else {
            drive_split(spec, ch.start(spec.red_op, spec.sync));
            if (spec.exec == ExecMode::Nonblocking) {
                minimpi::iallreduce(active, mine.data(), ref.data(), count,
                                    spec.dt, spec.red_op)
                    .wait();
            } else {
                pc.start();
                pc.wait();
            }
        }
        expect_eq(log, ch.result(), ref.data(), count * ds, "allreduce", it,
                  0);
        checkpoint(log, active.ctx(), "allreduce");
    }
    const auto expected = expected_reduction(spec, count, active.size());
    expect_eq(log, ref.data(), expected.data(), count * ds,
              "allreduce-vs-local", spec.iterations - 1, 0);
}

void diff_reduce(const CaseSpec& spec, Comm& active, HierComm& hc,
                 RankLog& log) {
    const int me = active.rank();
    const std::size_t ds = datatype_size(spec.dt);
    const std::size_t count = spec.block_bytes / ds;
    const int root = spec.derive_root(active.size());
    ReduceChannel ch(hc, count, spec.dt, root);
    const bool on_root_node = hc.my_node() == hc.node_of_rank(root);
    std::vector<std::byte> mine(count * ds);
    std::vector<std::byte> ref(count * ds);
    const auto expected = expected_reduction(spec, count, active.size());
    for (int it = 0; it < spec.iterations; ++it) {
        fill_red(mine.data(), count, spec.dt, spec.seed, salt_of(0, me));
        if (count > 0) std::memcpy(ch.my_input(), mine.data(), count * ds);
        ch.run(spec.red_op, spec.sync);
        minimpi::reduce(active, mine.data(), ref.data(), count, spec.dt,
                        spec.red_op, root);
        if (me == root) {
            expect_eq(log, ch.result(), ref.data(), count * ds, "reduce", it,
                      0);
        }
        // The hybrid result is node-shared: every rank of the root's node
        // must see it (the flat reference exists only at the root itself).
        if (on_root_node) {
            expect_eq(log, ch.result(), expected.data(), count * ds,
                      "reduce-node-visibility", it, 0);
        }
        checkpoint(log, active.ctx(), "reduce");
        minimpi::barrier(active);  // root-node readers vs next writers
    }
}

void diff_gather(const CaseSpec& spec, Comm& active, HierComm& hc,
                 RankLog& log) {
    const int n = active.size();
    const int me = active.rank();
    const std::size_t bb = spec.block_bytes;
    const int root = spec.derive_root(n);
    GatherChannel ch(hc, bb, root);
    const bool on_root_node = hc.my_node() == hc.node_of_rank(root);
    std::vector<std::byte> mine(bb);
    std::vector<std::byte> ref(bb * static_cast<std::size_t>(n));
    std::vector<std::byte> want(bb);
    for (int it = 0; it < spec.iterations; ++it) {
        fill_pattern(mine.data(), bb, spec.seed, salt_of(it, me));
        if (bb > 0) std::memcpy(ch.my_block(), mine.data(), bb);
        ch.run(spec.sync);
        minimpi::gather(active, mine.data(), bb, ref.data(), Datatype::Byte,
                        root);
        if (me == root) {
            for (int r = 0; r < n; ++r) {
                expect_eq(log, ch.gathered(r),
                          ref.data() + static_cast<std::size_t>(r) * bb, bb,
                          "gather", it, r);
            }
        } else if (on_root_node) {
            // Gathered vector exists ONCE on the root's node — check that
            // the other node members see every contribution too.
            for (int r = 0; r < n; ++r) {
                fill_pattern(want.data(), bb, spec.seed, salt_of(it, r));
                expect_eq(log, ch.gathered(r), want.data(), bb,
                          "gather-node-visibility", it, r);
            }
        }
        checkpoint(log, active.ctx(), "gather");
        minimpi::barrier(active);  // root-node readers vs next writers
    }
}

void diff_scatter(const CaseSpec& spec, Comm& active, HierComm& hc,
                  RankLog& log) {
    const int n = active.size();
    const int me = active.rank();
    const std::size_t bb = spec.block_bytes;
    const int root = spec.derive_root(n);
    ScatterChannel ch(hc, bb, root);
    std::vector<std::byte> send(bb * static_cast<std::size_t>(n));
    std::vector<std::byte> flat(bb);
    for (int it = 0; it < spec.iterations; ++it) {
        if (me == root) {
            for (int r = 0; r < n; ++r) {
                std::byte* blk = send.data() + static_cast<std::size_t>(r) * bb;
                fill_pattern(blk, bb, spec.seed, salt_of(it, r, 2));
                if (bb > 0) std::memcpy(ch.outgoing(r), blk, bb);
            }
        }
        ch.run(spec.sync);
        minimpi::scatter(active, send.data(), bb, flat.data(), Datatype::Byte,
                         root);
        expect_eq(log, ch.my_block(), flat.data(), bb, "scatter", it, me);
        checkpoint(log, active.ctx(), "scatter");
        minimpi::barrier(active);  // readers vs the root's next writes
    }
}

void diff_alltoall(const CaseSpec& spec, Comm& active, HierComm& hc,
                   RankLog& log) {
    const int n = active.size();
    const int me = active.rank();
    const std::size_t bb = spec.block_bytes;
    AlltoallChannel ch(hc, bb);
    std::vector<std::byte> send(bb * static_cast<std::size_t>(n));
    std::vector<std::byte> recv(bb * static_cast<std::size_t>(n));
    for (int it = 0; it < spec.iterations; ++it) {
        for (int d = 0; d < n; ++d) {
            std::byte* blk = send.data() + static_cast<std::size_t>(d) * bb;
            fill_pattern(blk, bb, spec.seed, salt_of(it, me, d));
            if (bb > 0) std::memcpy(ch.send_block(d), blk, bb);
        }
        ch.run(spec.sync);
        minimpi::alltoall(active, send.data(), bb, recv.data(),
                          Datatype::Byte);
        for (int s = 0; s < n; ++s) {
            expect_eq(log, ch.recv_block(s),
                      recv.data() + static_cast<std::size_t>(s) * bb, bb,
                      "alltoall", it, s);
        }
        checkpoint(log, active.ctx(), "alltoall");
        minimpi::barrier(active);  // recv-row readers vs next transpose
    }
}

void dispatch_op(const CaseSpec& spec, Comm& active, HierComm& hc,
                 RankLog& log) {
    switch (spec.op) {
        case CollOp::Allgather: diff_allgather(spec, active, hc, log); break;
        case CollOp::Allgatherv: diff_allgatherv(spec, active, hc, log); break;
        case CollOp::Bcast: diff_bcast(spec, active, hc, log); break;
        case CollOp::Allreduce: diff_allreduce(spec, active, hc, log); break;
        case CollOp::Reduce: diff_reduce(spec, active, hc, log); break;
        case CollOp::Gather: diff_gather(spec, active, hc, log); break;
        case CollOp::Scatter: diff_scatter(spec, active, hc, log); break;
        case CollOp::Alltoall: diff_alltoall(spec, active, hc, log); break;
    }
}

void case_body(const CaseSpec& spec, Comm& world, RankLog& log) {
    const auto members = spec.derive_members();
    const bool in_active =
        std::find(members.begin(), members.end(), world.rank()) !=
        members.end();
    // The split is collective over world even for ranks that sit out.
    Comm active = world.split(in_active ? 0 : minimpi::kUndefined,
                              world.rank());
    if (!in_active) return;

    checkpoint(log, active.ctx(), "start");
    // Warm the flat hierarchy cache at one fixed program point for every
    // exec mode. PersistentColl *_init builds it eagerly at init time while
    // the blocking reference builds it lazily at its first collective; the
    // build is two synchronizing splits, and moving that charge across the
    // hybrid round's barriers shifts slack between ranks — a legitimate
    // charging difference between the two programs, not an engine bug.
    // Pinning the build here keeps the blocking-twin clock identity exact.
    if (minimpi::detail::smp_hier_applicable(active)) {
        minimpi::detail::hier(active);
    }
    HierComm hc(active, spec.leaders);
    dispatch_op(spec, active, hc, log);
    checkpoint(log, active.ctx(), "end");
}

// ---- kill-injection (ULFM recovery) bodies -----------------------------

/// World ranks the plan kills, ascending: the victim alone, or its whole
/// node (kill_node cases pin SMP placement, so node membership is a
/// prefix-sum function of the spec).
std::vector<int> derive_kill_set(const CaseSpec& spec) {
    if (!spec.kill_node) return {spec.kill_rank};
    int lo = 0;
    for (const int n : spec.procs_per_node) {
        if (spec.kill_rank < lo + n) {
            std::vector<int> v(static_cast<std::size_t>(n));
            std::iota(v.begin(), v.end(), lo);
            return v;
        }
        lo += n;
    }
    return {spec.kill_rank};
}

/// Differential body for a kill case, run by every rank (victims included
/// — they execute it until the plan kills them).
///
/// Phase 1 provokes: run the regular differential body with an extended
/// iteration budget until the failure surfaces as a typed error (pre-kill
/// rounds are complete, valid diffs; the round that touches the dead rank
/// throws before any comparison, so a scratch mismatch is a genuine bug).
/// Phase 2 recovers ULFM-style on the ROOT world — revoke, agree+shrink,
/// rebuild the hierarchy — which gives every survivor one uniform
/// rendezvous even when the kill lands during the split/HierComm setup and
/// different ranks got different distances into it. Phase 3 is the
/// survivor-equivalence oracle: the agreed failed set must equal the
/// planned kill set, and the normal differential body must pass on the
/// shrunken communicator exactly as on a fresh run of the survivor set.
void kill_case_body(const CaseSpec& spec, const std::vector<int>& killset,
                    Comm& world, RankLog& log) {
    RankCtx& ctx = world.ctx();
    bool surfaced = false;
    std::shared_ptr<HierComm> hc;
    RankLog scratch;
    try {
        CaseSpec provoke = spec;
        provoke.iterations = spec.iterations * 4 + 8;
        Comm active = world.split(0, world.rank());
        if (minimpi::detail::smp_hier_applicable(active)) {
            minimpi::detail::hier(active);
        }
        hc = std::make_shared<HierComm>(active, spec.leaders);
        dispatch_op(provoke, active, *hc, scratch);
    } catch (const minimpi::ProcessFailedError&) {
        surfaced = true;
    } catch (const minimpi::CommRevokedError&) {
        surfaced = true;
    }
    // A victim that surfaced a PEER's death (or the revocation) before
    // crossing its own kill time must still die per the plan instead of
    // joining the agreement as a survivor: walk its clock forward until the
    // kill fires (RankKilled unwinds to the runtime like any other death).
    if (std::find(killset.begin(), killset.end(), world.to_world()) !=
        killset.end()) {
        for (;;) {
            ctx.clock.advance(1.0);
            minimpi::detail::check_alive(ctx);
        }
    }
    if (!scratch.err.empty()) {
        fail(log, "provoke phase: " + scratch.err);
        return;
    }
    if (!surfaced) {
        fail(log, "kill never surfaced: provoke loop ran to completion");
        return;
    }
    // Revoke before agreeing: unparks survivors still blocked in waits that
    // do not involve the dead rank directly (on-node flag rounds, bridge
    // legs between live nodes). Revocation flags live in shared CommState,
    // so it is harmless that ranks which died mid-setup never built `hc`.
    world.revoke();
    if (hc) hympi::revoke_hierarchy(*hc);
    hympi::RecoveryResult rec = hympi::shrink_and_rebuild(world, spec.leaders);

    if (rec.failed_world != killset) {
        std::ostringstream os;
        os << "agreed failed set {";
        for (std::size_t i = 0; i < rec.failed_world.size(); ++i) {
            os << (i ? "," : "") << rec.failed_world[i];
        }
        os << "} != planned kill set {";
        for (std::size_t i = 0; i < killset.size(); ++i) {
            os << (i ? "," : "") << killset[i];
        }
        os << "}";
        fail(log, os.str());
        return;
    }
    if (rec.world.size() + static_cast<int>(killset.size()) != world.size()) {
        fail(log, "shrunken comm size " + std::to_string(rec.world.size()) +
                      " inconsistent with " + std::to_string(killset.size()) +
                      " kills in a world of " + std::to_string(world.size()));
        return;
    }
    dispatch_op(spec, rec.world, *rec.hier, log);
    checkpoint(log, ctx, "post-recovery");
}

/// Execute @p spec in one virtual-time runtime. @p killset non-empty means
/// spec.faults.kills is armed and ranks run the recovery body instead of
/// the plain differential body.
CaseResult run_built_case(const CaseSpec& spec,
                          const std::vector<int>& killset) {
    CaseResult res;
    minimpi::ClusterSpec cluster = minimpi::ClusterSpec::irregular(
        spec.procs_per_node, spec.placement, spec.sockets);
    minimpi::Runtime rt(cluster, spec.cray_profile
                                     ? minimpi::ModelParams::cray()
                                     : minimpi::ModelParams::openmpi());
    rt.set_fault_plan(spec.faults);
    // Pin the robust config explicitly: cases must behave identically no
    // matter what HYMPI_ROBUST/HYMPI_RETRY_MAX/... are set to in the
    // environment of the process running the harness.
    hympi::RobustConfig rc;
    rc.enabled = spec.robust;
    // Generated plans drop/corrupt up to one frame in three; the default
    // budget of 8 leaves ~(1/3)^9 odds per flow of a legitimate
    // retries-exhausted abort, which across a many-thousand-flow sweep
    // surfaces as a rare seed-dependent failure. Doubling the budget puts
    // the exhaustion probability below 1e-8 per flow while still
    // exercising the same retry/backoff machinery.
    rc.retry_max = 16;
    rt.set_robust_config(rc);
    std::vector<RankLog> logs(
        static_cast<std::size_t>(cluster.total_ranks()));
    try {
        res.clocks = rt.run([&](Comm& world) {
            RankLog& log = logs[static_cast<std::size_t>(world.rank())];
            if (killset.empty()) {
                case_body(spec, world, log);
            } else {
                kill_case_body(spec, killset, world, log);
            }
        });
        res.robust_stats = rt.last_robust_stats();
    } catch (const std::exception& e) {
        res.ok = false;
        res.detail = std::string("exception: ") + e.what();
        return res;
    }
    for (std::size_t r = 0; r < logs.size(); ++r) {
        if (!logs[r].err.empty()) {
            res.ok = false;
            res.detail = "rank " + std::to_string(r) + ": " + logs[r].err;
            break;
        }
    }
    return res;
}

}  // namespace

CaseResult run_case(const CaseSpec& spec) {
    if (spec.kill_rank < 0) return run_built_case(spec, {});

    // Kill cases aim the failure mid-collective regardless of topology or
    // payload: a clean twin (same spec, kill disabled) measures the
    // fault-free completion time, and the kill lands at kill_frac of it.
    CaseSpec clean = spec;
    clean.kill_rank = -1;
    clean.kill_node = false;
    CaseResult probe = run_built_case(clean, {});
    if (!probe.ok) {
        probe.detail = "clean twin: " + probe.detail;
        return probe;
    }
    VTime total = 0.0;
    for (const VTime t : probe.clocks) total = std::max(total, t);

    const std::vector<int> killset = derive_kill_set(spec);
    CaseSpec armed = spec;
    for (const int w : killset) {
        armed.faults.kill(w, spec.kill_frac * total);
    }
    return run_built_case(armed, killset);
}

CaseResult run_case_checked(const CaseSpec& spec) {
    CaseResult a = run_case(spec);
    if (!a.ok) return a;
    CaseResult b = run_case(spec);
    if (!b.ok) return b;
    // Kill cases must reach the same verified end state in both runs (the
    // recovery body checks the agreed failed set and the survivor bytes),
    // but the detection interleaving is free to differ: whether a given
    // wait surfaces the dead peer (charged) or the revocation raced in
    // first (uncharged) is a wall-clock race by design, so exact clock and
    // counter identity is only required of kill-free cases.
    if (spec.kill_rank >= 0) return a;
    for (std::size_t r = 0; r < a.clocks.size(); ++r) {
        if (a.clocks[r] != b.clocks[r]) {
            std::ostringstream os;
            os.precision(17);
            os << "nondeterministic clock at rank " << r << ": "
               << a.clocks[r] << " vs " << b.clocks[r];
            a.ok = false;
            a.detail = os.str();
            return a;
        }
    }
    // Determinism under recovery: retries, downgrades and every other
    // resilience counter must repeat exactly for the same seed and plan.
    for (std::size_t r = 0; r < a.robust_stats.size(); ++r) {
        if (!(a.robust_stats[r] == b.robust_stats[r])) {
            a.ok = false;
            a.detail = "nondeterministic robust counters at rank " +
                       std::to_string(r);
            return a;
        }
    }
    // Immediate-wait identity: the harness never computes between start()
    // and wait(), so the non-blocking modes must replay the blocking
    // charging exactly — on 1-socket cases the clocks have to match a
    // Blocking twin bit for bit. (Multi-socket cases legitimately differ:
    // the split-phase wait always distributes flat, a blocking round may
    // stage through the socket leaders.)
    if (spec.exec != ExecMode::Blocking && spec.sockets == 1) {
        CaseSpec twin = spec;
        twin.exec = ExecMode::Blocking;
        const CaseResult blk = run_case(twin);
        if (!blk.ok) return blk;
        for (std::size_t r = 0; r < a.clocks.size(); ++r) {
            if (a.clocks[r] != blk.clocks[r]) {
                std::ostringstream os;
                os.precision(17);
                os << exec_name(spec.exec)
                   << " clock diverges from the blocking twin at rank " << r
                   << ": " << a.clocks[r] << " vs " << blk.clocks[r];
                a.ok = false;
                a.detail = os.str();
                return a;
            }
        }
    }
    return a;
}

}  // namespace conformance
