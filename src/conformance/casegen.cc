#include <numeric>
#include <sstream>

#include "conformance/conformance.h"

namespace conformance {

namespace detail {

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace detail

namespace {

using detail::mix64;

/// Minimal counter-based stream: draw(k) is the k-th value of the stream —
/// order-independent, so generation and derivation never get entangled.
class Stream {
public:
    explicit Stream(std::uint64_t seed) : seed_(seed) {}
    std::uint64_t next() { return mix64(seed_ ^ ctr_++); }
    /// Uniform in [0, n).
    std::uint64_t below(std::uint64_t n) { return next() % n; }
    /// True with probability pct/100.
    bool chance(int pct) { return below(100) < static_cast<std::uint64_t>(pct); }

private:
    std::uint64_t seed_;
    std::uint64_t ctr_ = 0;
};

/// Payload sizes the generator samples from: boundaries (0, 1), odd sizes
/// straddling cache lines and datatype widths, and sizes on both sides of
/// the vendor profiles' algorithm-selection thresholds.
constexpr std::size_t kSizes[] = {0,    1,    3,     7,     17,  64,
                                  255,  1024, 4096,  16384, 65536};

}  // namespace

int CaseSpec::total_ranks() const {
    return std::accumulate(procs_per_node.begin(), procs_per_node.end(), 0);
}

const char* op_name(CollOp op) {
    switch (op) {
        case CollOp::Allgather: return "allgather";
        case CollOp::Allgatherv: return "allgatherv";
        case CollOp::Bcast: return "bcast";
        case CollOp::Allreduce: return "allreduce";
        case CollOp::Reduce: return "reduce";
        case CollOp::Gather: return "gather";
        case CollOp::Scatter: return "scatter";
        case CollOp::Alltoall: return "alltoall";
    }
    return "?";
}

const char* exec_name(ExecMode m) {
    switch (m) {
        case ExecMode::Blocking: return "blocking";
        case ExecMode::Nonblocking: return "nonblocking";
        case ExecMode::Persistent: return "persistent";
    }
    return "?";
}

std::vector<int> CaseSpec::derive_members() const {
    const int p = total_ranks();
    std::vector<int> members;
    if (!subcomm) {
        members.resize(static_cast<std::size_t>(p));
        std::iota(members.begin(), members.end(), 0);
        return members;
    }
    for (int r = 0; r < p; ++r) {
        if (mix64(seed ^ 0x5B5ULL ^ static_cast<std::uint64_t>(r)) % 3 != 0) {
            members.push_back(r);
        }
    }
    // A sub-communicator below two ranks exercises nothing: force the two
    // lowest world ranks in (keeps membership a pure function of the spec).
    if (members.size() < 2 && p >= 2) {
        members.assign({0, 1});
    } else if (members.empty()) {
        members.assign({0});
    }
    return members;
}

std::vector<std::size_t> CaseSpec::derive_v_bytes(int active_size) const {
    // Irregular per-rank counts in [0, block_bytes], with zero-length
    // contributions deliberately common (~1 in 4).
    std::vector<std::size_t> v(static_cast<std::size_t>(active_size));
    for (int r = 0; r < active_size; ++r) {
        const std::uint64_t h =
            mix64(seed ^ 0x7E5ULL ^ static_cast<std::uint64_t>(r));
        v[static_cast<std::size_t>(r)] =
            (h % 4 == 0 || block_bytes == 0) ? 0 : h % (block_bytes + 1);
    }
    return v;
}

int CaseSpec::derive_root(int active_size) const {
    return static_cast<int>(mix64(seed ^ 0x200DULL) %
                            static_cast<std::uint64_t>(active_size));
}

std::string CaseSpec::describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " op=" << op_name(op) << " nodes=[";
    for (std::size_t i = 0; i < procs_per_node.size(); ++i) {
        os << (i ? "," : "") << procs_per_node[i];
    }
    os << "] placement="
       << (placement == minimpi::Placement::Smp ? "smp" : "rr");
    if (sockets > 1) {
        os << " sockets=" << sockets << " staging="
           << (staging == hympi::SocketStaging::Flat        ? "flat"
               : staging == hympi::SocketStaging::Staged    ? "staged"
               : staging == hympi::SocketStaging::Pipelined ? "pipelined"
                                                            : "auto");
    }
    // Kept out of the line for the 0 default so pre-pipeline reproducers
    // parse unchanged.
    if (chunk_bytes > 0) os << " chunk=" << chunk_bytes;
    os << " profile=" << (cray_profile ? "cray" : "openmpi");
    // Kept out of the line for Blocking so pre-ExecMode reproducers parse
    // unchanged.
    if (exec != ExecMode::Blocking) os << " exec=" << exec_name(exec);
    os << " sync=" << (sync == hympi::SyncPolicy::Barrier ? "barrier" : "flags")
       << " leaders=" << leaders << " iters=" << iterations
       << " block=" << block_bytes;
    if (op == CollOp::Allgather || op == CollOp::Allgatherv) {
        const char* bridge_name = "auto";
        switch (bridge) {
            case hympi::BridgeAlgo::Allgatherv: bridge_name = "allgatherv"; break;
            case hympi::BridgeAlgo::Bcast: bridge_name = "bcast"; break;
            case hympi::BridgeAlgo::Pipelined: bridge_name = "pipe"; break;
            case hympi::BridgeAlgo::BruckV: bridge_name = "bruckv"; break;
            case hympi::BridgeAlgo::LocBruck: bridge_name = "locbruck"; break;
            case hympi::BridgeAlgo::NeighborExchange:
                bridge_name = "nbrex";
                break;
            case hympi::BridgeAlgo::Auto: break;
        }
        os << " bridge=" << bridge_name;
    }
    if (op == CollOp::Allreduce || op == CollOp::Reduce) {
        os << " dt=" << static_cast<int>(dt)
           << " redop=" << static_cast<int>(red_op);
    }
    if (subcomm) {
        os << " subcomm=[";
        const auto members = derive_members();
        for (std::size_t i = 0; i < members.size(); ++i) {
            os << (i ? "," : "") << members[i];
        }
        os << "]";
    }
    if (faults.timing_active()) {
        os << " jitter=" << faults.max_jitter_us << "us";
        if (!faults.delayed_ranks.empty()) {
            os << " delay=" << faults.rank_delay_us << "us@[";
            for (std::size_t i = 0; i < faults.delayed_ranks.size(); ++i) {
                os << (i ? "," : "") << faults.delayed_ranks[i];
            }
            os << "]";
        }
    }
    if (faults.corrupt_every > 0) {
        os << " corrupt_every=" << faults.corrupt_every;
    }
    if (faults.drop_every > 0) os << " drop_every=" << faults.drop_every;
    if (faults.dup_every > 0) os << " dup_every=" << faults.dup_every;
    if (faults.shm_fail_every > 0) {
        os << " shm_fail_every=" << faults.shm_fail_every;
    }
    if (faults.payload_active() || faults.shm_fail_every > 0) {
        os << " scope="
           << (faults.scope == minimpi::FaultScope::AllTraffic ? "all"
                                                               : "robust");
    }
    if (robust) os << " robust=1";
    // Kept out of the line when no kill is injected so pre-recovery
    // reproducers parse unchanged.
    if (kill_rank >= 0) {
        os << " kill=" << kill_rank;
        if (kill_node) os << " kill_node=1";
        os << " kill_frac=" << kill_frac;
    }
    return os.str();
}

CaseSpec generate_case(std::uint64_t master_seed, int index, bool with_faults,
                       bool with_kills) {
    Stream s(mix64(master_seed) ^
             mix64(static_cast<std::uint64_t>(index) * 0x517cc1b727220a95ULL));
    CaseSpec spec;
    spec.seed = s.next() | 1;

    // Topology: ~1 in 10 cases use the paper's irregular 42x24+1x16 shape
    // scaled down (5 full nodes + one short node); otherwise 1..5 nodes with
    // regular or per-node-random population.
    if (s.chance(10)) {
        spec.procs_per_node = {6, 6, 6, 6, 6, 4};
    } else {
        const int nnodes = 1 + static_cast<int>(s.below(5));
        spec.procs_per_node.assign(static_cast<std::size_t>(nnodes), 0);
        if (s.chance(50)) {
            const int ppn = 1 + static_cast<int>(s.below(5));
            for (int& n : spec.procs_per_node) n = ppn;
        } else {
            for (int& n : spec.procs_per_node) {
                n = 1 + static_cast<int>(s.below(5));
            }
        }
    }
    spec.placement = s.chance(25) ? minimpi::Placement::RoundRobin
                                  : minimpi::Placement::Smp;
    // NUMA socket axis: half the cases keep flat (pre-socket) nodes; the
    // rest model 2 or 4 sockets with a forced or table-driven staging mode.
    if (s.chance(50)) {
        spec.sockets = s.chance(50) ? 2 : 4;
        switch (s.below(4)) {
            case 0: spec.staging = hympi::SocketStaging::Flat; break;
            case 1: spec.staging = hympi::SocketStaging::Staged; break;
            case 2: spec.staging = hympi::SocketStaging::Pipelined; break;
            default: spec.staging = hympi::SocketStaging::Auto; break;
        }
        // Pipeline chunk geometry, sampled for every staging mode so Auto
        // cases that reach the pipeline also see forced odd chunk sizes:
        // 1 KiB (many flag rounds), 4 KiB, or 0 (tuned/whole message).
        constexpr std::size_t kChunks[] = {1024, 4096, 0};
        spec.chunk_bytes = kChunks[s.below(std::size(kChunks))];
    }
    spec.cray_profile = s.chance(50);
    spec.subcomm = spec.total_ranks() >= 3 && s.chance(25);

    spec.op = static_cast<CollOp>(s.below(kNumOps));
    // Split-phase execution modes exist for the four channels with a
    // start()/wait() pair; the rest always run blocking.
    if (spec.op == CollOp::Allgather || spec.op == CollOp::Allgatherv ||
        spec.op == CollOp::Bcast || spec.op == CollOp::Allreduce) {
        switch (s.below(3)) {
            case 0: spec.exec = ExecMode::Nonblocking; break;
            case 1: spec.exec = ExecMode::Persistent; break;
            default: break;  // Blocking
        }
    }
    spec.sync = s.chance(50) ? hympi::SyncPolicy::Barrier
                             : hympi::SyncPolicy::Flags;
    switch (s.below(7)) {
        case 0: spec.bridge = hympi::BridgeAlgo::Allgatherv; break;
        case 1: spec.bridge = hympi::BridgeAlgo::Bcast; break;
        case 2: spec.bridge = hympi::BridgeAlgo::Pipelined; break;
        case 3: spec.bridge = hympi::BridgeAlgo::BruckV; break;
        case 4: spec.bridge = hympi::BridgeAlgo::NeighborExchange; break;
        case 5: spec.bridge = hympi::BridgeAlgo::LocBruck; break;
        default: spec.bridge = hympi::BridgeAlgo::Auto; break;
    }
    // Multi-leader is an allgather-channel extension only.
    if ((spec.op == CollOp::Allgather || spec.op == CollOp::Allgatherv) &&
        s.chance(25)) {
        spec.leaders = 2;
    }
    spec.iterations = 1 + static_cast<int>(s.below(3));

    spec.block_bytes = kSizes[s.below(std::size(kSizes))];
    if (spec.op == CollOp::Allreduce || spec.op == CollOp::Reduce) {
        // Element count = block_bytes / size; exact (integer) arithmetic
        // only, so hierarchical and flat reassociation cannot diverge.
        constexpr minimpi::Datatype kDts[] = {minimpi::Datatype::Int32,
                                              minimpi::Datatype::Int64,
                                              minimpi::Datatype::UInt64};
        constexpr minimpi::Op kOps[] = {minimpi::Op::Sum, minimpi::Op::Min,
                                        minimpi::Op::Max, minimpi::Op::BitAnd,
                                        minimpi::Op::BitOr};
        spec.dt = kDts[s.below(std::size(kDts))];
        spec.red_op = kOps[s.below(std::size(kOps))];
    }

    if (with_faults && s.chance(50)) {
        spec.faults.seed = s.next();
        constexpr minimpi::VTime kJitter[] = {0.3, 1.7, 9.3};
        spec.faults.max_jitter_us = kJitter[s.below(std::size(kJitter))];
        if (s.chance(40)) {
            // Delay leader progress: world rank 0 is always a leader; add
            // another random rank for variety.
            spec.faults.rank_delay_us = 5.0 + static_cast<double>(s.below(20));
            spec.faults.delayed_ranks = {0};
            const int extra = static_cast<int>(
                s.below(static_cast<std::uint64_t>(spec.total_ranks())));
            if (extra != 0) spec.faults.delayed_ranks.push_back(extra);
        }
    }

    // Resilience sweep: ~1 in 4 faulted cases also enable the robust layer
    // and inject payload faults scoped to its retransmittable frames. Rates
    // are moderate (every 3rd/5th/9th message) so the default retry budget
    // always recovers — the case must still match flat MPI byte for byte.
    if (with_faults && s.chance(25)) {
        spec.robust = true;
        if (spec.faults.seed == 0) spec.faults.seed = s.next() | 1;
        spec.faults.scope = minimpi::FaultScope::RobustFrames;
        constexpr std::uint64_t kRates[] = {3, 5, 9};
        if (s.chance(60)) spec.faults.drop_every = kRates[s.below(3)];
        if (s.chance(40)) spec.faults.corrupt_every = kRates[s.below(3)];
        if (s.chance(40)) spec.faults.dup_every = kRates[s.below(3)];
        if (!spec.faults.payload_active()) spec.faults.drop_every = 3;
        // SHM allocation failure exercises the hybrid->flat rung, which only
        // the allgather/bcast channels have (the extras throw instead).
        if ((spec.op == CollOp::Allgather || spec.op == CollOp::Allgatherv ||
             spec.op == CollOp::Bcast) &&
            s.chance(15)) {
            spec.faults.shm_fail_every = 3;
        }
    }

    // Kill-injection sweep (opt-in): kill one rank — or its whole node — at
    // a fraction of the clean run's completion time and require the
    // survivors to detect, agree, shrink and still match flat MPI on the
    // shrunken communicator. These draws come strictly LAST so the base
    // case is identical with kills on or off. A kill case is pinned to the
    // fully-covered recovery envelope: blocking execution on the full comm
    // with flat (1-socket, unchunked) nodes — revocation covers the
    // p2p/coll contexts; the pipeline's per-chunk contexts and the SHM
    // degradation rung are exercised by the dedicated recovery tests.
    if (with_kills && spec.total_ranks() >= 3 && s.chance(60)) {
        spec.exec = ExecMode::Blocking;
        spec.subcomm = false;
        spec.sockets = 1;
        spec.staging = hympi::SocketStaging::Auto;
        spec.chunk_bytes = 0;
        spec.leaders = 1;
        spec.faults.shm_fail_every = 0;
        const int p = spec.total_ranks();
        spec.kill_rank =
            static_cast<int>(s.below(static_cast<std::uint64_t>(p)));
        constexpr double kFracs[] = {0.25, 0.5, 0.75};
        spec.kill_frac = kFracs[s.below(std::size(kFracs))];
        // Whole-node kill: pin SMP placement so the victim's node is a
        // static function of the spec, and only escalate when at least two
        // ranks survive the node.
        if (spec.procs_per_node.size() >= 2 && s.chance(30)) {
            spec.placement = minimpi::Placement::Smp;
            int acc = 0;
            int node_pop = 0;
            for (const int n : spec.procs_per_node) {
                acc += n;
                if (spec.kill_rank < acc) {
                    node_pop = n;
                    break;
                }
            }
            if (p - node_pop >= 2) spec.kill_node = true;
        }
    }
    return spec;
}

}  // namespace conformance
