#pragma once

/// Differential conformance harness for the hybrid MPI+MPI collectives.
///
/// The paper's central correctness claim is that the Hy_* collectives
/// produce exactly the data a flat MPI collective would, while sharing one
/// on-node copy behind barrier or flag synchronization. This subsystem
/// checks that claim systematically instead of on a few hand-picked
/// topologies: a seeded generator draws random cluster shapes (regular and
/// irregular populations, including the paper's 42x24+1x16 shape scaled
/// down), placements, sub-communicators, payload sizes (0 bytes and up),
/// datatypes and both SyncPolicy flavors; each case runs the hybrid channel
/// and the flat reference collective in the same virtual-time runtime and
/// requires byte-identical buffers plus monotone, repeat-identical virtual
/// clocks — optionally under deterministic message jitter and delayed
/// leader progress (minimpi::FaultPlan). Failing cases are shrunk to a
/// minimal reproducer (seed + topology + size) before being reported.

#include <cstdint>
#include <string>
#include <vector>

#include "hybrid/hympi.h"
#include "minimpi/minimpi.h"

namespace conformance {

/// Collectives covered by the harness — every hybrid channel the library
/// offers, each diffed against its flat pure-MPI reference.
enum class CollOp : std::uint8_t {
    Allgather,
    Allgatherv,
    Bcast,
    Allreduce,
    Reduce,
    Gather,
    Scatter,
    Alltoall,
};
inline constexpr int kNumOps = 8;

const char* op_name(CollOp op);

/// How each collective round is issued. Blocking calls the channel's run()
/// and the flat reference directly; Nonblocking drives the round through
/// the split-phase start()/wait() pair and the flat i* collectives;
/// Persistent additionally reuses a cached request (the channel's engine
/// task, minimpi's *_init) across iterations and polls the zero-cost
/// test() before waiting. Only ops with a split-phase channel (allgather,
/// allgatherv, bcast, allreduce) sample the non-blocking modes. With no
/// compute between start and wait, every mode must land on byte-identical
/// buffers — and, on 1-socket cases, bit-identical virtual clocks.
enum class ExecMode : std::uint8_t { Blocking, Nonblocking, Persistent };

const char* exec_name(ExecMode m);

/// One fully-specified randomized case. Quantities that depend on the
/// active communicator's size (sub-communicator membership, per-rank
/// allgatherv counts, the root of rooted ops) are pure functions of `seed`
/// evaluated at run time, so a spec stays valid while the shrinker mutates
/// its topology.
struct CaseSpec {
    std::uint64_t seed = 1;

    std::vector<int> procs_per_node{1};
    minimpi::Placement placement = minimpi::Placement::Smp;
    /// NUMA domains per node (>= 2 adds the socket level to the hierarchy;
    /// ppn frequently does not divide evenly, so socket slices are uneven).
    int sockets = 1;
    /// On-node socket policy forced onto the channels that support it
    /// (Pipelined engages the chunked single-copy engine on multi-node
    /// rounds and degrades to Staged/Flat elsewhere).
    hympi::SocketStaging staging = hympi::SocketStaging::Auto;
    /// Forced pipeline chunk size in bytes (0 = the tuned/whole default).
    /// Small values force many per-chunk flag rounds — the interesting
    /// regime for the flag-sequencing and robust-interop claims.
    std::size_t chunk_bytes = 0;
    bool cray_profile = true;  ///< vendor profile: cray() vs openmpi()
    bool subcomm = false;      ///< run on a seeded proper sub-communicator

    CollOp op = CollOp::Allgather;
    ExecMode exec = ExecMode::Blocking;
    hympi::SyncPolicy sync = hympi::SyncPolicy::Barrier;
    hympi::BridgeAlgo bridge = hympi::BridgeAlgo::Allgatherv;  ///< allgather*
    int leaders = 1;
    int iterations = 1;

    /// Per-rank payload bytes (regular ops); scale cap for the derived
    /// allgatherv counts; element count x datatype size for reductions.
    std::size_t block_bytes = 0;
    minimpi::Datatype dt = minimpi::Datatype::Byte;  ///< reductions only
    minimpi::Op red_op = minimpi::Op::Sum;           ///< reductions only

    minimpi::FaultPlan faults;
    /// Run with the resilience layer enabled (a pinned, env-independent
    /// RobustConfig): injected drop/corruption/duplication is scoped to the
    /// robust frames and must be recovered transparently — the hybrid
    /// result still has to match the flat reference byte for byte.
    bool robust = false;

    /// Kill-injection dimension (the ULFM recovery sweep). When
    /// `kill_rank >= 0` that ACTIVE-comm rank is killed at `kill_frac` of
    /// the case's fault-free completion time (measured by a clean twin run
    /// at case-execution time, so the kill lands mid-collective regardless
    /// of topology or payload). `kill_node` escalates to killing every rank
    /// on the victim's node, exercising the node-lost recovery path. The
    /// oracle is survivor equivalence: survivors must detect the failure,
    /// agree, shrink, rebuild the hierarchy, and then pass the normal
    /// hybrid-vs-flat diff on the shrunken communicator.
    int kill_rank = -1;
    double kill_frac = 0.5;
    bool kill_node = false;

    int total_ranks() const;
    /// One-line reproducer, stable across runs.
    std::string describe() const;

    /// The derived quantities (exposed for tests and describe()).
    std::vector<int> derive_members() const;  ///< active world ranks
    std::vector<std::size_t> derive_v_bytes(int active_size) const;
    int derive_root(int active_size) const;
};

/// Outcome of one differential execution.
struct CaseResult {
    bool ok = true;
    std::string detail;                  ///< first mismatch; empty when ok
    std::vector<minimpi::VTime> clocks;  ///< final per-rank virtual clocks
    /// Per-rank resilience counters (all zero unless spec.robust): the
    /// determinism check requires them to be run-repeatable, and the fault
    /// sweep asserts recoveries actually happened.
    std::vector<hympi::RobustStats> robust_stats;
};

/// Draw the @p index-th case of the stream anchored at @p master_seed.
/// @p with_faults gates jitter/delay injection (never corruption).
/// @p with_kills additionally samples the kill-injection dimension (the
/// extra draws happen strictly AFTER every pre-existing draw, so a given
/// (master_seed, index) produces the same base case with kills on or off).
CaseSpec generate_case(std::uint64_t master_seed, int index,
                       bool with_faults = true, bool with_kills = false);

/// Execute hybrid and flat reference paths in one virtual-time runtime and
/// compare byte-for-byte; also checks per-rank clock monotonicity across
/// the case's checkpoints.
CaseResult run_case(const CaseSpec& spec);

/// run_case twice; additionally require bit-identical clock vectors.
CaseResult run_case_checked(const CaseSpec& spec);

/// Greedily minimize a failing spec — node count, ppn, payload size,
/// iterations, leaders, sub-communicator, faults — while it keeps failing.
/// Each candidate costs one run_case_checked; bounded by @p max_runs.
CaseSpec shrink(const CaseSpec& failing, int max_runs = 160);

struct HarnessReport {
    int cases = 0;
    int failures = 0;
    std::string first_failure;  ///< shrunk reproducer + mismatch detail
};

/// Generate and check @p ncases specs. Stops at the first failure, shrinks
/// it, and formats the minimized reproducer into the report.
HarnessReport run_random_cases(std::uint64_t master_seed, int ncases,
                               bool with_faults = true,
                               bool with_kills = false);

namespace detail {

/// splitmix64 — the harness's deterministic stream mixer.
std::uint64_t mix64(std::uint64_t x);

/// Deterministic payload byte for (seed, rank-ish salt, byte index).
inline std::byte pattern_byte(std::uint64_t seed, std::uint64_t salt,
                              std::size_t i) {
    return static_cast<std::byte>(
        mix64(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ (i >> 3)) >>
        ((i & 7) * 8));
}

}  // namespace detail

}  // namespace conformance
