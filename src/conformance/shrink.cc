#include <algorithm>
#include <sstream>

#include "conformance/conformance.h"

namespace conformance {

namespace {

/// A candidate is accepted only if the mutated spec STILL fails — each
/// probe costs one checked (double) execution against the budget.
bool still_fails(const CaseSpec& spec, int& budget) {
    if (budget <= 0) return false;
    --budget;
    return !run_case_checked(spec).ok;
}

bool same_spec(const CaseSpec& a, const CaseSpec& b) {
    return a.describe() == b.describe();
}

/// Topology mutations can strand a kill spec: the victim rank must exist
/// and at least two ranks must survive the kill (the generator guarantees
/// both; the shrinker must not probe specs that violate them).
bool kill_spec_valid(const CaseSpec& c) {
    if (c.kill_rank < 0) return true;
    const int p = c.total_ranks();
    if (p < 3 || c.kill_rank >= p) return false;
    int victims = 1;
    if (c.kill_node) {
        int lo = 0;
        for (const int n : c.procs_per_node) {
            if (c.kill_rank < lo + n) {
                victims = n;
                break;
            }
            lo += n;
        }
    }
    return p - victims >= 2;
}

}  // namespace

CaseSpec shrink(const CaseSpec& failing, int max_runs) {
    CaseSpec cur = failing;
    int budget = max_runs;
    bool progress = true;
    while (progress && budget > 0) {
        progress = false;
        std::vector<CaseSpec> cands;

        // Kill dimension before everything else (even the payload faults):
        // a failure that survives with the kill stripped is an ordinary
        // collective bug wearing a recovery costume, and every later probe
        // gets three runs cheaper (no clean twin). Then de-escalate: a
        // single-rank kill instead of the whole node, and a later kill time
        // (a failure that needed the kill INSIDE the collective shows up as
        // the kill_frac floor the reproducer keeps).
        if (cur.kill_rank >= 0) {
            CaseSpec c = cur;
            c.kill_rank = -1;
            c.kill_node = false;
            cands.push_back(c);
        }
        if (cur.kill_node) {
            CaseSpec c = cur;
            c.kill_node = false;
            cands.push_back(c);
        }
        if (cur.kill_rank >= 0 && cur.kill_frac < 0.9) {
            CaseSpec c = cur;
            c.kill_frac = std::min(0.9, cur.kill_frac * 1.5);
            cands.push_back(c);
        }

        // Structural simplifications next: each removes a whole dimension
        // from the reproducer, the biggest wins per probe. The execution
        // mode goes before everything else: a failure that survives in
        // Blocking form is a data bug, not an engine bug, and the blocking
        // reproducer is far easier to step through.
        if (cur.exec != ExecMode::Blocking) {
            CaseSpec c = cur;
            c.exec = ExecMode::Blocking;
            cands.push_back(c);
        }
        {
            CaseSpec c = cur;
            c.faults = minimpi::FaultPlan{};
            c.robust = false;
            cands.push_back(c);
        }
        if (cur.faults.payload_active() || cur.faults.shm_fail_every > 0) {
            // Keep timing faults, zero the payload/allocation ones.
            CaseSpec c = cur;
            c.faults.drop_every = 0;
            c.faults.dup_every = 0;
            c.faults.corrupt_every = 0;
            c.faults.shm_fail_every = 0;
            cands.push_back(c);
        }
        if (cur.robust) {
            // Disabling the robust layer only makes sense with the payload
            // faults gone too — RobustFrames-scoped faults have nothing to
            // hit once no robust frames are sent.
            CaseSpec c = cur;
            c.robust = false;
            c.faults.drop_every = 0;
            c.faults.dup_every = 0;
            c.faults.corrupt_every = 0;
            c.faults.shm_fail_every = 0;
            cands.push_back(c);
        }
        {
            CaseSpec c = cur;
            c.subcomm = false;
            cands.push_back(c);
        }
        {
            CaseSpec c = cur;
            c.iterations = 1;
            cands.push_back(c);
        }
        {
            CaseSpec c = cur;
            c.leaders = 1;
            cands.push_back(c);
        }
        // Bridge algorithm: the combined whole-node-block Bruck shrinks to
        // the per-leader BruckV it is built from — a failure that survives
        // removes the locality aggregation from the reproducer.
        if (cur.bridge == hympi::BridgeAlgo::LocBruck) {
            CaseSpec c = cur;
            c.bridge = hympi::BridgeAlgo::BruckV;
            cands.push_back(c);
        }
        {
            CaseSpec c = cur;
            c.placement = minimpi::Placement::Smp;
            cands.push_back(c);
        }
        // Pipeline dimensions before the whole socket axis: a failure that
        // survives with the default chunk size (or without the pipelined
        // engine at all) removes the chunk protocol from the reproducer.
        if (cur.chunk_bytes != 0) {
            CaseSpec c = cur;
            c.chunk_bytes = 0;
            cands.push_back(c);
        }
        if (cur.staging == hympi::SocketStaging::Pipelined) {
            CaseSpec c = cur;
            c.staging = hympi::SocketStaging::Staged;
            cands.push_back(c);
        }
        if (cur.sockets > 1) {
            CaseSpec c = cur;
            c.sockets = 1;
            c.staging = hympi::SocketStaging::Auto;
            c.chunk_bytes = 0;
            cands.push_back(c);
        }

        // Topology: fewer nodes, then fewer ranks per node.
        if (cur.procs_per_node.size() > 1) {
            CaseSpec c = cur;
            c.procs_per_node.resize((cur.procs_per_node.size() + 1) / 2);
            cands.push_back(c);
            c = cur;
            c.procs_per_node.pop_back();
            cands.push_back(c);
        }
        {
            CaseSpec c = cur;
            for (int& n : c.procs_per_node) n = (n + 1) / 2;
            cands.push_back(c);
        }
        {
            // Decrement the most populated node by one.
            CaseSpec c = cur;
            int* biggest = &c.procs_per_node.front();
            for (int& n : c.procs_per_node) {
                if (n > *biggest) biggest = &n;
            }
            if (*biggest > 1) {
                --*biggest;
                cands.push_back(c);
            }
        }

        // Payload: toward zero, then one, then halves.
        if (cur.block_bytes > 0) {
            CaseSpec c = cur;
            c.block_bytes = 0;
            cands.push_back(c);
            c.block_bytes = 1;
            cands.push_back(c);
            c.block_bytes = cur.block_bytes / 2;
            cands.push_back(c);
        }

        for (const CaseSpec& cand : cands) {
            if (same_spec(cand, cur)) continue;
            if (!kill_spec_valid(cand)) continue;
            if (still_fails(cand, budget)) {
                cur = cand;
                progress = true;
                break;  // restart the candidate ladder from the new spec
            }
            if (budget <= 0) break;
        }
    }
    return cur;
}

HarnessReport run_random_cases(std::uint64_t master_seed, int ncases,
                               bool with_faults, bool with_kills) {
    HarnessReport rep;
    for (int i = 0; i < ncases; ++i) {
        const CaseSpec spec =
            generate_case(master_seed, i, with_faults, with_kills);
        ++rep.cases;
        const CaseResult res = run_case_checked(spec);
        if (res.ok) continue;
        ++rep.failures;
        const CaseSpec small = shrink(spec);
        const CaseResult sres = run_case_checked(small);
        std::ostringstream os;
        os << "case " << i << " (master_seed=" << master_seed << ") failed\n"
           << "  original:  " << spec.describe() << "\n"
           << "  minimized: " << small.describe() << "\n"
           << "  mismatch:  " << (sres.ok ? res.detail : sres.detail);
        rep.first_failure = os.str();
        break;  // one shrunk reproducer is the actionable artifact
    }
    return rep;
}

}  // namespace conformance
