#include <gtest/gtest.h>

#include <vector>

#include "minimpi/minimpi.h"

using namespace minimpi;

TEST(Request, DefaultIsInvalidAndWaitIsNoop) {
    Request r;
    EXPECT_FALSE(r.valid());
    Status st = r.wait();
    EXPECT_EQ(st.source, kProcNull);
    EXPECT_TRUE(r.test());
}

TEST(Request, SendRequestCompletesImmediately) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int v = 9;
            Request r = isend(world, &v, 1, Datatype::Int32, 1, 0);
            EXPECT_TRUE(r.valid());
            EXPECT_TRUE(r.test());
            EXPECT_FALSE(r.valid()) << "test() consumes the request";
        } else {
            EXPECT_EQ(recv_value<int>(world, 0, 0), 9);
        }
    });
}

TEST(Request, MoveTransfersOwnership) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int v = 0;
            Request a = irecv(world, &v, 1, Datatype::Int32, 0, 0);
            Request b = std::move(a);
            EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
            EXPECT_TRUE(b.valid());
            send(world, nullptr, 0, Datatype::Byte, 0, 1);
            Status st = b.wait();
            EXPECT_EQ(v, 17);
            EXPECT_EQ(st.source, 0);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, 1);
            send_value(world, 17, 1, 0);
        }
    });
}

TEST(Request, MoveAssignCancelsPreviousPending) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int a = 0, b = 0;
            Request r = irecv(world, &a, 1, Datatype::Int32, 0, 5);
            // Overwriting r must deregister the first receive; the message
            // later sent with tag 5 must land in the second buffer.
            r = irecv(world, &b, 1, Datatype::Int32, 0, 5);
            send(world, nullptr, 0, Datatype::Byte, 0, 1);
            r.wait();
            EXPECT_EQ(a, 0);
            EXPECT_EQ(b, 23);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, 1);
            send_value(world, 23, 1, 5);
        }
    });
}

TEST(Request, VectorOfRequestsReallocatesSafely) {
    // PostedRecv addresses must stay stable through vector growth (the
    // mailbox keeps raw pointers): Request stores it behind a unique_ptr.
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        const int n = 100;
        if (world.rank() == 1) {
            std::vector<int> vals(n, -1);
            std::vector<Request> reqs;  // no reserve: force reallocation
            for (int i = 0; i < n; ++i) {
                reqs.push_back(irecv(world, &vals[static_cast<std::size_t>(i)],
                                     1, Datatype::Int32, 0, i));
            }
            send(world, nullptr, 0, Datatype::Byte, 0, n + 1);
            wait_all(reqs);
            for (int i = 0; i < n; ++i) {
                ASSERT_EQ(vals[static_cast<std::size_t>(i)], i * 3);
            }
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, n + 1);
            for (int i = 0; i < n; ++i) send_value(world, i * 3, 1, i);
        }
    });
}

TEST(Request, WaitAllMixedSendRecv) {
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    rt.run([](Comm& world) {
        const int peer = world.rank() ^ 1;
        int in = -1, out = world.rank() + 40;
        std::vector<Request> reqs;
        reqs.push_back(irecv(world, &in, 1, Datatype::Int32, peer, 0));
        reqs.push_back(isend(world, &out, 1, Datatype::Int32, peer, 0));
        wait_all(reqs);
        EXPECT_EQ(in, peer + 40);
    });
}

TEST(Request, TestOnPendingDoesNotConsume) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int v = 0;
            Request r = irecv(world, &v, 1, Datatype::Int32, 0, 0);
            EXPECT_FALSE(r.test());
            EXPECT_TRUE(r.valid()) << "incomplete test must keep the request";
            send(world, nullptr, 0, Datatype::Byte, 0, 1);
            r.wait();
            EXPECT_EQ(v, 71);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, 1);
            send_value(world, 71, 1, 0);
        }
    });
}

TEST(Request, WaitAnyReturnsACompletedIndex) {
    Runtime rt(ClusterSpec::regular(1, 3), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int a = 0, b = 0;
            std::vector<Request> reqs;
            reqs.push_back(irecv(world, &a, 1, Datatype::Int32, 1, 0));
            reqs.push_back(irecv(world, &b, 1, Datatype::Int32, 2, 0));
            send(world, nullptr, 0, Datatype::Byte, 2, 1);  // release rank 2
            Status st;
            const int first = wait_any(reqs, &st);
            ASSERT_EQ(first, 1) << "only rank 2's message can be in flight";
            EXPECT_EQ(b, 222);
            EXPECT_EQ(st.source, 2);
            send(world, nullptr, 0, Datatype::Byte, 1, 1);  // release rank 1
            const int second = wait_any(reqs, &st);
            ASSERT_EQ(second, 0);
            EXPECT_EQ(a, 111);
            EXPECT_EQ(wait_any(reqs), -1) << "all requests consumed";
        } else if (world.rank() == 1) {
            recv(world, nullptr, 0, Datatype::Byte, 0, 1);
            send_value(world, 111, 0, 0);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 0, 1);
            send_value(world, 222, 0, 0);
        }
    });
}

TEST(Request, TestSomeConsumesOnlyCompleted) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int a = 0, b = 0;
            std::vector<Request> reqs;
            reqs.push_back(irecv(world, &a, 1, Datatype::Int32, 1, 0));
            reqs.push_back(irecv(world, &b, 1, Datatype::Int32, 1, 99));
            send(world, nullptr, 0, Datatype::Byte, 1, 1);
            // Wait until the tag-0 message has landed, then poll.
            while (!reqs[0].valid() || !reqs[0].test()) {
                if (!reqs[0].valid()) break;
            }
            std::vector<std::pair<int, Status>> done;
            const int n = test_some(reqs, &done);
            EXPECT_EQ(n, 0) << "tag-99 never sent, tag-0 already consumed";
            EXPECT_TRUE(reqs[1].valid());
            // Tell rank 1 to send the second message, then finish.
            send(world, nullptr, 0, Datatype::Byte, 1, 2);
            reqs[1].wait();
            EXPECT_EQ(b, 7);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 0, 1);
            send_value(world, 3, 0, 0);
            recv(world, nullptr, 0, Datatype::Byte, 0, 2);
            send_value(world, 7, 0, 99);
        }
    });
}

TEST(Request, PersistentSendRecvRounds) {
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    rt.run([](Comm& world) {
        const int peer = 1 - world.rank();
        int out = 0, in = -1;
        PersistentRequest ps =
            PersistentRequest::send_init(world, &out, 1, Datatype::Int32,
                                         peer, 4);
        PersistentRequest pr =
            PersistentRequest::recv_init(world, &in, 1, Datatype::Int32, peer,
                                         4);
        for (int round = 0; round < 5; ++round) {
            out = world.rank() * 100 + round;
            pr.start();
            ps.start();
            ps.wait();
            Status st = pr.wait();
            EXPECT_EQ(in, peer * 100 + round);
            EXPECT_EQ(st.source, peer);
        }
    });
}

TEST(Request, DoubleWaitReturnsCachedStatus) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int v = 0;
            Request r = irecv(world, &v, 1, Datatype::Int32, 0, 3);
            Status st1 = r.wait();
            EXPECT_EQ(v, 55);
            EXPECT_FALSE(r.valid());
            // Double-wait: a no-op returning the status cached at completion.
            Status st2 = r.wait();
            EXPECT_EQ(st2.source, st1.source);
            EXPECT_EQ(st2.tag, st1.tag);
            EXPECT_EQ(st2.bytes, st1.bytes);
        } else {
            send_value(world, 55, 1, 3);
        }
    });
}

TEST(Request, WaitAfterTestSuccessReturnsCachedStatus) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int v = 0;
            Request r = irecv(world, &v, 1, Datatype::Int32, 0, 8);
            recv(world, nullptr, 0, Datatype::Byte, 0, 9);  // message landed
            Status st1;
            ASSERT_TRUE(r.test(&st1));
            EXPECT_EQ(v, 66);
            // Wait after a successful test: no-op with the cached status.
            Status st2 = r.wait();
            EXPECT_EQ(st2.source, st1.source);
            EXPECT_EQ(st2.tag, st1.tag);
            EXPECT_EQ(st2.bytes, st1.bytes);
            Status st3;
            EXPECT_TRUE(r.test(&st3));
            EXPECT_EQ(st3.tag, st1.tag);
        } else {
            send_value(world, 66, 1, 8);
            send(world, nullptr, 0, Datatype::Byte, 1, 9);
        }
    });
}

TEST(CollRequestLifecycle, DoubleWaitAndWaitAfterTestAreNoOps) {
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    rt.run([](Comm& world) {
        std::vector<std::byte> in(64), out(64 * world.size());
        CollRequest rq =
            iallgather(world, in.data(), 64, out.data(), Datatype::Byte);
        rq.wait();
        const VTime t_after = world.ctx().clock.now();
        rq.wait();  // double-wait: no-op
        EXPECT_EQ(world.ctx().clock.now(), t_after);
        EXPECT_TRUE(rq.test());

        CollRequest rq2 =
            iallgather(world, in.data(), 64, out.data(), Datatype::Byte);
        while (!rq2.test()) {
        }
        const VTime t2 = world.ctx().clock.now();
        rq2.wait();  // wait after successful test: no-op
        EXPECT_EQ(world.ctx().clock.now(), t2);
    });
}

TEST(CollRequestLifecycle, DestroyCompletedRequestIsQuiet) {
    Runtime rt(ClusterSpec::regular(1, 1), ModelParams::test());
    rt.run([](Comm& world) {
        // Single-member communicator: the body completes at the posting
        // drive, so dropping the handle finishes it like an implicit wait.
        std::vector<std::byte> buf(32);
        { CollRequest rq = ibcast(world, buf.data(), 32, Datatype::Byte, 0); }
    });
}

TEST(CollRequestLifecycle, DestroyInFlightRequestThrowsTyped) {
    // Destroying a request whose operation cannot have completed (its peer
    // never participates) must raise RequestError instead of silently
    // cancelling half-executed protocol state.
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    EXPECT_THROW(rt.run([](Comm& world) {
                     if (world.rank() == 0) {
                         std::vector<std::byte> buf(256);
                         CollRequest rq = ibcast(world, buf.data(), 256,
                                                 Datatype::Byte, 1);
                         // dropped without wait(): throws RequestError
                     }
                     // rank 1 never posts, so rank 0 can never complete
                 }),
                 RequestError);
}

TEST(Request, PersistentMisuseThrows) {
    Runtime rt(ClusterSpec::regular(1, 1), ModelParams::test());
    rt.run([](Comm& world) {
        PersistentRequest empty;
        EXPECT_THROW(empty.start(), ArgumentError);
        int v = 0;
        PersistentRequest pr = PersistentRequest::recv_init(
            world, &v, 1, Datatype::Int32, 0, 0);
        EXPECT_THROW(pr.wait(), ArgumentError) << "wait before start";
        pr.start();
        EXPECT_THROW(pr.start(), ArgumentError) << "double start";
        send_value(world, 1, 0, 0);
        pr.wait();
        EXPECT_EQ(v, 1);
        pr.start();  // reusable after completion
        send_value(world, 2, 0, 0);
        pr.wait();
        EXPECT_EQ(v, 2);
        EXPECT_THROW(PersistentRequest::send_init(world, &v, 1,
                                                  Datatype::Int32, 9, 0),
                     ArgumentError);
    });
}
