#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "apps/dataset.h"
#include "linalg/rng.h"

using namespace apps;

TEST(Dataset, ShapeAndDensity) {
    const auto d = SparseDataset::chembl_like(200, 80, 0.1, 1);
    EXPECT_EQ(d.rows(), 200);
    EXPECT_EQ(d.cols(), 80);
    const std::size_t target = static_cast<std::size_t>(0.1 * 200 * 80);
    EXPECT_NEAR(static_cast<double>(d.nnz() + d.test_set().size()),
                static_cast<double>(target), 1.0);
}

TEST(Dataset, CsrCscConsistent) {
    const auto d = SparseDataset::chembl_like(100, 50, 0.2, 2);
    std::map<std::pair<int, int>, double> from_rows;
    for (int r = 0; r < d.rows(); ++r) {
        const auto idx = d.row_cols(r);
        const auto val = d.row_vals(r);
        for (std::size_t t = 0; t < idx.size(); ++t) {
            from_rows[{r, idx[t]}] = val[t];
        }
    }
    EXPECT_EQ(from_rows.size(), d.nnz());
    std::size_t seen = 0;
    for (int c = 0; c < d.cols(); ++c) {
        const auto idx = d.col_rows(c);
        const auto val = d.col_vals(c);
        ASSERT_EQ(idx.size(), static_cast<std::size_t>(d.col_nnz(c)));
        for (std::size_t t = 0; t < idx.size(); ++t, ++seen) {
            auto it = from_rows.find({idx[t], c});
            ASSERT_NE(it, from_rows.end());
            EXPECT_DOUBLE_EQ(it->second, val[t]);
        }
    }
    EXPECT_EQ(seen, d.nnz());
}

TEST(Dataset, DeterministicBySeed) {
    const auto a = SparseDataset::chembl_like(60, 30, 0.2, 7);
    const auto b = SparseDataset::chembl_like(60, 30, 0.2, 7);
    const auto c = SparseDataset::chembl_like(60, 30, 0.2, 8);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (int r = 0; r < 60; ++r) {
        ASSERT_EQ(a.row_nnz(r), b.row_nnz(r));
        const auto va = a.row_vals(r);
        const auto vb = b.row_vals(r);
        for (std::size_t i = 0; i < va.size(); ++i) {
            ASSERT_DOUBLE_EQ(va[i], vb[i]);
        }
    }
    EXPECT_NE(a.nnz(), c.nnz());  // overwhelmingly likely
}

TEST(Dataset, GroundTruthFitsItsOwnData) {
    // The generator's low-rank + noise model must be recoverable: residuals
    // of the true factors are at the noise level on BOTH train and test.
    const int k = 4;
    const double noise = 0.1;
    const auto d = SparseDataset::chembl_like(150, 60, 0.25, 1234, k, noise);
    linalg::Rng rng(1234);
    const double scale = 1.25 / std::sqrt(std::sqrt(static_cast<double>(k)));
    std::vector<double> u(150 * k), v(60 * k);
    for (auto& x : u) x = rng.normal() * scale;
    for (auto& x : v) x = rng.normal() * scale;
    auto pred = [&](int r, int c) {
        double p = 0;
        for (int j = 0; j < k; ++j) {
            p += u[static_cast<std::size_t>(r * k + j)] *
                 v[static_cast<std::size_t>(c * k + j)];
        }
        return p;
    };
    double se = 0;
    std::size_t n = 0;
    for (int r = 0; r < d.rows(); ++r) {
        const auto idx = d.row_cols(r);
        const auto val = d.row_vals(r);
        for (std::size_t t = 0; t < idx.size(); ++t, ++n) {
            const double e = pred(r, idx[t]) - val[t];
            se += e * e;
        }
    }
    EXPECT_NEAR(std::sqrt(se / static_cast<double>(n)), noise, 0.02);
}

TEST(Dataset, HoldoutIsDisjointFraction) {
    const auto d = SparseDataset::chembl_like(100, 40, 0.3, 5, 4, 0.1, 0.2);
    const double frac =
        static_cast<double>(d.test_set().size()) /
        static_cast<double>(d.nnz() + d.test_set().size());
    EXPECT_NEAR(frac, 0.2, 0.04);
    // Holdout cells are not in the training set.
    std::map<std::pair<int, int>, bool> train;
    for (int r = 0; r < d.rows(); ++r) {
        for (int c : d.row_cols(r)) train[{r, c}] = true;
    }
    for (const auto& t : d.test_set()) {
        EXPECT_FALSE(train.count({t.row, t.col}));
    }
}

TEST(Dataset, StructureOnlyCountsWithoutIndices) {
    const auto d = SparseDataset::structure_only(500, 100, 0.05, 3);
    EXPECT_TRUE(d.is_structure_only());
    EXPECT_GT(d.nnz(), 0u);
    std::size_t total = 0;
    for (int r = 0; r < d.rows(); ++r) {
        EXPECT_GE(d.row_nnz(r), 1);
        total += static_cast<std::size_t>(d.row_nnz(r));
    }
    EXPECT_EQ(total, d.nnz());
    // Average close to density * cols.
    EXPECT_NEAR(static_cast<double>(total) / 500.0, 0.05 * 100, 1.0);
    EXPECT_THROW(d.row_cols(0), std::logic_error);
    EXPECT_THROW(d.col_vals(0), std::logic_error);
}

TEST(Dataset, RejectsBadParameters) {
    EXPECT_THROW(SparseDataset::chembl_like(0, 10, 0.1, 1),
                 std::invalid_argument);
    EXPECT_THROW(SparseDataset::chembl_like(10, 10, 0.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(SparseDataset::chembl_like(10, 10, 1.5, 1),
                 std::invalid_argument);
    EXPECT_THROW(SparseDataset::structure_only(10, -1, 0.1, 1),
                 std::invalid_argument);
}
