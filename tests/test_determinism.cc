// End-to-end determinism: the virtual clocks of every layer (collectives,
// hybrid channels, SUMMA, BPMF) are bit-identical across repeated runs —
// the property that makes single-execution benchmarking sound.

#include <gtest/gtest.h>

#include "apps/bpmf.h"
#include "apps/summa.h"
#include "hybrid/hympi.h"

using namespace minimpi;
using namespace hympi;
using namespace apps;

namespace {

template <typename F>
std::vector<VTime> run_twice_expect_equal(const ClusterSpec& spec,
                                          const ModelParams& m, F body,
                                          PayloadMode mode = PayloadMode::Real) {
    Runtime rt1(spec, m, mode);
    Runtime rt2(spec, m, mode);
    const auto a = rt1.run(body);
    const auto b = rt2.run(body);
    EXPECT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "rank " << i;
    }
    return a;
}

}  // namespace

TEST(Determinism, HybridChannels) {
    run_twice_expect_equal(
        ClusterSpec::irregular({3, 5, 2}), ModelParams::cray(),
        [](Comm& world) {
            HierComm hc(world);
            AllgatherChannel ag(hc, 256);
            BcastChannel bc(hc, 512);
            for (int i = 0; i < 4; ++i) {
                ag.run(SyncPolicy::Barrier);
                ag.quiesce();
                bc.run(i % world.size(), SyncPolicy::Flags);
            }
        });
}

TEST(Determinism, HybridExtensions) {
    run_twice_expect_equal(
        ClusterSpec::regular(2, 4), ModelParams::openmpi(), [](Comm& world) {
            HierComm hc(world);
            AllreduceChannel ar(hc, 64, Datatype::Double);
            AlltoallChannel a2a(hc, 32);
            std::vector<double> zeros(64, 0.0);
            std::memcpy(ar.my_input(), zeros.data(), 64 * sizeof(double));
            for (int i = 0; i < 3; ++i) {
                ar.run(Op::Sum);
                a2a.run();
            }
        });
}

TEST(Determinism, SummaBothBackends) {
    for (Backend backend : {Backend::PureMpi, Backend::Hybrid}) {
        run_twice_expect_equal(
            ClusterSpec::regular(2, 2), ModelParams::cray(),
            [backend](Comm& world) {
                SummaConfig cfg;
                cfg.grid = 2;
                cfg.block = 16;
                cfg.backend = backend;
                Summa summa(world, cfg);
                summa.init([](std::size_t i, std::size_t j) {
                               return 0.1 * static_cast<double>(i + j);
                           },
                           [](std::size_t i, std::size_t j) {
                               return static_cast<double>(i) -
                                      0.5 * static_cast<double>(j);
                           });
                summa.multiply();
                summa.multiply();
            });
    }
}

TEST(Determinism, BpmfFullPipeline) {
    const auto data = SparseDataset::chembl_like(80, 40, 0.3, 17, 4);
    run_twice_expect_equal(ClusterSpec::regular(2, 3), ModelParams::cray(),
                           [&](Comm& world) {
                               BpmfConfig cfg;
                               cfg.num_latent = 4;
                               cfg.iterations = 3;
                               cfg.backend = Backend::Hybrid;
                               Bpmf bpmf(world, data, cfg);
                               bpmf.run();
                           });
}

TEST(Determinism, RobustRecoveryRepeatsExactly) {
    // Recovery actions (retransmissions, backoff charges, watchdog trips)
    // are deterministic functions of (seed, plan, config): repeated runs
    // must produce bit-identical clocks AND identical resilience counters.
    FaultPlan fp;
    fp.seed = 404;
    fp.drop_every = 3;
    fp.dup_every = 5;
    fp.scope = FaultScope::RobustFrames;
    RobustConfig cfg;
    cfg.enabled = true;
    auto body = [](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ag(hc, 384);
        for (int i = 0; i < 3; ++i) {
            ag.run();
            ag.quiesce();
        }
    };
    Runtime rt1(ClusterSpec::irregular({3, 5, 2}), ModelParams::cray());
    Runtime rt2(ClusterSpec::irregular({3, 5, 2}), ModelParams::cray());
    rt1.set_fault_plan(fp);
    rt2.set_fault_plan(fp);
    rt1.set_robust_config(cfg);
    rt2.set_robust_config(cfg);
    const auto a = rt1.run(body);
    const auto b = rt2.run(body);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "rank " << i;
    }
    EXPECT_TRUE(rt1.last_robust_stats() == rt2.last_robust_stats());
    EXPECT_GT(rt1.total_robust_stats().retries, 0u);
}

TEST(Determinism, SizeOnlyBenchesMatchRealExecution) {
    // The exact scenario of the figure benches: SizeOnly virtual times must
    // equal the Real ones for the hybrid allgather channel.
    auto body = [](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, 4096);
        for (int i = 0; i < 3; ++i) ch.run();
    };
    Runtime real_rt(ClusterSpec::regular(3, 4), ModelParams::cray(),
                    PayloadMode::Real);
    Runtime size_rt(ClusterSpec::regular(3, 4), ModelParams::cray(),
                    PayloadMode::SizeOnly);
    const auto real = real_rt.run(body);
    const auto sized = size_rt.run(body);
    for (std::size_t i = 0; i < real.size(); ++i) {
        EXPECT_DOUBLE_EQ(real[i], sized[i]) << "rank " << i;
    }
}
