#include <gtest/gtest.h>

#include "minimpi/minimpi.h"

using namespace minimpi;

TEST(Comm, WorldIdentity) {
    Runtime rt(ClusterSpec::regular(2, 3), ModelParams::test());
    rt.run([](Comm& world) {
        EXPECT_EQ(world.size(), 6);
        EXPECT_TRUE(world.valid());
        EXPECT_EQ(world.to_world(), world.rank());
        EXPECT_EQ(world.from_world(world.rank()), world.rank());
    });
}

TEST(Comm, SplitEvenOdd) {
    Runtime rt(ClusterSpec::regular(2, 3), ModelParams::test());
    rt.run([](Comm& world) {
        Comm half = world.split(world.rank() % 2);
        EXPECT_EQ(half.size(), 3);
        // Members keep relative order (key defaults equal -> parent order).
        EXPECT_EQ(half.to_world(half.rank()), world.rank());
        EXPECT_EQ(half.rank(), world.rank() / 2);
    });
}

TEST(Comm, SplitKeyReversesOrder) {
    Runtime rt(ClusterSpec::regular(1, 4), ModelParams::test());
    rt.run([](Comm& world) {
        Comm rev = world.split(0, -world.rank());
        EXPECT_EQ(rev.size(), 4);
        EXPECT_EQ(rev.rank(), 3 - world.rank());
        EXPECT_EQ(rev.to_world(0), 3);
    });
}

TEST(Comm, SplitUndefinedYieldsNullComm) {
    Runtime rt(ClusterSpec::regular(1, 4), ModelParams::test());
    rt.run([](Comm& world) {
        Comm c = world.split(world.rank() == 0 ? 0 : kUndefined);
        if (world.rank() == 0) {
            EXPECT_TRUE(c.valid());
            EXPECT_EQ(c.size(), 1);
        } else {
            EXPECT_FALSE(c.valid());
            EXPECT_THROW(c.size(), CommError);
        }
    });
}

TEST(Comm, SplitSharedGroupsByNode) {
    Runtime rt(ClusterSpec::irregular({2, 4, 1}), ModelParams::test());
    rt.run([](Comm& world) {
        Comm shm = world.split_shared();
        const int my_node = world.ctx().cluster->node_of(world.rank());
        EXPECT_EQ(shm.size(),
                  world.ctx().cluster->procs_on_node(my_node));
        for (int r = 0; r < shm.size(); ++r) {
            EXPECT_EQ(world.ctx().cluster->node_of(shm.to_world(r)), my_node);
        }
    });
}

TEST(Comm, NestedSplits) {
    Runtime rt(ClusterSpec::regular(2, 4), ModelParams::test());
    rt.run([](Comm& world) {
        Comm shm = world.split_shared();       // 2 comms of 4
        Comm pair = shm.split(shm.rank() / 2); // 2 comms of 2 per node
        EXPECT_EQ(pair.size(), 2);
        Comm solo = pair.split(pair.rank());   // singleton comms
        EXPECT_EQ(solo.size(), 1);
        EXPECT_EQ(solo.rank(), 0);
        EXPECT_EQ(solo.to_world(0), world.rank());
    });
}

TEST(Comm, DupPreservesGroupButSeparatesTraffic) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        Comm dup = world.dup();
        EXPECT_EQ(dup.size(), world.size());
        EXPECT_EQ(dup.rank(), world.rank());
        // A message sent on world must not match a recv on dup.
        if (world.rank() == 0) {
            send_value(world, 1, 1, 0);
            send_value(dup, 2, 1, 0);
        } else {
            EXPECT_EQ(recv_value<int>(dup, 0, 0), 2);
            EXPECT_EQ(recv_value<int>(world, 0, 0), 1);
        }
    });
}

TEST(Comm, CollectiveOnSubcommunicatorOnly) {
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::test());
    rt.run([](Comm& world) {
        Comm shm = world.split_shared();
        int v = (shm.rank() == 0) ? world.rank() + 50 : -1;
        bcast(shm, &v, 1, Datatype::Int32, 0);
        // Each node's broadcast root is its first world rank.
        const int expect = (world.rank() < 2) ? 50 : 52;
        EXPECT_EQ(v, expect);
    });
}

TEST(Comm, ManySequentialSplitsStayAligned) {
    Runtime rt(ClusterSpec::regular(1, 4), ModelParams::test());
    rt.run([](Comm& world) {
        // The per-rank collective epochs must line up over many calls.
        for (int i = 0; i < 20; ++i) {
            Comm c = world.split((world.rank() + i) % 2);
            EXPECT_EQ(c.size(), 2);
            barrier(c);
        }
    });
}

TEST(Comm, NodeOfQueriesTopology) {
    Runtime rt(ClusterSpec::regular(3, 2), ModelParams::test());
    rt.run([](Comm& world) {
        for (int r = 0; r < world.size(); ++r) {
            EXPECT_EQ(world.node_of(r), r / 2);
        }
    });
}

TEST(Comm, SplitChargesOneOffTime) {
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    auto clocks = rt.run([](Comm& world) { world.split(0); });
    for (VTime t : clocks) EXPECT_GT(t, 0.0);
    // Collective coordination synchronizes the members' clocks.
    for (VTime t : clocks) EXPECT_DOUBLE_EQ(t, clocks[0]);
}
