// The process-failure model end to end: deterministic kills (FaultPlan),
// typed failure detection (ProcessFailedError with exact death vtimes and
// the charged watchdog latency), ULFM-style revocation with cascade to
// derived communicators, fault-tolerant agreement (Comm::agree_shrink) and
// the hierarchical detect-agree-shrink recovery (shrink_and_rebuild) for
// non-leader, leader and whole-node losses — plus the watchdog edge
// semantics (watchdog_us = 0 trips immediately; kills landing exactly on a
// flag-release epoch boundary), the chunked generation-stamp bounds and
// RobustConfig::from_env strict parsing. Registered under `ctest -L
// recovery`.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hybrid/hympi.h"
#include "hybrid/recover.h"
#include "robust/reliable.h"

using namespace minimpi;
using namespace hympi;

namespace {

std::byte pattern(int rank, std::size_t i) {
    return static_cast<std::byte>((rank * 41 + static_cast<int>(i) * 13) & 0xFF);
}

void fill_pattern(std::byte* p, int rank, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) p[i] = pattern(rank, i);
}

void expect_pattern(const std::byte* p, int rank, std::size_t n,
                    const char* what) {
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(p[i], pattern(rank, i))
            << what << ": rank " << rank << " byte " << i;
    }
}

/// Environment-independent config: robustness off, default watchdog.
RobustConfig pinned_cfg() { return RobustConfig{}; }

bool contains(const std::vector<int>& v, int x) {
    for (int e : v) {
        if (e == x) return true;
    }
    return false;
}

/// Spin a scheduled victim over its kill time: advances the clock through
/// process-failure checkpoints until RankKilled fires (which the runtime
/// catches — the thread exits as a dead rank, not an error).
[[noreturn]] void die_here(Comm& world) {
    for (;;) {
        world.ctx().clock.advance(1.0);
        minimpi::detail::check_alive(world.ctx());
    }
}

// ---------------------------------------------------------------------------
// The full detect–agree–shrink drill, shared by the hierarchy-recovery
// tests. A clean probe run measures the victims' per-round clocks; the
// armed run kills them at a chosen point (a fraction of the run, or exactly
// a flag-release epoch boundary), lets the survivors surface the failure,
// then revokes, shrinks, rebuilds and checks a post-shrink collective.
// ---------------------------------------------------------------------------

struct KillCaseOpts {
    ClusterSpec cluster = ClusterSpec::regular(2, 3);
    std::vector<int> victims;          ///< world ranks to kill (ascending)
    double kill_frac = 0.5;            ///< position between construct and end
    int boundary_round = -1;           ///< >= 0: kill exactly after this round
    SyncPolicy sync = SyncPolicy::Barrier;
    RobustConfig cfg = pinned_cfg();
    FaultPlan faults;                  ///< extra payload faults (armed run only)
    bool want_node_lost = false;
    bool want_leader_replaced = false;
    bool spans = false;
    int rounds = 10;
};

struct KillCaseResult {
    std::vector<VTime> clocks;
    RobustStats stats;
    std::vector<hytrace::RankTrace> traces;
    int typed_detections = 0;  ///< survivors that caught ProcessFailedError
};

KillCaseResult run_kill_case(const KillCaseOpts& o) {
    constexpr std::size_t kBlock = 64;
    const int nranks = o.cluster.total_ranks();

    // Probe: fault-free clone of the armed body, recording each rank's
    // clock after construction and after every round. Virtual time is a
    // pure function of the program, so the armed run (identical up to the
    // first death) crosses these exact clock values.
    std::vector<std::vector<VTime>> marks(static_cast<std::size_t>(nranks));
    {
        Runtime probe(o.cluster, ModelParams::cray());
        probe.set_robust_config(o.cfg);
        probe.run([&](Comm& world) {
            auto& my_marks = marks[static_cast<std::size_t>(world.to_world())];
            HierComm hc(world);
            AllgatherChannel ch(hc, kBlock);
            my_marks.push_back(world.ctx().clock.now());
            for (int it = 0; it < o.rounds; ++it) {
                fill_pattern(ch.my_block(), world.rank() + it, kBlock);
                ch.run(o.sync);
                ch.quiesce(o.sync);
                my_marks.push_back(world.ctx().clock.now());
            }
        });
    }

    std::map<int, VTime> kill_at;
    for (int v : o.victims) {
        const auto& m = marks[static_cast<std::size_t>(v)];
        if (o.boundary_round >= 0) {
            // The victim's clock right after the round's release sync: its
            // next communication checkpoint sits at exactly this vtime.
            kill_at[v] = m.at(static_cast<std::size_t>(1 + o.boundary_round));
        } else {
            kill_at[v] = m.front() + o.kill_frac * (m.back() - m.front());
        }
    }

    std::vector<int> expected_failed = o.victims;
    std::vector<int> expected_members;
    for (int w = 0; w < nranks; ++w) {
        if (!contains(o.victims, w)) expected_members.push_back(w);
    }

    RunOptions ro;
    ro.spans = o.spans;
    Runtime rt(o.cluster, ModelParams::cray(), PayloadMode::Real, ro);
    rt.set_robust_config(o.cfg);
    FaultPlan fp = o.faults;
    for (int v : o.victims) {
        fp.kill(v, kill_at.at(v));
    }
    rt.set_fault_plan(fp);

    // Each survivor records the typed failure it observed (world rank +
    // reported death vtime); -1 = it saw a revocation instead.
    std::vector<std::pair<int, VTime>> observed(
        static_cast<std::size_t>(nranks), {-1, -1.0});

    KillCaseResult res;
    res.clocks = rt.run([&](Comm& world) {
        const int w = world.to_world();
        const bool victim = contains(o.victims, w);
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        bool surfaced = false;
        try {
            for (int it = 0; it < o.rounds; ++it) {
                fill_pattern(ch.my_block(), world.rank() + it, kBlock);
                ch.run(o.sync);
                ch.quiesce(o.sync);
            }
        } catch (const ProcessFailedError& e) {
            surfaced = true;
            observed[static_cast<std::size_t>(w)] = {e.world_rank(),
                                                     e.death_vtime()};
        } catch (const CommRevokedError&) {
            surfaced = true;
        } catch (const TimeoutError&) {
            surfaced = true;
        }
        // A victim whose kill time lies beyond the rounds it completed
        // (possible when extra faults stretched the armed clocks) still has
        // to die before the survivors can agree.
        if (victim) die_here(world);

        EXPECT_TRUE(surfaced) << "survivor " << w << " never saw the failure";
        world.revoke();
        revoke_hierarchy(hc);
        RecoveryResult rec = shrink_and_rebuild(world);

        EXPECT_EQ(rec.failed_world, expected_failed) << "survivor " << w;
        EXPECT_EQ(rec.node_lost, o.want_node_lost) << "survivor " << w;
        EXPECT_EQ(rec.leader_replaced, o.want_leader_replaced)
            << "survivor " << w;
        ASSERT_EQ(rec.world.size(),
                  static_cast<int>(expected_members.size()));
        for (int r = 0; r < rec.world.size(); ++r) {
            EXPECT_EQ(rec.world.to_world(r),
                      expected_members[static_cast<std::size_t>(r)])
                << "survivor order, new rank " << r;
        }

        // Post-shrink collective on the rebuilt hierarchy: fresh channel,
        // fresh windows, correct bytes for every survivor.
        AllgatherChannel ch2(*rec.hier, kBlock);
        fill_pattern(ch2.my_block(), rec.world.rank(), kBlock);
        ch2.run();
        for (int r = 0; r < rec.world.size(); ++r) {
            expect_pattern(ch2.block_of(r), r, kBlock, "post-shrink");
        }
    });

    for (const auto& [vr, dv] : observed) {
        if (vr < 0) continue;
        ++res.typed_detections;
        // The detector reports the victim's program-determined death point:
        // never before the scheduled kill, and exactly on it when the kill
        // was aligned with a checkpoint (the boundary cases).
        EXPECT_GE(dv, kill_at.at(vr) - 1e-9);
        if (o.boundary_round >= 0) {
            EXPECT_DOUBLE_EQ(dv, kill_at.at(vr))
                << "death of " << vr << " not at the epoch boundary";
        }
    }
    res.stats = rt.total_robust_stats();
    res.traces = rt.last_span_traces();
    return res;
}

}  // namespace

// ---------------------------------------------------------------------------
// Detection: typed errors, exact death vtimes, tombstoned traffic
// ---------------------------------------------------------------------------

TEST(Recovery, KillRaisesTypedProcessFailedError) {
    // The victim crosses its kill time at a checkpoint with clock exactly
    // 5.0; the observer's detector charges death + watchdog_us and reports
    // both identity and death time through the typed error.
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    rt.set_robust_config(pinned_cfg());  // watchdog_us = 50
    FaultPlan fp;
    fp.kill(1, 5.0);
    rt.set_fault_plan(fp);
    int caught = 0;
    rt.run([&](Comm& world) {
        if (world.rank() == 1) die_here(world);
        std::byte buf[8];
        try {
            recv(world, buf, sizeof(buf), Datatype::Byte, 1, 4);
            FAIL() << "recv from a dead rank completed";
        } catch (const ProcessFailedError& e) {
            ++caught;
            EXPECT_EQ(e.world_rank(), 1);
            EXPECT_DOUBLE_EQ(e.death_vtime(), 5.0);
        }
        // Deterministic detection latency: the watchdog that noticed the
        // silence was due watchdog_us after the death instant.
        EXPECT_DOUBLE_EQ(world.ctx().clock.now(), 55.0);
    });
    EXPECT_EQ(caught, 1);
    EXPECT_EQ(rt.last_robust_stats()[0].failures_detected, 1u);
    EXPECT_EQ(rt.last_robust_stats()[1].failures_detected, 0u);
}

TEST(Recovery, DeadRankTrafficTombstones) {
    // ULFM semantics: sends towards a dead rank complete locally (the
    // delivery tombstones), only operations that DEPEND on the dead rank
    // raise ProcessFailedError.
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    rt.set_robust_config(pinned_cfg());
    FaultPlan fp;
    fp.kill(1, 0.0);
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        if (world.rank() == 1) die_here(world);
        std::byte buf[16] = {};
        // Never blocks, never throws: the payload is discarded at delivery.
        send(world, buf, sizeof(buf), Datatype::Byte, 1, 2);
        send(world, buf, sizeof(buf), Datatype::Byte, 1, 2);
        EXPECT_THROW(recv(world, buf, sizeof(buf), Datatype::Byte, 1, 2),
                     ProcessFailedError);
    });
    EXPECT_EQ(rt.last_robust_stats()[0].failures_detected, 1u);
}

// ---------------------------------------------------------------------------
// Revocation: pending + future ops, cascade to derived comms
// ---------------------------------------------------------------------------

TEST(Recovery, RevokeInterruptsPendingAndFutureOps) {
    Runtime rt(ClusterSpec::regular(1, 3), ModelParams::cray());
    rt.set_robust_config(pinned_cfg());
    std::vector<int> revoked_pending(3, 0), revoked_future(3, 0);
    rt.run([&](Comm& world) {
        const int r = world.rank();
        std::byte buf[8];
        if (r < 2) {
            // Mutual receives nobody will ever satisfy: only the third
            // rank's revoke can unblock them.
            try {
                recv(world, buf, sizeof(buf), Datatype::Byte, 1 - r, 9);
            } catch (const CommRevokedError&) {
                revoked_pending[static_cast<std::size_t>(r)] = 1;
            }
        } else {
            const VTime before = world.ctx().clock.now();
            world.revoke();
            // Revocation charges no virtual time.
            EXPECT_DOUBLE_EQ(world.ctx().clock.now(), before);
        }
        // Every FUTURE operation on the revoked comm fails immediately.
        try {
            if (r == 2) {
                send(world, buf, sizeof(buf), Datatype::Byte, 0, 9);
            } else {
                recv(world, buf, sizeof(buf), Datatype::Byte, 2, 9);
            }
        } catch (const CommRevokedError&) {
            revoked_future[static_cast<std::size_t>(r)] = 1;
        }
    });
    EXPECT_EQ(revoked_pending[0], 1);
    EXPECT_EQ(revoked_pending[1], 1);
    for (int r = 0; r < 3; ++r) EXPECT_EQ(revoked_future[r], 1) << r;
}

TEST(Recovery, RevokeCascadesToDerivedCommsButNotToShrunkenComm) {
    // Two ranks block on a SPLIT-derived child while the third revokes only
    // the parent: the cascade must reach the child (this is what unblocks
    // survivors stuck in the collectives' internal hierarchy legs). The
    // comm agree_shrink builds afterwards is deliberately outside the
    // derivation tree, so recovery survives (re-)revocation of the broken
    // comm — while ITS OWN split children rejoin the cascade.
    Runtime rt(ClusterSpec::regular(1, 3), ModelParams::cray());
    rt.set_robust_config(pinned_cfg());
    std::vector<int> child_revoked(3, 0), ring_ok(3, 0), regrown_revoked(3, 0);
    rt.run([&](Comm& world) {
        const int r = world.rank();
        Comm child = world.split(0, r);
        std::byte buf[8];
        if (r < 2) {
            try {
                recv(child, buf, sizeof(buf), Datatype::Byte, 1 - r, 5);
            } catch (const CommRevokedError&) {
                child_revoked[static_cast<std::size_t>(r)] = 1;
            }
        } else {
            world.revoke();
        }

        // Recovery escapes the cascade: the shrunken comm (same members —
        // nobody died) is fully operational even though its origin is a
        // revoked comm.
        std::vector<int> failed;
        Comm fresh = world.agree_shrink(&failed);
        EXPECT_TRUE(failed.empty());
        ASSERT_EQ(fresh.size(), 3);
        const int me = fresh.rank();
        int token = fresh.to_world();
        int got = -1;
        if (me % 2 == 0) {
            send(fresh, &token, 1, Datatype::Int32, (me + 1) % 3, 6);
            recv(fresh, &got, 1, Datatype::Int32, (me + 2) % 3, 6);
        } else {
            recv(fresh, &got, 1, Datatype::Int32, (me + 2) % 3, 6);
            send(fresh, &token, 1, Datatype::Int32, (me + 1) % 3, 6);
        }
        EXPECT_EQ(got, fresh.to_world((me + 2) % 3));
        ring_ok[static_cast<std::size_t>(r)] = 1;

        // The fresh comm roots a NEW derivation tree: revoking it reaches
        // its own split children.
        Comm regrown = fresh.split(0, me);
        fresh.revoke();
        try {
            recv(regrown, buf, sizeof(buf), Datatype::Byte, (me + 1) % 3, 7);
        } catch (const CommRevokedError&) {
            regrown_revoked[static_cast<std::size_t>(r)] = 1;
        }
    });
    EXPECT_EQ(child_revoked[0], 1);
    EXPECT_EQ(child_revoked[1], 1);
    for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(ring_ok[r], 1) << r;
        EXPECT_EQ(regrown_revoked[r], 1) << r;
    }
}

// ---------------------------------------------------------------------------
// Agreement: survivor set, rank order, run-to-run determinism
// ---------------------------------------------------------------------------

TEST(Recovery, AgreeShrinkSurvivorOrderAndDeterminism) {
    auto run_once = [](std::vector<VTime>* clocks) {
        Runtime rt(ClusterSpec::regular(2, 3), ModelParams::cray());
        rt.set_robust_config(pinned_cfg());
        FaultPlan fp;
        fp.kill(1, 0.0);
        fp.kill(4, 0.0);
        rt.set_fault_plan(fp);
        *clocks = rt.run([](Comm& world) {
            // The entry checkpoint bars the plan-killed ranks; survivors
            // complete the agreement without them.
            std::vector<int> failed;
            Comm shrunk = world.agree_shrink(&failed);
            EXPECT_EQ(failed, (std::vector<int>{1, 4}));
            ASSERT_EQ(shrunk.size(), 4);
            const std::vector<int> want = {0, 2, 3, 5};
            for (int r = 0; r < 4; ++r) {
                EXPECT_EQ(shrunk.to_world(r),
                          want[static_cast<std::size_t>(r)]);
            }
            // Survivors leave with synchronized clocks.
            EXPECT_EQ(shrunk.from_world(world.to_world()), shrunk.rank());
        });
    };
    std::vector<VTime> c1, c2;
    run_once(&c1);
    run_once(&c2);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t r = 0; r < c1.size(); ++r) {
        EXPECT_EQ(c1[r], c2[r]) << "clock, rank " << r;
    }
}

// ---------------------------------------------------------------------------
// Hierarchical recovery: non-leader, leader and whole-node losses
// ---------------------------------------------------------------------------

TEST(Recovery, ShrinkAndRebuildAfterNonLeaderDeath) {
    KillCaseOpts o;
    o.victims = {4};  // node 1 member, not its leader (rank 3 leads)
    const KillCaseResult r1 = run_kill_case(o);
    EXPECT_GE(r1.stats.failures_detected, 1u);
    EXPECT_EQ(r1.stats.shrinks, 5u);  // one per survivor
    // The drill's virtual time is deterministic: agree_shrink synchronizes
    // the survivors to max(survivor clocks) + sync cost, and the maximum is
    // always a detector's death + watchdog_us charge. (failures_detected
    // itself is a diagnostic that may vary with host scheduling: a survivor
    // that reaches an entry checkpoint after another survivor's revoke
    // landed reports CommRevokedError instead of the death — by design,
    // since revocation interrupts charge no virtual time.)
    const KillCaseResult r2 = run_kill_case(o);
    ASSERT_EQ(r1.clocks.size(), r2.clocks.size());
    for (std::size_t r = 0; r < r1.clocks.size(); ++r) {
        EXPECT_EQ(r1.clocks[r], r2.clocks[r]) << "clock, rank " << r;
    }
    EXPECT_EQ(r1.stats.shrinks, r2.stats.shrinks);
}

TEST(Recovery, ShrinkAndRebuildAfterLeaderDeathReelects) {
    KillCaseOpts o;
    o.victims = {3};  // node 1's primary leader
    o.want_leader_replaced = true;
    const KillCaseResult res = run_kill_case(o);
    EXPECT_GE(res.stats.failures_detected, 1u);
    EXPECT_EQ(res.stats.shrinks, 5u);
}

TEST(Recovery, WholeNodeLossShrinksToRemainingNodes) {
    KillCaseOpts o;
    o.victims = {3, 4, 5};  // all of node 1
    o.want_node_lost = true;
    const KillCaseResult res = run_kill_case(o);
    EXPECT_GE(res.stats.failures_detected, 1u);
    EXPECT_EQ(res.stats.shrinks, 3u);
}

// ---------------------------------------------------------------------------
// Watchdog edges (satellite): kills exactly on a flag-release epoch
// boundary, under both sync policies, and watchdog_us = 0 as immediate trip
// ---------------------------------------------------------------------------

TEST(Recovery, KillAtFlagReleaseBoundaryUnderFlags) {
    KillCaseOpts o;
    o.victims = {4};
    o.boundary_round = 2;  // die exactly at the round-2 release boundary
    o.sync = SyncPolicy::Flags;
    const KillCaseResult res = run_kill_case(o);
    // At least the first survivor to surface saw the typed failure (with
    // the boundary-exact death vtime, checked inside the helper).
    EXPECT_GE(res.typed_detections, 1);
    EXPECT_EQ(res.stats.shrinks, 5u);
}

TEST(Recovery, KillAtFlagReleaseBoundaryUnderBarrier) {
    KillCaseOpts o;
    o.victims = {4};
    o.boundary_round = 2;
    o.sync = SyncPolicy::Barrier;
    const KillCaseResult res = run_kill_case(o);
    EXPECT_GE(res.typed_detections, 1);
    EXPECT_EQ(res.stats.shrinks, 5u);
}

TEST(Recovery, WatchdogZeroMeansImmediateTrip) {
    // watchdog_us = 0 is the STRICTEST deadline, not a disable knob: any
    // flag published after the wait began counts as late. With a delayed
    // leader and sync_trip_limit = 1 the very first late round downgrades
    // Flags -> Barrier.
    constexpr std::size_t kBlock = 32;
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    RobustConfig cfg;
    cfg.enabled = true;
    cfg.watchdog_us = 0.0;
    cfg.sync_trip_limit = 1;
    rt.set_robust_config(cfg);
    FaultPlan fp;
    fp.seed = 31;
    fp.rank_delay_us = 80.0;
    fp.delayed_ranks = {0};
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        for (int it = 0; it < 4; ++it) {
            fill_pattern(ch.my_block(), world.rank() + it, kBlock);
            ch.run(SyncPolicy::Flags);
            for (int r = 0; r < world.size(); ++r) {
                expect_pattern(ch.block_of(r), r + it, kBlock, "strict flags");
            }
            ch.quiesce(SyncPolicy::Flags);
        }
    });
    const RobustStats total = rt.total_robust_stats();
    EXPECT_GE(total.sync_trips, 1u);
    EXPECT_GE(total.sync_downgrades, 1u);
}

TEST(Recovery, GenerousWatchdogToleratesSmallSkew) {
    // Control for the zero-deadline test: the same delayed leader stays
    // inside a 50us deadline when the injected delay is only 25us — no
    // trips, no downgrades, correct data.
    constexpr std::size_t kBlock = 32;
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    RobustConfig cfg;
    cfg.enabled = true;
    cfg.watchdog_us = 50.0;
    cfg.sync_trip_limit = 1;
    rt.set_robust_config(cfg);
    FaultPlan fp;
    fp.seed = 31;
    fp.rank_delay_us = 25.0;
    fp.delayed_ranks = {0};
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        for (int it = 0; it < 4; ++it) {
            fill_pattern(ch.my_block(), world.rank() + it, kBlock);
            ch.run(SyncPolicy::Flags);
            for (int r = 0; r < world.size(); ++r) {
                expect_pattern(ch.block_of(r), r + it, kBlock, "lenient flags");
            }
            ch.quiesce(SyncPolicy::Flags);
        }
    });
    const RobustStats total = rt.total_robust_stats();
    EXPECT_EQ(total.sync_trips, 0u);
    EXPECT_EQ(total.sync_downgrades, 0u);
}

// ---------------------------------------------------------------------------
// Recovery under a lossy fabric + observability + the fault-free zero path
// ---------------------------------------------------------------------------

TEST(Recovery, RecoverySurvivesDropsDuringAgreement) {
    // Robust mode with every third ARQ frame dropped: the provoke rounds,
    // the agreement's confirmation leg and the post-shrink collective all
    // ride the reliable channel and must converge in bounded retries.
    KillCaseOpts o;
    o.victims = {4};
    o.cfg.enabled = true;
    o.faults.seed = 33;
    o.faults.drop_every = 3;
    o.faults.scope = FaultScope::RobustFrames;
    const KillCaseResult res = run_kill_case(o);
    EXPECT_GE(res.stats.failures_detected, 1u);
    EXPECT_EQ(res.stats.shrinks, 5u);
    EXPECT_GT(res.stats.retries, 0u);
}

TEST(Recovery, RecoverySpansAndCountersRecorded) {
    KillCaseOpts o;
    o.victims = {4};
    o.spans = true;
    const KillCaseResult res = run_kill_case(o);
    ASSERT_EQ(res.traces.size(), 6u);
    hytrace::Counters agg;
    int detect_spans = 0;
    for (int w = 0; w < 6; ++w) {
        const auto& tr = res.traces[static_cast<std::size_t>(w)];
        agg += tr.counters;
        bool recovery = false, agree = false, rebuild = false;
        for (const hytrace::Span& s : tr.spans) {
            const std::string name = s.name;
            if (name == "recovery") recovery = true;
            if (name == "agree") agree = true;
            if (name == "rebuild") rebuild = true;
            if (name == "detect") ++detect_spans;
        }
        if (w == 4) continue;  // the victim records no recovery spans
        EXPECT_TRUE(recovery) << "rank " << w;
        EXPECT_TRUE(agree) << "rank " << w;
        EXPECT_TRUE(rebuild) << "rank " << w;
    }
    EXPECT_GE(detect_spans, 1);
    EXPECT_EQ(agg.shrinks, 5u);
    EXPECT_GE(agg.failures_detected, 1u);
    EXPECT_EQ(agg.shrinks, res.stats.shrinks);
    EXPECT_EQ(agg.failures_detected, res.stats.failures_detected);
}

TEST(Recovery, FaultFreeRunKeepsRecoveryCountersZero) {
    // Robustness ON but no faults: the failure machinery must not move a
    // single counter (it is gated on atomics that stay zero fault-free).
    Runtime rt(ClusterSpec::regular(2, 3), ModelParams::cray());
    RobustConfig cfg;
    cfg.enabled = true;
    rt.set_robust_config(cfg);
    rt.run([](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, 128);
        for (int it = 0; it < 3; ++it) {
            ch.run();
            ch.quiesce();
        }
    });
    EXPECT_FALSE(rt.total_robust_stats().any());
}

// ---------------------------------------------------------------------------
// Chunked generation-stamp bounds (satellite: pipeline/robust interop)
// ---------------------------------------------------------------------------

TEST(Recovery, ChunkedGenerationStampsStayInBounds) {
    using namespace hympi::robust;
    const std::uint64_t base = (7ULL << 32) | 5ULL;
    EXPECT_EQ(chunked_gen(base, 0), base + (1ULL << 20));
    EXPECT_EQ(chunked_gen(base, 1), base + (2ULL << 20));
    EXPECT_NE(chunked_gen(base, 0), chunked_gen(base, 1));

    // The exact bounds: the last legal chunk passes, one past throws.
    EXPECT_NO_THROW(chunked_gen(base, kMaxChunkOffset - 2));
    EXPECT_THROW(chunked_gen(base, kMaxChunkOffset - 1),
                 GenerationOverflowError);
    EXPECT_NO_THROW(chunked_gen((7ULL << 32) | (kMaxChunkedEpoch - 1), 0));
    const std::uint64_t bad_epoch = (7ULL << 32) | kMaxChunkedEpoch;
    EXPECT_THROW(chunked_gen(bad_epoch, 0), GenerationOverflowError);

    // The typed error carries a usable diagnostic.
    try {
        chunked_gen(bad_epoch, 0);
        FAIL() << "epoch overflow not detected";
    } catch (const GenerationOverflowError& e) {
        EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// RobustConfig::from_env strict parsing (satellite)
// ---------------------------------------------------------------------------

TEST(Recovery, FromEnvStrictParsingWarnsOnceAndFallsBack) {
    // atoi-style silent truncation used to turn "8abc" into 8 and "abc"
    // into 0; strict parsing rejects both, warns ONCE per variable per
    // process, and keeps the built-in default.
    // The warning state is per-process, so under --gtest_repeat only the
    // first iteration observes the warnings themselves; the fallback
    // values are checked every time.
    static bool first_iteration = true;
    setenv("HYMPI_RETRY_MAX", "8abc", 1);
    setenv("HYMPI_WATCHDOG_US", "fast", 1);
    testing::internal::CaptureStderr();
    const RobustConfig c1 = RobustConfig::from_env();
    const std::string first = testing::internal::GetCapturedStderr();
    EXPECT_EQ(c1.retry_max, 8);
    EXPECT_DOUBLE_EQ(c1.watchdog_us, 50.0);
    if (first_iteration) {
        EXPECT_NE(first.find("HYMPI_RETRY_MAX"), std::string::npos);
        EXPECT_NE(first.find("8abc"), std::string::npos);
        EXPECT_NE(first.find("HYMPI_WATCHDOG_US"), std::string::npos);
        EXPECT_NE(first.find("fast"), std::string::npos);
        first_iteration = false;
    }

    // Same malformed values again: the warning already fired, stay silent.
    testing::internal::CaptureStderr();
    const RobustConfig c2 = RobustConfig::from_env();
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    EXPECT_EQ(c2.retry_max, 8);

    // Well-formed values parse, silently.
    setenv("HYMPI_ROBUST", "1", 1);
    setenv("HYMPI_RETRY_MAX", "3", 1);
    setenv("HYMPI_WATCHDOG_US", "12.5", 1);
    testing::internal::CaptureStderr();
    const RobustConfig c3 = RobustConfig::from_env();
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    EXPECT_TRUE(c3.enabled);
    EXPECT_TRUE(c3.dump_at_finalize);
    EXPECT_EQ(c3.retry_max, 3);
    EXPECT_DOUBLE_EQ(c3.watchdog_us, 12.5);

    unsetenv("HYMPI_ROBUST");
    unsetenv("HYMPI_RETRY_MAX");
    unsetenv("HYMPI_WATCHDOG_US");
}
