// The resilience subsystem end to end: fault injection primitives (drop,
// duplication, SHM allocation failure), the reliable (ARQ) bridge exchange,
// the graceful-degradation ladder (Flags -> Barrier, hybrid -> flat MPI),
// determinism under recovery, and the zero fast-path guarantee when
// robustness is disabled. Registered under `ctest -L robust`.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "conformance/conformance.h"
#include "hybrid/hympi.h"

using namespace minimpi;
using namespace hympi;

namespace {

/// Pinned robust configuration, independent of HYMPI_* in the environment.
RobustConfig robust_on() {
    RobustConfig cfg;
    cfg.enabled = true;
    return cfg;
}

RobustConfig robust_off() {
    RobustConfig cfg;
    cfg.enabled = false;
    return cfg;
}

std::byte pattern(int rank, std::size_t i) {
    return static_cast<std::byte>((rank * 37 + static_cast<int>(i) * 11) & 0xFF);
}

void fill_pattern(std::byte* p, int rank, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) p[i] = pattern(rank, i);
}

void expect_pattern(const std::byte* p, int rank, std::size_t n,
                    const char* what) {
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(p[i], pattern(rank, i))
            << what << ": rank " << rank << " byte " << i;
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Fault-injection primitives (satellite: drop / duplication in Transport)
// ---------------------------------------------------------------------------

TEST(Robust, DroppedMessageRaisesTimeoutOnPlainRecv) {
    // A dropped message is delivered as a tombstone so the receiver wakes;
    // a plain (non-robust) receive then surfaces the loss as TimeoutError
    // instead of hanging forever — watchdog semantics.
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    FaultPlan fp;
    fp.seed = 11;
    fp.drop_every = 1;  // drop everything
    rt.set_fault_plan(fp);
    int timeouts = 0;
    rt.run([&](Comm& world) {
        std::byte buf[16] = {};
        if (world.rank() == 0) {
            send(world, buf, sizeof(buf), Datatype::Byte, 1, 7);
        } else {
            try {
                recv(world, buf, sizeof(buf), Datatype::Byte, 0, 7);
            } catch (const TimeoutError&) {
                ++timeouts;
            }
        }
    });
    EXPECT_EQ(timeouts, 1);
}

TEST(Robust, DuplicatedMessageIsDeliveredTwice) {
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    FaultPlan fp;
    fp.seed = 12;
    fp.dup_every = 1;  // duplicate everything
    rt.set_fault_plan(fp);
    rt.run([](Comm& world) {
        std::byte buf[32];
        if (world.rank() == 0) {
            fill_pattern(buf, 0, sizeof(buf));
            send(world, buf, sizeof(buf), Datatype::Byte, 1, 3);
        } else {
            // The original and its trailing duplicate both match: two
            // receives of one logical send, byte-identical payloads.
            std::memset(buf, 0, sizeof(buf));
            recv(world, buf, sizeof(buf), Datatype::Byte, 0, 3);
            expect_pattern(buf, 0, sizeof(buf), "original");
            std::memset(buf, 0, sizeof(buf));
            recv(world, buf, sizeof(buf), Datatype::Byte, 0, 3);
            expect_pattern(buf, 0, sizeof(buf), "duplicate");
        }
    });
}

// ---------------------------------------------------------------------------
// NodeSharedBuffer status reporting (satellite: the silent-null bugfix)
// ---------------------------------------------------------------------------

TEST(Robust, ZeroByteBufferReportsEmptyStatus) {
    // A zero-byte node-shared buffer used to hand out null pointers with no
    // signal at all; now the condition is explicit in status().
    Runtime rt(ClusterSpec::regular(1, 3), ModelParams::cray());
    rt.run([](Comm& world) {
        HierComm hc(world);
        NodeSharedBuffer buf(hc, 0);
        EXPECT_EQ(buf.status().code, StatusCode::EmptyBuffer);
        EXPECT_EQ(buf.data(), nullptr);
        EXPECT_EQ(buf.at(0), nullptr);
        EXPECT_FALSE(buf.alloc_failed());
    });
}

TEST(Robust, LegacyAllocFailureThrowsDiagnosedWinError) {
    // With robustness disabled an injected window-allocation failure keeps
    // the legacy throwing behaviour, but the diagnostic now points at the
    // degradation path.
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    rt.set_robust_config(robust_off());
    FaultPlan fp;
    fp.seed = 13;
    fp.shm_fail_every = 1;  // every window allocation fails
    rt.set_fault_plan(fp);
    std::vector<int> threw(4, 0);
    rt.run([&](Comm& world) {
        try {
            HierComm hc(world);
            AllgatherChannel ch(hc, 64);
        } catch (const WinError& e) {
            EXPECT_NE(std::string(e.what()).find("HYMPI_ROBUST=1"),
                      std::string::npos);
            threw[static_cast<std::size_t>(world.rank())] = 1;
        }
    });
    for (int r = 0; r < 4; ++r) EXPECT_EQ(threw[r], 1) << "rank " << r;
}

// ---------------------------------------------------------------------------
// Degradation ladder, rung 2: hybrid -> flat MPI
// ---------------------------------------------------------------------------

TEST(Robust, AllocFailureDegradesAllgatherToFlat) {
    constexpr std::size_t kBlock = 96;
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    rt.set_robust_config(robust_on());
    FaultPlan fp;
    fp.seed = 14;
    fp.shm_fail_every = 1;
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        EXPECT_TRUE(ch.degraded_flat());
        fill_pattern(ch.my_block(), world.rank(), kBlock);
        ch.run();
        for (int r = 0; r < world.size(); ++r) {
            expect_pattern(ch.block_of(r), r, kBlock, "flat allgather");
        }
    });
    const RobustStats total = rt.total_robust_stats();
    EXPECT_GE(total.flat_downgrades, 4u);  // every rank flips its channel
    EXPECT_GE(total.alloc_failures, 1u);
}

TEST(Robust, AllocFailureDegradesBcastToFlat) {
    constexpr std::size_t kBytes = 128;
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::openmpi());
    rt.set_robust_config(robust_on());
    FaultPlan fp;
    fp.seed = 15;
    fp.shm_fail_every = 1;
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        BcastChannel ch(hc, kBytes);
        EXPECT_TRUE(ch.degraded_flat());
        const int root = 1;
        if (world.rank() == root) {
            fill_pattern(ch.write_buffer(), root, kBytes);
        }
        ch.run(root);
        expect_pattern(ch.read_buffer(), root, kBytes, "flat bcast");
    });
    EXPECT_GE(rt.total_robust_stats().flat_downgrades, 4u);
}

TEST(Robust, ExhaustedRetriesDowngradeToFlatWithCorrectData) {
    // retry_max = 0 and a drop-everything plan scoped to robust frames: the
    // very first bridge transfer fails, the bridge agrees, and the round is
    // transparently replayed flat — the failing round is still byte-
    // identical to pure MPI because the flat path's traffic is not a robust
    // frame and passes untouched.
    constexpr std::size_t kBlock = 64;
    Runtime rt(ClusterSpec::irregular({2, 3}), ModelParams::cray());
    RobustConfig cfg = robust_on();
    cfg.retry_max = 0;
    rt.set_robust_config(cfg);
    FaultPlan fp;
    fp.seed = 16;
    fp.drop_every = 1;
    fp.scope = FaultScope::RobustFrames;
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        EXPECT_FALSE(ch.degraded_flat());
        fill_pattern(ch.my_block(), world.rank(), kBlock);
        ch.run();
        EXPECT_TRUE(ch.degraded_flat());
        for (int r = 0; r < world.size(); ++r) {
            expect_pattern(ch.block_of(r), r, kBlock, "downgraded round");
        }
        // The downgrade is sticky: later rounds run flat and stay correct.
        ch.quiesce();
        fill_pattern(ch.my_block(), world.rank() + 1, kBlock);
        ch.run();
        for (int r = 0; r < world.size(); ++r) {
            expect_pattern(ch.block_of(r), r + 1, kBlock, "post-downgrade");
        }
    });
    const RobustStats total = rt.total_robust_stats();
    EXPECT_GE(total.flat_downgrades, 5u);
    EXPECT_GT(total.timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Reliable bridge exchange: recovery under drop/corrupt/dup
// ---------------------------------------------------------------------------

TEST(Robust, AllgatherRecoversFromDropCorruptDup) {
    constexpr std::size_t kBlock = 256;
    Runtime rt(ClusterSpec::irregular({3, 2}), ModelParams::cray());
    rt.set_robust_config(robust_on());
    FaultPlan fp;
    fp.seed = 17;
    fp.drop_every = 3;
    fp.corrupt_every = 5;
    fp.dup_every = 4;
    fp.scope = FaultScope::RobustFrames;
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        for (int iter = 0; iter < 3; ++iter) {
            fill_pattern(ch.my_block(), world.rank() + iter, kBlock);
            ch.run();
            for (int r = 0; r < world.size(); ++r) {
                expect_pattern(ch.block_of(r), r + iter, kBlock, "recovered");
            }
            ch.quiesce();
        }
        EXPECT_FALSE(ch.degraded_flat());
    });
    const RobustStats total = rt.total_robust_stats();
    EXPECT_GT(total.retries, 0u);
    EXPECT_GT(total.recoveries, 0u);
    EXPECT_EQ(total.flat_downgrades, 0u);
}

TEST(Robust, ZeroByteContributionsSurviveTheReliablePath) {
    // Regression: a zero-byte contribution has a null base pointer; the
    // frame checksum must be computed over the (empty) frame payload so
    // sender and receiver agree — this used to NACK forever.
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    rt.set_robust_config(robust_on());
    rt.run([](Comm& world) {
        HierComm hc(world);
        GatherChannel g(hc, 0, /*root=*/0);
        g.run();
        AllgatherChannel ag(hc, 0);
        ag.run();
        EXPECT_FALSE(ag.degraded_flat());
    });
    EXPECT_EQ(rt.total_robust_stats().flat_downgrades, 0u);
}

TEST(Robust, ExtraChannelsRecoverOverTheBridge) {
    constexpr std::size_t kCount = 32;
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    rt.set_robust_config(robust_on());
    FaultPlan fp;
    fp.seed = 18;
    fp.drop_every = 3;
    fp.scope = FaultScope::RobustFrames;
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllreduceChannel ar(hc, kCount, Datatype::Int32);
        std::vector<std::int32_t> in(kCount);
        for (std::size_t i = 0; i < kCount; ++i) {
            in[i] = world.rank() * 100 + static_cast<int>(i);
        }
        // Several rounds: the drop decision is a hash of (seed, src, dst,
        // message sequence), so enough bridge frames must flow for the plan
        // to hit one.
        for (int iter = 0; iter < 4; ++iter) {
            std::memcpy(ar.my_input(), in.data(),
                        kCount * sizeof(std::int32_t));
            ar.run(Op::Sum);
            const auto* out =
                reinterpret_cast<const std::int32_t*>(ar.result());
            for (std::size_t i = 0; i < kCount; ++i) {
                std::int32_t want = 0;
                for (int r = 0; r < world.size(); ++r) {
                    want += r * 100 + static_cast<int>(i);
                }
                ASSERT_EQ(out[i], want) << "iter " << iter << " elem " << i;
            }
        }
    });
    EXPECT_GT(rt.total_robust_stats().recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Degradation ladder, rung 1: Flags -> Barrier
// ---------------------------------------------------------------------------

TEST(Robust, RepeatedFlagDivergenceDowngradesToBarrier) {
    // Rank 0 (a node leader) gets 80us of injected send delay while the
    // watchdog deadline is 0.5us: every flag release round on the remote
    // node arrives late, trips the watchdog, and after sync_trip_limit
    // consecutive trips the node flips Flags -> Barrier for good.
    constexpr std::size_t kBlock = 32;
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    RobustConfig cfg = robust_on();
    cfg.watchdog_us = 0.5;
    rt.set_robust_config(cfg);
    FaultPlan fp;
    fp.seed = 19;
    fp.rank_delay_us = 80.0;
    fp.delayed_ranks = {0};
    rt.set_fault_plan(fp);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, kBlock);
        for (int iter = 0; iter < 6; ++iter) {
            fill_pattern(ch.my_block(), world.rank() + iter, kBlock);
            ch.run(SyncPolicy::Flags);
            for (int r = 0; r < world.size(); ++r) {
                expect_pattern(ch.block_of(r), r + iter, kBlock, "flag sync");
            }
            ch.quiesce(SyncPolicy::Flags);
        }
    });
    const RobustStats total = rt.total_robust_stats();
    EXPECT_GE(total.sync_trips, 3u);
    EXPECT_GE(total.sync_downgrades, 1u);
}

// ---------------------------------------------------------------------------
// Determinism under recovery + the zero fast-path guarantee
// ---------------------------------------------------------------------------

TEST(Robust, RecoveryIsDeterministic) {
    // Same seed, same plan, same config: retry counts, downgrade decisions
    // and virtual clocks must repeat bit for bit.
    auto run_once = [](std::vector<VTime>* clocks,
                       std::vector<RobustStats>* stats) {
        Runtime rt(ClusterSpec::irregular({3, 2, 2}), ModelParams::cray());
        rt.set_robust_config(robust_on());
        FaultPlan fp;
        fp.seed = 20;
        fp.drop_every = 3;
        fp.corrupt_every = 7;
        fp.dup_every = 5;
        fp.max_jitter_us = 1.7;
        fp.scope = FaultScope::RobustFrames;
        rt.set_fault_plan(fp);
        *clocks = rt.run([](Comm& world) {
            HierComm hc(world);
            AllgatherChannel ag(hc, 512);
            BcastChannel bc(hc, 256);
            for (int i = 0; i < 3; ++i) {
                ag.run();
                ag.quiesce();
                bc.run(i % world.size());
            }
        });
        *stats = rt.last_robust_stats();
    };
    std::vector<VTime> c1, c2;
    std::vector<RobustStats> s1, s2;
    run_once(&c1, &s1);
    run_once(&c2, &s2);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t r = 0; r < c1.size(); ++r) {
        EXPECT_EQ(c1[r], c2[r]) << "clock, rank " << r;
        EXPECT_EQ(s1[r], s2[r]) << "robust stats, rank " << r;
    }
    // And the faults were actually exercised, not absent.
    RobustStats agg;
    for (const RobustStats& s : s1) agg += s;
    EXPECT_GT(agg.retries, 0u);
}

TEST(Robust, DisabledRobustnessLeavesFastPathUntouched) {
    // With robustness off, a fault plan scoped to robust frames has nothing
    // to hit: virtual clocks are bit-identical to a fault-free run and no
    // counter moves — the zero fast-path regression guarantee.
    auto body = [](Comm& world) {
        HierComm hc(world);
        AllgatherChannel ch(hc, 2048);
        for (int i = 0; i < 3; ++i) {
            ch.run();
            ch.quiesce();
        }
    };
    Runtime plain(ClusterSpec::regular(3, 3), ModelParams::cray());
    plain.set_robust_config(robust_off());
    const auto base = plain.run(body);

    Runtime faulted(ClusterSpec::regular(3, 3), ModelParams::cray());
    faulted.set_robust_config(robust_off());
    FaultPlan fp;
    fp.seed = 21;
    fp.drop_every = 1;
    fp.corrupt_every = 1;
    fp.dup_every = 1;
    fp.scope = FaultScope::RobustFrames;
    faulted.set_fault_plan(fp);
    const auto clocks = faulted.run(body);

    ASSERT_EQ(base.size(), clocks.size());
    for (std::size_t r = 0; r < base.size(); ++r) {
        EXPECT_DOUBLE_EQ(base[r], clocks[r]) << "rank " << r;
    }
    EXPECT_FALSE(faulted.total_robust_stats().any());
}

// ---------------------------------------------------------------------------
// Fault-injected conformance sweep (satellite: byte-identity under faults)
// ---------------------------------------------------------------------------

TEST(Robust, ConformanceSweepRecoversAndStaysByteIdentical) {
    // Every generated robust case runs hybrid vs flat under injected
    // drop/corrupt/dup (and occasional SHM allocation failure), twice, and
    // must match the flat reference byte for byte with repeatable stats.
    const std::uint64_t seed = 0x0B05717ULL;
    hympi::RobustStats agg;
    int robust_cases = 0;
    for (int i = 0; i < 200 && robust_cases < 24; ++i) {
        const conformance::CaseSpec spec = conformance::generate_case(seed, i);
        if (!spec.robust) continue;
        ++robust_cases;
        const conformance::CaseResult res = conformance::run_case_checked(spec);
        ASSERT_TRUE(res.ok) << spec.describe() << "\n  " << res.detail;
        for (const hympi::RobustStats& s : res.robust_stats) agg += s;
    }
    EXPECT_GE(robust_cases, 10);
    // The sweep must have actually recovered injected faults somewhere.
    EXPECT_GT(agg.recoveries, 0u);
    EXPECT_GT(agg.retries + agg.timeouts + agg.checksum_failures, 0u);
}
