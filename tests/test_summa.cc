// SUMMA: parameterized over grid size, tile size, backend and cluster
// layout — the distributed product must equal the serial product exactly
// (same operation order per element).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/summa.h"

using namespace minimpi;
using namespace apps;

namespace {

double elem_a(std::size_t i, std::size_t j) {
    return std::cos(0.1 * static_cast<double>(i)) +
           0.01 * static_cast<double>(j);
}
double elem_b(std::size_t i, std::size_t j) {
    return 0.02 * static_cast<double>(i) -
           std::sin(0.05 * static_cast<double>(j));
}

linalg::Matrix serial_product(std::size_t n) {
    linalg::Matrix a(n, n), b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = elem_a(i, j);
            b(i, j) = elem_b(i, j);
        }
    }
    return linalg::gemm(a, b);
}

class SummaP : public ::testing::TestWithParam<
                   std::tuple<int /*grid*/, int /*block*/, Backend>> {};

TEST_P(SummaP, MatchesSerialProduct) {
    const auto [grid, block, backend] = GetParam();
    const int p = grid * grid;
    // Spread over two (possibly uneven) nodes where there is more than one
    // rank, so the hybrid path exercises real bridge traffic.
    Runtime rt(p > 1 ? ClusterSpec::irregular({(p + 1) / 2, p / 2})
                     : ClusterSpec::regular(1, 1),
               ModelParams::cray());
    rt.run([&, grid = grid, block = block, backend = backend](Comm& world) {
        SummaConfig cfg;
        cfg.grid = grid;
        cfg.block = static_cast<std::size_t>(block);
        cfg.backend = backend;
        Summa summa(world, cfg);
        summa.init(elem_a, elem_b);
        summa.multiply();
        const linalg::Matrix got = summa.gather_c();
        if (world.rank() == 0) {
            const auto n = static_cast<std::size_t>(grid * block);
            EXPECT_LT(got.distance(serial_product(n)), 1e-9)
                << "grid " << grid << " block " << block;
        }
        barrier(world);
    });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SummaP,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 5, 16),
                       ::testing::Values(Backend::PureMpi, Backend::Hybrid)),
    [](const auto& info) {
        return "g" + std::to_string(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) == Backend::PureMpi ? "_ori" : "_hy");
    });

}  // namespace

TEST(Summa, RepeatedMultiplyAccumulates) {
    Runtime rt(ClusterSpec::regular(1, 4), ModelParams::cray());
    rt.run([](Comm& world) {
        SummaConfig cfg;
        cfg.grid = 2;
        cfg.block = 4;
        cfg.backend = Backend::Hybrid;
        Summa summa(world, cfg);
        summa.init(elem_a, elem_b);
        summa.multiply();
        const linalg::Matrix once = summa.gather_c();
        summa.multiply();  // C += A*B again
        const linalg::Matrix twice = summa.gather_c();
        summa.reset_c();
        summa.multiply();
        const linalg::Matrix reset = summa.gather_c();
        if (world.rank() == 0) {
            linalg::Matrix doubled = once;
            for (std::size_t i = 0; i < 8; ++i) {
                for (std::size_t j = 0; j < 8; ++j) doubled(i, j) *= 2.0;
            }
            EXPECT_LT(twice.distance(doubled), 1e-9);
            EXPECT_LT(reset.distance(once), 1e-9);
        }
        barrier(world);
    });
}

TEST(Summa, RejectsNonSquareProcessCount) {
    Runtime rt(ClusterSpec::regular(1, 3), ModelParams::test());
    EXPECT_THROW(rt.run([](Comm& world) {
        SummaConfig cfg;
        cfg.grid = 2;  // needs 4 ranks, world has 3
        Summa summa(world, cfg);
    }),
                 ArgumentError);
}

TEST(Summa, HybridIsFasterOnNodeForSmallTiles) {
    // The paper's Fig. 11 headline: small tiles, all ranks on one node.
    double ori = 0, hy = 0;
    for (Backend backend : {Backend::PureMpi, Backend::Hybrid}) {
        Runtime rt(ClusterSpec::regular(1, 16), ModelParams::cray());
        std::mutex mu;
        double worst = 0;
        rt.run([&](Comm& world) {
            SummaConfig cfg;
            cfg.grid = 4;
            cfg.block = 8;
            cfg.backend = backend;
            Summa summa(world, cfg);
            summa.init(elem_a, elem_b);
            barrier(world);
            const VTime t0 = world.ctx().clock.now();
            summa.multiply();
            const VTime t1 = world.ctx().clock.now();
            std::lock_guard<std::mutex> lock(mu);
            worst = std::max(worst, t1 - t0);
        });
        (backend == Backend::PureMpi ? ori : hy) = worst;
    }
    EXPECT_GT(ori, 1.3 * hy) << "Ori=" << ori << " Hy=" << hy;
}

TEST(Summa, LookaheadMatchesSerialProduct) {
    // The double-buffered split-phase broadcasts must not change a single
    // bit of the result, over square and non-square node layouts.
    for (const auto& nodes :
         {std::vector<int>{9}, std::vector<int>{5, 4}, std::vector<int>{4, 4, 1}}) {
        Runtime rt(ClusterSpec::irregular(nodes), ModelParams::cray());
        rt.run([&](Comm& world) {
            SummaConfig cfg;
            cfg.grid = 3;
            cfg.block = 7;
            cfg.backend = Backend::Hybrid;
            cfg.lookahead = true;
            Summa summa(world, cfg);
            summa.init(elem_a, elem_b);
            summa.multiply();
            summa.multiply();  // reuse: channels must survive re-posting
            const linalg::Matrix got = summa.gather_c();
            if (world.rank() == 0) {
                linalg::Matrix want = serial_product(21);
                for (std::size_t i = 0; i < 21; ++i) {
                    for (std::size_t j = 0; j < 21; ++j) want(i, j) *= 2.0;
                }
                EXPECT_LT(got.distance(want), 1e-9);
            }
            barrier(world);
        });
    }
}

TEST(Summa, LookaheadHidesBridgeTrafficBehindGemm) {
    // Large tiles on a multi-node mesh: the lookahead multiply must beat
    // the blocking hybrid multiply (tile broadcasts ride behind the GEMMs)
    // and can never beat the compute-only lower bound of grid GEMM steps.
    auto measure = [](bool lookahead) {
        Runtime rt(ClusterSpec::regular(4, 4), ModelParams::cray(),
                   PayloadMode::SizeOnly);
        std::mutex mu;
        double worst = 0;
        rt.run([&](Comm& world) {
            SummaConfig cfg;
            cfg.grid = 4;
            cfg.block = 192;
            cfg.backend = Backend::Hybrid;
            cfg.lookahead = lookahead;
            Summa summa(world, cfg);
            barrier(world);
            const VTime t0 = world.ctx().clock.now();
            summa.multiply();
            const VTime t1 = world.ctx().clock.now();
            std::lock_guard<std::mutex> lock(mu);
            worst = std::max(worst, t1 - t0);
        });
        return worst;
    };
    const double blocking = measure(false);
    const double overlapped = measure(true);
    EXPECT_LT(overlapped, blocking)
        << "blocking=" << blocking << " lookahead=" << overlapped;
}

TEST(Summa, LocalFlopsFormula) {
    Runtime rt(ClusterSpec::regular(1, 1), ModelParams::test());
    rt.run([](Comm& world) {
        SummaConfig cfg;
        cfg.grid = 1;
        cfg.block = 10;
        Summa summa(world, cfg);
        EXPECT_DOUBLE_EQ(summa.local_flops(), 2000.0);
    });
}
