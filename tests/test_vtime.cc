// Properties of the virtual-time model: analytic point-to-point costs,
// link-bandwidth serialization, determinism across runs and host
// scheduling, and Real/SizeOnly timing equivalence.

#include <gtest/gtest.h>

#include <vector>

#include "hybrid/hympi.h"
#include "minimpi/minimpi.h"

using namespace minimpi;

namespace {

/// Final per-rank clocks of one scripted run.
template <typename F>
std::vector<VTime> clocks_of(const ClusterSpec& spec, const ModelParams& m,
                             F body, PayloadMode mode = PayloadMode::Real) {
    Runtime rt(spec, m, mode);
    return rt.run(body);
}

}  // namespace

TEST(VTime, PingMatchesAnalyticCost) {
    ModelParams m = ModelParams::cray();
    const std::size_t bytes = 4096;
    auto clocks = clocks_of(
        ClusterSpec::regular(2, 1), m, [bytes](Comm& world) {
            std::vector<std::byte> buf(bytes);
            if (world.rank() == 0) {
                send(world, buf.data(), bytes, Datatype::Byte, 1, 0);
            } else {
                recv(world, buf.data(), bytes, Datatype::Byte, 0, 0);
            }
        });
    // Sender: one message overhead.
    EXPECT_DOUBLE_EQ(clocks[0], m.net.overhead_us);
    // Receiver: overhead_send + wire + overhead_recv.
    const VTime wire = m.net.alpha_us +
                       static_cast<VTime>(bytes) * m.net.beta_us_per_byte;
    EXPECT_NEAR(clocks[1], 2 * m.net.overhead_us + wire, 1e-9);
}

TEST(VTime, IntraNodeUsesShmLink) {
    ModelParams m = ModelParams::cray();
    auto clocks = clocks_of(ClusterSpec::regular(1, 2), m, [](Comm& world) {
        int v = 1;
        if (world.rank() == 0) {
            send(world, &v, 1, Datatype::Int32, 1, 0);
        } else {
            recv(world, &v, 1, Datatype::Int32, 0, 0);
        }
    });
    const VTime wire = m.shm.alpha_us + 4 * m.shm.beta_us_per_byte;
    EXPECT_NEAR(clocks[1], 2 * m.shm.overhead_us + wire, 1e-9);
    EXPECT_LT(clocks[1], 2 * m.net.overhead_us + m.net.alpha_us +
                             4 * m.net.beta_us_per_byte);
}

TEST(VTime, BackToBackSendsSerializeOnLinkBandwidth) {
    ModelParams m = ModelParams::cray();
    const std::size_t bytes = 1 << 20;
    const int k = 4;
    auto clocks = clocks_of(
        ClusterSpec::regular(2, 1), m, [&](Comm& world) {
            std::vector<std::byte> buf(bytes);
            if (world.rank() == 0) {
                for (int i = 0; i < k; ++i) {
                    send(world, buf.data(), bytes, Datatype::Byte, 1, i);
                }
            } else {
                for (int i = 0; i < k; ++i) {
                    recv(world, buf.data(), bytes, Datatype::Byte, 0, i);
                }
            }
        });
    // The k-th message cannot arrive before k transfer times have elapsed:
    // the link is a serial resource, segmentation is not a free lunch.
    const VTime transfer = static_cast<VTime>(bytes) * m.net.beta_us_per_byte;
    EXPECT_GE(clocks[1], k * transfer);
    EXPECT_LT(clocks[1], k * transfer + m.net.alpha_us +
                             2 * k * m.net.overhead_us + 1.0);
}

TEST(VTime, TunedShmBarrierIsCheaperThanOnNodeBcast) {
    ModelParams m = ModelParams::cray();
    auto barrier_clocks =
        clocks_of(ClusterSpec::regular(1, 24), m,
                  [](Comm& world) { barrier(world); });
    auto bcast_clocks = clocks_of(
        ClusterSpec::regular(1, 24), m, [](Comm& world) {
            std::int64_t v = 1;
            bcast(world, &v, 1, Datatype::Int64, 0);
        });
    const VTime barrier_max =
        *std::max_element(barrier_clocks.begin(), barrier_clocks.end());
    const VTime bcast_max =
        *std::max_element(bcast_clocks.begin(), bcast_clocks.end());
    // The asymmetry that powers the paper's Fig. 7 / Fig. 11 gains.
    EXPECT_LT(3 * barrier_max, bcast_max);
}

TEST(VTime, DeterministicAcrossRepetitions) {
    ModelParams m = ModelParams::openmpi();
    auto body = [](Comm& world) {
        std::vector<double> mine(64, world.rank());
        std::vector<double> all(64 * static_cast<std::size_t>(world.size()));
        for (int i = 0; i < 5; ++i) {
            allgather(world, mine.data(), 64, all.data(), Datatype::Double);
            allreduce(world, kInPlace, mine.data(), 64, Datatype::Double,
                      Op::Max);
            barrier(world);
        }
    };
    const auto a = clocks_of(ClusterSpec::irregular({3, 5, 2}), m, body);
    const auto b = clocks_of(ClusterSpec::irregular({3, 5, 2}), m, body);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "rank " << i;
    }
}

TEST(VTime, SizeOnlyMatchesRealTiming) {
    ModelParams m = ModelParams::cray();
    auto body = [](Comm& world) {
        const std::size_t n = 512;
        const bool real = world.ctx().payload_mode == PayloadMode::Real;
        std::vector<double> mine(real ? n : 0);
        std::vector<double> all(
            real ? n * static_cast<std::size_t>(world.size()) : 0);
        for (int i = 0; i < 3; ++i) {
            allgather(world, real ? mine.data() : nullptr, n,
                      real ? all.data() : nullptr, Datatype::Double);
            bcast(world, real ? mine.data() : nullptr, n, Datatype::Double, 1);
        }
    };
    const auto real = clocks_of(ClusterSpec::regular(2, 4), m, body,
                                PayloadMode::Real);
    const auto sized = clocks_of(ClusterSpec::regular(2, 4), m, body,
                                 PayloadMode::SizeOnly);
    ASSERT_EQ(real.size(), sized.size());
    for (std::size_t i = 0; i < real.size(); ++i) {
        EXPECT_DOUBLE_EQ(real[i], sized[i]) << "rank " << i;
    }
}

TEST(VTime, SizeOnlyMatchesRealTimingUnderRobustRecovery) {
    // Frame drops are detected from the envelope (tombstones) and checksum
    // scan costs are charged in both payload modes, so a drop/dup plan on
    // the robust path yields identical clocks in Real and SizeOnly runs.
    // (Corruption plans legitimately differ: payload verification needs
    // payload bytes.)
    ModelParams m = ModelParams::cray();
    FaultPlan fp;
    fp.seed = 73;
    fp.drop_every = 3;
    fp.dup_every = 4;
    fp.scope = FaultScope::RobustFrames;
    hympi::RobustConfig cfg;
    cfg.enabled = true;
    auto body = [](Comm& world) {
        hympi::HierComm hc(world);
        hympi::AllgatherChannel ch(hc, 1024);
        for (int i = 0; i < 3; ++i) {
            ch.run();
            ch.quiesce();
        }
    };
    auto run_mode = [&](PayloadMode mode) {
        Runtime rt(ClusterSpec::regular(3, 2), m, mode);
        rt.set_fault_plan(fp);
        rt.set_robust_config(cfg);
        return rt.run(body);
    };
    const auto real = run_mode(PayloadMode::Real);
    const auto sized = run_mode(PayloadMode::SizeOnly);
    ASSERT_EQ(real.size(), sized.size());
    for (std::size_t i = 0; i < real.size(); ++i) {
        EXPECT_DOUBLE_EQ(real[i], sized[i]) << "rank " << i;
    }
}

TEST(VTime, MemcpyAndFlopChargesAccumulate) {
    ModelParams m = ModelParams::cray();
    auto clocks = clocks_of(ClusterSpec::regular(1, 1), m, [&](Comm& world) {
        RankCtx& ctx = world.ctx();
        ctx.charge_memcpy(8000);
        ctx.charge_flops(2000.0);
    });
    const VTime want = m.memcpy_alpha_us + 8000 * m.memcpy_beta_us_per_byte +
                       2000.0 / m.flops_per_us;
    EXPECT_NEAR(clocks[0], want, 1e-9);
}

TEST(VTime, BarrierSynchronizesSkewedClocks) {
    ModelParams m = ModelParams::cray();
    auto clocks = clocks_of(ClusterSpec::regular(1, 4), m, [](Comm& world) {
        // Skew: rank r computes r milliseconds.
        world.ctx().charge_flops(1e3 * world.ctx().model->flops_per_us *
                                 world.rank());
        barrier(world);
    });
    // Everyone leaves the barrier no earlier than the slowest arrival.
    for (VTime t : clocks) EXPECT_GE(t, 3000.0);
}

TEST(VTime, ProfilesDiffer) {
    auto body = [](Comm& world) {
        std::vector<double> mine(1024, 1.0);
        std::vector<double> all(1024 * 4);
        allgather(world, mine.data(), 1024, all.data(), Datatype::Double);
    };
    const auto cray =
        clocks_of(ClusterSpec::regular(4, 1), ModelParams::cray(), body);
    const auto ompi =
        clocks_of(ClusterSpec::regular(4, 1), ModelParams::openmpi(), body);
    // InfiniBand/Open MPI profile is strictly slower for this pattern.
    for (std::size_t i = 0; i < cray.size(); ++i) {
        EXPECT_LT(cray[i], ompi[i]);
    }
}
