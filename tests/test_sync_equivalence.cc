// SyncPolicy::Flags is the paper's cheap alternative to a full on-node
// barrier. It must be a pure performance knob: for EVERY hybrid collective,
// the bytes every rank observes — and the order it observes them in — must
// be identical under Flags and under Barrier.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "hybrid/hympi.h"

using namespace minimpi;
using namespace hympi;

namespace {

constexpr int kIters = 3;
constexpr std::size_t kBB = 72;

ClusterSpec shape() { return ClusterSpec::irregular({3, 1, 4, 2}); }
constexpr int kRanks = 10;

void fill(std::byte* p, std::size_t n, int rank, int iter) {
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = static_cast<std::byte>(
            (rank * 131 + iter * 29 + static_cast<int>(i) * 7) & 0xFF);
    }
}

/// Everything a rank observed, in observation order. One string per world
/// rank; each rank thread appends only to its own slot.
using Capture = std::vector<std::string>;

void append(Capture& cap, int rank, const std::byte* p, std::size_t n) {
    if (n > 0) {
        cap[static_cast<std::size_t>(rank)].append(
            reinterpret_cast<const char*>(p), n);
    }
}

/// Run @p body under the given sync policy and return the capture.
template <typename Body>
Capture run_capture(SyncPolicy sync, Body body) {
    Runtime rt(shape(), ModelParams::cray());
    Capture cap(kRanks);
    rt.run([&](Comm& world) {
        HierComm hc(world);
        body(world, hc, sync, cap);
    });
    return cap;
}

template <typename Body>
void expect_policies_equivalent(const char* what, Body body) {
    const Capture bar = run_capture(SyncPolicy::Barrier, body);
    const Capture flg = run_capture(SyncPolicy::Flags, body);
    for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(bar[static_cast<std::size_t>(r)],
                  flg[static_cast<std::size_t>(r)])
            << what << ": rank " << r
            << " observed different bytes under Flags";
    }
}

TEST(SyncEquivalence, Allgather) {
    expect_policies_equivalent(
        "allgather", [](Comm& world, HierComm& hc, SyncPolicy sync,
                        Capture& cap) {
            AllgatherChannel ch(hc, kBB);
            for (int it = 0; it < kIters; ++it) {
                fill(ch.my_block(), kBB, world.rank(), it);
                ch.run(sync);
                for (int r = 0; r < world.size(); ++r) {
                    append(cap, world.rank(), ch.block_of(r), kBB);
                }
                ch.quiesce(sync);
            }
        });
}

TEST(SyncEquivalence, Allgatherv) {
    expect_policies_equivalent(
        "allgatherv", [](Comm& world, HierComm& hc, SyncPolicy sync,
                         Capture& cap) {
            std::vector<std::size_t> counts(
                static_cast<std::size_t>(world.size()));
            for (int r = 0; r < world.size(); ++r) {
                counts[static_cast<std::size_t>(r)] =
                    static_cast<std::size_t>((r * 17) % 41);
            }
            AllgatherChannel ch(hc, counts);
            for (int it = 0; it < kIters; ++it) {
                fill(ch.my_block(), counts[static_cast<std::size_t>(world.rank())],
                     world.rank(), it);
                ch.run(sync);
                for (int r = 0; r < world.size(); ++r) {
                    append(cap, world.rank(), ch.block_of(r),
                           counts[static_cast<std::size_t>(r)]);
                }
                ch.quiesce(sync);
            }
        });
}

TEST(SyncEquivalence, Bcast) {
    expect_policies_equivalent(
        "bcast", [](Comm& world, HierComm& hc, SyncPolicy sync, Capture& cap) {
            BcastChannel ch(hc, kBB);
            for (int it = 0; it < kIters; ++it) {
                const int root = (it * 3) % world.size();
                if (world.rank() == root) {
                    fill(ch.write_buffer(), kBB, root, it);
                }
                ch.run(root, sync);
                append(cap, world.rank(), ch.read_buffer(), kBB);
            }
        });
}

TEST(SyncEquivalence, Allreduce) {
    expect_policies_equivalent(
        "allreduce", [](Comm& world, HierComm& hc, SyncPolicy sync,
                        Capture& cap) {
            const std::size_t count = 19;
            AllreduceChannel ch(hc, count, Datatype::Int64);
            for (int it = 0; it < kIters; ++it) {
                auto* in = reinterpret_cast<std::int64_t*>(ch.my_input());
                for (std::size_t i = 0; i < count; ++i) {
                    in[i] = world.rank() * 1000 + it * 10 +
                            static_cast<std::int64_t>(i);
                }
                ch.run(Op::Sum, sync);
                append(cap, world.rank(), ch.result(),
                       count * sizeof(std::int64_t));
            }
        });
}

TEST(SyncEquivalence, Reduce) {
    expect_policies_equivalent(
        "reduce", [](Comm& world, HierComm& hc, SyncPolicy sync,
                     Capture& cap) {
            const std::size_t count = 13;
            const int root = 5;
            ReduceChannel ch(hc, count, Datatype::Int64, root);
            for (int it = 0; it < kIters; ++it) {
                auto* in = reinterpret_cast<std::int64_t*>(ch.my_input());
                for (std::size_t i = 0; i < count; ++i) {
                    in[i] = world.rank() * 100 + it -
                            static_cast<std::int64_t>(i);
                }
                ch.run(Op::Max, sync);
                if (hc.my_node() == hc.node_of_rank(root)) {
                    append(cap, world.rank(), ch.result(),
                           count * sizeof(std::int64_t));
                }
                barrier(world);  // result readers vs next iteration's inputs
            }
        });
}

TEST(SyncEquivalence, Gather) {
    expect_policies_equivalent(
        "gather", [](Comm& world, HierComm& hc, SyncPolicy sync,
                     Capture& cap) {
            const int root = 4;
            GatherChannel ch(hc, kBB, root);
            for (int it = 0; it < kIters; ++it) {
                fill(ch.my_block(), kBB, world.rank(), it);
                ch.run(sync);
                if (hc.my_node() == hc.node_of_rank(root)) {
                    for (int r = 0; r < world.size(); ++r) {
                        append(cap, world.rank(), ch.gathered(r), kBB);
                    }
                }
                barrier(world);  // root-node readers vs next writers
            }
        });
}

TEST(SyncEquivalence, Scatter) {
    expect_policies_equivalent(
        "scatter", [](Comm& world, HierComm& hc, SyncPolicy sync,
                      Capture& cap) {
            const int root = 7;
            ScatterChannel ch(hc, kBB, root);
            for (int it = 0; it < kIters; ++it) {
                if (world.rank() == root) {
                    for (int r = 0; r < world.size(); ++r) {
                        fill(ch.outgoing(r), kBB, r + 50, it);
                    }
                }
                ch.run(sync);
                append(cap, world.rank(), ch.my_block(), kBB);
                barrier(world);  // readers vs the root's next writes
            }
        });
}

TEST(SyncEquivalence, Alltoall) {
    expect_policies_equivalent(
        "alltoall", [](Comm& world, HierComm& hc, SyncPolicy sync,
                       Capture& cap) {
            AlltoallChannel ch(hc, kBB);
            for (int it = 0; it < kIters; ++it) {
                for (int d = 0; d < world.size(); ++d) {
                    fill(ch.send_block(d), kBB,
                         world.rank() * world.size() + d, it);
                }
                ch.run(sync);
                for (int s = 0; s < world.size(); ++s) {
                    append(cap, world.rank(), ch.recv_block(s), kBB);
                }
                barrier(world);  // recv readers vs next transpose
            }
        });
}

}  // namespace
