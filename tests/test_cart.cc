#include <gtest/gtest.h>

#include "minimpi/minimpi.h"

using namespace minimpi;

TEST(DimsCreate, BalancedFactorizations) {
    EXPECT_EQ(dims_create(12, 2), (std::vector<int>{4, 3}));
    EXPECT_EQ(dims_create(16, 2), (std::vector<int>{4, 4}));
    EXPECT_EQ(dims_create(24, 3), (std::vector<int>{4, 3, 2}));
    EXPECT_EQ(dims_create(7, 2), (std::vector<int>{7, 1}));
    EXPECT_EQ(dims_create(1, 3), (std::vector<int>{1, 1, 1}));
    EXPECT_EQ(dims_create(64, 3), (std::vector<int>{4, 4, 4}));
}

TEST(DimsCreate, ProductAlwaysMatches) {
    for (int n = 1; n <= 60; ++n) {
        for (int d = 1; d <= 4; ++d) {
            const auto dims = dims_create(n, d);
            int prod = 1;
            for (int x : dims) prod *= x;
            EXPECT_EQ(prod, n) << "n=" << n << " d=" << d;
        }
    }
    EXPECT_THROW(dims_create(0, 2), ArgumentError);
    EXPECT_THROW(dims_create(4, 0), ArgumentError);
}

TEST(Cart, CoordsRoundTrip) {
    Runtime rt(ClusterSpec::regular(2, 6), ModelParams::test());
    rt.run([](Comm& world) {
        CartComm cart(world, {3, 4});
        EXPECT_EQ(cart.coord(0), world.rank() / 4);
        EXPECT_EQ(cart.coord(1), world.rank() % 4);
        for (int r = 0; r < world.size(); ++r) {
            EXPECT_EQ(cart.rank_of(cart.coords_of(r)), r);
        }
    });
}

TEST(Cart, ShiftNonPeriodicHitsProcNull) {
    Runtime rt(ClusterSpec::regular(1, 6), ModelParams::test());
    rt.run([](Comm& world) {
        CartComm cart(world, {2, 3});
        const auto [up, down] = cart.shift(0, 1);
        if (cart.coord(0) == 0) {
            EXPECT_EQ(up, kProcNull);
            EXPECT_EQ(down, world.rank() + 3);
        } else {
            EXPECT_EQ(up, world.rank() - 3);
            EXPECT_EQ(down, kProcNull);
        }
    });
}

TEST(Cart, ShiftPeriodicWraps) {
    Runtime rt(ClusterSpec::regular(1, 4), ModelParams::test());
    rt.run([](Comm& world) {
        CartComm cart(world, {4}, {true});
        const auto [left, right] = cart.shift(0, 1);
        EXPECT_EQ(left, (world.rank() + 3) % 4);
        EXPECT_EQ(right, (world.rank() + 1) % 4);
        // Large displacements wrap too.
        const auto [l5, r5] = cart.shift(0, 5);
        EXPECT_EQ(l5, (world.rank() + 3) % 4);
        EXPECT_EQ(r5, (world.rank() + 1) % 4);
    });
}

TEST(Cart, AxisCommsAreRowsAndColumns) {
    Runtime rt(ClusterSpec::regular(2, 6), ModelParams::test());
    rt.run([](Comm& world) {
        CartComm cart(world, {3, 4});
        const Comm& row = cart.axis_comm(1);  // dim 1 varies -> my row
        const Comm& col = cart.axis_comm(0);
        EXPECT_EQ(row.size(), 4);
        EXPECT_EQ(col.size(), 3);
        EXPECT_EQ(row.rank(), cart.coord(1));
        EXPECT_EQ(col.rank(), cart.coord(0));
        // Row members share my row coordinate.
        for (int i = 0; i < row.size(); ++i) {
            EXPECT_EQ(row.to_world(i) / 4, world.rank() / 4);
        }
        // The cached comm is reused.
        EXPECT_EQ(&cart.axis_comm(1), &row);
    });
}

TEST(Cart, ThreeDimensional) {
    Runtime rt(ClusterSpec::regular(2, 12), ModelParams::test());
    rt.run([](Comm& world) {
        CartComm cart(world, {2, 3, 4}, {false, true, false});
        const auto c = cart.coords();
        EXPECT_EQ(cart.rank_of(c), world.rank());
        // Periodic middle dimension.
        const auto [mlo, mhi] = cart.shift(1, 1);
        EXPECT_NE(mlo, kProcNull);
        EXPECT_NE(mhi, kProcNull);
        EXPECT_EQ(cart.axis_comm(2).size(), 4);
    });
}

TEST(Cart, HaloExchangeOverShift) {
    // A classic 1D halo exchange written with shift + sendrecv.
    Runtime rt(ClusterSpec::regular(2, 3), ModelParams::test());
    rt.run([](Comm& world) {
        CartComm cart(world, {6}, {true});
        const auto [left, right] = cart.shift(0, 1);
        const int mine = world.rank() * 7;
        int from_left = -1, from_right = -1;
        sendrecv(world, &mine, 1, right, 0, &from_left, 1, left, 0,
                 Datatype::Int32);
        sendrecv(world, &mine, 1, left, 1, &from_right, 1, right, 1,
                 Datatype::Int32);
        EXPECT_EQ(from_left, ((world.rank() + 5) % 6) * 7);
        EXPECT_EQ(from_right, ((world.rank() + 1) % 6) * 7);
    });
}

TEST(Cart, RejectsBadConfigurations) {
    Runtime rt(ClusterSpec::regular(1, 6), ModelParams::test());
    rt.run([](Comm& world) {
        EXPECT_THROW(CartComm(world, {4, 2}), ArgumentError);  // 8 != 6
        EXPECT_THROW(CartComm(world, {}), ArgumentError);
        EXPECT_THROW(CartComm(world, {6, 0}), ArgumentError);
        EXPECT_THROW(CartComm(world, {2, 3}, {true}), ArgumentError);
        CartComm ok(world, {2, 3});
        EXPECT_THROW(ok.shift(2), ArgumentError);
        EXPECT_THROW(ok.rank_of({1}), ArgumentError);
    });
}
