#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/minimpi.h"

using namespace minimpi;

TEST(Smoke, PingPong) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int v = 42;
            send_value(world, v, 1, 7);
            int back = recv_value<int>(world, 1, 7);
            EXPECT_EQ(back, 43);
        } else {
            int v = recv_value<int>(world, 0, 7);
            v += 1;
            send_value(world, v, 0, 7);
        }
    });
}

TEST(Smoke, AllgatherSmall) {
    Runtime rt(ClusterSpec::regular(2, 3), ModelParams::test());
    rt.run([](Comm& world) {
        const int p = world.size();
        std::vector<double> recv(static_cast<std::size_t>(p), -1.0);
        double mine = 100.0 + world.rank();
        allgather(world, &mine, 1, recv.data(), Datatype::Double);
        for (int i = 0; i < p; ++i) {
            EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)], 100.0 + i)
                << "rank " << world.rank() << " slot " << i;
        }
    });
}

TEST(Smoke, BarrierAdvancesClock) {
    Runtime rt(ClusterSpec::regular(2, 2), ModelParams::cray());
    auto clocks = rt.run([](Comm& world) { barrier(world); });
    for (VTime t : clocks) EXPECT_GT(t, 0.0);
}

TEST(Smoke, SharedWindow) {
    Runtime rt(ClusterSpec::regular(2, 4), ModelParams::test());
    rt.run([](Comm& world) {
        Comm shm = world.split_shared();
        EXPECT_EQ(shm.size(), 4);
        const std::size_t my_bytes = (shm.rank() == 0) ? 4 * sizeof(int) : 0;
        Win win = win_allocate_shared(shm, my_bytes);
        auto [base, sz] = win.shared_query(0);
        ASSERT_NE(base, nullptr);
        EXPECT_EQ(sz, 4 * sizeof(int));
        int* slots = reinterpret_cast<int*>(base);
        slots[shm.rank()] = 1000 + world.rank();
        barrier(shm);
        for (int i = 0; i < 4; ++i) {
            const int owner_world = shm.to_world(i);
            EXPECT_EQ(slots[i], 1000 + owner_world);
        }
        barrier(shm);
    });
}
