#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/minimpi.h"

using namespace minimpi;

namespace {
Runtime make_rt(int nodes = 1, int ppn = 2) {
    return Runtime(ClusterSpec::regular(nodes, ppn), ModelParams::test());
}
}  // namespace

TEST(P2P, BasicSendRecvCarriesData) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        std::vector<std::int32_t> data(100);
        if (world.rank() == 0) {
            std::iota(data.begin(), data.end(), 7);
            send(world, data.data(), data.size(), Datatype::Int32, 1, 3);
        } else {
            Status st = recv(world, data.data(), data.size(), Datatype::Int32,
                             0, 3);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 3);
            EXPECT_EQ(st.bytes, 400u);
            for (int i = 0; i < 100; ++i) EXPECT_EQ(data[i], 7 + i);
        }
    });
}

TEST(P2P, MessagesFromOneSenderDoNotOvertake) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            for (int i = 0; i < 50; ++i) send_value(world, i, 1, 9);
        } else {
            for (int i = 0; i < 50; ++i) {
                EXPECT_EQ(recv_value<int>(world, 0, 9), i);
            }
        }
    });
}

TEST(P2P, TagSelectsAmongPendingMessages) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            send_value(world, 111, 1, 1);
            send_value(world, 222, 1, 2);
            send_value(world, 333, 1, 3);
        } else {
            // Receive out of send order by tag.
            EXPECT_EQ(recv_value<int>(world, 0, 3), 333);
            EXPECT_EQ(recv_value<int>(world, 0, 1), 111);
            EXPECT_EQ(recv_value<int>(world, 0, 2), 222);
        }
    });
}

TEST(P2P, AnyTagMatchesFirstPending) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            send_value(world, 5, 1, 42);
        } else {
            int v = 0;
            Status st = recv(world, &v, 1, Datatype::Int32, 0, kAnyTag);
            EXPECT_EQ(v, 5);
            EXPECT_EQ(st.tag, 42);
        }
    });
}

TEST(P2P, AnySourceReportsActualSource) {
    Runtime rt = make_rt(1, 3);
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int total = 0;
            for (int i = 0; i < 2; ++i) {
                int v = 0;
                Status st = recv(world, &v, 1, Datatype::Int32, kAnySource, 0);
                EXPECT_TRUE(st.source == 1 || st.source == 2);
                EXPECT_EQ(v, 10 * st.source);
                total += v;
            }
            EXPECT_EQ(total, 30);
        } else {
            send_value(world, 10 * world.rank(), 0, 0);
        }
    });
}

TEST(P2P, SelfSendWorks) {
    Runtime rt = make_rt(1, 1);
    rt.run([](Comm& world) {
        send_value(world, 88, 0, 0);
        EXPECT_EQ(recv_value<int>(world, 0, 0), 88);
    });
}

TEST(P2P, ProcNullIsNoOp) {
    Runtime rt = make_rt(1, 1);
    rt.run([](Comm& world) {
        int v = 123;
        send(world, &v, 1, Datatype::Int32, kProcNull, 0);
        Status st = recv(world, &v, 1, Datatype::Int32, kProcNull, 0);
        EXPECT_EQ(st.source, kProcNull);
        EXPECT_EQ(v, 123);  // untouched
    });
}

TEST(P2P, ZeroByteMessage) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            send(world, nullptr, 0, Datatype::Byte, 1, 5);
        } else {
            Status st = recv(world, nullptr, 0, Datatype::Byte, 0, 5);
            EXPECT_EQ(st.bytes, 0u);
        }
    });
}

TEST(P2P, RecvIntoLargerBufferReportsActualSize) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            std::vector<double> d(10, 1.5);
            send(world, d.data(), d.size(), Datatype::Double, 1, 0);
        } else {
            std::vector<double> d(100, 0.0);
            Status st = recv(world, d.data(), d.size(), Datatype::Double, 0, 0);
            EXPECT_EQ(st.bytes, 80u);
            EXPECT_DOUBLE_EQ(d[9], 1.5);
            EXPECT_DOUBLE_EQ(d[10], 0.0);
        }
    });
}

TEST(P2P, TruncationThrows) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    EXPECT_THROW(rt.run([](Comm& world) {
        if (world.rank() == 0) {
            std::vector<double> d(10, 1.0);
            send(world, d.data(), d.size(), Datatype::Double, 1, 0);
            // Peer throws; we may get unblocked by the poison or finish.
            recv(world, nullptr, 0, Datatype::Byte, 1, 1);
        } else {
            double one = 0;
            recv(world, &one, 1, Datatype::Double, 0, 0);  // too small
        }
    }),
                 TruncationError);
}

TEST(P2P, IsendIrecvWaitall) {
    Runtime rt = make_rt(2, 2);
    rt.run([](Comm& world) {
        const int p = world.size();
        std::vector<int> outbox(static_cast<std::size_t>(p));
        std::vector<int> inbox(static_cast<std::size_t>(p), -1);
        std::vector<Request> reqs;
        for (int i = 0; i < p; ++i) {
            reqs.push_back(irecv(world, &inbox[static_cast<std::size_t>(i)], 1,
                                 Datatype::Int32, i, 2));
        }
        for (int i = 0; i < p; ++i) {
            outbox[static_cast<std::size_t>(i)] = world.rank() * 100 + i;
            reqs.push_back(isend(world, &outbox[static_cast<std::size_t>(i)],
                                 1, Datatype::Int32, i, 2));
        }
        wait_all(reqs);
        for (int i = 0; i < p; ++i) {
            EXPECT_EQ(inbox[static_cast<std::size_t>(i)],
                      i * 100 + world.rank());
        }
    });
}

TEST(P2P, TestPollsUntilComplete) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int v = 0;
            Request r = irecv(world, &v, 1, Datatype::Int32, 0, 0);
            // Tell rank 0 we're ready, then poll.
            send(world, nullptr, 0, Datatype::Byte, 0, 1);
            Status st;
            while (!r.test(&st)) {
            }
            EXPECT_EQ(v, 4242);
            EXPECT_EQ(st.source, 0);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, 1);
            send_value(world, 4242, 1, 0);
        }
    });
}

TEST(P2P, DroppedPendingRecvIsCancelled) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            {
                int v = 0;
                Request r = irecv(world, &v, 1, Datatype::Int32, 0, 7);
                // Dropped without wait: must deregister cleanly.
            }
            // A later message with the same tag must be receivable.
            send(world, nullptr, 0, Datatype::Byte, 0, 1);
            EXPECT_EQ(recv_value<int>(world, 0, 7), 31);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, 1);
            send_value(world, 31, 1, 7);
        }
    });
}

TEST(P2P, SendrecvExchanges) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        const int peer = 1 - world.rank();
        const int mine = world.rank() + 60;
        int theirs = -1;
        Status st = sendrecv(world, &mine, 1, peer, 0, &theirs, 1, peer, 0,
                             Datatype::Int32);
        EXPECT_EQ(theirs, peer + 60);
        EXPECT_EQ(st.source, peer);
    });
}

TEST(P2P, IprobeSeesPendingWithoutConsuming) {
    Runtime rt = make_rt();
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            send_value<std::int64_t>(world, 99, 1, 4);
            send(world, nullptr, 0, Datatype::Byte, 1, 5);
        } else {
            // Wait until something with tag 4 is pending.
            Status st;
            probe(world, 0, 4, &st);
            EXPECT_EQ(st.bytes, sizeof(std::int64_t));
            EXPECT_EQ(st.source, 0);
            EXPECT_TRUE(iprobe(world, 0, 4, &st));
            EXPECT_FALSE(iprobe(world, 0, 12345, nullptr));
            EXPECT_EQ(recv_value<std::int64_t>(world, 0, 4), 99);
            EXPECT_FALSE(iprobe(world, 0, 4, nullptr));
            recv(world, nullptr, 0, Datatype::Byte, 0, 5);
        }
    });
}

TEST(P2P, ValidationErrors) {
    Runtime rt(ClusterSpec::regular(1, 1), ModelParams::test());
    rt.run([](Comm& world) {
        int v = 0;
        EXPECT_THROW(send(world, &v, 1, Datatype::Int32, 5, 0), ArgumentError);
        EXPECT_THROW(send(world, &v, 1, Datatype::Int32, -7, 0), ArgumentError);
        EXPECT_THROW(send(world, &v, 1, Datatype::Int32, 0, -1), ArgumentError);
        EXPECT_THROW(send(world, &v, 1, Datatype::Int32, 0, kTagUpperBound),
                     ArgumentError);
        EXPECT_THROW(send(world, nullptr, 4, Datatype::Int32, 0, 0),
                     ArgumentError);
        EXPECT_THROW(recv(world, &v, 1, Datatype::Int32, 3, 0), ArgumentError);
        // Wildcards allowed on recv but not send.
        EXPECT_THROW(send(world, &v, 1, Datatype::Int32, kAnySource, 0),
                     ArgumentError);
    });
}

TEST(P2P, CrossNodeTraffic) {
    Runtime rt(ClusterSpec::regular(3, 2), ModelParams::cray());
    rt.run([](Comm& world) {
        // Ring of value+1 passes through every node.
        const int p = world.size();
        const int next = (world.rank() + 1) % p;
        const int prev = (world.rank() - 1 + p) % p;
        if (world.rank() == 0) {
            send_value(world, 1, next, 0);
            EXPECT_EQ(recv_value<int>(world, prev, 0), p);
        } else {
            const int v = recv_value<int>(world, prev, 0);
            send_value(world, v + 1, next, 0);
        }
    });
}

TEST(P2P, LargeMessage) {
    Runtime rt = make_rt(2, 1);
    rt.run([](Comm& world) {
        const std::size_t n = 1 << 20;  // 1M ints = 4 MB
        if (world.rank() == 0) {
            std::vector<std::int32_t> big(n);
            std::iota(big.begin(), big.end(), 0);
            send(world, big.data(), n, Datatype::Int32, 1, 0);
        } else {
            std::vector<std::int32_t> big(n, -1);
            recv(world, big.data(), n, Datatype::Int32, 0, 0);
            EXPECT_EQ(big[0], 0);
            EXPECT_EQ(big[n - 1], static_cast<std::int32_t>(n - 1));
        }
    });
}

TEST(P2P, SsendCompletesAfterReceiveStarts) {
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    auto clocks = rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int v = 5;
            ssend(world, &v, 1, Datatype::Int32, 1, 0);
            // The sender's clock must reflect the receiver's late post:
            // the receiver computes for 300us before posting its recv.
            EXPECT_GT(world.ctx().clock.now(), 300.0);
        } else {
            world.ctx().clock.advance(300.0);
            int v = 0;
            recv(world, &v, 1, Datatype::Int32, 0, 0);
            EXPECT_EQ(v, 5);
        }
    });
    (void)clocks;
}

TEST(P2P, SsendDataIntegrity) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            std::vector<double> d(100);
            std::iota(d.begin(), d.end(), 0.5);
            ssend(world, d.data(), d.size(), Datatype::Double, 1, 3);
        } else {
            std::vector<double> d(100);
            recv(world, d.data(), d.size(), Datatype::Double, 0, 3);
            EXPECT_DOUBLE_EQ(d[0], 0.5);
            EXPECT_DOUBLE_EQ(d[99], 99.5);
        }
    });
}

TEST(P2P, SsendWithPrePostedReceiveIsPrompt) {
    Runtime rt(ClusterSpec::regular(2, 1), ModelParams::cray());
    rt.run([](Comm& world) {
        if (world.rank() == 1) {
            int v = 0;
            Request r = irecv(world, &v, 1, Datatype::Int32, 0, 0);
            send(world, nullptr, 0, Datatype::Byte, 0, 9);  // "recv posted"
            r.wait();
            EXPECT_EQ(v, 88);
        } else {
            recv(world, nullptr, 0, Datatype::Byte, 1, 9);
            const VTime before = world.ctx().clock.now();
            int v = 88;
            ssend(world, &v, 1, Datatype::Int32, 1, 0);
            // Completion ~ one round trip, no long stall.
            EXPECT_LT(world.ctx().clock.now() - before, 20.0);
        }
    });
}

TEST(P2P, SsendToSelfWithPostedRecv) {
    Runtime rt(ClusterSpec::regular(1, 1), ModelParams::test());
    rt.run([](Comm& world) {
        int in = 0;
        Request r = irecv(world, &in, 1, Datatype::Int32, 0, 0);
        int out = 123;
        ssend(world, &out, 1, Datatype::Int32, 0, 0);
        r.wait();
        EXPECT_EQ(in, 123);
    });
}

TEST(P2P, SsendOrderingWithRegularSends) {
    Runtime rt(ClusterSpec::regular(1, 2), ModelParams::test());
    rt.run([](Comm& world) {
        if (world.rank() == 0) {
            int a = 1, b = 2, c = 3;
            send(world, &a, 1, Datatype::Int32, 1, 0);
            ssend(world, &b, 1, Datatype::Int32, 1, 0);
            send(world, &c, 1, Datatype::Int32, 1, 0);
        } else {
            // Non-overtaking holds across send modes.
            EXPECT_EQ(recv_value<int>(world, 0, 0), 1);
            EXPECT_EQ(recv_value<int>(world, 0, 0), 2);
            EXPECT_EQ(recv_value<int>(world, 0, 0), 3);
        }
    });
}
